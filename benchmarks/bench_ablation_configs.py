"""Ablation: interconnect configuration sweep (Table 1's flexibility axis).

For each published configuration A-D: how many permutes the off-load pass
can legally move for representative kernels, the resulting speedup, and the
area/delay price.  The paper notes all of its kernels fit configuration D
(§5.1.1); byte-granularity kernels (``punpcklbw``-style) and wide-register
code need A/C's reach.
"""

from conftest import emit

from repro.analysis import format_table, pct, ratio
from repro.core import CONFIGS
from repro.hw import spu_cost
from repro.kernels import DCTKernel, DotProductKernel, FIR12Kernel, TransposeKernel

KERNELS = (DotProductKernel, TransposeKernel, FIR12Kernel, DCTKernel)


def _sweep():
    rows = []
    for name, config in CONFIGS.items():
        cost = spu_cost(config)
        for cls in KERNELS:
            kernel = cls(config=config)
            comparison = kernel.compare()
            rows.append([
                name,
                kernel.name,
                comparison.removed_permutes,
                ratio(comparison.speedup),
                ratio(cost.total_area_mm2, 2),
                ratio(cost.interconnect_delay_ns, 2),
            ])
    return rows


def test_config_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    headers = ["Config", "Kernel", "Permutes removed", "Speedup", "SPU mm2",
               "Delay ns"]
    text = format_table(
        headers,
        rows,
        title="Ablation: interconnect configuration vs off-load coverage",
    )
    emit("ablation_configs", text, headers=headers, rows=rows)

    by_key = {(row[0], row[1]): row for row in rows}
    # All paper kernels work under configuration D (the paper's claim).
    for cls in KERNELS:
        kernel_name = cls().name
        assert int(by_key[("D", kernel_name)][2]) > 0, kernel_name
        # The cheap config D achieves the same off-load as the full config A
        # on these half-word kernels.
        assert by_key[("D", kernel_name)][2] == by_key[("A", kernel_name)][2]
    # Config B's 4-register window never beats config A.
    for cls in KERNELS:
        kernel_name = cls().name
        assert int(by_key[("B", kernel_name)][2]) <= int(by_key[("A", kernel_name)][2])

"""Ablation: controller depth (K) vs kernel coverage and memory cost.

The paper fixes K = 128 states "based on the size of the core kernels" (§3).
We measure the states each kernel's loops actually need, and the control-
memory bits/area a smaller or larger K would cost (the ``128*(15+K)``
formula swept over K).
"""

from conftest import emit

from repro.analysis import format_table, ratio
from repro.core import CONFIG_D
from repro.hw import control_memory_area_mm2, control_memory_bits
from repro.kernels import (
    DCTKernel,
    DotProductKernel,
    FFT128Kernel,
    FIR12Kernel,
    IIRKernel,
    MatMulKernel,
    TransposeKernel,
)

KERNELS = (
    DotProductKernel, TransposeKernel, FIR12Kernel, MatMulKernel,
    DCTKernel, IIRKernel, FFT128Kernel,
)


def _states_needed():
    usage = {}
    for cls in KERNELS:
        kernel = cls()
        _, controller_programs = kernel.spu_programs()
        # states per context, plus the reserved idle state
        usage[kernel.name] = max(
            program.state_count() for _, program in controller_programs
        ) + 1
    return usage


def test_controller_depth_ablation(benchmark):
    usage = benchmark.pedantic(_states_needed, rounds=1, iterations=1)
    rows = [[name, states] for name, states in usage.items()]
    depth_rows = []
    for num_states in (16, 32, 64, 128, 256):
        covered = sum(1 for states in usage.values() if states <= num_states)
        depth_rows.append([
            num_states,
            f"{covered}/{len(usage)}",
            control_memory_bits(CONFIG_D, num_states=num_states),
            ratio(control_memory_area_mm2(CONFIG_D, num_states=num_states,
                                          calibrated=False), 3),
        ])
    headers = ["Kernel", "Controller states needed"]
    depth_headers = ["K", "Kernels covered", "Control bits", "Area mm2"]
    text = (
        format_table(headers, rows,
                     title="Ablation: controller state usage per kernel")
        + "\n\n"
        + format_table(depth_headers, depth_rows,
                       title="Controller depth sweep (config D)")
    )
    emit("ablation_controller", text, headers=headers, rows=rows,
         data={"depth_headers": depth_headers,
               "depth_rows": [list(row) for row in depth_rows]})

    # Every paper kernel fits the paper's K=128 design point.
    assert all(states <= 128 for states in usage.values())
    # And K=128 is not vacuous: at least one kernel needs more than 32.
    assert any(states > 32 for states in usage.values())

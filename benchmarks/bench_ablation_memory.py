"""Ablation: SPU benefit when data is *not* L1-resident.

The paper assumes all code and data in L1 (§5.2.1).  Sweeping the load-to-
use latency shows how memory stalls dilute the SPU's benefit: the permutes
it removes are register-to-register work, so as loads dominate, both
variants converge.
"""

from conftest import emit

from repro.analysis import format_table, ratio
from repro.cpu import PipelineConfig
from repro.kernels import DCTKernel, DotProductKernel, TransposeKernel

KERNELS = (DotProductKernel, TransposeKernel, DCTKernel)
LATENCIES = (1, 2, 4, 8)


def _run():
    results = {}
    for cls in KERNELS:
        kernel = cls()
        for latency in LATENCIES:
            mmx = PipelineConfig(memory_latency=latency)
            spu = PipelineConfig(memory_latency=latency, extra_stage=True)
            results[(kernel.name, latency)] = kernel.compare(
                pipeline_mmx=mmx, pipeline_spu=spu
            )
    return results


def test_memory_latency_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [name, latency, comparison.mmx.cycles, comparison.spu.cycles,
         ratio(comparison.speedup)]
        for (name, latency), comparison in results.items()
    ]
    headers = ["Kernel", "Load latency", "MMX cycles", "SPU cycles", "Speedup"]
    text = format_table(
        headers,
        rows,
        title="Ablation: SPU benefit vs load-to-use latency (L1 assumption)",
    )
    emit("ablation_memory", text, headers=headers, rows=rows)

    for cls in KERNELS:
        name = cls().name
        fast = results[(name, 1)].speedup
        slow = results[(name, LATENCIES[-1])].speedup
        # Memory stalls dilute the SPU's relative benefit.
        assert slow <= fast + 1e-9, name
        # Longer latency always costs the baseline cycles.
        assert (
            results[(name, LATENCIES[-1])].mmx.cycles
            > results[(name, 1)].mmx.cycles
        ), name

"""Ablation: how much permute cost the U/V pairing already hides.

The paper's speedups are 4-20% rather than the raw permute fraction because
dual issue pairs many permutes with computation for free.  Comparing single-
issue and dual-issue machines quantifies that: with pairing disabled, the
SPU's relative benefit grows.
"""

from conftest import emit

from repro.analysis import format_table, ratio
from repro.cpu import PipelineConfig
from repro.kernels import DCTKernel, DotProductKernel, FIR12Kernel, TransposeKernel

KERNELS = (DotProductKernel, TransposeKernel, FIR12Kernel, DCTKernel)


def _run(issue_width):
    rows = {}
    for cls in KERNELS:
        kernel = cls()
        mmx = PipelineConfig(issue_width=issue_width)
        spu = PipelineConfig(issue_width=issue_width, extra_stage=True)
        comparison = kernel.compare(pipeline_mmx=mmx, pipeline_spu=spu)
        rows[kernel.name] = comparison
    return rows


def test_pairing_ablation(benchmark):
    dual = benchmark.pedantic(lambda: _run(2), rounds=1, iterations=1)
    single = _run(1)
    rows = []
    for name in dual:
        rows.append([
            name,
            dual[name].mmx.cycles,
            single[name].mmx.cycles,
            ratio(single[name].mmx.cycles / dual[name].mmx.cycles, 2),
            ratio(dual[name].speedup),
            ratio(single[name].speedup),
        ])
    headers = ["Kernel", "Dual cycles", "Single cycles", "Pairing gain",
               "SPU speedup (dual)", "SPU speedup (single)"]
    text = format_table(
        headers,
        rows,
        title="Ablation: U/V pairing vs SPU benefit",
    )
    emit("ablation_pairing", text, headers=headers, rows=rows)

    for name in dual:
        # Pairing always helps the baseline...
        assert single[name].mmx.cycles > dual[name].mmx.cycles, name
        # ...and the SPU wins in both issue modes.  (Whether pairing shrinks
        # or grows the SPU's *relative* margin is kernel-dependent: permutes
        # that paired for free lose nothing, permutes that serialized on the
        # shift/pack unit gain doubly — the printed table shows both cases.)
        assert single[name].speedup >= 1.0, name
        assert dual[name].speedup >= 1.0, name

"""Ablation: cost of the extra SPU pipeline stage (§5.1.1).

The paper claims that the pipeline stage added for the SPU interconnect is
"unlikely to be detrimental" because media kernels rarely mispredict: "If a
single extra cycle penalty is added for each branch mis-predict, our results
are essentially the same."  We measure the SPU variants with and without the
extra stage modeled.
"""

from conftest import emit

from repro.analysis import format_table, pct, ratio
from repro.cpu import PipelineConfig
from repro.kernels import DCTKernel, DotProductKernel, FIR12Kernel, TransposeKernel

KERNELS = (DotProductKernel, TransposeKernel, FIR12Kernel, DCTKernel)


def _run():
    results = {}
    for cls in KERNELS:
        kernel = cls()
        with_stage, _ = kernel.run_spu(PipelineConfig(extra_stage=True))
        without, _ = kernel.run_spu(PipelineConfig(extra_stage=False))
        results[kernel.name] = (with_stage, without)
    return results


def test_pipe_stage_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, (with_stage, without) in results.items():
        overhead = with_stage.cycles / without.cycles - 1
        rows.append([
            name, without.cycles, with_stage.cycles, pct(overhead),
            with_stage.mispredicts,
        ])
    headers = ["Kernel", "SPU cycles (no stage)", "SPU cycles (+stage)",
               "Overhead", "Mispredicts"]
    text = format_table(
        headers,
        rows,
        title="Ablation: extra pipeline stage for the SPU interconnect",
    )
    emit("ablation_pipe_stage", text, headers=headers, rows=rows)

    for name, (with_stage, without) in results.items():
        overhead = with_stage.cycles / without.cycles - 1
        # The paper's claim: essentially the same (≤2% here).
        assert overhead < 0.02, name
        # Exact accounting: 1 fill cycle + 1 cycle per mispredict.
        assert with_stage.cycles == without.cycles + 1 + with_stage.mispredicts, name

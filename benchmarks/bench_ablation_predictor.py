"""Ablation: branch predictor sensitivity of Table 2.

The paper argues media kernels are counted-loop dominated, so mispredicts
stay negligible under any sensible predictor — which is also why the extra
SPU pipeline stage costs almost nothing (§5.1.1).
"""

from conftest import emit

from repro.analysis import format_table, pct
from repro.cpu import make_predictor
from repro.kernels import DotProductKernel, FFT128Kernel, FIR12Kernel

PREDICTORS = ("always-taken", "static-btfn", "bimodal", "gshare")
KERNELS = (FIR12Kernel, FFT128Kernel, DotProductKernel)


def _run():
    results = {}
    for cls in KERNELS:
        for predictor in PREDICTORS:
            kernel = cls()
            machine = kernel._machine(kernel.mmx_program(), None)
            machine.predictor = make_predictor(predictor)
            stats = machine.run()
            results[(kernel.name, predictor)] = stats
    return results


def test_predictor_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [name, predictor, stats.branches, stats.mispredicts, pct(stats.mispredict_rate)]
        for (name, predictor), stats in results.items()
    ]
    headers = ["Kernel", "Predictor", "Branches", "Missed", "Missed%"]
    text = format_table(
        headers,
        rows,
        title="Ablation: Table 2 under different branch predictors",
    )
    emit("ablation_predictor", text, headers=headers, rows=rows)

    for (name, predictor), stats in results.items():
        # Loop-dominated media code: dynamic predictors miss only exits.
        if predictor in ("bimodal", "gshare", "always-taken"):
            assert stats.mispredict_rate < 0.10, (name, predictor)
        # Cycle counts barely differ across predictors for these kernels.
    for cls in KERNELS:
        kernel_name = cls().name
        cycles = [
            results[(kernel_name, predictor)].cycles for predictor in PREDICTORS
        ]
        assert max(cycles) / min(cycles) < 1.10, kernel_name

"""Ablation: SPU-aware recoding vs automatic off-load of MMX-shaped code.

§5.2.2: "the code that was used for this study was highly optimized given
the MMX architecture, and not necessarily the optimal code for an MMX that
has been augmented with the SPU ... the improvements seen here represent a
lower estimate."  The hand-tuned FIR collapses each horizontal reduction
into a single route-swapped ``paddd`` — and lands on the paper's ~8% FIR
number, while the conservative automatic pass gets ~4%.
"""

from conftest import emit

from repro.analysis import format_table, ratio
from repro.kernels import FIR12Kernel, FIR22Kernel, MatMulKernel


def _run():
    results = {}
    for cls in (FIR12Kernel, FIR22Kernel, MatMulKernel):
        kernel = cls()
        comparison = kernel.compare()
        tuned_stats, _ = kernel.run_spu_tuned()
        results[kernel.name] = (comparison, tuned_stats)
    return results


def test_tuned_vs_offload(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, (comparison, tuned) in results.items():
        rows.append([
            name,
            comparison.mmx.cycles,
            comparison.spu.cycles,
            tuned.cycles,
            ratio(comparison.speedup),
            ratio(comparison.mmx.cycles / tuned.cycles),
        ])
    headers = ["Kernel", "MMX", "SPU (auto off-load)", "SPU (hand-tuned)",
               "auto speedup", "tuned speedup"]
    text = format_table(
        headers,
        rows,
        title="Ablation: SPU-aware recoding (paper's 'lower estimate' remark)",
    )
    emit("ablation_tuned", text, headers=headers, rows=rows)

    for name, (comparison, tuned) in results.items():
        assert tuned.cycles < comparison.spu.cycles, name
    # FIR12 tuned reaches the paper's ~8% figure.
    fir12_comparison, fir12_tuned = results["FIR12"]
    tuned_speedup = fir12_comparison.mmx.cycles / fir12_tuned.cycles
    assert 1.06 < tuned_speedup < 1.12

"""Baseline comparison: SPU vs explicit permute instructions (§6/§7).

"The prevalent solution is to perform data orchestration in software with
additional instructions, which obviously increases the code size and wastes
expensive resources on the processor like the instruction fetch and decode
mechanism" (§7).  Three alternatives on the same simulator: the MMX
pack/unpack repertoire, an Altivec/TigerSHARC-style ``vperm``, and the SPU.
"""

from conftest import emit

from repro.analysis import format_table
from repro.baselines import compare_baselines

NAMES = ("DotProduct", "MatrixTranspose")


def test_vperm_baseline(benchmark):
    results = benchmark.pedantic(
        lambda: [compare_baselines(name) for name in NAMES], rounds=1, iterations=1
    )
    rows = []
    for result in results:
        rows.append([
            result.name,
            f"{result.mmx.cycles} / {result.vperm.cycles} / {result.spu.cycles}",
            f"{result.mmx.instructions} / {result.vperm.instructions} / {result.spu.instructions}",
            f"{result.mmx_bytes} / {result.vperm_bytes} / {result.spu_bytes}",
        ])
    headers = ["Kernel", "cycles (MMX/vperm/SPU)", "dyn. instr (MMX/vperm/SPU)",
               "code bytes (MMX/vperm/SPU)"]
    text = format_table(
        headers,
        rows,
        title="Baseline: explicit permutes vs the SPU (§6 comparison)",
    )
    emit("baseline_vperm", text, headers=headers, rows=rows)

    for result in results:
        # The SPU wins on every axis: fewer cycles, fewer instructions,
        # smaller code (no permutes in the stream at all).
        assert result.spu.cycles < result.vperm.cycles
        assert result.spu.cycles < result.mmx.cycles
        assert result.spu.instructions < result.vperm.instructions
        assert result.spu_bytes < result.vperm_bytes
        # vperm is competitive with MMX on cycles (a dedicated permute unit
        # schedules well, §6)...
        assert result.vperm.cycles <= result.mmx.cycles
    # ...but its 4-byte control immediates inflate code on permute-heavy
    # kernels — §7's instruction-bandwidth criticism.
    transpose = results[1]
    assert transpose.vperm_bytes > transpose.mmx_bytes

"""Ablation: code size — SPU vs sub-word operand addressing (§3).

The paper rejects adding six sub-word address bits per MMX operand because
it "would change the instruction set architecture and increase the code size
significantly"; the SPU keeps the instruction stream smaller by *removing*
permutes instead.  We measure static code size for all three alternatives.
"""

from conftest import emit

from repro.analysis import format_table, pct
from repro.isa import encode_subword_addressing, program_size
from repro.kernels import DCTKernel, DotProductKernel, FIR12Kernel, TransposeKernel

KERNELS = (DotProductKernel, TransposeKernel, FIR12Kernel, DCTKernel)


def _measure():
    rows = []
    for cls in KERNELS:
        kernel = cls()
        mmx_program = kernel.mmx_program()
        spu_program, _ = kernel.spu_programs()
        mmx_size = program_size(mmx_program)
        spu_size = program_size(spu_program)
        subword_size = encode_subword_addressing(mmx_program)
        rows.append([
            kernel.name, mmx_size, spu_size, subword_size,
            pct(spu_size / mmx_size - 1), pct(subword_size / mmx_size - 1),
        ])
    return rows


def test_code_size_comparison(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    headers = ["Kernel", "MMX bytes", "MMX+SPU bytes", "Subword-addr bytes",
               "SPU delta", "Subword delta"]
    text = format_table(
        headers,
        rows,
        title="Ablation: static code size (paper §3's ISA-change argument)",
    )
    emit("code_size", text, headers=headers, rows=rows)

    for row in rows:
        name, mmx_size, spu_size, subword_size = row[0], row[1], row[2], row[3]
        # The SPU variant is never larger; the ISA-change alternative always is.
        assert spu_size <= mmx_size, name
        assert subword_size > mmx_size, name

"""Energy extension: instruction-overhead savings vs SPU routing energy.

§7: software data orchestration "wastes expensive resources on the
processor like the instruction fetch and decode mechanism."  Each deleted
permute stops paying fetch/decode/retire; the SPU charges crossbar
traversal per routed operand and a control-memory read per step.  Ballpark
0.25µm energies — the per-kernel comparison is the result, not the joules.
"""

from conftest import emit

from repro.analysis import format_table, pct, ratio
from repro.hw import kernel_energy
from repro.kernels import (
    DCTKernel,
    DotProductKernel,
    FIR12Kernel,
    IIRKernel,
    MatMulKernel,
    TransposeKernel,
)

KERNELS = (DotProductKernel, TransposeKernel, MatMulKernel, DCTKernel,
           FIR12Kernel, IIRKernel)


def _measure():
    return [kernel_energy(cls()) for cls in KERNELS]


def test_energy_accounting(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for comparison in results:
        rows.append([
            comparison.name,
            ratio(comparison.mmx.total_pj / 1e3, 1),
            ratio(comparison.spu.total_pj / 1e3, 1),
            ratio(comparison.spu.crossbar_pj / 1e3, 2),
            ratio(comparison.spu.controller_pj / 1e3, 2),
            pct(comparison.savings_fraction, 1),
        ])
    headers = ["Kernel", "MMX nJ", "MMX+SPU nJ", "crossbar nJ", "controller nJ",
               "savings"]
    text = format_table(
        headers,
        rows,
        title="Energy extension: fetch/decode savings vs SPU routing energy (§7)",
    )
    emit("energy", text, headers=headers, rows=rows)

    by_name = {r.name: r for r in results}
    # Permute-heavy kernels save the most energy; IIR is ~neutral.
    assert by_name["MatrixTranspose"].savings_fraction > 0.2
    assert by_name["DotProduct"].savings_fraction > 0.1
    assert abs(by_name["IIR"].savings_fraction) < 0.05
    # The SPU's own energy never dominates its savings on these kernels.
    for comparison in results:
        assert comparison.spu.total_pj <= comparison.mmx.total_pj * 1.01, comparison.name

"""Extension workloads: byte-granularity kernels vs interconnect granularity.

SAD (motion estimation) and RGBA→luma conversion widen *bytes* — the
sub-word size Table 1's cheap configuration D cannot address (16-bit
ports).  This bench quantifies the flexibility/cost trade-off §5.1.1
gestures at: "typically, full byte-level flexibility is not needed" holds
for the paper's kernels but not for these.
"""

from conftest import emit

from repro.analysis import format_table, ratio
from repro.core import CONFIG_A, CONFIG_B, CONFIG_D
from repro.hw import spu_cost
from repro.kernels import (
    ColorSpaceKernel,
    IDCTKernel,
    MatVecKernel,
    SADKernel,
    ViterbiKernel,
)

KERNELS = (SADKernel, ColorSpaceKernel, MatVecKernel, IDCTKernel, ViterbiKernel)
CONFIGS = (CONFIG_D, CONFIG_B, CONFIG_A)


def _sweep():
    rows = []
    for cls in KERNELS:
        for config in CONFIGS:
            kernel = cls(config=config)
            comparison = kernel.compare()
            rows.append([
                kernel.name,
                config.name,
                f"{config.port_bits}-bit",
                comparison.removed_permutes,
                ratio(comparison.speedup),
                ratio(spu_cost(config).total_area_mm2, 2),
            ])
    return rows


def test_extension_kernels(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    headers = ["Kernel", "Config", "Granularity", "Permutes removed", "Speedup",
               "SPU mm2"]
    text = format_table(
        headers,
        rows,
        title="Extension kernels: byte-granularity workloads need configs A/B",
    )
    emit("extension_kernels", text, headers=headers, rows=rows)

    by_key = {(row[0], row[1]): row for row in rows}
    # Config D cannot route SAD's byte unpacks at all.
    assert int(by_key[("SAD", "D")][3]) == 0
    assert float(by_key[("SAD", "D")][4]) < 1.01
    # The byte-port configurations unlock the byte-granularity kernels.
    for name in ("SAD", "ColorSpace"):
        assert float(by_key[(name, "A")][4]) > float(by_key[(name, "D")][4])
        assert int(by_key[(name, "A")][3]) > 0
        assert int(by_key[(name, "B")][3]) > 0
    # Half-word workloads (Viterbi, matvec, IDCT) are served by config D.
    for name in ("Viterbi", "MatrixVector", "IDCT"):
        assert float(by_key[(name, "D")][4]) > 1.0, name

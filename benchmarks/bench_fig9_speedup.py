"""Regenerates paper Figure 9: cycles on MMX vs MMX+SPU for all kernels.

The headline result: SPU speedups with the published shape — FIR modest,
IIR/FFT flat (they barely use the MMX), DCT/matmul/transpose largest.  The
benchmark times a full MMX-vs-SPU comparison on the transpose kernel, the
paper's strongest case.
"""

from conftest import emit_experiment

from repro.analysis import fig9_chart
from repro.experiments import fig9, paper_data
from repro.kernels import TransposeKernel


def test_fig9_regeneration(suite, benchmark):
    benchmark.pedantic(lambda: TransposeKernel().compare(), rounds=3, iterations=1)
    experiment = fig9(suite)
    emit_experiment("fig9", experiment,
                    extra_text="\n\n" + fig9_chart(suite.comparisons()))

    speedups = {row[0]: float(row[3]) for row in experiment.rows}
    # The SPU never loses.
    assert all(value >= 0.999 for value in speedups.values())
    # Low-MMX-utilization kernels barely move (§5.2.2).
    for name in paper_data.FIG9_LOW_IMPACT:
        assert speedups[name] < 1.05, name
    # FIR gains modestly (paper: ~8%).
    assert 1.0 < speedups["FIR12"] < 1.15
    # Inter-word-bound kernels win the most (§5.2.3).
    ranked = sorted(speedups, key=speedups.get, reverse=True)
    assert set(ranked[:3]) <= set(paper_data.FIG9_HIGH_IMPACT) | {"FIR12"}
    assert ranked[0] in paper_data.FIG9_HIGH_IMPACT

"""Guard: the event bus costs nothing when nobody is listening.

The pipeline's emission sites are all guarded by a subscriber-list emptiness
test (``if bus.issue: ...``), so an unobserved run should match pre-bus
throughput.  :class:`PreBusMachine` reproduces the pre-bus hot loop exactly
— the current ``run``/``_issue``/``_branch_cost`` with every bus statement
and resilience handler deleted — and this bench asserts the instrumented,
zero-subscriber machine stays within 5% of it.

Measurement shape, each part earned by a failure mode it removes:

* within a process, rounds are *interleaved* across the measured pipelines
  and the per-pipeline **minimum** is compared — scheduling and frequency
  drift only ever inflate a round, so minima isolate code cost;
* every pipeline gets one untimed warm-up run first, so CPython's adaptive
  specialization has settled before the clock starts;
* the whole measurement is repeated in ``PROCESSES`` fresh interpreters and
  the **median** per-process overhead is asserted — a single process can be
  ±5-9% off purely from code-layout luck (how the allocator and JIT-less
  specializer happen to land), and that bias is fixed for the process's
  lifetime, so no amount of in-process repetition averages it away.

A fully-subscribed run is measured too, for the record.
"""

import json
import os
import statistics
import subprocess
import sys
import time

if __name__ == "__main__":  # re-entered as a measurement subprocess
    emit = None
else:
    from conftest import emit

from repro.analysis import format_table, ratio
from repro.cpu import Machine
from repro.cpu.executor import decode, uop_table
from repro.cpu.pairing import can_pair
from repro.cpu.stats import RunStats
from repro.errors import SimulationError
from repro.isa import assemble
from repro.obs import TraceProfiler

#: ~0.4s per run at typical CPython speed: long enough to time stably.
ITERATIONS = 8_000
SOURCE = (
    f"mov r0, {ITERATIONS}\n"
    "top: paddw mm0, mm1\n"
    "psubw mm2, mm3\n"
    "pxor mm4, mm5\n"
    "loop r0, top\n"
    "halt"
)
ROUNDS = 3
PROCESSES = 5


class PreBusMachine(Machine):
    """The pre-telemetry pipeline: identical cycle model, no emission sites."""

    def _issue_uop(self, uop, cycle, reg_ready, stats, pipe="U"):
        instr = uop.instr
        spu = self.spu
        routes = spu.routes_for(instr, self.state) if spu is not None else None
        if routes is not None:
            stats.spu_routed += 1
        outcome = uop.run(self.state, self.memory, routes)
        stats.instructions += 1
        latency = uop.latency
        if uop.reads_memory and latency < self.config.memory_latency:
            latency = self.config.memory_latency
        for key in uop.written_keys:
            reg_ready[key] = cycle + latency
        return outcome

    def _branch_cost(self, instr, pc, outcome, stats, cycle=0):
        stats.branches += 1
        if instr.opcode.sem == "jmp":
            predicted = True
        else:
            predicted = self.predictor.predict(
                pc, outcome.target if outcome.target is not None else pc
            )
            self.predictor.update(pc, outcome.target or pc, outcome.taken)
        penalty = 0
        if predicted != outcome.taken:
            stats.mispredicts += 1
            penalty = self.config.mispredict_penalty + (
                1 if self.config.extra_stage else 0
            )
            stats.mispredict_cycles += penalty
        return penalty

    def run(self, max_cycles=None):
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        stats = RunStats()
        state = self.state
        program = self.program
        instructions = program.instructions
        size = len(instructions)
        uops = uop_table(program)
        uops_get = uops.get
        reg_ready = {}
        reg_ready_get = reg_ready.get
        issue_counts = {}
        issue_counts_get = issue_counts.get
        pair_cache = self._pair_cache
        dual_issue = self.config.issue_width >= 2
        fill = 1 if self.config.extra_stage else 0
        stats.drain_cycles = fill
        cycle = fill
        pc = state.pc

        while not state.halted:
            if cycle > limit:
                stats.cycles = cycle
                raise SimulationError(f"cycle budget exceeded ({limit})")
            if not 0 <= pc < size:
                raise SimulationError(f"fell off program (pc={pc})")
            instr = instructions[pc]
            uop = uops_get(pc)
            if uop is None or uop.instr is not instr:
                uop = decode(instr, program, pc)
                uops[pc] = uop

            ready = 0
            for key in uop.read_keys:
                when = reg_ready_get(key, 0)
                if when > ready:
                    ready = when
            if ready > cycle:
                stats.stall_cycles += ready - cycle
                cycle = ready

            state.pc = pc
            outcome = self._issue_uop(uop, cycle, reg_ready, stats)
            issue_counts[pc] = issue_counts_get(pc, 0) + 1
            mmx_busy = uop.is_mmx

            if state.halted:
                cycle += 1
                stats.solo_cycles += 1
                break

            if outcome is not None:
                cycle += 1 + self._branch_cost(instr, pc, outcome, stats, cycle)
                stats.solo_cycles += 1
                if mmx_busy:
                    stats.mmx_busy_cycles += 1
                pc = outcome.next_pc
                continue

            pc += 1
            paired = False
            if dual_issue and pc < size:
                follower = instructions[pc]
                fuop = uops_get(pc)
                if fuop is None or fuop.instr is not follower:
                    fuop = decode(follower, program, pc)
                    uops[pc] = fuop
                key = (state.pc, pc)
                cached = pair_cache.get(key)
                if cached is None:
                    cached = can_pair(instr, follower)
                    pair_cache[key] = cached
                ok, reason = cached
                if ok:
                    ready = 0
                    for key in fuop.read_keys:
                        when = reg_ready_get(key, 0)
                        if when > ready:
                            ready = when
                    if ready <= cycle:
                        state.pc = pc
                        outcome2 = self._issue_uop(fuop, cycle, reg_ready, stats, "V")
                        issue_counts[pc] = issue_counts_get(pc, 0) + 1
                        paired = True
                        mmx_busy = mmx_busy or fuop.is_mmx
                        extra = 0
                        if outcome2 is not None:
                            if outcome2.is_branch:
                                extra = self._branch_cost(follower, pc, outcome2, stats, cycle)
                            pc = outcome2.next_pc
                        else:
                            pc += 1
                        cycle += 1 + extra
                    else:
                        stats.pair_fail_reasons["operands not ready"] += 1
                        cycle += 1
                else:
                    stats.pair_fail_reasons[reason] += 1
                    cycle += 1
            else:
                cycle += 1

            if paired:
                stats.pair_cycles += 1
            else:
                stats.solo_cycles += 1
            if mmx_busy:
                stats.mmx_busy_cycles += 1

        self._fold_issue_counts(stats, uops, issue_counts)
        stats.cycles = cycle
        stats.finished = state.halted
        return stats


def _cases(program):
    counter = []
    return [
        ("prebus", lambda: PreBusMachine(program), None),
        ("idle", lambda: Machine(program), None),
        # A trace profiler that was attached and then detached must leave the
        # machine indistinguishable from one that never saw it: detach drops
        # the subscriber lists back to empty, so the hot loop's emptiness
        # guards skip every emission site again.
        ("tracer_off", lambda: Machine(program),
         lambda machine: TraceProfiler().attach(machine).detach()),
        ("observed", lambda: Machine(program),
         lambda machine: machine.bus.subscribe("issue", counter.append)),
    ]


def _measure():
    """One process's estimate: warm-up, then best-of-ROUNDS, interleaved."""
    program = assemble(SOURCE)
    cases = _cases(program)
    for _, factory, subscribe in cases:  # settle adaptive specialization
        machine = factory()
        if subscribe is not None:
            subscribe(machine)
        machine.run()
    times = {name: [] for name, _, _ in cases}
    for _ in range(ROUNDS):
        for name, factory, subscribe in cases:
            machine = factory()
            if subscribe is not None:
                subscribe(machine)
            start = time.perf_counter()
            machine.run()
            times[name].append(time.perf_counter() - start)
    return {name: min(rounds) for name, rounds in times.items()}


def _sample_processes():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    samples = []
    for _ in range(PROCESSES):
        out = subprocess.run(
            [sys.executable, os.path.abspath(__file__)],
            check=True, capture_output=True, text=True, env=env,
        )
        samples.append(json.loads(out.stdout))
    return samples


def test_zero_subscriber_overhead(benchmark):
    program = assemble(SOURCE)

    # The replica must be cycle-identical before its timing means anything.
    instrumented_stats = Machine(program).run()
    prebus_stats = PreBusMachine(program).run()
    assert instrumented_stats.as_dict() == prebus_stats.as_dict()

    samples = benchmark.pedantic(_sample_processes, rounds=1, iterations=1)
    prebus_time, idle_time, tracer_off_time, observed_time = (
        statistics.median(s[name] for s in samples)
        for name in ("prebus", "idle", "tracer_off", "observed")
    )
    idle_overhead = statistics.median(
        s["idle"] / s["prebus"] - 1 for s in samples
    )
    tracer_off_overhead = statistics.median(
        s["tracer_off"] / s["prebus"] - 1 for s in samples
    )
    observed_overhead = statistics.median(
        s["observed"] / s["prebus"] - 1 for s in samples
    )
    rows = [
        ["pre-bus baseline", f"{prebus_time * 1e3:.1f}", "-"],
        ["event bus, no subscribers", f"{idle_time * 1e3:.1f}",
         ratio(idle_overhead * 100, 2) + "%"],
        ["trace profiler attached+detached", f"{tracer_off_time * 1e3:.1f}",
         ratio(tracer_off_overhead * 100, 2) + "%"],
        ["event bus, issue subscriber", f"{observed_time * 1e3:.1f}",
         ratio(observed_overhead * 100, 2) + "%"],
    ]
    headers = ["pipeline", "median ms/run", "overhead"]
    text = format_table(
        headers, rows,
        title=(
            f"Observability overhead ({instrumented_stats.instructions} dynamic"
            f" instructions, median of {PROCESSES} processes)"
        ),
    )
    emit("obs_overhead", text, headers=headers, rows=rows,
         data={"prebus_s": prebus_time, "idle_s": idle_time,
               "tracer_off_s": tracer_off_time,
               "observed_s": observed_time, "idle_overhead": idle_overhead,
               "tracer_off_overhead": tracer_off_overhead,
               "observed_overhead": observed_overhead,
               "processes": PROCESSES, "rounds": ROUNDS})

    # The guard: an unobserved instrumented run is within 5% of pre-bus.
    assert idle_overhead < 0.05, (
        f"zero-subscriber bus overhead {idle_overhead:.1%} exceeds the 5% budget"
    )
    # A detached trace profiler gets the same budget: detach must return the
    # bus to the zero-subscriber fast path, not leave residual dispatch work.
    assert tracer_off_overhead < 0.05, (
        f"detached-tracer overhead {tracer_off_overhead:.1%} exceeds the"
        " 5% budget"
    )


if __name__ == "__main__":
    print(json.dumps(_measure()))

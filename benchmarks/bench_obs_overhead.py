"""Guard: the event bus costs nothing when nobody is listening.

The pipeline's emission sites are all guarded by a subscriber-list emptiness
test (``if bus.issue: ...``), so an unobserved run should match pre-bus
throughput.  :class:`PreBusMachine` reproduces the pre-bus hot loop exactly
— the current ``run``/``_issue``/``_branch_cost`` with every bus statement
deleted — and this bench asserts the instrumented, zero-subscriber machine
stays within 5% of it (median of several runs; the two loops differ only in
the guard tests).  A fully-subscribed run is measured too, for the record.
"""

import statistics
import time

from conftest import emit

from repro.analysis import format_table, ratio
from repro.cpu import Machine
from repro.cpu.executor import execute
from repro.cpu.pairing import can_pair
from repro.cpu.stats import RunStats
from repro.errors import SimulationError
from repro.isa import assemble
from repro.isa.registers import Register

#: ~0.4s per run at typical CPython speed: long enough to time stably.
ITERATIONS = 8_000
SOURCE = (
    f"mov r0, {ITERATIONS}\n"
    "top: paddw mm0, mm1\n"
    "psubw mm2, mm3\n"
    "pxor mm4, mm5\n"
    "loop r0, top\n"
    "halt"
)
ROUNDS = 5


class PreBusMachine(Machine):
    """The pre-telemetry pipeline: identical cycle model, no emission sites."""

    def _issue(self, instr, cycle, reg_ready, stats, pipe="U"):
        routes = self._spu_routes(instr)
        if routes is not None:
            stats.spu_routed += 1
        outcome = execute(instr, self.state, self.memory, self.program, routes)
        stats.record_issue(instr)
        latency = instr.opcode.latency
        if instr.reads_memory:
            latency = max(latency, self.config.memory_latency)
        for reg in instr.regs_written():
            if isinstance(reg, Register):
                reg_ready[reg] = cycle + latency
        return outcome

    def _branch_cost(self, instr, pc, outcome, stats, cycle=0):
        stats.branches += 1
        if instr.opcode.sem == "jmp":
            predicted = True
        else:
            predicted = self.predictor.predict(
                pc, outcome.target if outcome.target is not None else pc
            )
            self.predictor.update(pc, outcome.target or pc, outcome.taken)
        penalty = 0
        if predicted != outcome.taken:
            stats.mispredicts += 1
            penalty = self.config.mispredict_penalty + (
                1 if self.config.extra_stage else 0
            )
            stats.mispredict_cycles += penalty
        return penalty

    def run(self, max_cycles=None):
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        stats = RunStats()
        state = self.state
        program = self.program
        reg_ready = {}
        fill = 1 if self.config.extra_stage else 0
        stats.drain_cycles = fill
        cycle = fill
        pc = state.pc

        while not state.halted:
            if cycle > limit:
                stats.cycles = cycle
                raise SimulationError(f"cycle budget exceeded ({limit})")
            if not 0 <= pc < len(program):
                raise SimulationError(f"fell off program (pc={pc})")
            instr = program[pc]

            ready = self._ready_cycle(instr, reg_ready)
            if ready > cycle:
                stats.stall_cycles += ready - cycle
                cycle = ready

            state.pc = pc
            outcome = self._issue(instr, cycle, reg_ready, stats)
            mmx_busy = instr.is_mmx

            if state.halted:
                cycle += 1
                stats.solo_cycles += 1
                break

            if outcome.is_branch:
                cycle += 1 + self._branch_cost(instr, pc, outcome, stats, cycle)
                stats.solo_cycles += 1
                if mmx_busy:
                    stats.mmx_busy_cycles += 1
                pc = outcome.next_pc
                continue

            pc = outcome.next_pc
            paired = False
            if self.config.issue_width >= 2 and 0 <= pc < len(program):
                follower = program[pc]
                key = (state.pc, pc)
                cached = self._pair_cache.get(key)
                if cached is None:
                    cached = can_pair(instr, follower)
                    self._pair_cache[key] = cached
                ok, reason = cached
                if ok:
                    if self._ready_cycle(follower, reg_ready) <= cycle:
                        state.pc = pc
                        outcome2 = self._issue(follower, cycle, reg_ready, stats, "V")
                        paired = True
                        mmx_busy = mmx_busy or follower.is_mmx
                        extra = 0
                        if outcome2.is_branch:
                            extra = self._branch_cost(follower, pc, outcome2, stats, cycle)
                        pc = outcome2.next_pc
                        cycle += 1 + extra
                    else:
                        stats.pair_fail_reasons["operands not ready"] += 1
                        cycle += 1
                else:
                    stats.pair_fail_reasons[reason] += 1
                    cycle += 1
            else:
                cycle += 1

            if paired:
                stats.pair_cycles += 1
            else:
                stats.solo_cycles += 1
            if mmx_busy:
                stats.mmx_busy_cycles += 1

        stats.cycles = cycle
        stats.finished = state.halted
        return stats


def _timed(factory, subscribe=None):
    times = []
    for _ in range(ROUNDS):
        machine = factory()
        if subscribe is not None:
            subscribe(machine)
        start = time.perf_counter()
        stats = machine.run()
        times.append(time.perf_counter() - start)
    return statistics.median(times), stats


def test_zero_subscriber_overhead(benchmark):
    program = assemble(SOURCE)

    # The replica must be cycle-identical before its timing means anything.
    instrumented_stats = Machine(program).run()
    prebus_stats = PreBusMachine(program).run()
    assert instrumented_stats.as_dict() == prebus_stats.as_dict()

    prebus_time, _ = _timed(lambda: PreBusMachine(program))
    idle_time, idle_stats = benchmark.pedantic(
        lambda: _timed(lambda: Machine(program)), rounds=1, iterations=1
    )
    counter = []
    observed_time, _ = _timed(
        lambda: Machine(program),
        subscribe=lambda machine: machine.bus.subscribe("issue", counter.append),
    )

    idle_overhead = idle_time / prebus_time - 1
    observed_overhead = observed_time / prebus_time - 1
    rows = [
        ["pre-bus baseline", f"{prebus_time * 1e3:.1f}", "-"],
        ["event bus, no subscribers", f"{idle_time * 1e3:.1f}",
         ratio(idle_overhead * 100, 2) + "%"],
        ["event bus, issue subscriber", f"{observed_time * 1e3:.1f}",
         ratio(observed_overhead * 100, 2) + "%"],
    ]
    headers = ["pipeline", "median ms/run", "overhead"]
    text = format_table(
        headers, rows,
        title=f"Observability overhead ({idle_stats.instructions} dynamic instructions)",
    )
    emit("obs_overhead", text, headers=headers, rows=rows,
         data={"prebus_s": prebus_time, "idle_s": idle_time,
               "observed_s": observed_time, "idle_overhead": idle_overhead,
               "observed_overhead": observed_overhead})

    # The guard: an unobserved instrumented run is within 5% of pre-bus.
    assert idle_overhead < 0.05, (
        f"zero-subscriber bus overhead {idle_overhead:.1%} exceeds the 5% budget"
    )

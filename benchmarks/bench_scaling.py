"""§6 scaling study: the SPU on large register files.

"We believe that the SPU design can be scaled to large register sets and
provide significant performance and efficiency advantages" — priced here for
an MMX-class file (8×64) and an Altivec-class file (32×128) across the three
design options §6 names: restricted windows, pipelined interconnect and a
multi-stage network.
"""

from conftest import emit

from repro.analysis import format_table, ratio
from repro.hw import design_options

FILES = (("MMX-class", 8, 64), ("Altivec-class", 32, 128))


def _sweep():
    rows = []
    for label, registers, bits in FILES:
        for design in design_options(registers, bits):
            rows.append([
                label,
                design.name,
                ratio(design.area_mm2, 2),
                ratio(design.delay_ns, 2),
                design.pipeline_stages(2.0),
                design.control_bits_per_state(),
                "full" if design.full_reach else f"{design.window_regs} regs",
            ])
    return rows


def test_scaling_study(benchmark):
    rows = benchmark(_sweep)
    headers = ["Register file", "Design", "Area mm2", "Delay ns", "Stages@2ns",
               "Ctl bits/state", "Reach"]
    text = format_table(
        headers,
        rows,
        title="§6 scaling study: interconnect options for large register files",
    )
    emit("scaling", text, headers=headers, rows=rows)

    altivec = [row for row in rows if row[0] == "Altivec-class"]
    full = next(row for row in altivec if row[1].startswith("crossbar"))
    benes = next(row for row in altivec if row[1].startswith("benes"))
    windowed = [row for row in altivec if row[1].startswith("window")]
    # The full crossbar is impractical at Altivec scale...
    assert float(full[2]) > 100
    # ...the multi-stage network restores full reach at ~half the area...
    assert float(benes[2]) < float(full[2])
    # ...and windows are the cheapest option (the paper's configs B/D).
    assert all(float(row[2]) < float(benes[2]) for row in windowed)

"""Service throughput: multi-worker dispatch vs the single-worker baseline.

The tentpole claims ``repro serve --workers 2 --jobs 2`` raises *job
throughput* — the orchestration layer's concurrency — not simulation
speed.  On the 1-CPU containers this repo targets, a CPU-bound campaign
cannot physically run faster by adding workers, so the measurement is
split to keep the gate honest:

* **dispatch workload** (the asserted gate): a fleet of latency-bound
  probe jobs.  Probes sleep, so they overlap even on one CPU — the
  measured speedup isolates what the PR actually built: concurrent
  dispatch, supervision and completion of multiple jobs.  Two workers
  must clear ``MIN_DISPATCH_SPEEDUP`` over one.
* **campaign workload** (measured and recorded, never asserted): real
  fault-campaign jobs.  Their ratio is whatever the host's CPUs allow and
  is reported alongside ``cpu_count`` so a reader can interpret it.

Either way the reports must be *identical*: every check report produced
under every topology is byte-for-byte the same document — concurrency buys
throughput, never different bytes.
"""

import os
import pathlib
import subprocess
import sys
import time

from conftest import emit

from repro.analysis import format_table
from repro.serve import ServeClient, read_endpoint

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Latency-bound fleet for the asserted dispatch gate.
PROBE_JOBS = 8
PROBE_S = 0.5

#: CPU-bound fleet for the recorded campaign measurement; matches the
#: committed CLI baseline parameters so the byte-identity cross-checks.
CHECK_JOBS = 2
CHECK_PARAMS = {
    "kernels": ["DotProduct", "MatrixTranspose"],
    "faults": 12,
    "seed": 7,
    "fast": True,
}

#: The acceptance gate: two workers must at least this much outpace one on
#: the dispatch workload.
MIN_DISPATCH_SPEEDUP = 1.8

#: (workers, jobs) topologies under measurement.
BASELINE = (1, 1)
SCALED = (2, 2)


def _serve_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_fleet(tmp_path, topology, verb, params, count):
    """Time *count* jobs from submit-burst to last completion; return
    ``(elapsed_s, report_bytes_by_job)``."""
    workers, jobs = topology
    journal_dir = tmp_path / f"{verb}-w{workers}-j{jobs}"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--journal-dir", str(journal_dir),
         "--workers", str(workers), "--jobs", str(jobs)],
        env=_serve_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        host, port = read_endpoint(journal_dir, timeout_s=30)
        client = ServeClient(host, port)
        started = time.perf_counter()
        submitted = [
            client.submit(verb, params) for _ in range(count)
        ]
        for job in submitted:
            assert client.wait(job, timeout_s=600) == "done"
        elapsed = time.perf_counter() - started
        reports = {job: client.report_bytes(job) for job in submitted}
        client.drain()
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    return elapsed, reports


def test_serve_throughput(tmp_path):
    probe_params = {"duration_s": PROBE_S}
    dispatch_base_s, _ = _run_fleet(
        tmp_path, BASELINE, "probe", probe_params, PROBE_JOBS
    )
    dispatch_scaled_s, _ = _run_fleet(
        tmp_path, SCALED, "probe", probe_params, PROBE_JOBS
    )
    dispatch_speedup = dispatch_base_s / dispatch_scaled_s

    campaign_base_s, base_reports = _run_fleet(
        tmp_path, BASELINE, "check", CHECK_PARAMS, CHECK_JOBS
    )
    campaign_scaled_s, scaled_reports = _run_fleet(
        tmp_path, SCALED, "check", CHECK_PARAMS, CHECK_JOBS
    )
    campaign_speedup = campaign_base_s / campaign_scaled_s

    # Concurrency buys throughput, never different bytes: every campaign
    # report from every topology is the same document.
    distinct = set(base_reports.values()) | set(scaled_reports.values())
    assert len(distinct) == 1, "check reports diverged across topologies"

    headers = ["workload", "w1 j1 (s)", "w2 j2 (s)", "speedup", "gate"]
    rows = [
        [
            f"dispatch ({PROBE_JOBS} x {PROBE_S:.1f}s probe)",
            f"{dispatch_base_s:.2f}", f"{dispatch_scaled_s:.2f}",
            f"{dispatch_speedup:.2f}x", f">= {MIN_DISPATCH_SPEEDUP:.1f}x",
        ],
        [
            f"campaign ({CHECK_JOBS} x check, {CHECK_PARAMS['faults']} faults)",
            f"{campaign_base_s:.2f}", f"{campaign_scaled_s:.2f}",
            f"{campaign_speedup:.2f}x", "recorded",
        ],
    ]
    text = (
        format_table(
            headers, rows,
            title="repro serve job throughput, workers=2/jobs=2 vs baseline",
        )
        + f"\ndispatch speedup {dispatch_speedup:.2f}x "
        f"(gate >= {MIN_DISPATCH_SPEEDUP:.1f}x); campaign speedup "
        f"{campaign_speedup:.2f}x on {os.cpu_count()} CPU(s), recorded only "
        "(CPU-bound work cannot overlap on fewer CPUs than workers); "
        "all campaign reports byte-identical"
    )
    emit("serve", text, headers=headers, rows=rows, data={
        "baseline": {"workers": BASELINE[0], "jobs": BASELINE[1]},
        "scaled": {"workers": SCALED[0], "jobs": SCALED[1]},
        "dispatch": {
            "probe_jobs": PROBE_JOBS,
            "probe_duration_s": PROBE_S,
            "baseline_s": round(dispatch_base_s, 3),
            "scaled_s": round(dispatch_scaled_s, 3),
            "speedup": round(dispatch_speedup, 2),
            "min_speedup": MIN_DISPATCH_SPEEDUP,
        },
        "campaign": {
            "check_jobs": CHECK_JOBS,
            "params": CHECK_PARAMS,
            "baseline_s": round(campaign_base_s, 3),
            "scaled_s": round(campaign_scaled_s, 3),
            "speedup": round(campaign_speedup, 2),
            "cpu_count": os.cpu_count(),
            "asserted": False,
        },
        "reports_identical": True,
    })

    assert dispatch_speedup >= MIN_DISPATCH_SPEEDUP, (
        f"dispatch throughput speedup {dispatch_speedup:.2f}x fell below "
        f"the {MIN_DISPATCH_SPEEDUP:.1f}x gate"
    )

"""Tracked sim-speed benchmark: how fast the simulator simulates.

Reports simulated cycles/sec and instructions/sec (median of
:data:`ROUNDS` rounds, methodology in :mod:`repro.perf`) for the hot
kernels, under two comparisons:

* **SWAR vs reference** — the integer data path against the NumPy oracle
  backend, both on the current decoded micro-op engine.  Reproducible on
  any machine from the tree alone, so this ratio is the **regression
  gate**: each kernel must stay within 2x of its committed speedup (and
  above the absolute :data:`MIN_SPEEDUP` floor).
* **vs pre-PR** — against :data:`PRE_PR_CYCLES_PER_S`, the throughput of
  the pre-rewrite engine (NumPy lane kernels, no micro-op cache, commit
  ``5284192``), recorded once with this same median-of-5 methodology on
  the same machine as the committed results.  This captures the full
  rewrite (micro-op cache *and* SWAR); the in-tree reference backend
  understates it because the oracle also rides the new engine.  The
  ratio is only meaningful where the live numbers come from comparable
  hardware, so it is reported, not asserted.
"""

import json

from conftest import RESULTS_DIR, emit

from repro.analysis import format_table
from repro.perf import (
    DEFAULT_ROUNDS,
    geomean_speedup,
    measure_simspeed,
    simspeed_report,
    simspeed_table,
)

ROUNDS = DEFAULT_ROUNDS

#: Pre-rewrite engine throughput (simulated cycles/sec, median of 5) at the
#: benchmark sizes, measured from a worktree of commit ``5284192`` on the
#: machine that produced the committed BENCH_simspeed.json.
PRE_PR_COMMIT = "5284192"
PRE_PR_CYCLES_PER_S = {
    "DotProduct": 53_689.5,
    "FIR12": 94_581.8,
    "SAD": 55_241.1,
}

#: Absolute floor on the in-tree SWAR-vs-reference speedup: whatever the
#: committed baseline says, SWAR must still clearly beat the NumPy oracle.
MIN_SPEEDUP = 1.2


def _committed_speedups() -> dict[str, float]:
    """Per-kernel SWAR-vs-reference speedups from the committed results."""
    path = RESULTS_DIR / "BENCH_simspeed.json"
    if not path.exists():
        return {}
    document = json.loads(path.read_text())
    return {
        entry["kernel"]: entry["speedup"]
        for entry in document.get("data", {}).get("kernels", ())
    }


def test_simspeed(benchmark):
    committed = _committed_speedups()  # read before emit() overwrites it
    results = benchmark.pedantic(
        lambda: measure_simspeed(rounds=ROUNDS), rounds=1, iterations=1
    )

    report = simspeed_report(results, ROUNDS)
    for speed, entry in zip(results, report["kernels"]):
        recorded = PRE_PR_CYCLES_PER_S[speed.name]
        entry["pre_pr_cycles_per_s"] = recorded
        entry["speedup_vs_pre_pr"] = round(
            speed.swar_cycles_per_s / recorded, 2
        )
    report["pre_pr"] = {
        "commit": PRE_PR_COMMIT,
        "min_speedup_vs_pre_pr": min(
            entry["speedup_vs_pre_pr"] for entry in report["kernels"]
        ),
    }

    headers, rows = simspeed_table(results)
    headers.append("vs pre-PR")
    for row, entry in zip(rows, report["kernels"]):
        row.append(f"{entry['speedup_vs_pre_pr']:.2f}x")
    table = format_table(
        headers, rows,
        title=(
            f"Simulation throughput, SWAR vs NumPy reference "
            f"(median of {ROUNDS} rounds)"
        ),
    )
    text = (
        f"{table}\n"
        f"min in-tree speedup {report['min_speedup']:.2f}x "
        f"(geomean {geomean_speedup(results):.2f}x); "
        f"min vs pre-PR engine "
        f"{report['pre_pr']['min_speedup_vs_pre_pr']:.2f}x"
    )
    emit("simspeed", text, headers=headers, rows=rows, data=report)

    # The gate: each kernel keeps at least half its committed SWAR-vs-
    # reference speedup, and always beats the oracle by MIN_SPEEDUP.
    for speed in results:
        floor = max(MIN_SPEEDUP, committed.get(speed.name, 0.0) / 2)
        assert speed.speedup >= floor, (
            f"{speed.label}: SWAR-vs-reference speedup {speed.speedup:.2f}x "
            f"fell below the regression floor {floor:.2f}x "
            f"(committed {committed.get(speed.name, 'n/a')}x)"
        )

"""§4 start-up cost: MMIO programming overhead vs steady-state benefit.

"The startup cost of programming the SPU needs to also be considered
carefully ... for media applications where the workloads are well defined
at compilation time, the startup cost should be easily scheduled."  We
measure the actual upload sequence (state-word stores, counters, entry) on
the simulator and compute the break-even invocation count per kernel.
"""

from conftest import emit

from repro.analysis import format_table, measure_startup_cost, ratio
from repro.kernels import (
    DCTKernel,
    DotProductKernel,
    FIR12Kernel,
    MatMulKernel,
    TransposeKernel,
)

KERNELS = (DotProductKernel, TransposeKernel, MatMulKernel, DCTKernel, FIR12Kernel)


def _measure():
    return [measure_startup_cost(cls()) for cls in KERNELS]


def test_startup_cost(benchmark):
    costs = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        [cost.name, cost.state_words, cost.upload_instructions,
         cost.upload_cycles, cost.cycles_saved_per_invocation,
         ratio(cost.break_even_invocations, 2)]
        for cost in costs
    ]
    headers = ["Kernel", "State words", "Upload instr", "Upload cycles",
               "Saved/invocation", "Break-even invocations"]
    text = format_table(
        headers,
        rows,
        title="§4 start-up cost: programming the SPU vs per-invocation savings",
    )
    emit("startup_cost", text, headers=headers, rows=rows)

    for cost in costs:
        # The paper's claim: trivially amortized for well-defined workloads.
        assert cost.break_even_invocations < 3, cost.name
        # And the controller capacity bound holds per context (K=128).
        assert cost.state_words <= 128 * 4

"""Regenerates paper Table 1: SPU configuration area/delay (+§5.1.1 claim).

The analytic models (bit-crosspoint area, power-law delay, 128*(15+K)
control memory) are compared against the four published Princeton-derived
points, and the 0.18µm die-fraction claim (<1% for configuration D) is
rechecked.
"""

from conftest import emit, emit_experiment

from repro.core import CONFIG_D
from repro.experiments import table1
from repro.hw import spu_cost


def test_table1_regeneration(benchmark):
    experiment = benchmark(table1)
    emit_experiment("table1", experiment)
    # Published area reproduced by the analytic model.
    for row in experiment.rows:
        assert abs(float(row[1]) - float(row[2])) / float(row[2]) < 0.01


def test_die_area_claim(benchmark):
    cost = benchmark(lambda: spu_cost(CONFIG_D))
    emit(
        "table1_die_claim",
        f"Config D: {cost.total_area_mm2:.2f} mm2 @0.25um 2LM -> "
        f"{cost.scaled_area_mm2:.3f} mm2 @0.18um 6LM = "
        f"{cost.die_fraction:.2%} of the 106 mm2 Pentium III die "
        "(paper claim: <1%)",
        data={"total_area_mm2": cost.total_area_mm2,
              "scaled_area_mm2": cost.scaled_area_mm2,
              "die_fraction": cost.die_fraction},
    )
    assert cost.die_fraction < 0.01

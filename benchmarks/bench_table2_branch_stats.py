"""Regenerates paper Table 2: branch statistics for the media algorithms.

Each kernel's MMX-only run provides per-invocation branch counts; scaling
to the published clock totals (the IPP harness ran each routine for ~1e10
cycles) gives the side-by-side comparison.  The benchmark itself times the
simulator on the FIR12 workload — the harness's bread-and-butter run.
"""

from conftest import emit_experiment

from repro.experiments import table2
from repro.kernels import FIR12Kernel


def test_table2_regeneration(suite, benchmark):
    kernel = FIR12Kernel()
    benchmark.pedantic(lambda: kernel.run_mmx(), rounds=3, iterations=1)
    experiment = table2(suite)
    emit_experiment("table2", experiment)
    # Media kernels mispredict only at loop exits; with the published run
    # lengths the rates stay tiny (the paper's <0.16% observation).
    for row in experiment.rows:
        measured_rate = float(row[7].rstrip("%"))
        assert measured_rate < 20.0, row[0]

"""Regenerates paper Table 3: cycles overlapped through decoupled control.

For every kernel: the cycles the decoupled controller absorbed, the
permutation share of MMX / total instructions, and the fraction of permutes
the off-load pass actually moved onto the SPU (the paper's 11-93% range).
The benchmark times the off-load compiler pass itself.
"""

from conftest import emit_experiment

from repro.core import CONFIG_D, offload_loop
from repro.experiments import paper_data, table3
from repro.kernels import DotProductKernel


def test_table3_regeneration(suite, benchmark):
    kernel = DotProductKernel()
    program = kernel.mmx_program()
    benchmark.pedantic(
        lambda: offload_loop(program, "loop", kernel.blocks, CONFIG_D),
        rounds=5,
        iterations=1,
    )
    experiment = table3(suite)
    emit_experiment("table3", experiment)

    shares = {row[0]: float(row[3].rstrip("%")) / 100 for row in experiment.rows}
    totals = {row[0]: float(row[5].rstrip("%")) / 100 for row in experiment.rows}
    # Qualitative Table 3 shape: FIR has the smallest permute share of its
    # MMX work among the compute-bound kernels; the matrix kernels dominate
    # the total-instruction share.
    assert shares["FIR22"] <= shares["FIR12"] < shares["MatrixTranspose"]
    assert totals["MatrixTranspose"] > totals["FIR22"]
    assert totals["DCT"] > totals["FFT1024"]
    # IIR/FFT contribute little to total instructions (low MMX utilization).
    assert totals["IIR"] < 0.05 and totals["FFT1024"] < 0.05

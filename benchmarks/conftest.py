"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper table/figure: the rendered comparison is
printed and also written to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.  The full (paper-faithful) workload sizes are
used; the experiment suite is built once per session.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentSuite

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    """Full-size experiment suite (FFT1024 at its real length)."""
    return ExperimentSuite(fast=False)

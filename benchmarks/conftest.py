"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper table/figure.  :func:`emit` persists each
result twice: the rendered text under ``benchmarks/results/<name>.txt`` (for
humans and git diffs) and a schema-versioned, machine-readable document under
``benchmarks/results/BENCH_<name>.json`` (``kind: "benchmark"``, see
``docs/observability.md``).  Pass ``headers``/``rows`` — or an ``Experiment``
via :func:`emit_experiment` — so downstream tooling gets structured values
rather than re-parsing tables.  The full (paper-faithful) workload sizes are
used; the experiment suite is built once per session.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentSuite
from repro.obs.export import envelope, write_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(
    name: str,
    text: str,
    headers: list | None = None,
    rows: list | None = None,
    data: dict | None = None,
) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    body: dict = {"name": name, "text": text}
    if headers is not None:
        body["headers"] = list(headers)
    if rows is not None:
        body["rows"] = [list(row) for row in rows]
    if data:
        body.update(data)
    write_json(RESULTS_DIR / f"BENCH_{name}.json", envelope("benchmark", body))
    print("\n" + text)


def emit_experiment(name: str, experiment, extra_text: str = "",
                    data: dict | None = None) -> None:
    """:func:`emit` an ``Experiment`` with its headers/rows carried along."""
    emit(
        name,
        experiment.text + extra_text,
        headers=experiment.headers,
        rows=experiment.rows,
        data=data,
    )


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    """Full-size experiment suite (FFT1024 at its real length)."""
    return ExperimentSuite(fast=False)

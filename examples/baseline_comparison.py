#!/usr/bin/env python3
"""Scenario: three ways to orchestrate sub-words (paper §6/§7).

Runs the same two workloads under the three alternatives the paper
discusses — MMX's fixed pack/unpack repertoire, an Altivec/TigerSHARC-style
explicit ``vperm`` instruction, and the SPU — and prints the §7 scorecard:
cycles, dynamic instructions, and static code size.

Run:  python examples/baseline_comparison.py
"""

from repro.analysis import format_table
from repro.baselines import compare_baselines


def main() -> None:
    print("Three solutions to the sub-word data-alignment problem (§6/§7):")
    print("  MMX   — explicit pack/unpack chains (the baseline ISA)")
    print("  vperm — one powerful explicit permute per shuffle (Altivec-style)")
    print("  SPU   — no instructions at all; the decoupled controller routes\n")

    rows = []
    for name in ("DotProduct", "MatrixTranspose"):
        result = compare_baselines(name)
        rows.append([name, "MMX", result.mmx.cycles,
                     result.mmx.instructions, result.mmx_bytes])
        rows.append(["", "vperm", result.vperm.cycles,
                     result.vperm.instructions, result.vperm_bytes])
        rows.append(["", "SPU", result.spu.cycles,
                     result.spu.instructions, result.spu_bytes])
    print(format_table(
        ["kernel", "approach", "cycles", "dyn. instructions", "code bytes"],
        rows,
    ))
    print(
        "\n§7's argument, measured: the explicit-permute route is cycle-"
        "competitive with MMX\nbut 'increases the code size and wastes "
        "expensive resources ... like the\ninstruction fetch and decode "
        "mechanism' — while the SPU deletes the permutes\nfrom the stream "
        "entirely."
    )


if __name__ == "__main__":
    main()

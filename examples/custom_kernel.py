#!/usr/bin/env python3
"""Scenario: bringing your own kernel to the SPU framework.

Implements an alpha-blend (``out = (a*α + b*(256-α)) >> 8``) as a new
:class:`repro.kernels.Kernel` subclass: write the MMX loop with the program
builder, declare the loop, provide a NumPy fixed-point mirror — and the
framework gives you bit-exact verification, the automatic SPU off-load, the
cycle comparison and the microcode dump for free.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.core import render_program
from repro.isa import Program, ProgramBuilder
from repro.kernels import Kernel, LoopSpec
from repro.kernels.base import COEFF_BASE, INPUT_BASE, OUTPUT_BASE

A_BASE = INPUT_BASE
B_BASE = INPUT_BASE + 0x400


class AlphaBlendKernel(Kernel):
    """Blend two 16-bit sample streams with a constant alpha (Q8)."""

    name = "AlphaBlend"
    description = "out = (a*alpha + b*(256-alpha)) >> 8, four samples/iteration"

    def __init__(self, samples: int = 64, alpha: int = 96, seed: int = 11, **kwargs):
        super().__init__(**kwargs)
        assert samples % 4 == 0 and 0 <= alpha <= 256
        self.samples = samples
        self.alpha = alpha
        rng = np.random.default_rng(seed)
        self.a = rng.integers(-8000, 8000, size=samples, dtype=np.int16)
        self.b = rng.integers(-8000, 8000, size=samples, dtype=np.int16)

    def build_mmx(self) -> Program:
        b = ProgramBuilder("alphablend-mmx")
        self.preamble(b)
        b.mov("r0", self.samples // 4)
        b.mov("r1", A_BASE)
        b.mov("r2", B_BASE)
        b.mov("r3", OUTPUT_BASE)
        self.go_store(b)
        b.label("loop")
        # Interleave (a_i, b_i) pairs so one pmaddwd per pair computes
        # a*alpha + b*(256-alpha) — the intra-word realignment the SPU eats.
        b.movq("mm0", "[r1]")  # a0 a1 a2 a3
        b.movq("mm1", "[r2]")  # b0 b1 b2 b3
        b.movq("mm2", "mm0")
        b.punpcklwd("mm0", "mm1")  # a0 b0 a1 b1
        b.punpckhwd("mm2", "mm1")  # a2 b2 a3 b3
        b.pmaddwd("mm0", "[r4]")  # (a0*w + b0*w', a1*w + b1*w')  [r4 = weights]
        b.pmaddwd("mm2", "[r4]")
        b.psrad("mm0", 8)
        b.psrad("mm2", 8)
        b.packssdw("mm0", "mm2")  # four blended samples
        b.movq("[r3]", "mm0")
        b.add("r1", 8)
        b.add("r2", 8)
        b.add("r3", 8)
        b.loop("r0", "loop")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        return [LoopSpec(label="loop", iterations=self.samples // 4)]

    def prepare(self, machine) -> None:
        machine.memory.write_array(A_BASE, self.a, np.int16)
        machine.memory.write_array(B_BASE, self.b, np.int16)
        weights = np.array([self.alpha, 256 - self.alpha], dtype=np.int16)
        machine.memory.write_array(COEFF_BASE, np.tile(weights, 2), np.int16)
        from repro.isa import R
        machine.state.write(R[4], COEFF_BASE)

    def extract(self, machine) -> np.ndarray:
        return machine.memory.read_array(OUTPUT_BASE, self.samples, np.int16)

    def reference(self) -> np.ndarray:
        blended = (
            self.a.astype(np.int64) * self.alpha
            + self.b.astype(np.int64) * (256 - self.alpha)
        ) >> 8
        return np.clip(blended, -32768, 32767).astype(np.int16)


def main() -> None:
    kernel = AlphaBlendKernel()
    kernel.verify()
    print("AlphaBlend: MMX and MMX+SPU match the NumPy mirror bit-exactly.")

    comparison = kernel.compare()
    print(f"cycles: MMX {comparison.mmx.cycles} -> SPU {comparison.spu.cycles} "
          f"(speedup {comparison.speedup:.3f}x, "
          f"{comparison.removed_permutes} permutes off-loaded automatically)")

    _, controller_programs = kernel.spu_programs()
    print("\nGenerated controller microcode:")
    print(render_program(controller_programs[0][1]))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: low-pass filtering an audio-like signal on the simulated MMX.

A 12-tap windowed-sinc low-pass FIR runs over a noisy sine, exactly the kind
of signal-processing workload the paper's intro motivates.  The kernel uses
the IPP coding strategy (sub-word-offset coefficient banks) and the SPU
off-loads the remaining horizontal-sum permutes — the paper's "small eight
percent" FIR case.

Run:  python examples/fir_filter.py
"""

import math

import numpy as np

from repro.analysis import format_table
from repro.kernels import FIRKernel


def design_lowpass(taps: int, cutoff: float) -> np.ndarray:
    """Windowed-sinc low-pass, Q12-scaled to int16."""
    mid = (taps - 1) / 2
    coeffs = []
    for i in range(taps):
        x = i - mid
        ideal = 2 * cutoff * (1.0 if x == 0 else math.sin(2 * math.pi * cutoff * x) / (2 * math.pi * cutoff * x))
        window = 0.54 - 0.46 * math.cos(2 * math.pi * i / (taps - 1))  # Hamming
        coeffs.append(ideal * window)
    scaled = np.array(coeffs) * (1 << 12)
    return np.round(scaled).astype(np.int16)


def main() -> None:
    samples = 152
    time_axis = np.arange(samples)
    rng = np.random.default_rng(7)
    clean = 8000 * np.sin(2 * np.pi * time_axis / 32)  # slow sine
    noise = rng.normal(0, 3000, samples)  # wideband noise
    signal = np.clip(clean + noise, -32768, 32767).astype(np.int16)

    kernel = FIRKernel(taps=12, samples=samples)
    kernel.x = signal
    kernel.coeffs = design_lowpass(12, cutoff=0.06)

    kernel.verify()
    comparison = kernel.compare()

    # Noise attenuation: compare against the same filter applied to the
    # clean signal, so only the noise path differs.
    _, output = kernel.run_mmx()
    region = slice(24, samples)
    taps_f = kernel.coeffs.astype(float) / (1 << 12)
    clean_q = np.clip(clean, -32768, 32767)
    clean_filtered = np.convolve(clean_q, taps_f)[:samples]
    residual_in = signal[region].astype(float) - clean[region]
    residual_out = output[region].astype(float) - clean_filtered[region]
    print("Low-pass FIR on noisy sine (12 taps, Hamming windowed sinc)")
    print(f"  input noise RMS : {np.sqrt(np.mean(residual_in ** 2)):8.1f}")
    print(f"  output noise RMS: {np.sqrt(np.mean(residual_out ** 2)):8.1f}")

    rows = [[
        kernel.name,
        comparison.mmx.cycles,
        comparison.spu.cycles,
        f"{comparison.speedup:.3f}",
        comparison.removed_permutes,
    ]]
    print()
    print(format_table(
        ["kernel", "MMX cycles", "MMX+SPU cycles", "speedup", "permutes off-loaded"],
        rows,
    ))
    print("\nPer the paper (§5.2.2): coefficient replication already avoids most "
          "sample permutes,\nso the SPU's FIR gain is modest — the horizontal "
          "reductions are what it absorbs.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: inter-word restrictions in the matrix transpose (paper §2.2).

Walks through Figure 3's 4×4 unpack-tile transpose, shows the SPU routing
columns straight out of the register file, and sweeps the interconnect
configurations A-D for the area/coverage trade-off of Table 1.

Run:  python examples/matrix_transpose.py
"""

from repro import CONFIGS, spu_cost
from repro.analysis import format_table
from repro.kernels import TransposeKernel


def main() -> None:
    kernel = TransposeKernel(n=16)
    kernel.verify()

    print("Figure 3's tile transpose: eight merge instructions per 4x4 tile")
    print("(plus the movq copies the destructive two-operand forms force):\n")
    body = str(kernel.mmx_program()).splitlines()
    loop_at = next(i for i, line in enumerate(body) if line.startswith("loop:"))
    print("\n".join(body[loop_at : loop_at + 24]))

    comparison = kernel.compare()
    print(f"\nWith the SPU, routed stores gather each column directly from the "
          f"unified register\n(inter-word restriction gone, §2.2): "
          f"{comparison.removed_permutes} permutes off-loaded per program.")
    print(f"MMX: {comparison.mmx.cycles} cycles; MMX+SPU: {comparison.spu.cycles} "
          f"cycles; speedup {comparison.speedup:.3f}x")

    print("\nInterconnect configuration sweep (Table 1 economics):")
    rows = []
    for name, config in CONFIGS.items():
        swept = TransposeKernel(n=16, config=config)
        result = swept.compare()
        cost = spu_cost(config)
        rows.append([
            name,
            config.description,
            result.removed_permutes,
            f"{result.speedup:.3f}",
            f"{cost.total_area_mm2:.2f}",
            f"{cost.interconnect_delay_ns:.2f}",
        ])
    print(format_table(
        ["config", "crossbar", "permutes removed", "speedup", "SPU mm2", "delay ns"],
        rows,
    ))
    print("\nConfiguration D (the paper's pick) removes everything A does on this "
          "16-bit kernel\nat 29% of the area — 'all the applications used in this "
          "paper can be realized with\nconfiguration D' (§5.1.1).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: the paper's §4 dot-product example, end to end.

Builds the MMX loop that needs two unpack instructions per iteration to
realign its sub-words, lets the automatic off-load pass move that data
movement onto the SPU's decoupled controller, and compares the two runs
cycle for cycle.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CONFIG_D,
    DotProductKernel,
    Machine,
    SPUController,
    attach_spu,
    offload_loop,
)
from repro.analysis import format_table


def main() -> None:
    kernel = DotProductKernel(blocks=16)

    print("=== MMX-only program (permutes in software) ===")
    mmx_program = kernel.mmx_program()
    print(mmx_program)

    report = offload_loop(mmx_program, "loop", kernel.blocks, CONFIG_D)
    print("\n=== After SPU off-load (permutes removed) ===")
    print(report.program)
    removed = [str(mmx_program[index]) for index in report.removed]
    print(f"\nOff-loaded instructions: {removed}")
    print(f"SPU controller: {report.spu_program.state_count()} states, "
          f"CNTR0 = {report.spu_program.counter_init[0]} dynamic instructions")

    # Verify both variants against the NumPy fixed-point reference.
    kernel.verify()
    print("\nBit-exact: MMX and MMX+SPU outputs match the NumPy reference.")

    comparison = kernel.compare()
    rows = [
        ["cycles", comparison.mmx.cycles, comparison.spu.cycles],
        ["instructions", comparison.mmx.instructions, comparison.spu.instructions],
        ["permute instructions", comparison.mmx.permutes, comparison.spu.permutes],
        ["MMX busy cycles", comparison.mmx.mmx_busy_cycles, comparison.spu.mmx_busy_cycles],
    ]
    print()
    print(format_table(["metric", "MMX only", "MMX + SPU"], rows))
    print(f"\nSpeedup: {comparison.speedup:.3f}x "
          f"({comparison.cycles_saved} cycles overlapped by the decoupled controller)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: programming the SPU controller by hand (paper §4, Figures 6-8).

Reproduces the paper's microprogramming walk-through without the compiler
pass: a three-state controller program (two routed multiply states plus a
straight state for the branch), CNTR0 = iterations × 3 exactly as §4
computes it, staged into the controller through its memory-mapped registers
by the simulated program itself.

Run:  python examples/spu_programming.py
"""

import numpy as np

from repro import CONFIG_D, Machine, SPUController, assemble, attach_spu
from repro.core import (
    DEFAULT_MMIO_BASE,
    REG_CNTR0,
    REG_CONFIG,
    STATE_BASE,
    STATE_STRIDE,
    SPUProgramBuilder,
    encode_program,
    halfword_route,
)

ITERATIONS = 10


def main() -> None:
    # Want to calculate a*c, e*g, b*d, f*h (§4, Figure 5):
    # mm0 = (a, b, c, d); mm1 = (e, f, g, h); results to memory.
    # Routes deliver (a,e,b,f) and (c,g,d,h) to the multipliers implicitly.
    r_aebf = halfword_route([(0, 0), (1, 0), (0, 1), (1, 1)])
    r_cgdh = halfword_route([(0, 2), (1, 2), (0, 3), (1, 3)])

    builder = SPUProgramBuilder(config=CONFIG_D, name="dot-product-ucode")
    builder.loop(
        [
            {0: r_aebf, 1: r_cgdh},  # pmulhw mm2, mm3
            {0: r_aebf, 1: r_cgdh},  # pmullw mm0, mm3  (routes override both)
            None,  # straight state for the loop branch (Figure 7's row 3)
            None,  # ...and the store
            None,  # ...and the pointer update
        ],
        iterations=ITERATIONS,
    )
    ucode = builder.build()
    print(f"Controller program: {ucode.state_count()} states, "
          f"CNTR0 = {ucode.counter_init[0]} "
          f"(= {ITERATIONS} iterations x 5 dynamic instructions, §4's formula)")

    words = encode_program(ucode, CONFIG_D)
    print("Encoded state words (Figure 6's horizontal microcode):")
    for index, word in words.items():
        print(f"  state {index}: {word:#018x}")

    # The simulated program stages the microcode through MMIO and sets GO.
    source_lines = [f"mov r14, {DEFAULT_MMIO_BASE}"]
    for index, word in words.items():
        offset = STATE_BASE + index * STATE_STRIDE
        source_lines += [
            f"mov r13, {word & 0xFFFFFFFF}",
            f"stw [r14+{offset}], r13",
            f"mov r13, {(word >> 32) & 0xFFFFFFFF}",
            f"stw [r14+{offset + 4}], r13",
        ]
    source_lines += [
        f"mov r13, {ucode.counter_init[0]}",
        f"stw [r14+{REG_CNTR0}], r13",
        f"mov r0, {ITERATIONS}",
        "mov r2, 0x400",
        "mov r13, 1",
        f"stw [r14+{REG_CONFIG}], r13",  # GO — next instruction starts the loop
        "loop:",
        "    pmulhw mm2, mm3",
        "    pmullw mm0, mm3",
        "    movq [r2], mm0",
        "    add r2, 8",
        "    loop r0, loop",
        "    halt",
    ]
    program = assemble("\n".join(source_lines), "mmio-demo")

    machine = Machine(program)
    controller = SPUController(config=CONFIG_D)
    attach_spu(machine, controller)
    a, b_, c, d = 3, 5, 7, 9
    e, f, g, h = 2, 4, 6, 8
    machine.state.mmx[0] = int.from_bytes(
        np.array([a, b_, c, d], dtype=np.int16).tobytes(), "little")
    machine.state.mmx[1] = int.from_bytes(
        np.array([e, f, g, h], dtype=np.int16).tobytes(), "little")

    stats = machine.run()
    out = machine.memory.read_array(0x400, 4, np.int16)
    print(f"\nRan {stats.instructions} instructions in {stats.cycles} cycles; "
          f"controller stepped {controller.stats.steps} times and idled itself.")
    print(f"Products (low halves): {out.tolist()}  "
          f"expected: {[a * c, e * g, b_ * d, f * h]}")
    assert out.tolist() == [a * c, e * g, b_ * d, f * h]
    assert not controller.active
    print("The five-instruction loop ran as three computational instructions "
          "plus bookkeeping —\nno unpack instructions anywhere in the stream.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: 8×8 DCT of video residual blocks (the compression kernel).

Streams eight 8×8 blocks of synthetic prediction residuals through the
row-column DCT — the paper's highest-leverage case for the unified SPU
register, since half the kernel is pure inter-word transposition — and
checks the energy-compaction property that makes the DCT useful.

Run:  python examples/video_dct.py
"""

import numpy as np

from repro.analysis import format_table
from repro.kernels import DCTKernel


def make_residual_blocks(blocks: int = 8) -> np.ndarray:
    """Smooth gradients plus mild texture — typical prediction residuals."""
    rng = np.random.default_rng(42)
    y, x = np.mgrid[0:8, 0:8]
    out = np.empty((blocks, 8, 8), dtype=np.int16)
    for index in range(blocks):
        gradient = (index + 1) * 6 * x + (index + 2) * 4 * y - 150
        texture = rng.normal(0, 6, (8, 8))
        out[index] = np.clip(gradient + texture, -256, 255).astype(np.int16)
    return out


def main() -> None:
    kernel = DCTKernel(blocks=8)
    kernel.block = make_residual_blocks(8)
    kernel.verify()

    _, coefficients = kernel.run_mmx()
    energy_total = float(np.sum(coefficients.astype(np.int64) ** 2))
    low_band = coefficients[:, :4, :4]
    energy_low = float(np.sum(low_band.astype(np.int64) ** 2))
    print("8x8 DCT over 8 residual blocks (Q12 fixed point)")
    print(f"  energy in the low-frequency 4x4 corner: "
          f"{energy_low / energy_total:.1%} of total "
          "(energy compaction: the property codecs quantize against)")

    comparison = kernel.compare()
    rows = [[
        "DCT",
        comparison.mmx.cycles,
        comparison.spu.cycles,
        f"{comparison.speedup:.3f}",
        comparison.removed_permutes,
        f"{comparison.mmx.mmx_busy_fraction:.0%}",
    ]]
    print()
    print(format_table(
        ["kernel", "MMX cycles", "MMX+SPU cycles", "speedup",
         "permutes off-loaded", "MMX busy"],
        rows,
    ))
    print("\nThe two transpose passes between the row DCTs are pure inter-word "
          "data movement;\nthe SPU absorbs them into the four controller contexts "
          "(§5.2.3's 'quite a bit more\nimpressive' case).")


if __name__ == "__main__":
    main()

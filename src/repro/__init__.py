"""repro — reproduction of "Efficient Orchestration of Sub-Word Parallelism
in Media Processors" (Oliver, Akella, Chong; SPAA 2004).

The package implements the paper's Sub-word Permutation Unit (SPU) — a
unified 512-bit sub-word register, a crossbar interconnect between the
register file and the MMX functional units, and a decoupled zero-overhead
controller — on top of a cycle-level Pentium-MMX-class simulator, together
with the eight IPP-style media kernels and the harness regenerating every
table and figure of the evaluation.

Quick start::

    from repro import DotProductKernel
    kernel = DotProductKernel()
    kernel.verify()                      # MMX and MMX+SPU match the reference
    comparison = kernel.compare()
    print(comparison.speedup)            # the Figure 9 quantity

Sub-packages: :mod:`repro.simd` (packed arithmetic), :mod:`repro.isa`
(assembler/IR), :mod:`repro.cpu` (dual-pipe cycle model), :mod:`repro.core`
(the SPU), :mod:`repro.hw` (area/delay models), :mod:`repro.kernels`,
:mod:`repro.analysis`, :mod:`repro.obs` (event bus, cycle attribution,
exporters), :mod:`repro.experiments`.
"""

from repro.errors import (
    AssemblerError,
    ConfigurationError,
    EncodingError,
    KernelError,
    LaneError,
    MemoryFault,
    PairingViolation,
    ReproError,
    RouteError,
    SimulationError,
    SPUProgramError,
)
from repro.resilience import ResilienceMode
from repro.isa import MM, R, Program, ProgramBuilder, assemble, disassemble
from repro.cpu import Machine, Memory, PipelineConfig, RunStats
from repro.core import (
    CONFIG_A,
    CONFIGS,
    CONFIG_B,
    CONFIG_C,
    CONFIG_D,
    CrossbarConfig,
    SPUController,
    SPUProgram,
    SPUProgramBuilder,
    attach_spu,
    offload_loop,
)
from repro.hw import SPUCost, spu_cost, table1_rows
from repro.kernels import (
    ALL_KERNELS,
    TABLE2_KERNELS,
    DCTKernel,
    DotProductKernel,
    FFT128Kernel,
    FFT1024Kernel,
    FIR12Kernel,
    FIR22Kernel,
    IIRKernel,
    Kernel,
    KernelComparison,
    MatMulKernel,
    TransposeKernel,
    make_kernel,
)
from repro.analysis import profile
from repro.obs import (
    ControllerTrace,
    CycleAttribution,
    EventBus,
    MetricsRegistry,
    kernel_profile_report,
)
from repro.experiments import ExperimentSuite, fig9, table1, table2, table3

__version__ = "1.0.0"

__all__ = [
    "AssemblerError",
    "ConfigurationError",
    "EncodingError",
    "KernelError",
    "LaneError",
    "MemoryFault",
    "PairingViolation",
    "ReproError",
    "RouteError",
    "SimulationError",
    "SPUProgramError",
    "ResilienceMode",
    "MM",
    "R",
    "Program",
    "ProgramBuilder",
    "assemble",
    "disassemble",
    "Machine",
    "Memory",
    "PipelineConfig",
    "RunStats",
    "CONFIG_A",
    "CONFIGS",
    "CONFIG_B",
    "CONFIG_C",
    "CONFIG_D",
    "CrossbarConfig",
    "SPUController",
    "SPUProgram",
    "SPUProgramBuilder",
    "attach_spu",
    "offload_loop",
    "SPUCost",
    "spu_cost",
    "table1_rows",
    "ALL_KERNELS",
    "TABLE2_KERNELS",
    "DCTKernel",
    "DotProductKernel",
    "FFT128Kernel",
    "FFT1024Kernel",
    "FIR12Kernel",
    "FIR22Kernel",
    "IIRKernel",
    "Kernel",
    "KernelComparison",
    "MatMulKernel",
    "TransposeKernel",
    "make_kernel",
    "profile",
    "ControllerTrace",
    "CycleAttribution",
    "EventBus",
    "MetricsRegistry",
    "kernel_profile_report",
    "ExperimentSuite",
    "fig9",
    "table1",
    "table2",
    "table3",
    "__version__",
]

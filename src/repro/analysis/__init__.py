"""Analysis tools: profiler, branch statistics, overlap accounting, reports."""

from repro.analysis.branch_stats import BranchRow, branch_row, scale_to_paper
from repro.analysis.overlap import OverlapRow, overlap_row
from repro.analysis.profiler import InstructionProfile, profile
from repro.analysis.report import format_table, pct, ratio, sci

__all__ = [
    "BranchRow",
    "branch_row",
    "scale_to_paper",
    "OverlapRow",
    "overlap_row",
    "InstructionProfile",
    "profile",
    "format_table",
    "pct",
    "ratio",
    "sci",
]

from repro.analysis.loops import LoopProfile, LoopRegion, find_loop_regions, profile_loops
from repro.analysis.chart import fig9_chart

__all__ += [
    "LoopProfile",
    "LoopRegion",
    "find_loop_regions",
    "profile_loops",
    "fig9_chart",
]

from repro.analysis.startup import StartupCost, measure_startup_cost

__all__ += ["StartupCost", "measure_startup_cost"]

from repro.analysis.findings import Finding, FindingCollector, Severity, sort_findings
from repro.analysis.rules import RULES, Rule, rule_severity
from repro.analysis.microprogram import analyze_program, simulate
from repro.analysis.schedule import analyze_schedule, chain_states
from repro.analysis.certificate import certificate_findings, resolve_config
from repro.analysis.suppressions import KNOWN_SILENT, Suppression
from repro.analysis.lint import (
    LintResult,
    exit_code,
    lint_all,
    lint_kernel,
    lint_program,
    lint_report,
    render_lint,
)
from repro.analysis.verdict import injection_verdict
from repro.analysis.fusion import FusionVerdict, fusion_verdict, schedule_blockers
from repro.analysis.absint import (
    FUSION_CERT_SCHEMA,
    FusionCertificate,
    ProgramCertification,
    certify_program,
    check_fusion_certificate,
    fusion_audit,
    fusion_audit_report,
    fusion_certificate_findings,
)

__all__ += [
    "FusionVerdict",
    "fusion_verdict",
    "schedule_blockers",
    "Finding",
    "FindingCollector",
    "Severity",
    "sort_findings",
    "RULES",
    "Rule",
    "rule_severity",
    "analyze_program",
    "simulate",
    "analyze_schedule",
    "chain_states",
    "certificate_findings",
    "resolve_config",
    "KNOWN_SILENT",
    "Suppression",
    "LintResult",
    "exit_code",
    "lint_all",
    "lint_kernel",
    "lint_program",
    "lint_report",
    "render_lint",
    "injection_verdict",
    "FUSION_CERT_SCHEMA",
    "FusionCertificate",
    "ProgramCertification",
    "certify_program",
    "check_fusion_certificate",
    "fusion_audit",
    "fusion_audit_report",
    "fusion_certificate_findings",
]

"""Analysis tools: profiler, branch statistics, overlap accounting, reports."""

from repro.analysis.branch_stats import BranchRow, branch_row, scale_to_paper
from repro.analysis.overlap import OverlapRow, overlap_row
from repro.analysis.profiler import InstructionProfile, profile
from repro.analysis.report import format_table, pct, ratio, sci

__all__ = [
    "BranchRow",
    "branch_row",
    "scale_to_paper",
    "OverlapRow",
    "overlap_row",
    "InstructionProfile",
    "profile",
    "format_table",
    "pct",
    "ratio",
    "sci",
]

from repro.analysis.loops import LoopProfile, LoopRegion, find_loop_regions, profile_loops
from repro.analysis.chart import fig9_chart

__all__ += [
    "LoopProfile",
    "LoopRegion",
    "find_loop_regions",
    "profile_loops",
    "fig9_chart",
]

from repro.analysis.startup import StartupCost, measure_startup_cost

__all__ += ["StartupCost", "measure_startup_cost"]

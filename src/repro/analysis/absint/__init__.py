"""Superop legality engine: byte-granular abstract interpretation.

The tentpole of the static-analysis layer's second generation: per candidate
loop region of a decoded program, prove (or diagnose why not) that the body
is legal to fuse into a bulk superop — straight-line, counted, with a
statically bounded byte footprint, affine induction strides, and every
packed op inside the certified SWAR mask algebra.  Proofs are shipped as
schema-versioned :class:`FusionCertificate` records with an *independent*
replay checker (:mod:`repro.analysis.absint.replay`); diagnoses are ``fx-*``
findings in the shared rule catalog.

See ``docs/static-analysis.md`` for the rule-by-rule catalog and the
certificate format.
"""

from repro.analysis.absint.audit import (
    FUSION_AUDIT_SCHEMA,
    fusion_audit,
    fusion_audit_report,
)
from repro.analysis.absint.certificate import FUSION_CERT_SCHEMA, FusionCertificate
from repro.analysis.absint.domain import (
    Affine,
    ByteWord,
    EXACT_SEMS,
    MODULAR_SEMS,
    SATURATING_SEMS,
    swar_status,
)
from repro.analysis.absint.interp import (
    BLOCKING_RULES,
    ProgramCertification,
    RegionCertification,
    certify_program,
    loop_entry_state,
)
from repro.analysis.absint.replay import (
    FusionCertIssue,
    REPLAY_TRIP_LIMIT,
    check_fusion_certificate,
    fusion_certificate_findings,
)

__all__ = [
    "Affine",
    "BLOCKING_RULES",
    "ByteWord",
    "EXACT_SEMS",
    "FUSION_AUDIT_SCHEMA",
    "FUSION_CERT_SCHEMA",
    "FusionCertIssue",
    "FusionCertificate",
    "MODULAR_SEMS",
    "ProgramCertification",
    "REPLAY_TRIP_LIMIT",
    "RegionCertification",
    "SATURATING_SEMS",
    "certify_program",
    "check_fusion_certificate",
    "fusion_audit",
    "fusion_audit_report",
    "fusion_certificate_findings",
    "loop_entry_state",
    "swar_status",
]

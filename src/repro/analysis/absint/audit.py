"""Kernel-wide static-vs-dynamic cross-check of the superop certifier.

For every registered kernel and variant, run the hot-trace profile (which
judges each dynamic trace against the certifier's output) and reconcile the
two views per loop region:

``certified-agree``
    Statically certified and dynamically fusible — the target state for
    every hot loop.
``agree-negative``
    Neither side calls the loop fusible, and the static diagnosis explains
    the dynamic one (the blocking ``fx-*`` rules are the reason string).
``static-diagnosed``
    Dynamically the trace looks fusible (stable single-region pass) but the
    certifier withheld the proof: expected for data-dependent or
    non-affine bodies — the diagnosis names why.
``short-trip``
    Statically certified, but the loop runs too few iterations for the
    profiler's repetition test (``executions >= 2``): a static proof cannot
    manufacture dynamic repetitions.
``not-executed``
    Statically analyzed but the region never produced a dynamic trace
    (e.g. outer levels of a nest, whose back edge is crossed rarely).
``unexplained``
    Anything else — a soundness alarm.  The CI gate requires zero.

The report is byte-stable (derives from the simulation alone) and exported
under the ``repro.analysis/2`` schema as document kind ``fusion-audit``.
"""

from __future__ import annotations

from typing import Any

from repro.obs.export import ANALYSIS_SCHEMA_VERSION_2

FUSION_AUDIT_SCHEMA = ANALYSIS_SCHEMA_VERSION_2


def _dynamic_state(traces: list[dict[str, Any]], label: str) -> tuple[str | None, list[str]]:
    """Best dynamic verdict for *label* across the variant's traces."""
    rank = {"certified": 3, "uncertified": 2, "not-fusible": 1}
    best: str | None = None
    reasons: list[str] = []
    for record in traces:
        fusion = record.get("fusion", {})
        if record.get("label") != label and fusion.get("loop") != label:
            continue
        state = fusion.get("state")
        if best is None or rank.get(state, 0) > rank.get(best, 0):
            best = state
            reasons = list(fusion.get("reasons", []))
    return best, reasons


def _classify(
    certified: bool,
    blocking: list[str],
    trip: int | None,
    state: str | None,
    reasons: list[str],
) -> tuple[str, str]:
    """(agreement class, human explanation) for one region."""
    if certified:
        if state == "certified":
            return "certified-agree", "replay-checked certificate and dynamic verdict agree"
        if state is None:
            return "not-executed", "certified loop produced no dynamic trace"
        if any("executed once" in reason for reason in reasons) or (
            trip is not None and trip <= 2
        ):
            return (
                "short-trip",
                f"certified with trip {trip}: too few dynamic repetitions "
                "for the profiler's repetition test",
            )
        return "unexplained", "certified loop dynamically rejected: " + "; ".join(reasons)
    diagnosis = ", ".join(blocking) if blocking else "no certificate"
    if state == "uncertified":
        return "static-diagnosed", f"dynamically fusible but withheld: {diagnosis}"
    if state in (None, "not-fusible"):
        return "agree-negative", f"not fusible either way ({diagnosis})"
    return "unexplained", f"dynamic state {state!r} without a certificate"


def fusion_audit(
    kernel_names: list[str] | None = None,
    variants: tuple[str, ...] = ("mmx", "spu"),
) -> dict[str, Any]:
    """Cross-check every kernel's certification against its dynamic traces."""
    from repro.kernels import ALL_KERNELS
    from repro.obs.export import trace_variant_profile

    names = kernel_names if kernel_names is not None else sorted(ALL_KERNELS)
    rows: list[dict[str, Any]] = []
    totals: dict[str, int] = {}
    certificates: list[dict[str, Any]] = []
    for name in names:
        kernel = ALL_KERNELS[name]()
        for variant in variants:
            body = trace_variant_profile(kernel, variant)
            cert_by_loop = {
                cert["loop"]: cert for cert in body.get("certificates", [])
            }
            certificates.extend(body.get("certificates", []))
            certification: dict[str, list[str]] = body.get("certification", {})
            for region in body.get("loop_regions", []):
                label = region["label"]
                cert = cert_by_loop.get(label)
                blocking = certification.get(label, [])
                state, reasons = _dynamic_state(body.get("traces", []), label)
                trip = cert["trip"]["count"] if cert is not None else None
                agreement, explanation = _classify(
                    cert is not None, blocking, trip, state, reasons
                )
                totals[agreement] = totals.get(agreement, 0) + 1
                rows.append({
                    "kernel": name,
                    "variant": variant,
                    "loop": label,
                    "certified": cert is not None,
                    "blocking": blocking,
                    "trip": trip,
                    "dynamic": state,
                    "agreement": agreement,
                    "explanation": explanation,
                })
    return {
        "kernels": names,
        "variants": list(variants),
        "regions": rows,
        "certificates": certificates,
        "summary": {
            "regions": len(rows),
            "by_agreement": {key: totals[key] for key in sorted(totals)},
            "unexplained": totals.get("unexplained", 0),
        },
    }


def fusion_audit_report(
    kernel_names: list[str] | None = None,
    variants: tuple[str, ...] = ("mmx", "spu"),
) -> dict[str, Any]:
    """The full ``fusion-audit`` document (``repro certify --all``)."""
    from repro.obs.export import envelope

    body = fusion_audit(kernel_names, variants)
    return envelope("fusion-audit", body, schema=FUSION_AUDIT_SCHEMA)

"""The :class:`FusionCertificate`: machine-checkable superop legality evidence.

A certificate is *pure data* — body text, concrete entry constants, closed
forms and classifications — never live IR objects, so it survives a JSON
round trip (committed audit baselines replay-check against the current
program) and so the replay checker (:mod:`repro.analysis.absint.replay`)
can only ever trust the program it is handed, not analyzer intermediates.

Every recorded fact is independently re-derivable from the instruction
stream plus the entry constants by concrete replay:

- ``body`` — textual form of each body instruction (drift → stale),
- ``trip`` — counter register and count, checked by stepping the closing
  branch to its exact exhaustion point,
- ``memory`` — per access ``first + k * stride`` closed forms, checked
  against the concrete address of every one of the ``trip`` iterations,
- ``reads`` / ``writes`` — register footprints from operand decoding,
- ``carried`` — per-register dependence class (induction step re-verified
  numerically; reduction/opaque structurally),
- ``swar`` — one record per packed op with its sem-derived wrap status,
- ``overflow`` — modular packed accumulators (recorded, not blocking),
- ``mem_carried`` — loop-carried store→load byte overlaps with iteration
  distance (recorded, not blocking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Schema tag embedded in every certificate; the replay checker rejects
#: anything else (``fx-cert-schema``).
FUSION_CERT_SCHEMA = "repro.fusion-cert/1"


@dataclass(frozen=True)
class FusionCertificate:
    """Proof obligations discharged for one loop region of one program."""

    program: str
    loop: str
    start: int
    end: int
    body: tuple[str, ...]
    #: ``{"kind": "loop"|"dec-jnz", "counter": "r0", "count": N}``
    trip: dict[str, Any]
    #: Concrete loop-entry values of every symbol the closed forms use.
    entry: dict[str, int]
    #: ``{"scalar": [...], "mmx": [...]}`` register names read in the body.
    reads: dict[str, list[str]]
    writes: dict[str, list[str]]
    #: ``{"register", "class", "step"?}`` per loop-carried register.
    carried: tuple[dict[str, Any], ...] = ()
    #: ``{"position", "access", "size", "first", "stride"}`` per body access.
    memory: tuple[dict[str, Any], ...] = ()
    #: ``{"position", "op", "width", "status"}`` per packed op.
    swar: tuple[dict[str, Any], ...] = ()
    #: ``{"position", "register"}`` modular packed accumulators.
    overflow: tuple[dict[str, Any], ...] = ()
    #: ``{"store", "load", "distance"}`` carried memory dependences.
    mem_carried: tuple[dict[str, Any], ...] = ()
    schema: str = field(default=FUSION_CERT_SCHEMA)

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "program": self.program,
            "loop": self.loop,
            "start": self.start,
            "end": self.end,
            "body": list(self.body),
            "trip": dict(self.trip),
            "entry": dict(self.entry),
            "reads": {key: list(val) for key, val in self.reads.items()},
            "writes": {key: list(val) for key, val in self.writes.items()},
            "carried": [dict(rec) for rec in self.carried],
            "memory": [dict(rec) for rec in self.memory],
            "swar": [dict(rec) for rec in self.swar],
            "overflow": [dict(rec) for rec in self.overflow],
            "mem_carried": [dict(rec) for rec in self.mem_carried],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FusionCertificate":
        """Rehydrate a certificate from its JSON form (audit baselines)."""
        return cls(
            schema=str(data.get("schema", "")),
            program=str(data["program"]),
            loop=str(data["loop"]),
            start=int(data["start"]),
            end=int(data["end"]),
            body=tuple(str(line) for line in data["body"]),
            trip=dict(data["trip"]),
            entry={str(k): int(v) for k, v in data["entry"].items()},
            reads={k: [str(r) for r in v] for k, v in data["reads"].items()},
            writes={k: [str(r) for r in v] for k, v in data["writes"].items()},
            carried=tuple(dict(rec) for rec in data.get("carried", [])),
            memory=tuple(dict(rec) for rec in data.get("memory", [])),
            swar=tuple(dict(rec) for rec in data.get("swar", [])),
            overflow=tuple(dict(rec) for rec in data.get("overflow", [])),
            mem_carried=tuple(dict(rec) for rec in data.get("mem_carried", [])),
        )

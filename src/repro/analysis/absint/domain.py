"""Abstract domains for the superop legality engine.

Two domains, matched to the two things a fused loop body bakes in:

*Scalar affine values* (:class:`Affine`) — every scalar register is tracked
as a linear combination of *loop-entry symbols* plus a constant.  An address
that stays affine over induction symbols unrolls to ``first + k * stride``,
which is exactly the closed form a bulk executor needs; anything that falls
to ``None`` (top) is a footprint the engine cannot bound.

*Byte-interval words* (:data:`ByteWord`) — every MMX register is eight
independent unsigned byte intervals.  Byte granularity is what makes the
interesting facts provable: ``punpcklbw`` against a known-zero register
yields 16-bit lanes bounded by 255, ``movd`` zero-extends its high four
bytes, ``vperm``/``pshufw`` permute the intervals exactly.  Lane views are
recombined on demand for packed arithmetic.

All transfer functions here are *sound over-approximations*: intervals may
widen to top, never narrow below the reachable values.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---- scalar affine values ------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """``sum(coeff * entry(sym)) + const`` over loop-entry register symbols."""

    #: Sorted ``(symbol, coefficient)`` pairs, zero coefficients dropped.
    coeffs: tuple[tuple[str, int], ...]
    const: int

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine((), value)

    @staticmethod
    def symbol(name: str) -> "Affine":
        return Affine(((name, 1),), 0)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def add(self, other: "Affine") -> "Affine":
        merged = dict(self.coeffs)
        for sym, coeff in other.coeffs:
            merged[sym] = merged.get(sym, 0) + coeff
        return Affine(
            tuple(sorted((s, c) for s, c in merged.items() if c)),
            self.const + other.const,
        )

    def negate(self) -> "Affine":
        return self.scale(-1)

    def sub(self, other: "Affine") -> "Affine":
        return self.add(other.negate())

    def scale(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine.constant(0)
        return Affine(
            tuple((s, c * factor) for s, c in self.coeffs),
            self.const * factor,
        )

    def offset(self, delta: int) -> "Affine":
        return Affine(self.coeffs, self.const + delta)

    def symbols(self) -> tuple[str, ...]:
        return tuple(sym for sym, _ in self.coeffs)

    def evaluate(self, entry: dict[str, int]) -> int | None:
        """Concrete value under *entry* symbol bindings, or None if any miss."""
        total = self.const
        for sym, coeff in self.coeffs:
            value = entry.get(sym)
            if value is None:
                return None
            total += coeff * value
        return total

    def __str__(self) -> str:
        parts = []
        for sym, coeff in self.coeffs:
            parts.append(sym if coeff == 1 else f"{coeff}*{sym}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


#: Abstract scalar value: an affine expression, or ``None`` (top / unknown).
Scalar = Affine | None


# ---- byte-interval MMX words ---------------------------------------------------

#: One unsigned byte interval ``(lo, hi)`` with ``0 <= lo <= hi <= 255``.
ByteRange = tuple[int, int]
#: One 64-bit MMX value as eight little-endian byte intervals.
ByteWord = tuple[ByteRange, ...]

TOP_BYTE: ByteRange = (0, 255)
TOP_WORD: ByteWord = (TOP_BYTE,) * 8
ZERO_WORD: ByteWord = ((0, 0),) * 8


def lane_view(word: ByteWord, width: int) -> list[tuple[int, int]]:
    """Per-lane ``(lo, hi)`` unsigned bounds for *width*-bit lanes."""
    span = width // 8
    lanes = []
    for lane in range(8 // span):
        lo = hi = 0
        for byte in range(span):
            blo, bhi = word[lane * span + byte]
            lo += blo << (8 * byte)
            hi += bhi << (8 * byte)
        lanes.append((lo, hi))
    return lanes


def word_from_lanes(lanes: list[tuple[int, int]], width: int) -> ByteWord:
    """Sound byte decomposition of per-lane bounds (``byte_j <= hi >> 8j``)."""
    span = width // 8
    out: list[ByteRange] = []
    for lo, hi in lanes:
        for byte in range(span):
            bhi = min(255, hi >> (8 * byte))
            blo = lo >> (8 * byte) if lo == hi else 0
            out.append((blo, bhi))
    return tuple(out)


def word_bound(word: ByteWord, width: int | None) -> int | None:
    """Max lane value bound, or None when any lane is at top for *width*."""
    if width is None:
        width = 8
    lane_max = (1 << width) - 1
    bound = 0
    for _, hi in lane_view(word, width):
        if hi >= lane_max:
            return None
        bound = max(bound, hi)
    return bound


# ---- packed-op status taxonomy -------------------------------------------------

#: Packed semantics whose result saturates or is bounded by its inputs: a
#: lane can never exceed the representable range, so bulk re-execution is
#: wrap-free by construction.
SATURATING_SEMS = frozenset({
    "padds", "paddus", "psubs", "psubus", "packss", "packus",
    "pavg", "pmins", "pmaxs", "pminu", "pmaxu",
})
#: Modular semantics: the architectural result is the low *width* bits and
#: may wrap.  The SWAR mask algebra reproduces the wrap exactly, but a
#: *carried accumulator* built from these needs per-iteration renormalizing.
MODULAR_SEMS = frozenset({"padd", "psub", "pmullw", "pmaddwd", "psll"})
#: Exact semantics: bitwise ops, compares-to-masks, high-half multiplies,
#: widening multiplies and pure byte permutations — never exceed the lane.
EXACT_SEMS = frozenset({
    "pand", "pandn", "por", "pxor", "pcmpeq", "pcmpgt",
    "pmulhw", "pmulhuw", "pmuludq", "punpckl", "punpckh",
    "pshufw", "vperm", "psrl", "psra",
})


def swar_status(sem: str) -> str | None:
    """``"saturating"`` / ``"modular"`` / ``"exact"`` for a packed sem.

    Derived from the semantic alone so the certificate replay checker can
    recompute it independently; returns None for non-packed sems.
    """
    if sem in SATURATING_SEMS:
        return "saturating"
    if sem in MODULAR_SEMS:
        return "modular"
    if sem in EXACT_SEMS:
        return "exact"
    return None

"""The byte-granular abstract interpreter over decoded loop bodies.

Two passes per candidate loop region:

1. **Prefix walk** — concrete constant propagation from program entry to the
   loop label, mirroring the executor's 32-bit scalar semantics.  Crossing
   an earlier loop region kills everything that region writes (its final
   values iterated away), except a closing ``loop`` counter, which provably
   exhausts to zero.  The walk also tracks which MMX registers are zeroed
   (``pxor r, r``) and still zero at the label.

2. **Body walk** — one symbolic pass over the body with every scalar
   register an :class:`~repro.analysis.absint.domain.Affine` value over its
   *loop-entry symbol*, and every MMX register a byte-interval word.  The
   exit state classifies loop-carried dependences, every memory operand
   yields a ``first + k * stride`` closed form, and every packed op gets a
   SWAR status from the width/mask algebra.

The result is a list of ``fx-*`` findings and — when nothing blocks — a
:class:`~repro.analysis.absint.certificate.FusionCertificate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.absint.certificate import FusionCertificate
from repro.analysis.absint.domain import (
    Affine,
    ByteWord,
    Scalar,
    TOP_BYTE,
    TOP_WORD,
    ZERO_WORD,
    lane_view,
    swar_status,
    word_bound,
    word_from_lanes,
)
from repro.analysis.findings import Finding, FindingCollector, sort_findings
from repro.analysis.loops import LoopRegion, find_loop_regions
from repro.core.mmio import DEFAULT_MMIO_BASE, MMIO_WINDOW_BYTES
from repro.isa.instructions import Instruction, Program
from repro.isa.opcodes import InstrClass
from repro.isa.operands import Imm, Label, Mem
from repro.isa.registers import Register
from repro.simd.swar import MASKS

SCALAR_MASK = 0xFFFFFFFF

#: ``fx-*`` rules that withhold a certificate; the rest are recorded facts.
#: The ``fx-cert-*`` replay rules are here too: a certificate that fails its
#: own issuance-time replay self-check is dropped, not shipped.
BLOCKING_RULES = frozenset({
    "fx-internal-branch", "fx-side-exit", "fx-nested-region",
    "fx-trip-count", "fx-induction-step", "fx-mem-footprint",
    "fx-mmio-store", "fx-carried-blocking", "fx-swar-width",
    "fx-swar-shift", "fx-cert-schema", "fx-cert-stale", "fx-cert-mismatch",
})

#: Packed semantics that keep a read-modify-write destination a *reduction*
#: (accumulate/fold) rather than an opaque carried value.
REDUCTION_SEMS = frozenset({
    "padd", "psub", "padds", "psubs", "paddus", "psubus",
    "pmins", "pmaxs", "pminu", "pmaxu", "pavg",
    "pand", "por", "pxor",
})

def access_size(instr: Instruction) -> int:
    """Bytes moved by *instr*'s memory operand."""
    if instr.opcode.width is not None and instr.opcode.sem != "movq":
        return instr.opcode.width // 8
    return 8  # movq and width-free packed ops move the full 64-bit word


# ---- pass 1: concrete prefix walk ---------------------------------------------


def _concrete_mem(mem: Mem, scalars: dict[str, int]) -> int | None:
    base = scalars.get(mem.base.name)
    if base is None:
        return None
    address = base + mem.disp
    if mem.index is not None:
        index = scalars.get(mem.index.name)
        if index is None:
            return None
        address += index * mem.scale
    return address & SCALAR_MASK


def _concrete_step(
    instr: Instruction, scalars: dict[str, int], zeroed: set[str]
) -> None:
    """One instruction of the prefix under concrete constant propagation."""
    sem = instr.opcode.sem
    dest = instr.dest
    if dest is not None and dest.is_mmx:
        ops = instr.operands
        if (
            sem == "pxor"
            and len(ops) == 2
            and isinstance(ops[1], Register)
            and ops[1].name == dest.name
        ):
            zeroed.add(dest.name)
        else:
            zeroed.discard(dest.name)
        return
    if dest is None:
        return
    name = dest.name

    def src_value() -> int | None:
        src = instr.operands[1]
        if isinstance(src, Imm):
            return src.value & SCALAR_MASK
        if isinstance(src, Register) and not src.is_mmx:
            return scalars.get(src.name)
        return None

    if sem == "mov":
        value = src_value()
    elif sem in ("add", "sub", "and", "or", "xor", "imul"):
        left, right = scalars.get(name), src_value()
        if left is None or right is None:
            value = None
        elif sem == "add":
            value = left + right
        elif sem == "sub":
            value = left - right
        elif sem == "and":
            value = left & right
        elif sem == "or":
            value = left | right
        elif sem == "xor":
            value = left ^ right
        else:
            value = left * right
    elif sem in ("shl", "shr", "sar"):
        left = scalars.get(name)
        count = instr.operands[1]
        if left is None or not isinstance(count, Imm):
            value = None
        elif sem == "shl":
            value = left << (count.value & 31)
        elif sem == "shr":
            value = left >> (count.value & 31)
        else:
            signed = left - (1 << 32) if left >> 31 else left
            value = signed >> (count.value & 31)
    elif sem == "inc":
        left = scalars.get(name)
        value = None if left is None else left + 1
    elif sem == "dec" or sem == "loop":
        left = scalars.get(name)
        value = None if left is None else left - 1
    elif sem == "neg":
        left = scalars.get(name)
        value = None if left is None else -left
    elif sem == "lea":
        mem = instr.mem_operand
        value = _concrete_mem(mem, scalars) if mem is not None else None
    else:  # loads, movd from MMX, anything else: unknown
        value = None
    if value is None:
        scalars.pop(name, None)
    else:
        scalars[name] = value & SCALAR_MASK


def loop_entry_state(
    program: Program, stop: int, regions: list[LoopRegion]
) -> tuple[dict[str, int], set[str]]:
    """Concrete scalar constants and known-zero MMX registers at index *stop*.

    Linear walk; passing an earlier region's back edge invalidates every
    register that region writes (it iterated an unknown number of times from
    this walk's point of view), then pins a closing ``loop`` counter to its
    exhaustion value of zero.
    """
    scalars: dict[str, int] = {}
    zeroed: set[str] = set()
    ends: dict[int, list[LoopRegion]] = {}
    for region in regions:
        if region.end < stop:
            ends.setdefault(region.end, []).append(region)
    for index in range(stop):
        instr = program.instructions[index]
        if instr.is_branch and index not in ends:
            # A prefix branch that is not a known region back edge makes the
            # linear walk unsound — drop everything rather than guess.
            scalars.clear()
            zeroed.clear()
            continue
        _concrete_step(instr, scalars, zeroed)
        for region in ends.get(index, ()):
            for i in range(region.start, region.end + 1):
                for reg in program.instructions[i].regs_written():
                    if not isinstance(reg, Register):
                        continue
                    if reg.is_mmx:
                        zeroed.discard(reg.name)
                    else:
                        scalars.pop(reg.name, None)
            closing = program.instructions[region.end]
            if closing.opcode.sem == "loop":
                counter = closing.operands[0]
                if isinstance(counter, Register):
                    scalars[counter.name] = 0
    return scalars, zeroed


# ---- pass 2a: affine scalar body walk ------------------------------------------


@dataclass
class MemAccess:
    """One body memory operand with its (attempted) affine address."""

    position: int
    access: str  # "load" | "store"
    size: int
    address: Affine | None
    mem: Mem
    #: Filled in by footprint resolution.
    first: int | None = None
    stride: int | None = None


class _ScalarWalk:
    """Affine abstract state over one loop-body pass."""

    def __init__(self) -> None:
        self.env: dict[str, Scalar] = {}
        self.written: set[str] = set()
        self.live_in: set[str] = set()

    def value(self, name: str) -> Scalar:
        if name not in self.env:
            if name not in self.written:
                self.live_in.add(name)
            self.env[name] = Affine.symbol(name)
        return self.env[name]

    def read_reg(self, reg: Register) -> Scalar:
        if reg.name not in self.written and reg.name not in self.env:
            self.live_in.add(reg.name)
        return self.value(reg.name)

    def operand(self, operand: object) -> Scalar:
        if isinstance(operand, Imm):
            return Affine.constant(operand.value)
        if isinstance(operand, Register) and not operand.is_mmx:
            return self.read_reg(operand)
        return None

    def address(self, mem: Mem) -> Scalar:
        base = self.read_reg(mem.base)
        if base is None:
            return None
        addr = base.offset(mem.disp)
        if mem.index is not None:
            index = self.read_reg(mem.index)
            if index is None:
                return None
            addr = addr.add(index.scale(mem.scale))
        return addr

    def write(self, name: str, value: Scalar) -> None:
        self.written.add(name)
        self.env[name] = value

    def step(self, instr: Instruction) -> None:
        sem = instr.opcode.sem
        dest = instr.dest
        if dest is None or dest.is_mmx:
            # Stores, compares, movd-to-MMX: no scalar destination, but the
            # scalar sources are still live-in (mirrors regs_read, which the
            # replay checker recomputes footprints from).
            for operand in instr.operands:
                if isinstance(operand, Register) and not operand.is_mmx:
                    self.read_reg(operand)
            return
        name = dest.name
        if sem == "mov":
            self.write(name, self.operand(instr.operands[1]))
        elif sem in ("add", "sub"):
            left, right = self.read_reg(dest), self.operand(instr.operands[1])
            if left is None or right is None:
                self.write(name, None)
            else:
                self.write(name, left.add(right) if sem == "add" else left.sub(right))
        elif sem == "inc" or sem == "dec":
            left = self.read_reg(dest)
            self.write(
                name, None if left is None else left.offset(1 if sem == "inc" else -1)
            )
        elif sem == "neg":
            left = self.read_reg(dest)
            self.write(name, None if left is None else left.negate())
        elif sem == "shl":
            left = self.read_reg(dest)
            count = instr.operands[1]
            if left is None or not isinstance(count, Imm):
                self.write(name, None)
            else:
                self.write(name, left.scale(1 << (count.value & 31)))
        elif sem == "imul":
            left, right = self.read_reg(dest), self.operand(instr.operands[1])
            if right is not None and right.is_constant and left is not None:
                self.write(name, left.scale(right.const))
            elif left is not None and left.is_constant and right is not None:
                self.write(name, right.scale(left.const))
            else:
                self.write(name, None)
        elif sem == "lea":
            mem = instr.mem_operand
            self.write(name, self.address(mem) if mem is not None else None)
        elif sem in ("and", "or", "xor", "shr", "sar"):
            left, right = self.read_reg(dest), self.operand(instr.operands[1])
            if (
                left is not None and left.is_constant
                and right is not None and right.is_constant
            ):
                a, b = left.const & SCALAR_MASK, right.const & SCALAR_MASK
                if sem == "and":
                    out = a & b
                elif sem == "or":
                    out = a | b
                elif sem == "xor":
                    out = a ^ b
                elif sem == "shr":
                    out = a >> (b & 31)
                else:
                    signed = a - (1 << 32) if a >> 31 else a
                    out = signed >> (b & 31)
                self.write(name, Affine.constant(out & SCALAR_MASK))
            else:
                self.write(name, None)
        elif sem == "loop":
            left = self.read_reg(dest)
            self.write(name, None if left is None else left.offset(-1))
        else:  # loads, movd from MMX: value unknown
            self.write(name, None)


# ---- pass 2b: byte-interval MMX body walk --------------------------------------


def _or_hi(h1: int, h2: int) -> int:
    bits = max(h1.bit_length(), h2.bit_length())
    return (1 << bits) - 1


class _MmxWalk:
    """Byte-interval abstract state over one loop-body pass."""

    def __init__(self, entry_zero: frozenset[str]) -> None:
        self.state: dict[str, ByteWord] = {
            name: ZERO_WORD for name in entry_zero
        }
        self.written: set[str] = set()
        self.live_in: set[str] = set()
        #: position -> write sem, for carried-class/reduction decisions.
        self.write_sems: dict[str, list[str]] = {}

    def value(self, operand: object) -> ByteWord:
        if isinstance(operand, Register) and operand.is_mmx:
            if operand.name not in self.written:
                self.live_in.add(operand.name)
            return self.state.get(operand.name, TOP_WORD)
        return TOP_WORD  # memory or routed source

    def is_carried(self, name: str) -> bool:
        return name in self.live_in and name in self.written

    def _write(self, name: str, word: ByteWord, sem: str) -> None:
        self.written.add(name)
        self.write_sems.setdefault(name, []).append(sem)
        self.state[name] = word

    def step(self, instr: Instruction) -> None:
        dest = instr.dest
        sem = instr.opcode.sem
        if sem == "movq" or sem == "movd":
            if dest is None or not dest.is_mmx:
                if len(instr.operands) > 1:
                    # Store or movd-to-scalar: the MMX source is live-in.
                    self.value(instr.operands[1])
                return
            if sem == "movd":
                src = self.value(instr.operands[1])[:4]
                word = (TOP_BYTE,) * 4 + ((0, 0),) * 4
                if isinstance(instr.operands[1], Register) and instr.operands[1].is_mmx:
                    word = src + ((0, 0),) * 4
                self._write(dest.name, word, sem)
            else:
                self._write(dest.name, self.value(instr.operands[1]), sem)
            return
        if dest is None or not dest.is_mmx:
            return
        width = instr.opcode.width
        ops = instr.operands
        if sem == "pxor" and isinstance(ops[1], Register) and ops[1].name == dest.name:
            self._write(dest.name, ZERO_WORD, sem)
            return
        a = self.value(ops[0])
        b = self.value(ops[1]) if len(ops) > 1 and not isinstance(ops[1], Imm) else None
        word = self._transfer(sem, width, a, b, instr)
        self._write(dest.name, word, sem)

    def _transfer(
        self,
        sem: str,
        width: int | None,
        a: ByteWord,
        b: ByteWord | None,
        instr: Instruction,
    ) -> ByteWord:
        if sem in ("pand", "pandn", "por", "pxor"):
            assert b is not None
            out = []
            for (l1, h1), (l2, h2) in zip(a, b):
                if sem == "pand":
                    out.append((0, min(h1, h2)))
                elif sem == "pandn":
                    out.append((0, h2))
                elif sem == "por":
                    out.append((max(l1, l2), _or_hi(h1, h2)))
                else:
                    out.append((0, _or_hi(h1, h2)))
            return tuple(out)
        if sem in ("punpckl", "punpckh") and width is not None:
            assert b is not None
            span = width // 8
            lowhalf = sem == "punpckl"
            out_bytes: list[tuple[int, int]] = []
            for granule in range(4 // span):
                offset = (0 if lowhalf else 4) + granule * span
                out_bytes.extend(a[offset : offset + span])
                out_bytes.extend(b[offset : offset + span])
            return tuple(out_bytes)
        if sem == "pshufw":
            control = instr.operands[2]
            if isinstance(control, Imm):
                lanes = lane_view(a if b is None else b, 16)
                src = lanes if b is None else lane_view(b, 16)
                picked = [
                    src[(control.value >> (2 * i)) & 3] for i in range(4)
                ]
                return word_from_lanes(picked, 16)
            return TOP_WORD
        if sem == "vperm":
            control = instr.operands[2]
            if isinstance(control, Imm) and b is not None:
                concat = tuple(a) + tuple(b)
                return tuple(
                    concat[(control.value >> (4 * i)) & 0xF] for i in range(8)
                )
            return TOP_WORD
        if width is None:
            return TOP_WORD
        lane_max = (1 << width) - 1
        lanes_a = lane_view(a, width)
        lanes_b = lane_view(b, width) if b is not None else None
        out_lanes: list[tuple[int, int]] = []
        if sem in ("psll", "psrl", "psra"):
            count = instr.operands[1]
            if not isinstance(count, Imm):
                return TOP_WORD
            n = count.value
            for lo, hi in lanes_a:
                if sem == "psrl":
                    out_lanes.append((lo >> n, hi >> n))
                elif sem == "psll":
                    shifted = hi << n
                    out_lanes.append(
                        (lo << n, shifted) if shifted <= lane_max else (0, lane_max)
                    )
                else:
                    out_lanes.append((0, lane_max))
            return word_from_lanes(out_lanes, width)
        if lanes_b is None:
            return TOP_WORD
        for (l1, h1), (l2, h2) in zip(lanes_a, lanes_b):
            if sem == "padd":
                total = h1 + h2
                out_lanes.append((l1 + l2, total) if total <= lane_max else (0, lane_max))
            elif sem == "psub":
                out_lanes.append((l1 - h2, h1 - l2) if l1 >= h2 else (0, lane_max))
            elif sem == "paddus":
                out_lanes.append((min(l1 + l2, lane_max), min(h1 + h2, lane_max)))
            elif sem == "psubus":
                out_lanes.append((max(l1 - h2, 0), max(h1 - l2, 0)))
            elif sem == "pavg":
                out_lanes.append(((l1 + l2 + 1) >> 1, (h1 + h2 + 1) >> 1))
            elif sem == "pminu":
                out_lanes.append((min(l1, l2), min(h1, h2)))
            elif sem == "pmaxu":
                out_lanes.append((max(l1, l2), max(h1, h2)))
            elif sem == "pmullw":
                product = h1 * h2
                out_lanes.append(
                    (l1 * l2, product) if product <= lane_max else (0, lane_max)
                )
            elif sem in ("pmulhuw", "pmuludq"):
                shift = width if sem == "pmulhuw" else 0
                hi_bound = (h1 * h2) >> shift
                out_lanes.append(
                    ((l1 * l2) >> shift, min(hi_bound, lane_max))
                    if sem == "pmulhuw"
                    else (0, lane_max)
                )
            else:  # signed saturation, compares, signed multiplies: top lane
                out_lanes.append((0, lane_max))
        return word_from_lanes(out_lanes, width)


# ---- per-region certification --------------------------------------------------


@dataclass
class RegionCertification:
    """One loop region's findings and (when everything held) its certificate."""

    label: str
    start: int
    end: int
    findings: list[Finding] = field(default_factory=list)
    certificate: FusionCertificate | None = None

    def blocking_rules(self) -> list[str]:
        return sorted({
            finding.rule
            for finding in self.findings
            if finding.rule in BLOCKING_RULES
        })


@dataclass
class ProgramCertification:
    """All loop regions of one program, certified or diagnosed."""

    subject: str
    regions: list[RegionCertification] = field(default_factory=list)

    def findings(self) -> list[Finding]:
        merged: list[Finding] = []
        for region in self.regions:
            merged.extend(region.findings)
        return sort_findings(merged)

    def certificates(self) -> list[FusionCertificate]:
        return [
            region.certificate
            for region in self.regions
            if region.certificate is not None
        ]

    def certified_map(self) -> dict[str, list[str]]:
        """Loop label -> ``[]`` (certified) or the sorted blocking rules."""
        out: dict[str, list[str]] = {}
        for region in self.regions:
            if region.certificate is not None:
                out[region.label] = []
            else:
                out[region.label] = region.blocking_rules()
        return out


def _branch_target(instr: Instruction, program: Program) -> int | None:
    for operand in instr.operands:
        if isinstance(operand, Label):
            return program.target(operand.name)
    return None


def _contains(outer: LoopRegion, inner: LoopRegion) -> bool:
    return outer.start <= inner.start and inner.end <= outer.end


def _derive_trip(
    program: Program,
    region: LoopRegion,
    scalars: dict[str, int],
    out: FindingCollector,
    location: str,
) -> tuple[str | None, str | None, int | None]:
    """``(kind, counter, count)`` from the closing branch, or Nones."""
    closing = program.instructions[region.end]
    sem = closing.opcode.sem
    if sem == "loop":
        counter_reg = closing.operands[0]
        assert isinstance(counter_reg, Register)
        counter = counter_reg.name
        count = scalars.get(counter)
        if count is None or count < 1:
            out.add(
                "fx-trip-count", "warn", location,
                f"closing `loop {counter}` has no positive concrete entry "
                f"value for {counter} at the loop label",
                fix_hint="initialize the counter with a constant reachable "
                "by straight-line constant propagation",
                loop=region.label,
            )
            return "loop", counter, None
        return "loop", counter, count
    if sem == "jnz":
        # Find the flags producer the branch tests: the last flag-writing
        # body instruction must be a plain counter decrement.
        from repro.isa.instructions import FLAGS

        producer = None
        for index in range(region.end - 1, region.start - 1, -1):
            if FLAGS in program.instructions[index].regs_written():
                producer = program.instructions[index]
                break
        if producer is not None:
            psem = producer.opcode.sem
            dest = producer.dest
            decrements = psem == "dec" or (
                psem == "sub"
                and isinstance(producer.operands[1], Imm)
                and producer.operands[1].value == 1
            )
            if decrements and dest is not None:
                counter = dest.name
                count = scalars.get(counter)
                if count is None or count < 1:
                    out.add(
                        "fx-trip-count", "warn", location,
                        f"dec/jnz counter {counter} has no positive concrete "
                        "entry value at the loop label",
                        fix_hint="initialize the counter with a constant "
                        "reachable by straight-line constant propagation",
                        loop=region.label,
                    )
                    return "dec-jnz", counter, None
                return "dec-jnz", counter, count
        out.add(
            "fx-trip-count", "warn", location,
            "closing jnz does not test a plain counter decrement "
            "(dec/sub-1), so the trip count is not derivable",
            fix_hint="close the loop with `loop rC, label` or a dec+jnz pair",
            loop=region.label,
        )
        return None, None, None
    out.add(
        "fx-trip-count", "warn", location,
        f"closing branch `{closing.opcode.name}` is not a counted form "
        "(loop or dec+jnz): the trip count is not derivable",
        fix_hint="close the loop with `loop rC, label` or a dec+jnz pair",
        loop=region.label,
    )
    return None, None, None


def _certify_region(
    program: Program,
    region: LoopRegion,
    regions: list[LoopRegion],
    subject: str,
) -> RegionCertification:
    out = FindingCollector()
    label = region.label
    loc = f"{subject}: loop {label}"

    def iloc(position: int) -> str:
        return f"{subject}: loop {label}, instruction {position}"

    # ---- structure: single innermost straight-line body ----------------------
    for other in regions:
        if other is region:
            continue
        if other.start > region.end or other.end < region.start:
            continue
        inner = _contains(region, other)
        outer = _contains(other, region)
        if inner and not (outer and other.label < label):
            out.add(
                "fx-nested-region", "warn", loc,
                f"region contains inner loop region {other.label!r} "
                f"[{other.start}-{other.end}]: not an innermost body",
                fix_hint="certify the innermost loop; the outer level "
                "cannot fuse per-iteration",
                loop=label,
            )
        elif not inner and not outer:
            out.add(
                "fx-nested-region", "warn", loc,
                f"region partially overlaps region {other.label!r} "
                f"[{other.start}-{other.end}]",
                loop=label,
            )
    for position in range(region.start, region.end):
        instr = program.instructions[position]
        if not instr.is_branch:
            continue
        target = _branch_target(instr, program)
        if target is not None and region.start <= target <= region.end:
            out.add(
                "fx-internal-branch", "warn", iloc(position),
                f"`{instr.opcode.name}` branches within the loop body: "
                "alternate internal paths break the straight-line fused body",
                loop=label,
            )
        else:
            out.add(
                "fx-side-exit", "warn", iloc(position),
                f"`{instr.opcode.name}` exits the loop mid-body: a fused "
                "closure could not take the early exit",
                loop=label,
            )

    # ---- prefix constants and trip count -------------------------------------
    scalars, zeroed = loop_entry_state(program, region.start, regions)
    kind, counter, trip = _derive_trip(program, region, scalars, out, loc)

    # ---- scalar body walk ----------------------------------------------------
    walk = _ScalarWalk()
    accesses: list[MemAccess] = []
    for position in range(region.start, region.end):
        instr = program.instructions[position]
        if instr.reads_memory or instr.writes_memory:
            mem = instr.mem_operand
            assert mem is not None
            accesses.append(
                MemAccess(
                    position=position,
                    access="store" if instr.writes_memory else "load",
                    size=access_size(instr),
                    address=walk.address(mem),
                    mem=mem,
                )
            )
        walk.step(instr)

    # ---- loop-carried scalar classification ----------------------------------
    inductions: dict[str, int] = {}
    opaque: list[str] = []
    for name in sorted(walk.live_in & walk.written):
        exit_value = walk.env.get(name)
        if (
            isinstance(exit_value, Affine)
            and exit_value.coeffs == ((name, 1),)
        ):
            inductions[name] = exit_value.const
        else:
            opaque.append(name)
    if kind == "loop" and counter is not None:
        if counter in walk.written:
            out.add(
                "fx-trip-count", "warn", loc,
                f"`loop` counter {counter} is also written inside the body: "
                "the closing decrement no longer sizes the loop",
                loop=label,
            )
            trip = None
        else:
            inductions.setdefault(counter, -1)
    elif kind == "dec-jnz" and counter is not None:
        if inductions.get(counter) != -1:
            out.add(
                "fx-trip-count", "warn", loc,
                f"dec/jnz counter {counter} does not step by exactly -1 "
                "per iteration",
                loop=label,
            )
            trip = None

    # ---- memory footprints ---------------------------------------------------
    address_symbols: set[str] = set()
    for access in accesses:
        if access.address is None:
            out.add(
                "fx-induction-step", "warn", iloc(access.position),
                f"{access.access} address through {access.mem.base.name} is "
                "not affine in the loop-entry values (register updated "
                "non-affinely before the access)",
                fix_hint="advance pointers by constant strides only",
                loop=label,
            )
            continue
        address_symbols.update(access.address.symbols())
        stride = 0
        resolvable = True
        for symbol, coeff in access.address.coeffs:
            if symbol in inductions:
                stride += coeff * inductions[symbol]
            elif symbol in walk.written:
                out.add(
                    "fx-induction-step", "warn", iloc(access.position),
                    f"{access.access} address depends on {symbol}, which is "
                    "rewritten non-affinely inside the body: per-iteration "
                    "stride unknown",
                    fix_hint="advance pointers by constant strides only",
                    loop=label,
                )
                resolvable = False
                break
        if not resolvable:
            continue
        first = access.address.evaluate(scalars)
        if first is None:
            missing = sorted(
                symbol
                for symbol in access.address.symbols()
                if symbol not in scalars
            )
            out.add(
                "fx-mem-footprint", "warn", iloc(access.position),
                f"{access.access} address base value of "
                f"{', '.join(missing)} is unknown at the loop label: the "
                "byte footprint cannot be bounded",
                fix_hint="materialize base pointers with constants the "
                "prefix walk can track",
                loop=label,
            )
            continue
        access.first = first & SCALAR_MASK
        access.stride = stride
    for name in opaque:
        if name in address_symbols or name == counter:
            role = "the trip counter" if name == counter else "addressing"
            out.add(
                "fx-carried-blocking", "warn", loc,
                f"loop-carried scalar {name} is not an affine induction "
                f"and feeds {role}",
                loop=label,
            )

    # ---- MMIO store overlap --------------------------------------------------
    mmio_lo = DEFAULT_MMIO_BASE
    mmio_hi = DEFAULT_MMIO_BASE + MMIO_WINDOW_BYTES
    for access in accesses:
        if access.access != "store" or access.first is None:
            continue
        stride = access.stride or 0
        span = (trip - 1 if trip else 0) * stride
        lo = access.first + min(0, span)
        hi = access.first + max(0, span) + access.size
        if lo < mmio_hi and hi > mmio_lo:
            out.add(
                "fx-mmio-store", "warn", iloc(access.position),
                f"store range [{lo:#x}, {hi:#x}) overlaps the SPU MMIO "
                f"window [{mmio_lo:#x}, {mmio_hi:#x})",
                fix_hint="keep device stores outside certified loop bodies",
                loop=label,
            )

    # ---- MMX byte-interval walk ----------------------------------------------
    body_mmx_written: set[str] = set()
    for position in range(region.start, region.end):
        for reg in program.instructions[position].regs_written():
            if isinstance(reg, Register) and reg.is_mmx:
                body_mmx_written.add(reg.name)
    mmx = _MmxWalk(frozenset(zeroed - body_mmx_written))
    accumulate_bounds: dict[int, int | None] = {}
    for position in range(region.start, region.end):
        instr = program.instructions[position]
        sem = instr.opcode.sem
        dest = instr.dest
        if (
            dest is not None and dest.is_mmx
            and swar_status(sem) == "modular"
            and len(instr.operands) > 1
        ):
            source = instr.operands[1]
            if isinstance(source, Register) and source.is_mmx:
                accumulate_bounds[position] = word_bound(
                    mmx.value(source), instr.opcode.width
                )
            else:
                accumulate_bounds[position] = None
        mmx.step(instr)

    # ---- packed-op SWAR records ----------------------------------------------
    swar_records: list[dict[str, Any]] = []
    for position in range(region.start, region.end):
        instr = program.instructions[position]
        if instr.iclass not in (
            InstrClass.MMX_ALU, InstrClass.MMX_MUL, InstrClass.MMX_SHIFT
        ):
            continue
        width = instr.opcode.width
        swar_records.append({
            "position": position,
            "op": instr.opcode.name,
            "width": width,
            "status": swar_status(instr.opcode.sem),
        })
        if width is not None and width not in MASKS:
            out.add(
                "fx-swar-width", "error", iloc(position),
                f"`{instr.opcode.name}` lane width {width} is outside the "
                f"certified SWAR mask algebra (widths {sorted(MASKS)})",
                loop=label,
            )
        if instr.opcode.sem in ("psll", "psrl", "psra") and len(instr.operands) > 1:
            count = instr.operands[1]
            if isinstance(count, Register):
                out.add(
                    "fx-swar-shift", "warn", iloc(position),
                    f"`{instr.opcode.name}` takes its count from "
                    f"{count.name}: carry-break masks exist per immediate "
                    "count only",
                    fix_hint="hoist the count into an immediate",
                    loop=label,
                )

    # ---- modular carried accumulators ----------------------------------------
    overflow_records: list[dict[str, Any]] = []
    per_register: dict[str, list[int]] = {}
    for position in sorted(accumulate_bounds):
        dest = program.instructions[position].dest
        assert dest is not None
        if mmx.is_carried(dest.name):
            overflow_records.append(
                {"position": position, "register": dest.name}
            )
            per_register.setdefault(dest.name, []).append(position)
    for name in sorted(per_register):
        positions = per_register[name]
        growth = 0
        provable = name in zeroed and trip is not None
        lane_max = None
        for position in positions:
            instr = program.instructions[position]
            if instr.opcode.sem != "padd" or instr.opcode.width is None:
                provable = False
                break
            bound = accumulate_bounds[position]
            if bound is None:
                provable = False
                break
            growth += bound
            width_max = (1 << instr.opcode.width) - 1
            lane_max = width_max if lane_max is None else min(lane_max, width_max)
        if provable and lane_max is not None and trip is not None:
            provable = trip * growth <= lane_max
        if not provable:
            out.add(
                "fx-lane-overflow", "info", loc,
                f"modular packed accumulator {name} may wrap within the "
                "derived trip count: batched execution must renormalize "
                "lanes per iteration",
                loop=label,
            )

    # ---- loop-carried memory dependences -------------------------------------
    mem_carried_records: list[dict[str, Any]] = []
    resolved = [a for a in accesses if a.first is not None and a.stride is not None]
    if trip is not None:
        for store in (a for a in resolved if a.access == "store"):
            s_span = (trip - 1) * store.stride  # type: ignore[operator]
            s_lo = store.first + min(0, s_span)  # type: ignore[operator]
            s_hi = store.first + max(0, s_span) + store.size  # type: ignore[operator]
            for load in (a for a in resolved if a.access == "load"):
                l_span = (trip - 1) * load.stride  # type: ignore[operator]
                l_lo = load.first + min(0, l_span)  # type: ignore[operator]
                l_hi = load.first + max(0, l_span) + load.size  # type: ignore[operator]
                if s_hi <= l_lo or l_hi <= s_lo:
                    continue
                distance: int | None
                if (
                    store.stride == load.stride
                    and store.stride != 0
                    and (store.first - load.first) % store.stride == 0  # type: ignore[operator]
                ):
                    distance = (store.first - load.first) // store.stride  # type: ignore[operator]
                    if distance <= 0 or distance >= trip:
                        continue
                elif store.stride == load.stride == 0:
                    distance = 1
                else:
                    distance = None
                mem_carried_records.append({
                    "store": store.position,
                    "load": load.position,
                    "distance": distance,
                })
                via = (
                    f"iteration distance {distance}"
                    if distance is not None
                    else "an unresolved iteration distance"
                )
                out.add(
                    "fx-mem-carried", "info", iloc(load.position),
                    f"load may read bytes stored at instruction "
                    f"{store.position} at {via}: per-iteration fusion "
                    "preserves the dependence, cross-iteration batching "
                    "must not reorder it",
                    loop=label,
                )

    # ---- certificate issuance ------------------------------------------------
    findings = sort_findings(out.findings)
    certification = RegionCertification(
        label=label, start=region.start, end=region.end, findings=findings
    )
    if certification.blocking_rules() or kind is None or trip is None:
        return certification

    carried_records: list[dict[str, Any]] = []
    for name in sorted(inductions):
        carried_records.append(
            {"register": name, "class": "induction", "step": inductions[name]}
        )
    for name in opaque:
        carried_records.append({"register": name, "class": "opaque"})
    for name in sorted(mmx.live_in & mmx.written):
        sems = mmx.write_sems.get(name, [])
        cls = (
            "reduction"
            if sems and all(sem in REDUCTION_SEMS for sem in sems)
            else "carried"
        )
        carried_records.append({"register": name, "class": cls})
    carried_records.sort(key=lambda rec: str(rec["register"]))

    needed = address_symbols | set(inductions)
    if counter is not None:
        needed.add(counter)
    entry = {
        name: scalars[name] for name in sorted(needed) if name in scalars
    }

    scalar_reads: set[str] = set()
    mmx_reads: set[str] = set()
    scalar_writes: set[str] = set()
    mmx_writes: set[str] = set()
    for position in range(region.start, region.end + 1):
        instr = program.instructions[position]
        for reg in instr.regs_read():
            if isinstance(reg, Register):
                (mmx_reads if reg.is_mmx else scalar_reads).add(reg.name)
        for reg in instr.regs_written():
            if isinstance(reg, Register):
                (mmx_writes if reg.is_mmx else scalar_writes).add(reg.name)

    memory_records = [
        {
            "position": access.position,
            "access": access.access,
            "size": access.size,
            "first": access.first,
            "stride": access.stride,
        }
        for access in resolved
    ]

    certificate = FusionCertificate(
        program=subject,
        loop=label,
        start=region.start,
        end=region.end,
        body=tuple(
            str(program.instructions[position])
            for position in range(region.start, region.end + 1)
        ),
        trip={"kind": kind, "counter": counter, "count": trip},
        entry=entry,
        reads={"scalar": sorted(scalar_reads), "mmx": sorted(mmx_reads)},
        writes={"scalar": sorted(scalar_writes), "mmx": sorted(mmx_writes)},
        carried=tuple(carried_records),
        memory=tuple(memory_records),
        swar=tuple(swar_records),
        overflow=tuple(overflow_records),
        mem_carried=tuple(mem_carried_records),
    )

    # Issuance-time self-check: the independent replay checker must accept
    # every certificate we ship; a failure is a certifier bug surfaced as
    # fx-cert-* findings rather than a bogus proof.
    from repro.analysis.absint.replay import (
        check_fusion_certificate,
        fusion_certificate_findings,
    )

    issues = check_fusion_certificate(certificate, program)
    if issues:
        extra = fusion_certificate_findings(issues, subject=subject)
        certification.findings = sort_findings(findings + extra)
        return certification
    certification.certificate = certificate
    return certification


def certify_program(program: Program, subject: str = "program") -> ProgramCertification:
    """Certify every loop region of *program* for superop fusion."""
    regions = sorted(
        find_loop_regions(program),
        key=lambda region: (region.start, region.end, region.label),
    )
    return ProgramCertification(
        subject=subject,
        regions=[
            _certify_region(program, region, regions, subject)
            for region in regions
        ],
    )

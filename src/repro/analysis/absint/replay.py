"""Independent replay checking of :class:`FusionCertificate` claims.

Mirrors the PR 3 offload-certificate pattern: the certifier proves, this
module *re-derives*.  Nothing here imports the abstract interpreter — the
checker works from the certificate's pure data plus the program it names,
re-deriving every claim by concrete execution:

- the body text must match the shipped instructions (else *stale*),
- register read/write footprints are recomputed from operand decoding,
- the loop is then *run* for the certified trip count with scalars seeded
  from the certificate's entry constants: every memory access must land on
  its recorded ``first + k * stride`` closed form, every induction register
  must hit ``entry + (k + 1) * step`` after each iteration, the counter must
  exhaust exactly at the recorded trip, and no store may touch the MMIO
  window,
- packed-op SWAR records, carried classes, overflow and carried-memory
  records are recomputed structurally and compared both directions.

Any disagreement is a :class:`FusionCertIssue`;
:func:`fusion_certificate_findings` maps them onto the ``fx-cert-*`` rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.absint.certificate import FUSION_CERT_SCHEMA, FusionCertificate
from repro.analysis.findings import Finding, FindingCollector
from repro.core.mmio import DEFAULT_MMIO_BASE, MMIO_WINDOW_BYTES
from repro.isa.instructions import Instruction, Program
from repro.isa.opcodes import InstrClass
from repro.isa.operands import Imm, Mem
from repro.isa.registers import Register
from repro.simd.swar import MASKS

_MASK = 0xFFFFFFFF

#: Replay refuses to run implausibly long loops; anything above this bound
#: cannot be certified (the issuance self-check runs this same code).
REPLAY_TRIP_LIMIT = 65536

#: Same taxonomy the certifier records — duplicated as literal data on
#: purpose so a certifier-side edit cannot silently rewrite the checker.
_SATURATING = frozenset({
    "padds", "paddus", "psubs", "psubus", "packss", "packus",
    "pavg", "pmins", "pmaxs", "pminu", "pmaxu",
})
_MODULAR = frozenset({"padd", "psub", "pmullw", "pmaddwd", "psll"})
_EXACT = frozenset({
    "pand", "pandn", "por", "pxor", "pcmpeq", "pcmpgt",
    "pmulhw", "pmulhuw", "pmuludq", "punpckl", "punpckh",
    "pshufw", "vperm", "psrl", "psra",
})

_REDUCTION = frozenset({
    "padd", "psub", "padds", "psubs", "paddus", "psubus",
    "pmins", "pmaxs", "pminu", "pmaxu", "pavg",
    "pand", "por", "pxor",
})


@dataclass(frozen=True)
class FusionCertIssue:
    """One replay disagreement: ``code`` selects the ``fx-cert-*`` rule."""

    code: str  # "schema" | "stale" | "mismatch"
    loop: str
    message: str


def _status(sem: str) -> str | None:
    if sem in _SATURATING:
        return "saturating"
    if sem in _MODULAR:
        return "modular"
    if sem in _EXACT:
        return "exact"
    return None


def _access_kind(instr: Instruction) -> str | None:
    if instr.writes_memory:
        return "store"
    if instr.reads_memory:
        return "load"
    return None


def _access_size(instr: Instruction) -> int:
    if instr.opcode.width is not None and instr.opcode.sem != "movq":
        return instr.opcode.width // 8
    return 8


def _is_zero_idiom(instr: Instruction) -> bool:
    """``pxor r, r`` reads nothing architecturally: it unconditionally zeroes."""
    if instr.opcode.sem != "pxor" or len(instr.operands) != 2:
        return False
    first, second = instr.operands
    return (
        isinstance(first, Register)
        and isinstance(second, Register)
        and first.name == second.name
    )


def _region_footprints(
    program: Program, start: int, end: int
) -> tuple[dict[str, list[str]], dict[str, list[str]], set[str]]:
    """(reads, writes, carried-names) recomputed from operand decoding."""
    scalar_reads: set[str] = set()
    mmx_reads: set[str] = set()
    scalar_writes: set[str] = set()
    mmx_writes: set[str] = set()
    written_so_far: set[str] = set()
    live_in: set[str] = set()
    for position in range(start, end + 1):
        instr = program.instructions[position]
        zero_idiom = _is_zero_idiom(instr)
        for reg in instr.regs_read():
            if not isinstance(reg, Register):
                continue
            (mmx_reads if reg.is_mmx else scalar_reads).add(reg.name)
            if not zero_idiom and reg.name not in written_so_far:
                live_in.add(reg.name)
        for reg in instr.regs_written():
            if not isinstance(reg, Register):
                continue
            (mmx_writes if reg.is_mmx else scalar_writes).add(reg.name)
            written_so_far.add(reg.name)
    reads = {"scalar": sorted(scalar_reads), "mmx": sorted(mmx_reads)}
    writes = {"scalar": sorted(scalar_writes), "mmx": sorted(mmx_writes)}
    return reads, writes, live_in & written_so_far


# ---- concrete scalar re-execution ----------------------------------------------


class _Replay:
    """Minimal concrete scalar machine: 32-bit masked, flags as a last result.

    Deliberately written against the ISA reference semantics rather than
    shared with the certifier, so the two cannot fail identically.
    """

    def __init__(self, entry: dict[str, int]) -> None:
        self.env: dict[str, int] = {
            name: value & _MASK for name, value in entry.items()
        }
        self.last_result: int | None = None

    def get(self, name: str) -> int | None:
        return self.env.get(name)

    def address(self, mem: Mem) -> int | None:
        base = self.env.get(mem.base.name)
        if base is None:
            return None
        address = base + mem.disp
        if mem.index is not None:
            index = self.env.get(mem.index.name)
            if index is None:
                return None
            address += index * mem.scale
        return address & _MASK

    def _operand(self, operand: object) -> int | None:
        if isinstance(operand, Imm):
            return operand.value & _MASK
        if isinstance(operand, Register) and not operand.is_mmx:
            return self.env.get(operand.name)
        return None

    def _set(self, name: str, value: int | None, flags: bool) -> None:
        if value is None:
            self.env.pop(name, None)
            if flags:
                self.last_result = None
            return
        value &= _MASK
        self.env[name] = value
        if flags:
            self.last_result = value

    def step(self, instr: Instruction) -> None:
        sem = instr.opcode.sem
        dest = instr.dest
        if sem == "cmp":
            left = self._operand(instr.operands[0])
            right = self._operand(instr.operands[1])
            self.last_result = (
                None if left is None or right is None else (left - right) & _MASK
            )
            return
        if dest is None or dest.is_mmx:
            return
        name = dest.name
        if sem == "mov":
            self._set(name, self._operand(instr.operands[1]), flags=False)
            return
        if sem == "lea":
            mem = instr.mem_operand
            self._set(
                name, self.address(mem) if mem is not None else None, flags=False
            )
            return
        if sem in ("add", "sub", "and", "or", "xor", "imul"):
            left = self.env.get(name)
            right = self._operand(instr.operands[1])
            if left is None or right is None:
                self._set(name, None, flags=True)
                return
            value = {
                "add": left + right,
                "sub": left - right,
                "and": left & right,
                "or": left | right,
                "xor": left ^ right,
                "imul": left * right,
            }[sem]
            self._set(name, value, flags=True)
            return
        if sem in ("shl", "shr", "sar"):
            left = self.env.get(name)
            count = instr.operands[1]
            if left is None or not isinstance(count, Imm):
                self._set(name, None, flags=True)
                return
            n = count.value & 31
            if sem == "shl":
                value = left << n
            elif sem == "shr":
                value = left >> n
            else:
                signed = left - (1 << 32) if left >> 31 else left
                value = signed >> n
            self._set(name, value, flags=True)
            return
        if sem in ("inc", "dec", "neg", "loop"):
            left = self.env.get(name)
            if left is None:
                self._set(name, None, flags=True)
                return
            if sem == "inc":
                value = left + 1
            elif sem == "neg":
                value = -left
            else:  # dec, and the closing `loop` decrement
                value = left - 1
            self._set(name, value, flags=True)
            return
        # Loads, movd-from-MMX and anything else: destination unknown.
        self._set(name, None, flags=False)


# ---- the checker ---------------------------------------------------------------


def check_fusion_certificate(
    cert: FusionCertificate, program: Program
) -> list[FusionCertIssue]:
    """Every disagreement between *cert* and *program*; empty means verified."""
    issues: list[FusionCertIssue] = []
    loop = cert.loop

    def issue(code: str, message: str) -> None:
        issues.append(FusionCertIssue(code=code, loop=loop, message=message))

    if cert.schema != FUSION_CERT_SCHEMA:
        issue(
            "schema",
            f"unknown certificate schema {cert.schema!r} "
            f"(checker speaks {FUSION_CERT_SCHEMA!r})",
        )
        return issues

    # ---- staleness: the certified text must be the code that ships -----------
    size = len(program.instructions)
    if not (0 <= cert.start <= cert.end < size):
        issue("stale", f"region [{cert.start}-{cert.end}] is out of bounds")
        return issues
    if program.labels.get(loop) != cert.start:
        issue(
            "stale",
            f"label {loop!r} no longer marks instruction {cert.start}",
        )
        return issues
    span = cert.end - cert.start + 1
    if len(cert.body) != span:
        issue(
            "stale",
            f"certificate records {len(cert.body)} body lines for a "
            f"{span}-instruction region",
        )
        return issues
    for offset, line in enumerate(cert.body):
        actual = str(program.instructions[cert.start + offset])
        if actual != line:
            issue(
                "stale",
                f"body line {cert.start + offset} is {actual!r}, "
                f"certificate says {line!r}",
            )
            return issues

    # ---- register footprints -------------------------------------------------
    reads, writes, carried_names = _region_footprints(
        program, cert.start, cert.end
    )
    if cert.reads != reads:
        issue("mismatch", f"read footprint is {reads}, certificate says {cert.reads}")
    if cert.writes != writes:
        issue(
            "mismatch", f"write footprint is {writes}, certificate says {cert.writes}"
        )

    # ---- carried classification, both directions -----------------------------
    recorded_carried = {str(rec.get("register")): rec for rec in cert.carried}
    for name in sorted(carried_names):
        if name not in recorded_carried:
            issue("mismatch", f"loop-carried register {name} has no carried record")
    for name, rec in recorded_carried.items():
        if name not in carried_names:
            issue(
                "mismatch",
                f"carried record names {name}, which is not live-in and "
                "written in the region",
            )
        cls = rec.get("class")
        if cls not in ("induction", "opaque", "reduction", "carried"):
            issue("mismatch", f"carried record for {name} has unknown class {cls!r}")
        elif cls == "induction" and not isinstance(rec.get("step"), int):
            issue("mismatch", f"induction record for {name} has no integer step")
        elif cls == "reduction":
            sems = [
                program.instructions[pos].opcode.sem
                for pos in range(cert.start, cert.end + 1)
                for reg in program.instructions[pos].regs_written()
                if isinstance(reg, Register) and reg.name == name
            ]
            if not sems or not all(sem in _REDUCTION for sem in sems):
                issue(
                    "mismatch",
                    f"reduction record for {name} but its writes are not all "
                    "accumulating packed ops",
                )

    # ---- trip plausibility ---------------------------------------------------
    kind = cert.trip.get("kind")
    counter = cert.trip.get("counter")
    trip = cert.trip.get("count")
    if kind not in ("loop", "dec-jnz") or not isinstance(counter, str):
        issue("mismatch", f"trip record {cert.trip!r} has no known form")
        return issues
    if not isinstance(trip, int) or trip < 1:
        issue("mismatch", f"trip count {trip!r} is not a positive integer")
        return issues
    if trip > REPLAY_TRIP_LIMIT:
        issue(
            "mismatch",
            f"trip count {trip} exceeds the replay budget "
            f"({REPLAY_TRIP_LIMIT}); the loop cannot be re-verified",
        )
        return issues
    closing = program.instructions[cert.end]
    if kind == "loop" and closing.opcode.sem != "loop":
        issue("mismatch", "trip kind is 'loop' but the closing branch is not")
        return issues
    if kind == "dec-jnz" and closing.opcode.sem != "jnz":
        issue("mismatch", "trip kind is 'dec-jnz' but the closing branch is not jnz")
        return issues

    # ---- SWAR records, both directions ---------------------------------------
    expected_swar: list[dict[str, Any]] = []
    for position in range(cert.start, cert.end):
        instr = program.instructions[position]
        if instr.iclass not in (
            InstrClass.MMX_ALU, InstrClass.MMX_MUL, InstrClass.MMX_SHIFT
        ):
            continue
        width = instr.opcode.width
        expected_swar.append({
            "position": position,
            "op": instr.opcode.name,
            "width": width,
            "status": _status(instr.opcode.sem),
        })
        if width is not None and width not in MASKS:
            issue(
                "mismatch",
                f"packed op at {position} has lane width {width}, outside "
                "the certified SWAR mask algebra",
            )
        if instr.opcode.sem in ("psll", "psrl", "psra") and len(instr.operands) > 1:
            if isinstance(instr.operands[1], Register):
                issue(
                    "mismatch",
                    f"packed shift at {position} takes a register count: "
                    "not coverable by immediate-count masks",
                )
    if list(cert.swar) != expected_swar:
        issue(
            "mismatch",
            f"SWAR records disagree: recomputed {len(expected_swar)} "
            f"records, certificate has {len(cert.swar)} (or contents differ)",
        )

    # ---- overflow records, both directions -----------------------------------
    mmx_carried = {
        name for name in carried_names if name.startswith("mm")
    }
    expected_overflow: list[dict[str, Any]] = []
    for position in range(cert.start, cert.end):
        instr = program.instructions[position]
        dest = instr.dest
        if (
            dest is not None and dest.is_mmx
            and _status(instr.opcode.sem) == "modular"
            and dest.name in mmx_carried
        ):
            expected_overflow.append(
                {"position": position, "register": dest.name}
            )
    if list(cert.overflow) != expected_overflow:
        issue(
            "mismatch",
            "overflow records disagree with the modular carried "
            "accumulators found in the body",
        )

    # ---- memory record indices -----------------------------------------------
    memory_by_position: dict[int, dict[str, Any]] = {}
    for rec in cert.memory:
        position = rec.get("position")
        if not isinstance(position, int) or not (
            cert.start <= position < cert.end
        ):
            issue("mismatch", f"memory record position {position!r} is not in the body")
            continue
        memory_by_position[position] = rec
    for position in range(cert.start, cert.end):
        instr = program.instructions[position]
        kind_here = _access_kind(instr)
        rec = memory_by_position.get(position)
        if kind_here is None:
            if rec is not None:
                issue(
                    "mismatch",
                    f"memory record at {position} but the instruction does "
                    "not access memory",
                )
            continue
        if rec is None:
            issue("mismatch", f"{kind_here} at {position} has no memory record")
            continue
        if rec.get("access") != kind_here:
            issue(
                "mismatch",
                f"access at {position} is a {kind_here}, certificate says "
                f"{rec.get('access')!r}",
            )
        if rec.get("size") != _access_size(instr):
            issue(
                "mismatch",
                f"access at {position} moves {_access_size(instr)} bytes, "
                f"certificate says {rec.get('size')!r}",
            )
    if issues:
        return issues

    # ---- carried-memory record arithmetic ------------------------------------
    for rec in cert.mem_carried:
        store = memory_by_position.get(rec.get("store", -1))
        load = memory_by_position.get(rec.get("load", -1))
        if store is None or load is None or store.get("access") != "store":
            issue("mismatch", f"carried-memory record {rec!r} names unknown accesses")
            continue
        distance = rec.get("distance")
        if distance is None:
            continue
        if not isinstance(distance, int) or distance < 1:
            issue(
                "mismatch",
                f"carried-memory distance {distance!r} is not a positive "
                "iteration count",
            )
            continue
        stride = store.get("stride")
        if (
            store.get("stride") != load.get("stride")
            or not isinstance(stride, int)
            or store.get("first", 0) - load.get("first", 0) != distance * stride
        ):
            issue(
                "mismatch",
                f"carried-memory record {rec!r} is inconsistent with the "
                "recorded closed forms",
            )
    if issues:
        return issues

    # ---- concrete replay of every certified iteration ------------------------
    machine = _Replay(cert.entry)
    for rec in cert.carried:
        name = str(rec.get("register"))
        if rec.get("class") == "induction" and name not in machine.env:
            machine.env[name] = 0
    induction_seed = {
        str(rec["register"]): machine.env[str(rec["register"])]
        for rec in cert.carried
        if rec.get("class") == "induction"
    }
    mmio_lo = DEFAULT_MMIO_BASE
    mmio_hi = DEFAULT_MMIO_BASE + MMIO_WINDOW_BYTES
    for k in range(trip):
        for position in range(cert.start, cert.end):
            instr = program.instructions[position]
            if _access_kind(instr) is not None:
                mem = instr.mem_operand
                assert mem is not None
                address = machine.address(mem)
                rec = memory_by_position[position]
                expected = (
                    int(rec["first"]) + k * int(rec["stride"])
                ) & _MASK
                if address is None:
                    issue(
                        "mismatch",
                        f"iteration {k}: address at {position} is not "
                        "concretely computable from the entry constants",
                    )
                    return issues
                if address != expected:
                    issue(
                        "mismatch",
                        f"iteration {k}: {rec['access']} at {position} hits "
                        f"{address:#x}, closed form says {expected:#x}",
                    )
                    return issues
                if rec["access"] == "store" and not (
                    address + int(rec["size"]) <= mmio_lo or address >= mmio_hi
                ):
                    issue(
                        "mismatch",
                        f"iteration {k}: store at {position} touches the "
                        "MMIO window",
                    )
                    return issues
            machine.step(instr)
        # The closing branch: decrement-and-test or test-last-result.
        if kind == "loop":
            machine.step(closing)
            value = machine.get(counter)
            taken = value is not None and value != 0
        else:
            taken = machine.last_result is not None and machine.last_result != 0
            if machine.last_result is None:
                issue(
                    "mismatch",
                    f"iteration {k}: closing jnz tests an unknown flag value",
                )
                return issues
        should_continue = k < trip - 1
        if taken != should_continue:
            issue(
                "mismatch",
                f"iteration {k}: closing branch is "
                f"{'taken' if taken else 'not taken'}, trip count {trip} "
                f"says it should {'be' if should_continue else 'not be'}",
            )
            return issues
        for rec in cert.carried:
            if rec.get("class") != "induction":
                continue
            name = str(rec["register"])
            step = int(rec["step"])
            actual = machine.get(name)
            expected_value = (induction_seed[name] + (k + 1) * step) & _MASK
            if actual != expected_value:
                issue(
                    "mismatch",
                    f"iteration {k}: induction {name} is {actual!r}, "
                    f"step {step} says {expected_value}",
                )
                return issues
    return issues


def fusion_certificate_findings(
    issues: list[FusionCertIssue], subject: str
) -> list[Finding]:
    """Map replay disagreements onto ``fx-cert-*`` findings."""
    code_to_rule = {
        "schema": "fx-cert-schema",
        "stale": "fx-cert-stale",
        "mismatch": "fx-cert-mismatch",
    }
    out = FindingCollector()
    for item in issues:
        out.add(
            code_to_rule[item.code],
            "error",
            f"{subject}: loop {item.loop}",
            item.message,
            fix_hint="re-run the certifier against the current program",
            loop=item.loop,
        )
    return out.findings

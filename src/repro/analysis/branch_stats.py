"""Branch statistics (paper Table 2).

Table 2 lists, per media algorithm: clocks executed, branches executed,
missed branches and the miss percentage.  The paper's absolute magnitudes
(~1e10 clocks) come from the IPP timing harness repeating each routine for
seconds of wall time; per-invocation behaviour is what the simulator
measures, and :func:`scale_to_paper` converts it to the paper's run length
by deriving the implied invocation count from the published clock totals
(a documented calibration, see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu import RunStats


@dataclass(frozen=True)
class BranchRow:
    """One Table 2 row."""

    name: str
    clocks: float
    branches: float
    missed: float
    description: str = ""

    @property
    def missed_pct(self) -> float:
        return self.missed / self.branches if self.branches else 0.0


def branch_row(name: str, stats: RunStats, description: str = "") -> BranchRow:
    """Per-invocation branch statistics from a run."""
    return BranchRow(
        name=name,
        clocks=float(stats.cycles),
        branches=float(stats.branches),
        missed=float(stats.mispredicts),
        description=description,
    )


def scale_to_paper(row: BranchRow, paper_clocks: float) -> BranchRow:
    """Scale a per-invocation row to the paper's published run length.

    The scale factor is ``paper_clocks / measured_clocks`` — i.e. how many
    invocations the IPP harness's run corresponds to.  Loop-exit mispredicts
    scale linearly with invocations, like in the real harness.
    """
    factor = paper_clocks / row.clocks if row.clocks else 0.0
    return BranchRow(
        name=row.name,
        clocks=row.clocks * factor,
        branches=row.branches * factor,
        missed=row.missed * factor,
        description=row.description,
    )

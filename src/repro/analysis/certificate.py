"""Offload-soundness certifier: re-verify the permute off-load's evidence.

The off-load pass emits an :class:`~repro.core.dataflow.OffloadCertificate`
per accelerated loop — the removal set, the exact byte routes, and per
deleted permute the consumer routes reproducing its byte movement.  This
module turns :func:`repro.core.dataflow.check_certificate`'s issues into
``oc-*`` findings and adds the one check the dataflow layer cannot do alone:
``oc-program-mismatch``, comparing the certificate's routes against the
*controller program that actually ships* — the synthesized
:class:`~repro.core.program.SPUProgram` — state by state.  That closing of
the loop is what catches a silent route-selector flip in control memory: the
certificate still proves the intended routes sound, but the program no
longer implements them.
"""

from __future__ import annotations

from repro.errors import RouteError
from repro.analysis.findings import Finding, FindingCollector
from repro.analysis.schedule import chain_states
from repro.core.dataflow import OffloadCertificate, check_certificate
from repro.core.interconnect import (
    CONFIG_D_MODED,
    CONFIGS,
    CrossbarConfig,
)
from repro.core.program import SPUProgram

#: CertIssue.code -> lint rule id.
_CODE_TO_RULE = {
    "stale": "oc-cert-stale",
    "not-permute": "oc-not-permute",
    "live-out": "oc-live-out-removed",
    "route-illegal": "oc-route-illegal",
    "byte-mismatch": "oc-byte-mismatch",
    "backedge": "oc-backedge-mismatch",
}


def resolve_config(name: str) -> CrossbarConfig:
    """Config lookup that also covers the §6 moded extension (``D+``)."""
    if name == CONFIG_D_MODED.name:
        return CONFIG_D_MODED
    return CONFIGS[name.upper()]


def certificate_findings(
    certificate: OffloadCertificate,
    spu_program: SPUProgram | None = None,
    subject: str | None = None,
) -> list[Finding]:
    """All ``oc-*`` findings for one certificate.

    With *spu_program* supplied, additionally cross-checks the certificate's
    routes against the controller program's per-state routes
    (``oc-program-mismatch``).
    """
    out = FindingCollector()
    label = subject if subject is not None else certificate.loop_label
    config = resolve_config(certificate.config_name)

    for issue in check_certificate(certificate, config):
        out.add(
            _CODE_TO_RULE[issue.code],
            "error",
            f"{label} ({issue.location})",
            issue.message,
            fix_hint="re-run the off-load pass; a certificate must describe "
            "exactly the transformation that ships",
        )

    if spu_program is not None:
        out.extend(
            _program_agreement(certificate, spu_program, label, config)
        )
    return out.findings


def _program_agreement(
    certificate: OffloadCertificate,
    spu_program: SPUProgram,
    label: str,
    config: CrossbarConfig,
) -> list[Finding]:
    """``oc-program-mismatch``: certificate routes vs shipped control words."""
    out = FindingCollector()
    chain = chain_states(spu_program)
    kept = certificate.kept_positions
    if len(chain) != len(kept):
        out.add(
            "oc-program-mismatch",
            "error",
            f"{label} (context program {spu_program.name!r})",
            f"controller loop has {len(chain)} states but the certificate "
            f"keeps {len(kept)} body instructions: the program cannot "
            "implement the certified schedule",
            fix_hint="one controller state per kept body instruction",
        )
        return out.findings
    for index, (state_index, position) in enumerate(zip(chain, kept)):
        state = spu_program.states[state_index]
        expected: dict[int, tuple] = {}
        for slot, byte_route in certificate.routes.get(position, {}).items():
            try:
                expected[slot] = config.check_byte_route(tuple(byte_route))
            except RouteError:
                continue  # oc-route-illegal already reported by the checker
        for slot in sorted(set(expected) | set(state.routes)):
            want = expected.get(slot)
            have = state.routes.get(slot)
            if want != have:
                out.add(
                    "oc-program-mismatch",
                    "error",
                    f"{label}+{position} (state {state_index} slot {slot})",
                    "certificate route "
                    + (f"{want}" if want is not None else "(straight)")
                    + " disagrees with the shipped control word's "
                    + (f"{have}" if have is not None else "(straight)")
                    + ": control memory does not implement the certified "
                    "byte movement",
                    fix_hint="regenerate the controller program from the "
                    "certified routes (or re-upload uncorrupted control "
                    "memory)",
                )
    return out.findings

"""ASCII rendering of Figure 9: paired bars with the hashed MMX portion.

The paper's figure shows, per benchmark, the MMX-only and MMX+SPU cycle
bars, with a hashed region marking the fraction of cycles the MMX engine is
executing.  We draw the same thing in text: ``#`` for MMX-busy cycles, ``-``
for the rest.
"""

from __future__ import annotations

from repro.kernels.base import KernelComparison

BAR_WIDTH = 48


def _bar(cycles: int, busy_fraction: float, scale: float) -> str:
    length = max(1, round(cycles * scale))
    hashed = round(length * busy_fraction)
    return "#" * hashed + "-" * (length - hashed)


def fig9_chart(comparisons: dict[str, KernelComparison]) -> str:
    """Render the Figure 9 bars for a set of kernel comparisons."""
    if not comparisons:
        return "(no data)"
    longest = max(c.mmx.cycles for c in comparisons.values())
    scale = BAR_WIDTH / longest if longest else 1.0
    name_width = max(len(name) for name in comparisons) + 2
    lines = [
        "Figure 9 — cycles executed (# = MMX engine busy, - = other)",
        "",
    ]
    for name, comparison in comparisons.items():
        mmx_bar = _bar(comparison.mmx.cycles, comparison.mmx.mmx_busy_fraction, scale)
        spu_bar = _bar(comparison.spu.cycles, comparison.spu.mmx_busy_fraction, scale)
        lines.append(f"{name:<{name_width}} MMX     |{mmx_bar} {comparison.mmx.cycles}")
        lines.append(
            f"{'':<{name_width}} MMX+SPU |{spu_bar} {comparison.spu.cycles}"
            f"  ({comparison.speedup:.3f}x)"
        )
        lines.append("")
    return "\n".join(lines)

"""Findings: the common currency of the static-analysis subsystem.

Every analyzer (:mod:`repro.analysis.microprogram`,
:mod:`repro.analysis.schedule`, :mod:`repro.analysis.certificate`) reports
:class:`Finding` records — a rule id from the catalog
(:mod:`repro.analysis.rules`), a severity, a location string, a message and a
fix hint.  ``repro lint`` aggregates them, applies suppressions, and exports
them under the ``repro.analysis/1`` schema (sibling of the observability
layer's ``repro.obs/1``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Finding severity, ordered so comparisons read naturally.

    ``ERROR`` findings are soundness violations (the microprogram or the
    kernel/controller agreement is broken); ``WARN`` findings are likely
    mistakes or modeling-assumption violations; ``INFO`` findings are
    advisory (e.g. checks that could not run).
    """

    INFO = 10
    WARN = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: "Severity | str") -> "Severity":
        if isinstance(text, Severity):
            return text
        try:
            return cls[str(text).upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{[name.lower() for name in cls.__members__]}"
            ) from None

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic from a static analyzer.

    ``location`` is a human-readable anchor ("state 12", "body position 3",
    "context 1"), qualified by the subject the lint run attaches (kernel or
    program name).  ``suppressed`` carries the suppression id when a
    documented ``known-silent`` entry covers the finding — suppressed
    findings are reported but do not affect the exit code.
    """

    rule: str
    severity: Severity
    location: str
    message: str
    fix_hint: str = ""
    suppressed: str | None = None
    #: Loop label the finding is anchored to, when the analyzer knows it.
    #: Structured so consumers (``schedule_blockers``, the fusion certifier)
    #: never have to parse it back out of ``location``.
    loop: str | None = None

    def suppress(self, suppression_id: str) -> "Finding":
        return Finding(
            rule=self.rule,
            severity=self.severity,
            location=self.location,
            message=self.message,
            fix_hint=self.fix_hint,
            suppressed=suppression_id,
            loop=self.loop,
        )

    def as_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
        }
        if self.fix_hint:
            data["fix_hint"] = self.fix_hint
        if self.suppressed is not None:
            data["suppressed"] = self.suppressed
        if self.loop is not None:
            data["loop"] = self.loop
        return data


#: Deterministic ordering: severity (most severe first), then rule id, then
#: location, then message — so JSON exports are byte-stable run to run.
def finding_sort_key(finding: Finding) -> tuple[int, str, str, str]:
    return (-int(finding.severity), finding.rule, finding.location, finding.message)


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=finding_sort_key)


def worst_severity(findings: list[Finding], include_suppressed: bool = False) -> Severity | None:
    """Highest severity among (by default, unsuppressed) findings."""
    pool = [
        finding
        for finding in findings
        if include_suppressed or finding.suppressed is None
    ]
    if not pool:
        return None
    return max(finding.severity for finding in pool)


@dataclass
class FindingCollector:
    """Mutable accumulator analyzers append to; keeps construction terse."""

    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: Severity | str,
        location: str,
        message: str,
        fix_hint: str = "",
        loop: str | None = None,
    ) -> None:
        # Rule ids must come from the catalog — typos here would silently
        # weaken CI gating, so fail loudly.
        from repro.analysis.rules import RULES

        if rule not in RULES:
            raise KeyError(f"finding references unknown rule id {rule!r}")
        self.findings.append(
            Finding(
                rule=rule,
                severity=Severity.parse(severity),
                location=location,
                message=message,
                fix_hint=fix_hint,
                loop=loop,
            )
        )

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

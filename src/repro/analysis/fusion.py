"""Fusibility verdicts: which hot traces are superop candidates.

Trace-level superop compilation (ROADMAP item 1) can only fuse a trace whose
schedule is *provably* stable: the same pc path every execution, matching a
static loop region, and — for the SPU variant — a controller schedule the
PR 3 agreement analyzer (:mod:`repro.analysis.schedule`) certifies, since a
fused body would bake the per-position operand routes in.  This module turns
a :class:`~repro.obs.traceprof.TraceProfiler`'s dynamic traces plus the
static analyses into per-trace :class:`FusionVerdict`\\ s.

Since the superop legality engine landed (:mod:`repro.analysis.absint`), a
dynamic heuristic alone no longer earns ``fusible: true``.  Each verdict now
carries a ``state``:

``"certified"``
    All dynamic conditions hold *and* the loop has a
    :class:`~repro.analysis.absint.FusionCertificate` that the independent
    replay checker validated.  Only this state reports ``fusible: true``.
``"uncertified"``
    Dynamically fusible, but the static certifier diagnosed the loop (the
    blocking ``fx-*`` rules appear in ``reasons``) — or the certificate
    failed its replay check.
``"not-fusible"``
    One or more dynamic conditions failed (entry/exit path, unstable head,
    truncated body, ``sa-*`` blockers).

The dynamic conditions are unchanged from PR 6: the body is one exact pass
over a labeled loop region, it repeated (``executions >= 2``), it is stable
at its head, and no ``sa-*`` *error* finding blocks its loop (SPU variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.findings import Severity
from repro.analysis.loops import LoopRegion, find_loop_regions

if TYPE_CHECKING:
    from repro.kernels.base import Kernel
    from repro.obs.traceprof import TraceStats

__all__ = [
    "FusionVerdict",
    "find_loop_regions",
    "fusion_verdict",
    "schedule_blockers",
]


@dataclass(frozen=True)
class FusionVerdict:
    """Why one trace is (or is not) a superop candidate."""

    fusible: bool
    #: Label of the matched loop region, when the body is a loop pass.
    loop: str | None
    #: Empty when fusible; otherwise every disqualifying condition.
    reasons: tuple[str, ...]
    #: ``"certified"`` / ``"uncertified"`` / ``"not-fusible"`` (see module doc).
    state: str = "not-fusible"

    def as_dict(self) -> dict[str, object]:
        return {
            "fusible": self.fusible,
            "state": self.state,
            "loop": self.loop,
            "reasons": list(self.reasons),
        }


def schedule_blockers(kernel: Kernel) -> dict[str, list[str]]:
    """Loop label -> sorted ``sa-*`` error rules from the agreement analyzer.

    Findings that name no loop (e.g. ``sa-go-before-load``) block every
    loop under the ``"*"`` key — an orphan GO store can skew any schedule.
    """
    from repro.analysis.schedule import analyze_schedule

    blockers: dict[str, set[str]] = {}
    for finding in analyze_schedule(kernel):
        if finding.severity < Severity.ERROR:
            continue
        label = finding.loop if finding.loop is not None else "*"
        blockers.setdefault(label, set()).add(finding.rule)
    return {label: sorted(rules) for label, rules in blockers.items()}


def _matching_region(trace: TraceStats, regions: list[LoopRegion]) -> LoopRegion | None:
    """The loop region *trace* is one exact pass over, if any."""
    for region in regions:
        if region.start != trace.head:
            continue
        if trace.body == tuple(range(region.start, region.end + 1)):
            return region
    return None


def fusion_verdict(
    trace: TraceStats,
    regions: list[LoopRegion],
    stable_heads: set[int],
    blockers: dict[str, list[str]] | None = None,
    certified: dict[str, list[str]] | None = None,
) -> FusionVerdict:
    """Judge one :class:`~repro.obs.traceprof.TraceStats` trace.

    *blockers* is :func:`schedule_blockers` output for the SPU variant and
    ``None`` for the MMX variant (no controller schedule applies).

    *certified* maps each loop label to its static certification result: an
    empty list when a replay-checked :class:`FusionCertificate` backs the
    loop, otherwise the sorted blocking ``fx-*`` rule ids.  ``None`` (legacy
    callers, unit tests of the dynamic conditions alone) skips the
    certificate requirement and grades a dynamically clean trace
    ``certified``.
    """
    reasons: list[str] = []
    region = None
    if trace.truncated:
        reasons.append("body exceeded the profiler's recording limit")
    else:
        region = _matching_region(trace, regions)
        if region is None:
            reasons.append("body is not a single pass over a labeled loop")
    if trace.executions < 2:
        reasons.append("executed once (loop entry/exit path)")
    if trace.head not in stable_heads:
        reasons.append("schedule varies across executions at this head")
    if blockers is not None and region is not None:
        blocked = sorted(
            set(blockers.get(region.label, [])) | set(blockers.get("*", []))
        )
        if blocked:
            reasons.append(
                "schedule-agreement errors: " + ", ".join(blocked)
            )
    if reasons:
        state = "not-fusible"
    elif certified is None:
        state = "certified"
    else:
        assert region is not None
        rules = certified.get(region.label)
        if rules == []:
            state = "certified"
        else:
            state = "uncertified"
            if rules is None:
                reasons.append("no fusion certificate for this loop")
            else:
                reasons.append(
                    "fusion certificate withheld: " + ", ".join(rules)
                )
    return FusionVerdict(
        fusible=state == "certified",
        loop=region.label if region is not None else None,
        reasons=tuple(reasons),
        state=state,
    )

"""Fusibility verdicts: which hot traces are superop candidates.

Trace-level superop compilation (ROADMAP item 1) can only fuse a trace whose
schedule is *provably* stable: the same pc path every execution, matching a
static loop region, and — for the SPU variant — a controller schedule the
PR 3 agreement analyzer (:mod:`repro.analysis.schedule`) certifies, since a
fused body would bake the per-position operand routes in.  This module turns
a :class:`~repro.obs.traceprof.TraceProfiler`'s dynamic traces plus the
static analyses into per-trace :class:`FusionVerdict`\\ s.

A trace is **fusible** when all of:

- its body is one exact pass over a labeled loop region (``head ==
  region.start`` and the pc path is ``start..end`` in order — no internal
  control flow took a different path);
- it repeated (``executions >= 2``: entry and exit paths around a loop run
  once and are never candidates);
- it is dynamically stable (no sibling body at the same head also repeated);
- no ``sa-*`` *error* finding blocks its loop (SPU variant; the MMX variant
  has no controller schedule to agree with, so only the dynamic conditions
  apply).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import Severity
from repro.analysis.loops import LoopRegion, find_loop_regions

__all__ = [
    "FusionVerdict",
    "find_loop_regions",
    "fusion_verdict",
    "schedule_blockers",
]


@dataclass(frozen=True)
class FusionVerdict:
    """Why one trace is (or is not) a superop candidate."""

    fusible: bool
    #: Label of the matched loop region, when the body is a loop pass.
    loop: str | None
    #: Empty when fusible; otherwise every disqualifying condition.
    reasons: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "fusible": self.fusible,
            "loop": self.loop,
            "reasons": list(self.reasons),
        }


def schedule_blockers(kernel) -> dict[str, list[str]]:
    """Loop label -> sorted ``sa-*`` error rules from the agreement analyzer.

    Findings that name no loop (e.g. ``sa-go-before-load``) block every
    loop under the ``"*"`` key — an orphan GO store can skew any schedule.
    """
    from repro.analysis.schedule import analyze_schedule

    blockers: dict[str, set[str]] = {}
    prefix = f"{kernel.name}/"
    for finding in analyze_schedule(kernel):
        if finding.severity < Severity.ERROR:
            continue
        location = finding.location
        if location.startswith(prefix):
            # "Kernel/label (context 0)" or "Kernel/label+3 (state 5)"
            label = location[len(prefix):].split(" ")[0].split("+")[0]
        else:
            label = "*"
        blockers.setdefault(label, set()).add(finding.rule)
    return {label: sorted(rules) for label, rules in blockers.items()}


def _matching_region(trace, regions: list[LoopRegion]) -> LoopRegion | None:
    """The loop region *trace* is one exact pass over, if any."""
    for region in regions:
        if region.start != trace.head:
            continue
        if trace.body == tuple(range(region.start, region.end + 1)):
            return region
    return None


def fusion_verdict(
    trace,
    regions: list[LoopRegion],
    stable_heads: set[int],
    blockers: dict[str, list[str]] | None = None,
) -> FusionVerdict:
    """Judge one :class:`~repro.obs.traceprof.TraceStats` trace.

    *blockers* is :func:`schedule_blockers` output for the SPU variant and
    ``None`` for the MMX variant (no controller schedule applies).
    """
    reasons: list[str] = []
    region = None
    if trace.truncated:
        reasons.append("body exceeded the profiler's recording limit")
    else:
        region = _matching_region(trace, regions)
        if region is None:
            reasons.append("body is not a single pass over a labeled loop")
    if trace.executions < 2:
        reasons.append("executed once (loop entry/exit path)")
    if trace.head not in stable_heads:
        reasons.append("schedule varies across executions at this head")
    if blockers is not None and region is not None:
        blocked = sorted(
            set(blockers.get(region.label, [])) | set(blockers.get("*", []))
        )
        if blocked:
            reasons.append(
                "schedule-agreement errors: " + ", ".join(blocked)
            )
    return FusionVerdict(
        fusible=not reasons,
        loop=region.label if region is not None else None,
        reasons=tuple(reasons),
    )

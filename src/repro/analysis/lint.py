"""The ``repro lint`` driver: run every analyzer over programs and kernels.

One :class:`LintResult` per subject (a kernel, or a bare controller
program).  For a kernel the run covers all three analyzer families:

1. every controller context program through the microprogram analyzer
   (``mp-*``),
2. the kernel's transformed program against those controller programs
   through the schedule-agreement analyzer (``sa-*``),
3. every off-load certificate re-verified and cross-checked against the
   shipped controller program (``oc-*``),
4. both instruction-stream variants through the superop legality engine
   (``fx-*``): every loop region is certified for fusion or diagnosed,
   and every issued certificate is replay-checked at issuance.

Ordering is deterministic everywhere (analyzers iterate sorted state
indexes, results sort by severity/rule/location), so ``repro lint --all
--json`` output is byte-stable — CI diffs it against a committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.certificate import certificate_findings
from repro.analysis.findings import (
    Finding,
    Severity,
    sort_findings,
    worst_severity,
)
from repro.analysis.microprogram import analyze_program
from repro.analysis.schedule import analyze_schedule
from repro.core.interconnect import CrossbarConfig
from repro.core.program import SPUProgram

if TYPE_CHECKING:
    from repro.kernels.base import Kernel


@dataclass
class LintResult:
    """Everything one lint subject produced."""

    subject: str
    config: str | None
    findings: list[Finding] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        counts = {"error": 0, "warn": 0, "info": 0, "suppressed": 0}
        for finding in self.findings:
            if finding.suppressed is not None:
                counts["suppressed"] += 1
            else:
                counts[str(finding.severity)] += 1
        return counts

    @property
    def worst(self) -> Severity | None:
        return worst_severity(self.findings)

    def as_dict(self) -> dict:
        return {
            "subject": self.subject,
            "config": self.config,
            "counts": self.counts(),
            "findings": [finding.as_dict() for finding in self.findings],
        }


def lint_program(
    program: SPUProgram,
    config: CrossbarConfig | None = None,
    subject: str | None = None,
) -> LintResult:
    """Lint one bare controller program (microprogram family only)."""
    name = subject if subject is not None else program.name
    return LintResult(
        subject=name,
        config=config.name if config is not None else None,
        findings=sort_findings(analyze_program(program, config, subject=name)),
    )


def lint_kernel(kernel: Kernel | str) -> LintResult:
    """Lint one kernel: microprogram + schedule + certificate families.

    Accepts a :class:`~repro.kernels.Kernel` instance or a registry name
    (forgiving spelling, as everywhere in the CLI).
    """
    if isinstance(kernel, str):
        from repro.kernels import make_kernel
        from repro.obs.export import resolve_kernel_name

        kernel = make_kernel(resolve_kernel_name(kernel))

    findings: list[Finding] = []
    _, controller_programs = kernel.spu_programs()
    for context, spu_program in controller_programs:
        findings.extend(
            analyze_program(
                spu_program,
                kernel.config,
                subject=f"{kernel.name}/context{context}",
            )
        )
    findings.extend(analyze_schedule(kernel))
    from repro.analysis.absint import certify_program

    spu_program, _ = kernel.spu_programs()
    for variant, program in (
        ("mmx", kernel.mmx_program()),
        ("spu", spu_program),
    ):
        certification = certify_program(
            program, subject=f"{kernel.name}/{variant}"
        )
        findings.extend(certification.findings())
    for context, report in kernel.offload_reports():
        if report.certificate is None:
            continue
        findings.extend(
            certificate_findings(
                report.certificate,
                report.spu_program,
                subject=f"{kernel.name}/{report.certificate.loop_label}",
            )
        )
    return LintResult(
        subject=kernel.name,
        config=kernel.config.name,
        findings=sort_findings(findings),
    )


def lint_all() -> list[LintResult]:
    """Lint every registered kernel, in sorted registry order."""
    from repro.kernels import ALL_KERNELS, make_kernel

    return [lint_kernel(make_kernel(name)) for name in sorted(ALL_KERNELS)]


# --- reporting -----------------------------------------------------------------


def lint_report(results: list[LintResult]) -> dict:
    """The ``lint`` document (schema ``repro.analysis/1``)."""
    from repro.obs.export import ANALYSIS_SCHEMA_VERSION, envelope

    totals = {"error": 0, "warn": 0, "info": 0, "suppressed": 0}
    for result in results:
        for key, value in result.counts().items():
            totals[key] += value
    body = {
        "subjects": [result.as_dict() for result in results],
        "summary": {
            "subjects": len(results),
            "findings": sum(len(result.findings) for result in results),
            **totals,
        },
    }
    return envelope("lint", body, schema=ANALYSIS_SCHEMA_VERSION)


def render_lint(results: list[LintResult]) -> str:
    """Human-readable lint output."""
    lines: list[str] = []
    clean: list[str] = []
    for result in results:
        if not result.findings:
            clean.append(result.subject)
            continue
        counts = result.counts()
        summary = ", ".join(
            f"{count} {label}" for label, count in counts.items() if count
        )
        lines.append(f"{result.subject} ({summary}):")
        for finding in result.findings:
            tag = (
                f"suppressed:{finding.suppressed}"
                if finding.suppressed is not None
                else str(finding.severity)
            )
            lines.append(f"  [{tag}] {finding.rule} @ {finding.location}")
            lines.append(f"      {finding.message}")
            if finding.fix_hint:
                lines.append(f"      hint: {finding.fix_hint}")
        lines.append("")
    if clean:
        lines.append(f"clean: {', '.join(clean)}")
    total = sum(len(result.findings) for result in results)
    lines.append(
        f"{total} finding(s) across {len(results)} subject(s)"
    )
    return "\n".join(lines)


def exit_code(results: list[LintResult], fail_on: Severity | str = Severity.ERROR) -> int:
    """1 when any unsuppressed finding reaches the *fail_on* threshold."""
    threshold = Severity.parse(fail_on)
    for result in results:
        worst = result.worst
        if worst is not None and worst >= threshold:
            return 1
    return 0

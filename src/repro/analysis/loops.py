"""Per-loop attribution of dynamic work (a VTune-style hotspot view).

Attributes each issued instruction to the innermost labeled loop region
containing its program counter, yielding the per-loop instruction counts and
permute fractions that explain *where* a kernel's Table 3 numbers come from
(e.g. the DCT's transpose loops vs its row-pass loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu import Machine
from repro.isa import Program


@dataclass
class LoopRegion:
    """One labeled loop: ``[start, end]`` instruction indexes inclusive."""

    label: str
    start: int
    end: int
    instructions: int = 0
    mmx_instructions: int = 0
    alignment_instructions: int = 0

    @property
    def permute_fraction(self) -> float:
        if not self.mmx_instructions:
            return 0.0
        return self.alignment_instructions / self.mmx_instructions


@dataclass
class LoopProfile:
    """Dynamic work per loop region plus the residual outside any loop."""

    regions: list[LoopRegion] = field(default_factory=list)
    outside: int = 0
    total: int = 0

    def region(self, label: str) -> LoopRegion:
        for region in self.regions:
            if region.label == label:
                return region
        raise KeyError(label)

    def hottest(self) -> LoopRegion | None:
        return max(self.regions, key=lambda r: r.instructions, default=None)

    def render(self) -> str:
        lines = [f"{'loop':<12} {'span':>9} {'dyn instr':>10} {'share':>7} "
                 f"{'MMX':>7} {'perm/MMX':>9}"]
        for region in sorted(self.regions, key=lambda r: -r.instructions):
            share = region.instructions / self.total if self.total else 0.0
            lines.append(
                f"{region.label:<12} {region.start:>4}-{region.end:<4} "
                f"{region.instructions:>10} {share:>6.1%} "
                f"{region.mmx_instructions:>7} {region.permute_fraction:>8.1%}"
            )
        if self.total:
            lines.append(f"{'(outside)':<12} {'':>9} {self.outside:>10} "
                         f"{self.outside / self.total:>6.1%}")
        return "\n".join(lines)


def find_loop_regions(program: Program) -> list[LoopRegion]:
    """All ``label ... branch-back-to-label`` regions of *program*."""
    regions: list[LoopRegion] = []
    for label, start in program.labels.items():
        end = None
        for index in range(start, len(program)):
            instr = program[index]
            if instr.is_branch and any(
                getattr(op, "name", None) == label for op in instr.operands
            ):
                end = index
        if end is not None and end >= start:
            regions.append(LoopRegion(label=label, start=start, end=end))
    regions.sort(key=lambda r: r.start)
    return regions


def profile_loops(machine: Machine, max_cycles: int | None = None) -> LoopProfile:
    """Run *machine* and attribute issued instructions to loop regions.

    Nested regions attribute to the innermost (smallest) enclosing one.
    """
    regions = find_loop_regions(machine.program)
    profile = LoopProfile(regions=regions)

    def innermost(pc: int) -> LoopRegion | None:
        best: LoopRegion | None = None
        for region in regions:
            if region.start <= pc <= region.end:
                if best is None or (region.end - region.start) < (best.end - best.start):
                    best = region
        return best

    def on_issue(event) -> None:
        profile.total += 1
        region = innermost(event.pc)
        if region is None:
            profile.outside += 1
        else:
            region.instructions += 1
            if event.instr.is_mmx:
                region.mmx_instructions += 1
            if event.instr.is_alignment_candidate:
                region.alignment_instructions += 1

    unsubscribe = machine.bus.subscribe("issue", on_issue)
    try:
        machine.run(max_cycles=max_cycles)
    finally:
        unsubscribe()
    return profile

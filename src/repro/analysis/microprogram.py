"""Microprogram analyzer: CFG and counter properties of one SPU program.

A controller program is a tiny control-flow graph: each state has exactly two
successors (``next0`` when the selected counter hits zero, ``next1``
otherwise) and idle-127 is the unique exit.  That makes the §4 semantics
fully decidable, and this module checks the properties the hardware cannot:

- every ``next`` pointer lands on a programmed state (or idle);
- every programmed state is reachable from the entry;
- every reachable state can reach idle (the SPU can retire);
- a concrete walk from GO terminates (no ``(state, counters)`` revisit);
- the zero-overhead counters are used legally — positive initial values,
  cycle-aligned totals, one counter per loop level;
- under a crossbar configuration: route legality, encode/decode round trips,
  driver fanout and port budgets.

Everything reports :class:`~repro.analysis.findings.Finding` records instead
of raising, so a single lint run surfaces *all* problems of a corrupted
program (the fault-campaign verdict path depends on this: an injected
control-word flip must not crash the analyzer before it is diagnosed).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import RouteError, SPUProgramError
from repro.analysis.findings import Finding, FindingCollector
from repro.core.interconnect import CrossbarConfig, split_entry
from repro.core.program import (
    ROUTED_SLOTS,
    SPUProgram,
    decode_state,
    encode_state,
)

#: Hard ceiling on concrete-walk steps; far above any kernel's dynamic
#: schedule (FFT1024's longest loop is ~50k controller steps).
MAX_WALK_STEPS = 2_000_000


# --- concrete walk -------------------------------------------------------------


def simulate(
    program: SPUProgram, max_steps: int = MAX_WALK_STEPS
) -> tuple[list[int], str]:
    """Walk the program from GO with §4 semantics; no routes are applied.

    Returns ``(emitted_state_indices, outcome)`` where *outcome* is one of
    ``"idle"`` (clean termination), ``"repeat"`` (a ``(state, counters)``
    configuration recurred — provable nontermination), ``"undefined"`` (the
    walk reached a state with no programmed word) or ``"limit"``.
    """
    emitted: list[int] = []
    counters = list(program.counter_init)
    current = program.entry
    seen: set[tuple[int, int, int]] = set()
    idle = program.idle_state
    while len(emitted) < max_steps:
        if current == idle:
            return emitted, "idle"
        state = program.states.get(current)
        if state is None:
            return emitted, "undefined"
        key = (current, counters[0], counters[1])
        if key in seen:
            return emitted, "repeat"
        seen.add(key)
        emitted.append(current)
        counters[state.cntr] -= 1
        if counters[state.cntr] <= 0:
            counters[state.cntr] = program.counter_init[state.cntr]
            current = state.next0
        else:
            current = state.next1
        if not 0 <= current < program.num_states:
            return emitted, "undefined"
    return emitted, "limit"


# --- graph helpers -------------------------------------------------------------


def _successors(program: SPUProgram, index: int) -> list[int]:
    state = program.states[index]
    return [state.next0, state.next1]


def _reachable(program: SPUProgram) -> set[int]:
    """Programmed states reachable from the entry (idle excluded)."""
    if program.entry == program.idle_state or program.entry not in program.states:
        return set()
    frontier = [program.entry]
    seen = {program.entry}
    while frontier:
        index = frontier.pop()
        for succ in _successors(program, index):
            if succ in program.states and succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def _can_reach_idle(program: SPUProgram) -> set[int]:
    """Programmed states with some path to the idle state."""
    idle = program.idle_state
    predecessors: dict[int, set[int]] = {}
    roots: list[int] = []
    for index in program.states:
        for succ in _successors(program, index):
            if succ == idle:
                roots.append(index)
            elif succ in program.states:
                predecessors.setdefault(succ, set()).add(index)
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        index = frontier.pop()
        for pred in predecessors.get(index, ()):
            if pred not in seen:
                seen.add(pred)
                frontier.append(pred)
    return seen


def _next1_cycles(program: SPUProgram, reachable: set[int]) -> list[list[int]]:
    """Cycles of the ``next1`` functional graph among reachable states.

    While a counter is running the controller follows ``next1`` every step,
    so each ``next1`` cycle is one loop level; its member states' CNTRx
    selects and its length determine the counter discipline.
    """
    cycles: list[list[int]] = []
    claimed: set[int] = set()
    for start in sorted(reachable):
        if start in claimed:
            continue
        path: list[int] = []
        position: dict[int, int] = {}
        current = start
        while (
            current in program.states
            and current in reachable
            and current not in claimed
            and current not in position
        ):
            position[current] = len(path)
            path.append(current)
            current = program.states[current].next1
        if current in position:  # closed a new cycle
            cycles.append(path[position[current] :])
        claimed.update(path)
    return cycles


# --- the analyzer --------------------------------------------------------------


def analyze_program(
    program: SPUProgram,
    config: CrossbarConfig | None = None,
    subject: str | None = None,
) -> list[Finding]:
    """All microprogram findings for *program* (``mp-*`` rules).

    *subject* prefixes finding locations (e.g. a kernel/context label);
    defaults to the program's own name.
    """
    out = FindingCollector()
    label = subject if subject is not None else program.name

    def loc(detail: str) -> str:
        return f"{label}: {detail}"

    # -- structural: entry and next pointers --------------------------------
    entry_ok = True
    if program.entry == program.idle_state or program.entry not in program.states:
        entry_ok = False
        out.add(
            "mp-entry-invalid",
            "error",
            loc(f"entry {program.entry}"),
            f"entry state {program.entry} is "
            + (
                "the reserved idle state"
                if program.entry == program.idle_state
                else "not a programmed state"
            ),
            fix_hint="point entry at the first programmed state of the schedule",
        )
    for index in sorted(program.states):
        state = program.states[index]
        for next_index, field_name in ((state.next0, "next0"), (state.next1, "next1")):
            if not 0 <= next_index < program.num_states:
                out.add(
                    "mp-next-undefined",
                    "error",
                    loc(f"state {index}"),
                    f"{field_name}={next_index} is outside K={program.num_states}",
                    fix_hint="next pointers must stay inside the state memory",
                )
            elif next_index != program.idle_state and next_index not in program.states:
                out.add(
                    "mp-next-undefined",
                    "error",
                    loc(f"state {index}"),
                    f"{field_name} targets undefined state {next_index} "
                    "(no control word programmed there)",
                    fix_hint="program the target state or retarget the pointer",
                )

    # -- reachability -------------------------------------------------------
    reachable = _reachable(program)
    for index in sorted(set(program.states) - reachable):
        out.add(
            "mp-unreachable-state",
            "warn",
            loc(f"state {index}"),
            f"state {index} is programmed but unreachable from entry "
            f"{program.entry}",
            fix_hint="dead control memory: remove the state or link it in",
        )
    to_idle = _can_reach_idle(program)
    for index in sorted(reachable - to_idle):
        out.add(
            "mp-no-path-to-idle",
            "error",
            loc(f"state {index}"),
            f"reachable state {index} has no path to idle-"
            f"{program.idle_state}: once entered, the SPU can never retire",
            fix_hint="route some exit edge (usually next0) toward the idle state",
        )

    # -- counters -----------------------------------------------------------
    used_counters = {state.cntr for index, state in program.states.items() if index in reachable}
    for cntr in sorted(used_counters):
        if program.counter_init[cntr] <= 0:
            out.add(
                "mp-counter-underflow",
                "error",
                loc(f"counter {cntr}"),
                f"CNTR{cntr} is selected by reachable states but initialized "
                f"to {program.counter_init[cntr]}: the first decrement "
                "underflows and exits immediately",
                fix_hint="initialize the counter to iterations x loop length",
            )
    for cntr in (0, 1):
        if cntr not in used_counters and program.counter_init[cntr] > 0:
            out.add(
                "mp-counter-unused",
                "info",
                loc(f"counter {cntr}"),
                f"CNTR{cntr} is initialized to {program.counter_init[cntr]} "
                "but no reachable state selects it",
            )

    for cycle in _next1_cycles(program, reachable):
        selects = {program.states[index].cntr for index in cycle}
        cycle_label = loc(f"states {cycle[0]}..{cycle[-1]}")
        if len(selects) > 1:
            out.add(
                "mp-counter-nesting",
                "warn",
                cycle_label,
                f"one next1 loop of {len(cycle)} states mixes CNTR selects "
                f"{sorted(selects)}: the zero-overhead scheme dedicates one "
                "counter per loop level",
                fix_hint="select a single CNTRx throughout each loop body",
            )
            continue
        cntr = selects.pop()
        init = program.counter_init[cntr]
        if init > 0 and init % len(cycle) != 0:
            out.add(
                "mp-counter-misaligned",
                "warn",
                cycle_label,
                f"CNTR{cntr}={init} is not a multiple of the loop's "
                f"{len(cycle)}-state cycle: the final pass exits mid-body",
                fix_hint="program the counter to iterations x cycle length",
            )

    # -- termination --------------------------------------------------------
    if entry_ok:
        _, outcome = simulate(program)
        if outcome == "repeat":
            out.add(
                "mp-nontermination",
                "error",
                loc(f"entry {program.entry}"),
                "concrete walk from GO revisits a (state, counters) "
                "configuration without reaching idle: the program provably "
                "never terminates",
                fix_hint="check counter initial values against next0 exit edges",
            )

    # -- crossbar-dependent checks ------------------------------------------
    if config is None:
        # Satellite contract: validate() names what it skipped; surface the
        # same list here so "not checked" is never mistaken for "passed".
        try:
            skipped = program.validate(None)
        except SPUProgramError:
            skipped = ["mp-route-illegal", "mp-encode-roundtrip"]
        for rule_id in skipped:
            out.add(
                "mp-validate-skipped",
                "info",
                loc("validate"),
                f"no crossbar configuration supplied: rule {rule_id} was "
                "skipped, not passed",
                fix_hint="re-lint with the kernel's target configuration",
            )
        return out.findings

    for index in sorted(program.states):
        state = program.states[index]
        routes_legal = True
        for slot in range(ROUTED_SLOTS):
            route = state.routes.get(slot)
            if route is None:
                continue
            try:
                config.check_route(route)
            except RouteError as exc:
                routes_legal = False
                out.add(
                    "mp-route-illegal",
                    "error",
                    loc(f"state {index} slot {slot}"),
                    str(exc),
                    fix_hint="keep selectors inside the configuration's "
                    "input window and modes within its mode set",
                )
        if not routes_legal:
            continue
        # Round trip through the MMIO image encoding.
        try:
            word = encode_state(state, config)
            decoded = decode_state(word, config)
        except (RouteError, SPUProgramError) as exc:
            out.add(
                "mp-encode-roundtrip",
                "error",
                loc(f"state {index}"),
                f"state word does not survive encode/decode: {exc}",
            )
        else:
            if decoded != state:
                out.add(
                    "mp-encode-roundtrip",
                    "error",
                    loc(f"state {index}"),
                    "decode(encode(state)) differs from the state: the MMIO "
                    "image cannot faithfully transport this control word",
                    fix_hint="route entries must be representable in "
                    f"{config.select_bits} selector bits",
                )
        # Driver fanout and port budget across the state's routes.
        fanout: Counter = Counter()
        for slot in range(ROUTED_SLOTS):
            route = state.routes.get(slot)
            if route is None:
                continue
            for entry in route:
                sel, _ = split_entry(entry)
                if sel is not None:
                    fanout[sel] += 1
        for sel, count in sorted(fanout.items()):
            if count > config.granules_per_operand:
                out.add(
                    "mp-route-fanout",
                    "warn",
                    loc(f"state {index}"),
                    f"input granule {sel} drives {count} output granules "
                    f"(> {config.granules_per_operand}, one operand's worth): "
                    "exceeds the modeled crossbar driver fanout budget",
                    fix_hint="stage the broadcast across two states or "
                    "duplicate the source sub-word",
                )
        if len(fanout) > config.in_ports:
            out.add(
                "mp-port-budget",
                "error",
                loc(f"state {index}"),
                f"state references {len(fanout)} distinct input ports; "
                f"configuration {config.name} provides {config.in_ports}",
            )
    return out.findings

"""Decoupled-control overlap accounting (paper Table 3, §5.2.4).

Table 3 reports, per benchmark:

* **Cycles Overlapped** — execution cycles the decoupled controller absorbed
  (permutation work moved off the instruction stream),
* **% MMX Instr** — permutation instructions as a percentage of MMX
  instructions (the 11–93% off-load range of §5.2.4),
* **Total Instr** — the same count as a percentage of all instructions.

We measure the overlapped cycles directly as the cycle difference between
the MMX-only and MMX+SPU runs, and additionally report the off-loaded
fraction (which permutes the pass actually removed vs. the paper's
estimate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.base import KernelComparison


@dataclass(frozen=True)
class OverlapRow:
    """One Table 3 row computed from a kernel comparison."""

    name: str
    cycles_overlapped: int
    #: Alignment/permutation instructions ÷ MMX instructions (MMX-only run).
    pct_mmx_instr: float
    #: Alignment/permutation instructions ÷ all instructions.
    pct_total_instr: float
    #: Dynamic permutes removed ÷ dynamic permutes present (off-load rate).
    offload_rate: float


def overlap_row(comparison: KernelComparison) -> OverlapRow:
    """Compute the Table 3 quantities for one kernel."""
    mmx = comparison.mmx
    spu = comparison.spu
    mmx_instr = mmx.mmx_instructions
    candidates = mmx.alignment_candidates
    removed_dynamic = candidates - spu.alignment_candidates
    return OverlapRow(
        name=comparison.name,
        cycles_overlapped=max(0, comparison.cycles_saved),
        pct_mmx_instr=candidates / mmx_instr if mmx_instr else 0.0,
        pct_total_instr=candidates / mmx.instructions if mmx.instructions else 0.0,
        offload_rate=removed_dynamic / candidates if candidates else 0.0,
    )

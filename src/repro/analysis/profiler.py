"""VTune-like dynamic instruction profiler (the paper's §5.2.1 methodology).

The paper extracted run-time statistics with Intel's VTune: "we can see what
percentage of each algorithm's operations are MMX instructions, and what
percentage ... were packing or permutation instructions that are required
for sub-word realignment."  :func:`profile` collects exactly that from a
simulated run: per-mnemonic dynamic counts, class mix, MMX fraction and the
permutation/alignment fractions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cpu import Machine, RunStats


@dataclass
class InstructionProfile:
    """Dynamic instruction mix of one run."""

    stats: RunStats
    by_opcode: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return self.stats.instructions

    @property
    def mmx_fraction(self) -> float:
        """MMX instructions as a fraction of all dynamic instructions."""
        return self.stats.mmx_instructions / self.total if self.total else 0.0

    @property
    def permute_fraction_of_mmx(self) -> float:
        """Pack/merge/realignment instructions as a fraction of MMX work.

        Uses the alignment-candidate count (pack/unpack/shuffle plus
        ``movq mm,mm`` copies and whole-byte shifts) — the instruction set
        the paper's SPU targets.
        """
        mmx = self.stats.mmx_instructions
        return self.stats.alignment_candidates / mmx if mmx else 0.0

    @property
    def permute_fraction_of_total(self) -> float:
        return self.stats.alignment_candidates / self.total if self.total else 0.0

    def top_opcodes(self, count: int = 10) -> list[tuple[str, int]]:
        """The most frequent mnemonics (dynamic)."""
        return self.by_opcode.most_common(count)

    def class_mix(self) -> dict[str, float]:
        """Dynamic fraction per functional class."""
        if not self.total:
            return {}
        return {
            iclass.value: count / self.total
            for iclass, count in sorted(
                self.stats.by_class.items(), key=lambda kv: -kv[1]
            )
        }

    def as_dict(self) -> dict:
        """JSON-friendly instruction-mix summary (for repro.obs.export)."""
        return {
            "total": self.total,
            "mmx_fraction": self.mmx_fraction,
            "permute_fraction_of_mmx": self.permute_fraction_of_mmx,
            "permute_fraction_of_total": self.permute_fraction_of_total,
            "by_opcode": dict(self.by_opcode.most_common()),
            "class_mix": self.class_mix(),
        }


def profile(machine: Machine, max_cycles: int | None = None) -> InstructionProfile:
    """Run *machine* to completion while collecting the instruction mix.

    A plain event-bus subscription — it composes with any other observer
    on the same run (tracer, timeline, more profilers) and detaches itself
    without disturbing them.
    """
    by_opcode: Counter = Counter()

    def on_issue(event) -> None:
        by_opcode[event.instr.name] += 1

    unsubscribe = machine.bus.subscribe("issue", on_issue)
    try:
        stats = machine.run(max_cycles=max_cycles)
    finally:
        unsubscribe()
    return InstructionProfile(stats=stats, by_opcode=by_opcode)

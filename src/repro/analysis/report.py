"""Plain-text table rendering for experiment output.

Every benchmark prints its paper-vs-measured comparison through these
helpers so the console output of ``pytest benchmarks/`` reads like the
paper's tables.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(rule)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sci(value: float, digits: int = 2) -> str:
    """Scientific notation like the paper's tables (e.g. ``1.51E+10``)."""
    return f"{value:.{digits}E}"


def pct(value: float, digits: int = 2) -> str:
    """Percentage with fixed decimals (e.g. ``0.094%``)."""
    return f"{100 * value:.{digits}f}%"


def ratio(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"

"""The lint rule catalog: every diagnostic ``repro lint`` can emit.

Three families, keyed by prefix:

``mp-*``
    Microprogram structure (:mod:`repro.analysis.microprogram`): control-flow
    and counter properties of one :class:`~repro.core.program.SPUProgram`
    plus encoding/route legality under a crossbar configuration.
``sa-*``
    Schedule agreement (:mod:`repro.analysis.schedule`): the kernel loop
    body versus its controller program — the static analogue of the fault
    taxonomy's ``go_race``/``counter_skew`` hazards.
``oc-*``
    Offload certificates (:mod:`repro.analysis.certificate`): re-verification
    of the permute off-load pass's machine-checkable evidence.
``fx-*``
    Fusion legality (:mod:`repro.analysis.absint`): the byte-granular
    abstract interpreter's superop diagnoses — why a loop body cannot be
    certified for bulk fused execution — plus the replay checks guarding
    every issued :class:`~repro.analysis.absint.FusionCertificate`.

Severities are fixed per rule (see :class:`~repro.analysis.findings.Severity`
for what each level means); the catalog is the single source of truth the
docs table in ``docs/static-analysis.md`` mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import Severity


@dataclass(frozen=True)
class Rule:
    """Catalog entry: id, fixed severity, one-line summary."""

    id: str
    severity: Severity
    summary: str


_CATALOG: tuple[Rule, ...] = (
    # ---- microprogram structure (mp-*) -------------------------------------
    Rule("mp-entry-invalid", Severity.ERROR,
         "Entry state is undefined or is the reserved idle state."),
    Rule("mp-next-undefined", Severity.ERROR,
         "A next0/next1 pointer targets an undefined (never-programmed) state."),
    Rule("mp-unreachable-state", Severity.WARN,
         "A programmed state is unreachable from the entry state."),
    Rule("mp-no-path-to-idle", Severity.ERROR,
         "No path from a reachable state to idle-127: the SPU can never retire."),
    Rule("mp-nontermination", Severity.ERROR,
         "Concrete walk from GO revisits a (state, counters) configuration "
         "without reaching idle: the program provably never terminates."),
    Rule("mp-counter-underflow", Severity.ERROR,
         "A used loop counter is initialized non-positive, so the first "
         "decrement underflows (the §4 semantics need a positive reload)."),
    Rule("mp-counter-misaligned", Severity.WARN,
         "Counter initial value is not a multiple of its loop's cycle "
         "length: the final pass exits mid-body (skipped-decrement drift)."),
    Rule("mp-counter-unused", Severity.INFO,
         "A counter has a positive initial value but no state selects it."),
    Rule("mp-counter-nesting", Severity.WARN,
         "A next1-cycle mixes both counters: illegal nesting — the paper's "
         "zero-overhead scheme dedicates one CNTRx per loop level."),
    Rule("mp-encode-roundtrip", Severity.ERROR,
         "encode_state/decode_state round trip does not reproduce the state "
         "under the target configuration."),
    Rule("mp-route-illegal", Severity.ERROR,
         "A route selector or mode is illegal under the target crossbar "
         "configuration (out-of-window byte, halfword tearing, bad mode)."),
    Rule("mp-route-fanout", Severity.WARN,
         "One input granule drives more output granules than one operand "
         "holds: exceeds the modeled crossbar driver fanout budget."),
    Rule("mp-port-budget", Severity.ERROR,
         "A state's routes reference more distinct input ports than the "
         "crossbar configuration physically provides."),
    Rule("mp-validate-skipped", Severity.INFO,
         "SPUProgram.validate ran without a crossbar configuration; the "
         "named checks were skipped, not passed."),
    # ---- schedule agreement (sa-*) -----------------------------------------
    Rule("sa-loop-length", Severity.ERROR,
         "Controller loop has a different state count than the kernel loop "
         "body has instructions: per-iteration schedules cannot line up."),
    Rule("sa-counter-total", Severity.ERROR,
         "Counter initial value differs from iterations x body length: the "
         "controller retires early or runs past the loop."),
    Rule("sa-schedule-drift", Severity.ERROR,
         "Symbolic walk diverges: the state emitted at some dynamic "
         "instruction is not the state the schedule requires (the static "
         "analogue of a counter_skew injection)."),
    Rule("sa-go-before-load", Severity.ERROR,
         "The GO store activates a controller context with no program "
         "loaded for it."),
    Rule("sa-missing-go", Severity.WARN,
         "A loop named in the kernel's LoopSpec list has no GO store "
         "before its label: the SPU never activates for it."),
    Rule("sa-go-lead-in", Severity.ERROR,
         "Instructions between the GO store and the loop label would be "
         "stepped by the already-active controller, skewing the schedule."),
    Rule("sa-go-inside-loop", Severity.ERROR,
         "A GO store inside a loop body re-activates the controller every "
         "iteration, resetting counters mid-flight."),
    Rule("sa-route-slot-mismatch", Severity.WARN,
         "A state routes an operand slot its paired instruction does not "
         "source from MMX registers: the route can never take effect."),
    Rule("sa-route-on-straight", Severity.WARN,
         "A routed state pairs with a non-MMX instruction; routes_for "
         "silently drops the routes (likely an off-by-one in the schedule)."),
    Rule("sa-go-race", Severity.ERROR,
         "GO bit raced ahead of the controller program upload: the SPU "
         "steps stale control memory (dynamic hazard; flagged per "
         "injection by the fault-campaign verdict)."),
    # ---- offload certificates (oc-*) ---------------------------------------
    Rule("oc-cert-stale", Severity.ERROR,
         "Certificate does not match the kernel's current loop body: the "
         "evidence re-verified is not the code that ships."),
    Rule("oc-not-permute", Severity.ERROR,
         "A certificate claims removal of an instruction that is not a "
         "pure permute (value-transforming work cannot be off-loaded)."),
    Rule("oc-live-out-removed", Severity.ERROR,
         "A removed permute was the last writer of a live-out register: "
         "post-loop readers see a stale architectural value."),
    Rule("oc-route-illegal", Severity.ERROR,
         "A certificate route is illegal under the crossbar configuration "
         "it names."),
    Rule("oc-byte-mismatch", Severity.ERROR,
         "Replaying the transformed body, a recorded route does not hold "
         "the byte symbol the original computation requires."),
    Rule("oc-backedge-mismatch", Severity.ERROR,
         "A live-in register's bytes diverge at the loop back edge in the "
         "transformed body: iteration 2 reads wrong data."),
    Rule("oc-program-mismatch", Severity.ERROR,
         "The controller program's per-state routes disagree with the "
         "certificate's routes for the corresponding body position."),
    # ---- fusion legality (fx-*) --------------------------------------------
    Rule("fx-internal-branch", Severity.WARN,
         "The loop body contains a branch besides the closing back edge: "
         "alternate internal paths break the straight-line fused body."),
    Rule("fx-side-exit", Severity.WARN,
         "A body branch targets outside the loop region: a fused closure "
         "could not take the early exit mid-iteration."),
    Rule("fx-nested-region", Severity.WARN,
         "The loop region overlaps another labeled region: per-iteration "
         "fusion needs a single innermost body."),
    Rule("fx-trip-count", Severity.WARN,
         "No concrete trip count is derivable from the closing branch and "
         "the loop-entry constants: bulk execution cannot be sized."),
    Rule("fx-induction-step", Severity.WARN,
         "An address-forming register is updated non-affinely inside the "
         "body, so its per-iteration stride is unknown."),
    Rule("fx-mem-footprint", Severity.WARN,
         "A memory access address is not statically resolvable as "
         "entry-constant + iteration x stride: the byte footprint is "
         "unbounded."),
    Rule("fx-mmio-store", Severity.WARN,
         "A body store may hit the SPU MMIO window: device side effects "
         "cannot be replayed in bulk."),
    Rule("fx-carried-blocking", Severity.WARN,
         "A non-affine loop-carried scalar feeds addressing or the loop "
         "branch: the dependence blocks any static footprint."),
    Rule("fx-mem-carried", Severity.INFO,
         "A store's byte range reaches a later iteration's load: "
         "loop-carried memory dependence (recorded; per-iteration fusion "
         "preserves it, cross-iteration batching must not reorder it)."),
    Rule("fx-lane-overflow", Severity.INFO,
         "A modular packed accumulator may wrap within the derived trip "
         "count: batched execution must renormalize lanes per iteration."),
    Rule("fx-swar-width", Severity.ERROR,
         "A packed op's lane width is outside the certified SWAR mask "
         "algebra (repro.simd.swar MASKS): no carry-break proof exists."),
    Rule("fx-swar-shift", Severity.WARN,
         "A packed shift takes its count from a register: the SWAR "
         "carry-break masks are precomputed per immediate count only."),
    Rule("fx-cert-schema", Severity.ERROR,
         "A fusion certificate carries an unknown schema version: the "
         "replay checker cannot interpret its claims."),
    Rule("fx-cert-stale", Severity.ERROR,
         "A fusion certificate does not match the shipped loop body: the "
         "evidence replay-checked is not the code that runs."),
    Rule("fx-cert-mismatch", Severity.ERROR,
         "Concretely replaying the loop body contradicts a recorded "
         "certificate fact (footprint, stride, trip count, carried class "
         "or SWAR status)."),
)

#: id -> Rule, the importable catalog.
RULES: dict[str, Rule] = {rule.id: rule for rule in _CATALOG}


def rule_severity(rule_id: str) -> Severity:
    return RULES[rule_id].severity

"""Schedule-agreement analyzer: kernel loops versus controller programs.

The decoupled controller has no program counter visibility — it simply steps
once per issued dynamic instruction while active (§4).  Correctness therefore
rests on a *convention* the hardware never checks: the GO store must be the
last instruction before the loop label, the controller loop must have exactly
one state per body instruction, and the counter must be programmed to
``iterations x body length``.  A kernel that violates the convention still
runs — the crossbar just routes the wrong operands on the wrong instructions,
which is precisely the silent-corruption mode the fault taxonomy's
``go_race``/``counter_skew`` injections exercise dynamically.

This module proves the convention statically: it walks each kernel loop's
transformed body against its controller program (``sa-*`` rules), flagging
length drift, counter totals, GO placement hazards and per-state route/slot
disagreements — the static analogue of the differential self-check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, FindingCollector
from repro.analysis.microprogram import simulate
from repro.core.offload import OffloadError, find_loop
from repro.core.dataflow import mmx_source_slots
from repro.core.program import SPUProgram
from repro.isa.instructions import Program
from repro.isa.operands import Imm, Mem

if TYPE_CHECKING:
    from repro.kernels.base import Kernel


def chain_states(program: SPUProgram) -> list[int]:
    """The ``next1`` chain from the entry: the per-iteration state schedule.

    While the counter is running the controller follows ``next1`` every
    step, so this chain *is* the schedule one loop pass executes.  The walk
    stops at the first revisit (the loop closing) or at an undefined state.
    """
    chain: list[int] = []
    seen: set[int] = set()
    current = program.entry
    while current in program.states and current not in seen:
        seen.add(current)
        chain.append(current)
        current = program.states[current].next1
    return chain


def _go_stores(program: Program) -> list[tuple[int, int]]:
    """All SPU GO stores: ``(stw_index, context)`` pairs, program order.

    The framework idiom is ``mov r15, 1|(context<<1); stw [r14], r15``
    (:meth:`repro.kernels.base.Kernel.go_store`); the scan resolves the GO
    word through the most recent immediate move into the store's data
    register.  Stores whose word cannot be resolved statically, and RESUME
    stores (bit 3), are skipped.
    """
    from repro.kernels.base import SPU_BASE_REG

    stores: list[tuple[int, int]] = []
    last_imm: dict[int, int | None] = {}
    for index, instr in enumerate(program.instructions):
        if instr.opcode.sem == "mov" and not instr.operands[0].is_mmx:
            value = instr.operands[1]
            last_imm[instr.operands[0].index] = (
                value.value if isinstance(value, Imm) else None
            )
            continue
        if instr.opcode.sem != "stw":
            continue
        target = instr.operands[0]
        if not (isinstance(target, Mem) and target.base == SPU_BASE_REG and target.disp == 0):
            continue
        word = last_imm.get(instr.operands[1].index)
        if word is None or not word & 1 or word & 0b1000:
            continue
        stores.append((index, (word >> 1) & 0b11))
    return stores


def analyze_schedule(kernel: Kernel) -> list[Finding]:
    """All schedule-agreement findings for one kernel (``sa-*`` rules)."""
    out = FindingCollector()
    program, controller_programs = kernel.spu_programs()
    loaded = dict(controller_programs)
    go_stores = _go_stores(program)

    for index, context in go_stores:
        if context not in loaded:
            out.add(
                "sa-go-before-load",
                "error",
                f"{kernel.name}: instruction {index}",
                f"GO store activates context {context}, but the kernel "
                f"loads programs only for contexts {sorted(loaded)}",
                fix_hint="load a controller program for every context a GO "
                "store names",
            )

    for context, spec in enumerate(kernel.loops()):
        label = spec.label
        subject = f"{kernel.name}/{label}"
        spu_program = loaded.get(context)
        if spu_program is None:
            continue  # sa-go-before-load covers the orphan GO, if any
        try:
            start, end = find_loop(program, label)
        except OffloadError:
            continue  # transformed program lost the loop; offload tests own this
        body = program.instructions[start : end + 1]
        chain = chain_states(spu_program)

        # -- per-iteration length ------------------------------------------
        if len(chain) != len(body):
            out.add(
                "sa-loop-length",
                "error",
                f"{subject} (context {context})",
                f"controller loop has {len(chain)} states per pass but the "
                f"loop body issues {len(body)} dynamic instructions per "
                "iteration: schedules cannot line up",
                fix_hint="emit exactly one controller state per kept body "
                "instruction (including scalar ops and the branch)",
                loop=label,
            )
        else:
            # -- counter total ---------------------------------------------
            entry_state = spu_program.states.get(spu_program.entry)
            if entry_state is not None:
                cntr = entry_state.cntr
                expected = spec.iterations * len(body)
                actual = spu_program.counter_init[cntr]
                if actual != expected:
                    out.add(
                        "sa-counter-total",
                        "error",
                        f"{subject} (context {context})",
                        f"CNTR{cntr}={actual} but the loop runs "
                        f"{spec.iterations} iterations x {len(body)} "
                        f"instructions = {expected} controller steps",
                        fix_hint="program the counter to iterations x body "
                        "length so the SPU retires with the loop",
                        loop=label,
                    )
                else:
                    # -- full symbolic walk: the static go_race analogue ---
                    expected_steps = [
                        chain[step % len(chain)] for step in range(expected)
                    ]
                    emitted, outcome = simulate(
                        spu_program, max_steps=expected + len(chain) + 1
                    )
                    if emitted != expected_steps or outcome != "idle":
                        drift = next(
                            (
                                step
                                for step, (got, want) in enumerate(
                                    zip(emitted, expected_steps)
                                )
                                if got != want
                            ),
                            min(len(emitted), len(expected_steps)),
                        )
                        out.add(
                            "sa-schedule-drift",
                            "error",
                            f"{subject} (context {context})",
                            f"controller walk diverges from the required "
                            f"schedule at dynamic step {drift} "
                            f"(iteration {drift // len(body)}, body position "
                            f"{drift % len(body)}; walk ended "
                            f"{outcome!r} after {len(emitted)} steps, "
                            f"schedule needs {expected})",
                            fix_hint="the state emitted at step t must be "
                            "the one paired with body position t mod length",
                            loop=label,
                        )

            # -- per-position route/instruction agreement ------------------
            for position, (state_index, instr) in enumerate(zip(chain, body)):
                state = spu_program.states[state_index]
                if not state.routes:
                    continue
                if not instr.is_mmx:
                    out.add(
                        "sa-route-on-straight",
                        "warn",
                        f"{subject}+{position} (state {state_index})",
                        f"state {state_index} routes operands but pairs with "
                        f"non-MMX instruction {instr}: routes_for silently "
                        "drops the routes (likely an off-by-one in the "
                        "schedule)",
                        fix_hint="routed states must line up with MMX "
                        "instructions",
                        loop=label,
                    )
                    continue
                routable = set(mmx_source_slots(instr))
                for slot in sorted(set(state.routes) - routable):
                    out.add(
                        "sa-route-slot-mismatch",
                        "warn",
                        f"{subject}+{position} (state {state_index})",
                        f"state {state_index} routes operand slot {slot} but "
                        f"{instr} does not source slot {slot} from an MMX "
                        "register: the route can never take effect",
                        fix_hint="route only the slots the paired "
                        "instruction reads through the crossbar",
                        loop=label,
                    )

        # -- GO placement --------------------------------------------------
        own_stores = [index for index, ctx in go_stores if ctx == context]
        before = [index for index in own_stores if index < start]
        if not before:
            out.add(
                "sa-missing-go",
                "warn",
                f"{subject} (context {context})",
                f"no GO store for context {context} precedes the loop "
                f"label: the SPU never activates for this loop",
                fix_hint="emit go_store(builder, context) immediately "
                "before the loop label",
                loop=label,
            )
        else:
            go_index = max(before)
            lead_in = start - go_index - 1
            if lead_in > 0:
                out.add(
                    "sa-go-lead-in",
                    "error",
                    f"{subject} (context {context})",
                    f"{lead_in} instruction(s) sit between the GO store "
                    f"(index {go_index}) and the loop label (index {start}): "
                    "the active controller steps them, skewing every "
                    "subsequent route pairing",
                    fix_hint="the GO store must be the last instruction "
                    "before the loop label",
                    loop=label,
                )
        for index in own_stores:
            if start < index <= end:
                out.add(
                    "sa-go-inside-loop",
                    "error",
                    f"{subject} (context {context})",
                    f"GO store at index {index} sits inside the loop body "
                    f"[{start}, {end}]: every iteration re-activates the "
                    "controller and resets its counters mid-flight",
                    fix_hint="hoist the GO store above the loop label",
                    loop=label,
                )
    return out.findings

"""SPU start-up cost accounting (paper §4).

"The startup cost of programming the SPU needs to also be considered
carefully by either the programmer or a compiler.  However, for the media
applications where the workloads are well defined at compilation time, the
startup cost should be easily scheduled."

We *measure* that cost: generate the actual MMIO staging sequence for a
kernel's controller programs, run it on the simulator, and divide by the
per-invocation cycle savings to get the break-even invocation count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DEFAULT_MMIO_BASE, SPUController, attach_spu
from repro.core.mmio import emit_upload
from repro.cpu import Machine
from repro.isa import ProgramBuilder
from repro.kernels.base import Kernel


@dataclass(frozen=True)
class StartupCost:
    """Upload cost vs steady-state benefit for one kernel."""

    name: str
    state_words: int
    upload_instructions: int
    upload_cycles: int
    cycles_saved_per_invocation: int

    @property
    def break_even_invocations(self) -> float:
        """Invocations after which the upload has paid for itself."""
        if self.cycles_saved_per_invocation <= 0:
            return float("inf")
        return self.upload_cycles / self.cycles_saved_per_invocation


def measure_startup_cost(kernel: Kernel) -> StartupCost:
    """Generate, run and price the MMIO upload for *kernel*'s SPU programs."""
    _, controller_programs = kernel.spu_programs()
    builder = ProgramBuilder(f"{kernel.name.lower()}-upload")
    builder.mov("r14", DEFAULT_MMIO_BASE)
    instructions = 1
    state_words = 0
    for context, spu_program in controller_programs:
        state_words += spu_program.state_count()
        # Stage without GO: pricing the upload alone; activation is the
        # 2-instruction go_store the kernels already pay per phase.
        instructions += emit_upload(
            builder, spu_program, kernel.config, context=context, go=False
        )
    builder.halt()
    machine = Machine(builder.build())
    controller = SPUController(
        config=kernel.config, contexts=max(4, len(controller_programs))
    )
    attach_spu(machine, controller)
    stats = machine.run()

    comparison = kernel.compare()
    return StartupCost(
        name=kernel.name,
        state_words=state_words,
        upload_instructions=instructions,
        upload_cycles=stats.cycles,
        cycles_saved_per_invocation=comparison.cycles_saved,
    )

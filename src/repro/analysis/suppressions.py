"""The known-silent suppression registry.

The robustness acceptance bar (docs/static-analysis.md) is: every *silent*
``control_word``/``counter_skew``/``go_race`` injection must be statically
flagged, or covered by an entry here.  A suppression is a *documented
argument* that a class of faults is out of the static analyzer's scope — it
names the fault kinds it covers and why — so the campaign report can
distinguish "explained silence" from "analyzer gap".

Suppression syntax in reports: a suppressed verdict carries
``{"verdict": "suppressed", "suppression": "<id>"}``; a suppressed lint
finding carries ``"suppressed": "<id>"`` and does not affect the
``--fail-on`` exit code.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Suppression:
    """One documented known-silent class."""

    id: str
    #: Fault-taxonomy kinds the suppression may cover.
    kinds: tuple[str, ...]
    rationale: str


_REGISTRY: tuple[Suppression, ...] = (
    Suppression(
        id="seu-data",
        kinds=("register_bit",),
        rationale=(
            "A single-event upset in the unified SPU register corrupts a "
            "data value, not control state: no microprogram, schedule or "
            "certificate property changes, so no static rule can see it. "
            "The differential self-check (repro check) owns this class."
        ),
    ),
    Suppression(
        id="word-dont-care",
        kinds=("control_word", "route"),
        rationale=(
            "The corrupted bits are don't-cares: the state word decodes to "
            "the identical control state (e.g. selector/mode bits of a "
            "granule whose valid bit is clear, or a route rewrite to the "
            "selector already in place), so the installed program is "
            "bit-for-bit the program that was already running."
        ),
    ),
    Suppression(
        id="skew-unused-counter",
        kinds=("counter_skew",),
        rationale=(
            "Skewing a loop counter that no loaded state selects never "
            "perturbs sequencing: the controller only consults the counter "
            "a state's CNTRx field names, so the upset is architecturally "
            "invisible."
        ),
    ),
)

#: id -> Suppression, the importable registry.
KNOWN_SILENT: dict[str, Suppression] = {entry.id: entry for entry in _REGISTRY}


def lookup(suppression_id: str) -> Suppression:
    return KNOWN_SILENT[suppression_id]

"""Static verdicts for fault injections: the lint/fault-campaign cross-check.

For every injection a campaign runs dynamically, this module answers the
static question: *would ``repro lint`` have flagged the corrupted artifact?*
For control-memory faults (``control_word``/``route``) it rebuilds the exact
corrupted program the injector installs — via the injector's own pure
corruption models, so the two layers cannot drift — and lints it, including
the certificate cross-check.  For sequencing faults it reasons from the spec
(``go_race`` is always a flagged hazard; ``counter_skew`` is flagged iff the
skewed counter is actually consulted).  Faults outside the static scope
resolve to a documented suppression (:mod:`repro.analysis.suppressions`).

Verdict records are JSON-friendly dicts::

    {"verdict": "flagged",    "rules": ["mp-nontermination", ...]}
    {"verdict": "suppressed", "suppression": "seu-data"}
    {"verdict": "unexplained"}

``unexplained`` is the analyzer-gap bucket the robustness bar requires to be
empty for silent injections.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RouteError
from repro.analysis.certificate import certificate_findings
from repro.analysis.findings import Severity
from repro.analysis.microprogram import analyze_program
from repro.analysis.suppressions import KNOWN_SILENT
from repro.faults.injector import corrupt_control_word, corrupt_route
from repro.faults.spec import FaultSpec

if TYPE_CHECKING:
    from repro.core.program import SPUProgram
    from repro.kernels.base import Kernel


def _suppressed(suppression_id: str) -> dict:
    assert suppression_id in KNOWN_SILENT
    return {"verdict": "suppressed", "suppression": suppression_id}


def _flagged(rules: list[str]) -> dict:
    return {"verdict": "flagged", "rules": sorted(set(rules))}


def _lint_corrupted(kernel: Kernel, context: int, corrupted: SPUProgram) -> dict:
    """Lint a corrupted controller program, certificate cross-check included."""
    rules: list[str] = []
    for finding in analyze_program(corrupted, kernel.config):
        if finding.severity >= Severity.WARN:
            rules.append(finding.rule)
    for report_context, report in kernel.offload_reports():
        if report_context != context or report.certificate is None:
            continue
        for finding in certificate_findings(report.certificate, corrupted):
            if finding.severity >= Severity.WARN:
                rules.append(finding.rule)
    if rules:
        return _flagged(rules)
    return {"verdict": "unexplained"}


def injection_verdict(kernel: Kernel, spec: FaultSpec) -> dict:
    """The static-analysis verdict for one injection against *kernel*."""
    programs = dict(kernel.spu_programs()[1])

    if spec.kind == "register_bit":
        return _suppressed("seu-data")

    if spec.kind == "go_race":
        # Any GO/suspend/resume that is not the kernel's own convention
        # desynchronizes controller steps from loop instructions: always a
        # schedule hazard, whatever the dynamic outcome.
        return _flagged(["sa-go-race"])

    if spec.kind == "counter_skew":
        consulted = any(
            state.cntr == spec.counter
            for program in programs.values()
            for state in program.states.values()
        )
        if spec.delta != 0 and consulted:
            return _flagged(["sa-schedule-drift"])
        return _suppressed("skew-unused-counter")

    if spec.kind in ("control_word", "route"):
        program = programs.get(spec.context)
        if program is None:
            return {"verdict": "unexplained"}
        try:
            if spec.kind == "control_word":
                corrupted = corrupt_control_word(
                    program, spec.state_index, spec.word_bit, kernel.config
                )
            else:
                corrupted = corrupt_route(
                    program, spec.state_index, spec.slot, spec.granule,
                    spec.selector,
                )
        except RouteError:
            # The corrupted word does not even decode (possible only for
            # configurations with spare encoding space): the MMIO decoder
            # itself rejects it, which is a static detection.
            return _flagged(["mp-encode-roundtrip"])
        if corrupted is None:
            return {"verdict": "unexplained"}
        if (
            corrupted.states == program.states
            and corrupted.counter_init == program.counter_init
            and corrupted.entry == program.entry
        ):
            # The flip landed in a don't-care position: the installed
            # program is identical to the running one.
            return _suppressed("word-dont-care")
        return _lint_corrupted(kernel, spec.context, corrupted)

    return {"verdict": "unexplained"}

"""Comparison baselines: the explicit-permute alternatives of §6/§7."""

from repro.baselines.vperm import (
    BaselineResult,
    compare_baselines,
    dotprod_vperm_program,
    halfwords,
    transpose_vperm_program,
    vperm_control,
)

__all__ = [
    "BaselineResult",
    "compare_baselines",
    "dotprod_vperm_program",
    "halfwords",
    "transpose_vperm_program",
    "vperm_control",
]

"""Explicit-permute baseline (paper §6: Altivec / TigerSHARC comparison).

The prevalent alternative to the SPU is "to perform data orchestration in
software with additional instructions" (§7): a powerful two-source permute
instruction executed by a dedicated unit.  We model it with ``vperm dst,
src, imm32`` — each destination byte picked from the 16-byte pool
``(dst, src)`` by a control nibble — and rebuild the dot-product and
transpose kernels with it, so the three alternatives can be compared on the
same simulator:

* **MMX** — fixed pack/unpack repertoire (many instructions per shuffle),
* **vperm** — one explicit instruction per shuffle, 4-byte control
  immediates, only two registers reachable per instruction (the inter-word
  restriction §6 holds against Altivec),
* **SPU** — no instructions at all; routing happens in the decoupled
  controller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine, PipelineConfig, RunStats
from repro.isa import Program, ProgramBuilder, program_size
from repro.kernels import DotProductKernel, TransposeKernel
from repro.kernels.base import INPUT_BASE, OUTPUT_BASE, TABLE_BASE


def vperm_control(byte_sources: list[int]) -> int:
    """Build the 32-bit control immediate from 8 byte selectors (0-15).

    Selector 0-7 picks a byte of the destination's old value, 8-15 picks a
    byte of the source operand.
    """
    if len(byte_sources) != 8:
        raise KernelError(f"vperm control needs 8 selectors, got {len(byte_sources)}")
    control = 0
    for i, sel in enumerate(byte_sources):
        if not 0 <= sel < 16:
            raise KernelError(f"vperm selector {sel} out of range 0-15")
        control |= sel << (4 * i)
    return control


def halfwords(*pairs: tuple[str, int]) -> list[int]:
    """Byte selectors from ('a'|'b', halfword) pairs (a = dst, b = src)."""
    out: list[int] = []
    for which, hw in pairs:
        base = 0 if which == "a" else 8
        out.extend([base + 2 * hw, base + 2 * hw + 1])
    return out


# --- kernel variants ----------------------------------------------------------


def dotprod_vperm_program(blocks: int) -> Program:
    """§4's dot product with explicit vperm realignment."""
    b = ProgramBuilder("dotprod-vperm")
    b.mov("r0", blocks)
    b.mov("r1", INPUT_BASE)
    b.mov("r2", OUTPUT_BASE)
    ctl_cgdh = vperm_control(halfwords(("a", 2), ("b", 2), ("a", 3), ("b", 3)))
    ctl_aebf = vperm_control(halfwords(("a", 0), ("b", 0), ("a", 1), ("b", 1)))
    b.label("loop")
    b.movq("mm0", "[r1]")  # a b c d
    b.movq("mm1", "[r1+8]")  # e f g h
    b.movq("mm2", "mm0")
    b.vperm("mm2", "mm1", ctl_cgdh)  # c g d h  (one instr, no unpack pair)
    b.vperm("mm0", "mm1", ctl_aebf)  # a e b f
    b.movq("mm3", "mm0")
    b.pmulhw("mm3", "mm2")
    b.pmullw("mm0", "mm2")
    b.movq("[r2]", "mm3")
    b.movq("[r2+8]", "mm0")
    b.add("r1", 16)
    b.add("r2", 16)
    b.loop("r0", "loop")
    b.halt()
    return b.build()


def transpose_vperm_program(n: int) -> Program:
    """Tile transpose with vperm.

    Even with an arbitrary two-source permute, a 4×4 transpose still needs
    two levels (each column gathers from four registers while vperm reaches
    two) — the §6 inter-word criticism of Altivec, measured.
    """
    if n % 4 != 0 or n <= 0:
        raise KernelError(f"size must be a positive multiple of 4, got {n}")
    row = 2 * n
    interleave_lo = vperm_control(halfwords(("a", 0), ("b", 0), ("a", 1), ("b", 1)))
    interleave_hi = vperm_control(halfwords(("a", 2), ("b", 2), ("a", 3), ("b", 3)))
    pair_lo = vperm_control(halfwords(("a", 0), ("a", 1), ("b", 0), ("b", 1)))
    pair_hi = vperm_control(halfwords(("a", 2), ("a", 3), ("b", 2), ("b", 3)))
    b = ProgramBuilder("transpose-vperm")
    b.mov("r0", (n // 4) ** 2)
    b.mov("r10", TABLE_BASE)
    b.label("loop")
    b.ldw("r1", "[r10]")
    b.ldw("r2", "[r10+4]")
    b.add("r10", 8)
    b.movq("mm0", "[r1]")
    b.movq("mm1", f"[r1+{row}]")
    b.movq("mm2", f"[r1+{2 * row}]")
    b.movq("mm3", f"[r1+{3 * row}]")
    # Level 1: interleave row pairs (vperm folds the copy+unpack pair).
    b.movq("mm4", "mm0")
    b.vperm("mm0", "mm1", interleave_lo)  # a0 b0 a1 b1
    b.vperm("mm4", "mm1", interleave_hi)  # a2 b2 a3 b3
    b.movq("mm5", "mm2")
    b.vperm("mm2", "mm3", interleave_lo)  # c0 d0 c1 d1
    b.vperm("mm5", "mm3", interleave_hi)  # c2 d2 c3 d3
    # Level 2: pair the halves into columns.
    b.movq("mm6", "mm0")
    b.vperm("mm0", "mm2", pair_lo)  # a0 b0 c0 d0
    b.vperm("mm6", "mm2", pair_hi)  # a1 b1 c1 d1
    b.movq("mm7", "mm4")
    b.vperm("mm4", "mm5", pair_lo)
    b.vperm("mm7", "mm5", pair_hi)
    b.movq("[r2]", "mm0")
    b.movq(f"[r2+{row}]", "mm6")
    b.movq(f"[r2+{2 * row}]", "mm4")
    b.movq(f"[r2+{3 * row}]", "mm7")
    b.loop("r0", "loop")
    b.halt()
    return b.build()


# --- comparison runner ------------------------------------------------------------


@dataclass(frozen=True)
class BaselineResult:
    """Cycles/instructions/code-size for MMX vs vperm vs SPU on one kernel."""

    name: str
    mmx: RunStats
    vperm: RunStats
    spu: RunStats
    mmx_bytes: int
    vperm_bytes: int
    spu_bytes: int


def _run_vperm(kernel, program: Program) -> RunStats:
    machine = Machine(program, config=PipelineConfig())
    kernel.prepare(machine)
    stats = machine.run()
    output = kernel.extract(machine)
    reference = kernel.reference()
    if not np.array_equal(np.asarray(output), np.asarray(reference)):
        raise KernelError(f"vperm variant of {kernel.name} diverges from reference")
    return stats


def compare_baselines(kernel_name: str) -> BaselineResult:
    """Run all three alternatives for ``DotProduct`` or ``MatrixTranspose``."""
    if kernel_name == "DotProduct":
        kernel = DotProductKernel()
        vperm_program = dotprod_vperm_program(kernel.blocks)
    elif kernel_name == "MatrixTranspose":
        kernel = TransposeKernel()
        vperm_program = transpose_vperm_program(kernel.n)
    else:
        raise KernelError(
            f"no vperm baseline for {kernel_name!r} (have DotProduct, MatrixTranspose)"
        )
    mmx_stats, _ = kernel.run_mmx()
    spu_stats, _ = kernel.run_spu()
    vperm_stats = _run_vperm(kernel, vperm_program)
    spu_program, _ = kernel.spu_programs()
    return BaselineResult(
        name=kernel.name,
        mmx=mmx_stats,
        vperm=vperm_stats,
        spu=spu_stats,
        mmx_bytes=program_size(kernel.mmx_program()),
        vperm_bytes=program_size(vperm_program),
        spu_bytes=program_size(spu_program),
    )

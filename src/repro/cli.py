"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``table1`` / ``table2`` / ``table3`` / ``fig9``
    Regenerate the corresponding paper table/figure and print the
    measured-vs-published comparison (``--fast`` shrinks FFT1024).
``run KERNEL [KERNEL ...] | --all [--jobs N] [--resume PATH]``
    Verify kernels and print their MMX vs MMX+SPU comparisons.  One kernel
    runs in-process exactly as before; several (or ``--all``) run as a
    sweep on the resilient campaign runner — ``--jobs N`` workers,
    per-task timeouts, retries, circuit breaker, and a crash-consistent
    ``--resume`` journal (docs/robustness.md, "Campaign orchestration").
``list``
    List the available kernels with their Table 2 descriptions.
``cost [--config X]``
    Print the SPU hardware cost summary (Table 1 row + die fraction).
``offload KERNEL``
    Show the off-load pass's transformation for a kernel's first loop.
``profile KERNEL [--json PATH]``
    VTune-style dynamic profile: instruction mix, per-stage cycle
    attribution and SPU controller occupancy (``--json -`` for stdout;
    schema in docs/observability.md).
``top KERNEL [--variant V] [--limit N] [--json PATH] [--fail-on STATE]``
    Hot-trace profile: dynamic traces between backward control transfers,
    ranked by cycles, with exact per-trace cycle/stall/pairing attribution
    and fusibility verdicts — ``fusible: true`` requires a replay-checked
    fusion certificate from the superop legality engine on top of the
    dynamic conditions (stable schedule + clean agreement analysis); a
    dynamically clean trace the certifier diagnosed reports state
    ``uncertified`` instead.  The planning input for trace-level superop
    compilation (ROADMAP item 1; schema ``repro.obs/2``).  ``--fail-on
    uncertified`` exits 1 when a dynamically fusible trace lacks a
    certificate; ``--fail-on not-fusible`` exits 1 when any trace is not
    certified (nonzero-exit parity with ``repro lint``).
``certify [KERNEL ...| --all] [--json PATH] [--fail-on CLASS]``
    Superop legality cross-check: certify every loop region of every
    kernel variant statically, reconcile against the dynamic trace
    profile, and report per-region agreement classes (byte-stable
    ``fusion-audit`` document, schema ``repro.analysis/2``).  Exits 1
    on ``unexplained`` disagreements (always) or, with ``--fail-on
    uncertified``, whenever a dynamically fusible loop lacks a
    certificate.
``trace KERNEL [--jsonl PATH]``
    Issue-by-issue pipeline listing; ``--jsonl`` exports one record per
    issued instruction behind a ``trace-header`` record naming the
    kernel, variant and config.
``check [KERNEL] [--faults N] [--seed S] [--json PATH] [--jobs N]
[--resume PATH]``
    Differential self-check: replay every kernel (or one) against the
    NumPy fixed-point reference, optionally under a seeded fault
    campaign classifying injections as masked/detected/silent
    (schema in docs/robustness.md).  ``--swar-check`` additionally
    sample-diffs the SWAR data path against the NumPy reference backend
    (``summary.swar_mismatches``; opt-in so default reports stay
    byte-stable).  ``--jobs N`` runs the campaign on
    the worker pool; ``--resume PATH`` journals progress there and skips
    already-completed tasks on re-invocation — the merged report is
    byte-identical to a serial run either way.  ``--spans PATH`` writes an
    OTLP-flavored span JSONL timeline (campaign → slice → task → run →
    phase; wall-clock lives only there, never in the campaign report) and
    ``--progress`` prints live per-slice progress lines to stderr.
``lint [KERNEL ...| --all] [--json PATH] [--fail-on SEV]``
    Static verifier: microprogram structure, kernel/controller schedule
    agreement and off-load soundness certificates (rule catalog in
    docs/static-analysis.md; schema ``repro.analysis/1``).  Exits 1 when
    any unsuppressed finding reaches the ``--fail-on`` severity.
``bench [KERNEL ...] [--rounds N] [--json PATH]``
    Simulation throughput (simulated cycles/sec and instructions/sec):
    the SWAR integer data path against the NumPy reference backend on
    the hot kernels (methodology and schema ``repro.simspeed/1`` in
    docs/performance.md; the tracked variant lives in
    ``benchmarks/bench_simspeed.py``).

``profile``, ``trace``, ``check``, ``lint`` and ``certify`` resolve kernel
names forgivingly (``dotprod`` → ``DotProduct``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_table, pct, ratio
from repro.core import get_config, offload_loop
from repro.errors import KernelError
from repro.experiments import ExperimentSuite, fig9, table1, table2, table3
from repro.hw import spu_cost
from repro.kernels import ALL_KERNELS, make_kernel


def _cmd_table(args: argparse.Namespace) -> int:
    if args.command == "table1":
        print(table1().text)
        return 0
    suite = ExperimentSuite(fast=args.fast)
    runner = {"table2": table2, "table3": table3, "fig9": fig9}[args.command]
    print(runner(suite).text)
    if args.command == "fig9":
        from repro.analysis import fig9_chart

        print()
        print(fig9_chart(suite.comparisons()))
    return 0


def _run_one_kernel(name: str) -> int:
    kernel = make_kernel(name)
    print(f"Verifying {kernel.name} ({kernel.description}) ...")
    kernel.verify()
    print("  both variants match the fixed-point reference bit-exactly")
    comparison = kernel.compare()
    rows = [
        ["cycles", comparison.mmx.cycles, comparison.spu.cycles],
        ["instructions", comparison.mmx.instructions, comparison.spu.instructions],
        ["alignment instructions", comparison.mmx.alignment_candidates,
         comparison.spu.alignment_candidates],
        ["branches / mispredicts",
         f"{comparison.mmx.branches} / {comparison.mmx.mispredicts}",
         f"{comparison.spu.branches} / {comparison.spu.mispredicts}"],
        ["MMX busy", pct(comparison.mmx.mmx_busy_fraction, 1),
         pct(comparison.spu.mmx_busy_fraction, 1)],
    ]
    print(format_table(["metric", "MMX only", "MMX + SPU"], rows))
    print(f"speedup: {ratio(comparison.speedup)}x "
          f"({comparison.removed_permutes} static permutes off-loaded)")
    return 0


def _parse_tenant_weights(pairs: list[str]) -> dict[str, int]:
    weights: dict[str, int] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        try:
            weight = int(value)
        except ValueError:
            weight = 0
        if not sep or not name or weight < 1:
            print(f"repro serve: error: --tenant-weight wants NAME=W with "
                  f"W >= 1, got {pair!r}", file=sys.stderr)
            raise SystemExit(2)
        weights[name] = weight
    return weights


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeApp

    if args.compact:
        # Offline compaction: fold the journal in place and exit — no
        # server, no port.  The store constructor runs normal recovery
        # first, so a compacted journal is recovery-equivalent by the same
        # fold the live service uses.
        from repro.serve import ServeStore

        store = ServeStore(args.journal_dir)
        stats = store.compact(reason="cli")
        store.close()
        print(
            f"repro serve: compacted {args.journal_dir}: "
            f"{stats['records_before']} -> {stats['records_after']} records, "
            f"{stats['archived_terminals']} terminal(s) archived "
            f"({stats['kept_terminals']} kept)",
            file=sys.stderr,
        )
        return 0

    app = ServeApp(
        args.journal_dir,
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        max_tenants=args.max_tenants,
        workers=args.workers,
        jobs=args.jobs,
        weights=_parse_tenant_weights(args.tenant_weight),
        max_inflight=args.max_inflight,
        hang_timeout_s=args.hang_timeout,
        max_job_attempts=args.job_attempts,
        compact_every=args.compact_every,
    )
    print(
        f"repro serve: epoch {app.store.epoch} on journal dir "
        f"{args.journal_dir} ({len(app.store.recovered)} job(s) recovered, "
        f"{app.workers_n} worker(s) x {app.jobs_n} campaign job(s)); "
        "endpoint published to endpoint.json",
        file=sys.stderr,
    )
    try:
        return asyncio.run(app.run())
    except KeyboardInterrupt:  # pragma: no cover - loop signal handler
        # normally converts the signal into a drain first
        return 3


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(args.kernel)
    if args.all:
        names = sorted(ALL_KERNELS)
    if not names:
        print("repro run: name at least one kernel or pass --all",
              file=sys.stderr)
        raise SystemExit(2)
    unknown = [name for name in names if name not in ALL_KERNELS]
    if unknown:
        print(f"repro run: error: invalid choice: {unknown} "
              f"(choose from {sorted(ALL_KERNELS)})", file=sys.stderr)
        raise SystemExit(2)
    if len(names) == 1 and args.jobs <= 1 and args.resume is None:
        return _run_one_kernel(names[0])

    # Sweep: one suite cell per kernel on the campaign runner.
    from repro.errors import RunnerInterrupted
    from repro.experiments import ExperimentSuite
    from repro.runner import RunnerConfig, clean_interrupts, runner_report
    from repro.obs.export import write_json

    suite = ExperimentSuite(fast=args.fast, kernel_names=tuple(names))
    config = RunnerConfig(jobs=args.jobs,
                          interrupt_after=args.interrupt_after)
    tracer = None
    if args.spans is not None:
        from repro.obs.spans import SpanTracer

        tracer = SpanTracer()
    try:
        try:
            # SIGINT/SIGTERM take the same clean path as --interrupt-after:
            # journal flushed, spans exported as aborted, exit 3, resumable.
            with clean_interrupts():
                runner, results = suite.prefetch(
                    jobs=args.jobs, journal_path=args.resume,
                    runner_config=config, tracer=tracer,
                    progress=sys.stderr if args.progress else None,
                )
        except RunnerInterrupted as exc:
            print(f"repro run: {exc}", file=sys.stderr)
            return 3
    finally:
        if tracer is not None:
            target = tracer.write(args.spans)
            if target is not None:
                print(f"wrote {target} ({len(tracer.spans)} spans)",
                      file=sys.stderr)
    rows = []
    failed = 0
    for name in names:
        result = results[f"cell:{name}"]
        if result.ok:
            record = result.result
            verified = record.get("verified", True)
            failed += 0 if verified else 1
            speedup = (record["mmx"]["cycles"] / record["spu"]["cycles"]
                       if record["spu"]["cycles"] else 0.0)
            rows.append([
                name,
                "ok" if verified else "MISMATCH",
                record["mmx"]["cycles"],
                record["spu"]["cycles"],
                f"{ratio(speedup)}x",
                record["removed_permutes"],
                "cached" if result.cached else f"{result.attempts} attempt(s)",
            ])
        else:
            failed += 1
            rows.append([name, result.status.upper(), "-", "-", "-", "-",
                         result.failure or ""])
    print(format_table(
        ["kernel", "reference", "MMX cycles", "SPU cycles", "speedup",
         "permutes off-loaded", "runner"],
        rows,
        title=f"Kernel sweep ({args.jobs} job(s))",
    ))
    if runner.fallback_reason:
        print(f"note: pool unavailable, ran serially "
              f"({runner.fallback_reason})")
    if args.runner_json is not None:
        target = write_json(args.runner_json, runner_report(runner))
        if target is not None:
            print(f"wrote {target}")
    return 1 if failed else 0


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [[name, cls().description] for name, cls in ALL_KERNELS.items()]
    print(format_table(["kernel", "workload"], rows))
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    config = get_config(args.config)
    cost = spu_cost(config, contexts=args.contexts)
    rows = [
        ["interconnect area (0.25um)", f"{cost.interconnect_area_mm2:.2f} mm2"],
        ["interconnect delay", f"{cost.interconnect_delay_ns:.2f} ns"],
        ["control memory", f"{cost.control_memory_mm2:.2f} mm2 "
         f"({cost.control_memory_bits} bits, {cost.state_bits}b/state)"],
        ["total (0.25um 2LM)", f"{cost.total_area_mm2:.2f} mm2"],
        ["scaled (0.18um 6LM)", f"{cost.scaled_area_mm2:.3f} mm2"],
        ["Pentium III die fraction", pct(cost.die_fraction)],
    ]
    print(format_table([f"SPU configuration {config.name}",
                        config.description], rows))
    return 0


def _cmd_offload(args: argparse.Namespace) -> int:
    kernel = make_kernel(args.kernel)
    program = kernel.mmx_program()
    spec = kernel.loops()[0]
    report = offload_loop(program, spec.label, spec.iterations, kernel.config,
                          live_out=spec.live_out)
    print(f"loop {spec.label!r}: removed {report.removed_count} instruction(s):")
    for index in report.removed:
        print(f"  - {program[index]}")
    if report.kept:
        print("kept (with reasons):")
        for position, reason in sorted(report.kept.items()):
            print(f"  - {program[report.loop_start + position]}: {reason}")
    print(f"SPU program: {report.spu_program.state_count()} states, "
          f"counters {report.spu_program.counter_init}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core import offload_program, render_program
    from repro.isa import assemble

    source = Path(args.file).read_text()
    program = assemble(source, name=Path(args.file).stem)
    result = offload_program(program, get_config(args.config))
    if not result.accelerated:
        print("no loops accelerated")
        for label, reason in result.skipped.items():
            print(f"  {label}: {reason}")
        return 1
    print(f"; accelerated loops: {', '.join(result.accelerated)} "
          f"({result.removed} permutes removed)")
    for label, reason in result.skipped.items():
        print(f"; skipped {label}: {reason}")
    print(result.program)
    for context, spu_program in result.controller_programs:
        print(f"\n; --- controller context {context} ---")
        print("; " + render_program(spu_program).replace("\n", "\n; "))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.export import kernel_profile_report, resolve_kernel_name, write_json

    name = resolve_kernel_name(args.kernel)
    kernel = make_kernel(name)
    variants = ("mmx", "spu") if args.variant == "both" else (args.variant,)
    report = kernel_profile_report(kernel, variants)
    if args.json is not None:
        target = write_json(args.json, report)
        if target is not None:
            print(f"wrote {target}")
        return 0
    # Human-readable rendering of the same data.
    body = report["data"]
    print(f"{body['kernel']} ({body['description']}), config {body['config']}")
    for variant in variants:
        section = body["variants"][variant]
        stats = section["stats"]
        attribution = section["cycle_attribution"]
        print(f"\n[{variant}] {stats['cycles']} cycles, "
              f"{stats['instructions']} instructions, ipc {stats['ipc']:.2f}")
        rows = [[category, cycles, pct(cycles / stats["cycles"] if stats["cycles"] else 0.0, 1)]
                for category, cycles in stats["cycle_attribution"].items()]
        print(format_table(["cycle attribution", "cycles", "share"], rows))
        mix = section["instruction_mix"]
        top = list(mix["by_opcode"].items())[:8]
        print(format_table(["top opcodes", "dynamic count"], [list(kv) for kv in top]))
        print(f"MMX fraction {pct(mix['mmx_fraction'], 1)}, "
              f"alignment/MMX {pct(mix['permute_fraction_of_mmx'], 1)}")
        uop = section.get("uop_cache")
        if uop:
            print(f"uop cache: {uop['hits']} hits / {uop['misses']} misses "
                  f"({pct(uop['hit_rate'], 1)} hit rate), "
                  f"{uop['rebuilds']} identity rebuilds, "
                  f"{uop['cached_entries']} entries resident")
        controller = section.get("controller")
        if controller:
            hottest = sorted(controller["state_occupancy"].items(),
                             key=lambda kv: -kv[1])[:6]
            print(f"SPU controller: {controller['steps']} steps, GO occupancy "
                  f"{pct(controller['go_occupancy'], 1)}, "
                  f"{controller['idle_entries']} idle entries")
            if "clean_idle_entries" in controller:
                print(f"  completions: {controller['clean_idle_entries']} clean"
                      f" idle entries, {controller['fault_parks']} fault parks,"
                      f" {controller['park_recoveries']} park recoveries")
            print(format_table(["state", "steps"], [list(kv) for kv in hottest]))
        del attribution
    comparison = body.get("comparison")
    if comparison:
        print(f"\nspeedup: {ratio(comparison['speedup'])}x "
              f"({comparison['removed_permutes']} static permutes off-loaded)")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.export import resolve_kernel_name, trace_profile_report, write_json

    name = resolve_kernel_name(args.kernel)
    kernel = make_kernel(name)
    variants = ("mmx", "spu") if args.variant == "both" else (args.variant,)
    report = trace_profile_report(kernel, variants)
    body = report["data"]
    # --fail-on uncertified is the soundness gate: a dynamically clean
    # trace whose fusion certificate was withheld.  --fail-on not-fusible
    # is the strict gate: any trace that is not certified fusible (which
    # includes structural prologue/epilogue traces, so it is only useful
    # for single-loop kernels).
    failed = False
    for variant in variants:
        summary = body["variants"][variant]["summary"]
        uncertified = summary.get("uncertified_traces", 0)
        not_fusible = summary["traces"] - summary["fusible_traces"]
        if args.fail_on == "uncertified" and uncertified:
            failed = True
        elif args.fail_on == "not-fusible" and not_fusible:
            failed = True
    if args.json is not None:
        target = write_json(args.json, report)
        if target is not None:
            print(f"wrote {target}")
        return 1 if failed else 0
    print(f"{body['kernel']} ({body['description']}), config {body['config']}")
    for variant in variants:
        section = body["variants"][variant]
        total = section["cycles"]
        summary = section["summary"]
        print(f"\n[{variant}] {total} cycles over {summary['traces']} trace(s); "
              f"{summary['fusible_traces']} fusible covering "
              f"{pct(summary['fusible_share'], 1)} of cycles; "
              f"{summary.get('uncertified_traces', 0)} uncertified")
        uop = section["uop_cache"]
        print(f"uop cache: {uop['hits']} hits / {uop['misses']} misses "
              f"({pct(uop['hit_rate'], 1)} hit rate), "
              f"{uop['rebuilds']} identity rebuilds")
        shown = section["traces"][:args.limit]
        rows = []
        for record in shown:
            state = record["fusion"].get("state", "")
            if record["fusion"]["fusible"]:
                fusible_cell = "yes"
            elif state == "uncertified":
                fusible_cell = "uncert"
            else:
                fusible_cell = "-"
            rows.append([
                record["label"] or f"@{record['head']}",
                f"{record['head']}+{record['length']}",
                record["executions"],
                record["cycles"],
                pct(record["cycles"] / total if total else 0.0, 1),
                f"{record['cpi']:.2f}",
                pct(record["pair_fraction"], 1),
                record["stall_cycles"],
                fusible_cell,
            ])
        print(format_table(
            ["trace", "span", "execs", "cycles", "share", "cpi", "pair",
             "stalls", "fusible"],
            rows,
        ))
        for record in shown:
            reasons = record["fusion"]["reasons"]
            if reasons:
                label = record["label"] or f"@{record['head']}"
                print(f"  {label}: {reasons[0]}")
    return 1 if failed else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from itertools import chain

    from repro.cpu import trace_run
    from repro.obs.export import (
        resolve_kernel_name,
        trace_header,
        trace_records,
        write_jsonl,
    )

    name = resolve_kernel_name(args.kernel)
    kernel = make_kernel(name)
    machine = kernel.machine(args.variant)
    trace = trace_run(machine, max_entries=args.max_entries)
    if args.jsonl is not None:
        records = chain([trace_header(kernel, args.variant)], trace_records(trace))
        target = write_jsonl(args.jsonl, records)
        if target is not None:
            print(f"wrote {target} ({len(trace)} records)")
        return 0
    print(trace.render(limit=args.limit))
    stats = trace.stats
    print(f"\n{stats.cycles} cycles, {stats.instructions} instructions, "
          f"{stats.spu_routed} SPU-routed")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.errors import RunnerInterrupted
    from repro.faults import run_check
    from repro.faults.report import check_report, render_check
    from repro.obs.export import resolve_kernel_name, write_json
    from repro.runner import clean_interrupts

    kernels = tuple(resolve_kernel_name(name) for name in args.kernel)
    tracer = None
    if args.spans is not None:
        from repro.obs.spans import SpanTracer

        tracer = SpanTracer()
    progress = sys.stderr if args.progress else None
    runner = None
    try:
        try:
            # SIGINT/SIGTERM take the same clean path as --interrupt-after:
            # journal flushed, spans exported as aborted, exit 3, resumable.
            with clean_interrupts():
                if args.jobs > 1 or args.resume is not None:
                    from repro.faults import run_check_parallel
                    from repro.runner import RunnerConfig

                    config = RunnerConfig(
                        jobs=args.jobs, interrupt_after=args.interrupt_after)
                    result, runner = run_check_parallel(
                        kernels=kernels,
                        faults=args.faults,
                        seed=args.seed,
                        resilience=args.mode,
                        fast=args.fast,
                        swar_check=args.swar_check,
                        jobs=args.jobs,
                        journal_path=args.resume,
                        runner_config=config,
                        tracer=tracer,
                        progress=progress,
                    )
                else:
                    result = run_check(
                        kernels=kernels,
                        faults=args.faults,
                        seed=args.seed,
                        resilience=args.mode,
                        fast=args.fast,
                        swar_check=args.swar_check,
                        tracer=tracer,
                    )
        except RunnerInterrupted as exc:
            print(f"repro check: {exc}", file=sys.stderr)
            return 3
    finally:
        # Runs on the interrupt path too: an aborted campaign still writes
        # its spans (open ones export with an aborted status).
        if tracer is not None:
            target = tracer.write(args.spans)
            if target is not None:
                print(f"wrote {target} ({len(tracer.spans)} spans)",
                      file=sys.stderr)
    if args.json is not None:
        target = write_json(args.json, check_report(result))
        if target is not None:
            print(f"wrote {target}")
    else:
        print(render_check(result))
    if runner is not None:
        if runner.fallback_reason:
            print(f"note: pool unavailable, ran serially "
                  f"({runner.fallback_reason})", file=sys.stderr)
        if args.runner_json is not None:
            from repro.runner import runner_report

            target = write_json(args.runner_json, runner_report(runner))
            if target is not None:
                print(f"wrote {target}")
    # Injection outcomes are data, not failures; only a broken clean
    # differential (simulator vs golden reference) fails the check.
    return 0 if result.clean_ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import exit_code, lint_all, lint_kernel, lint_report, render_lint
    from repro.obs.export import resolve_kernel_name, write_json

    if args.all:
        results = lint_all()
    elif args.kernel:
        results = [
            lint_kernel(resolve_kernel_name(name)) for name in args.kernel
        ]
    else:
        print("repro lint: name at least one kernel or pass --all",
              file=sys.stderr)
        return 2
    if args.json is not None:
        target = write_json(args.json, lint_report(results))
        if target is not None:
            print(f"wrote {target}")
    else:
        print(render_lint(results))
    return exit_code(results, args.fail_on)


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.analysis.absint import fusion_audit_report
    from repro.obs.export import resolve_kernel_name, write_json

    if args.all:
        names = None
    elif args.kernel:
        names = [resolve_kernel_name(name) for name in args.kernel]
    else:
        print("repro certify: name at least one kernel or pass --all",
              file=sys.stderr)
        return 2
    report = fusion_audit_report(names)
    body = report["data"]
    summary = body["summary"]
    uncertified = summary["by_agreement"].get("static-diagnosed", 0)
    failed = summary["unexplained"] > 0 or (
        args.fail_on == "uncertified" and uncertified > 0
    )
    if args.json is not None:
        target = write_json(args.json, report)
        if target is not None:
            print(f"wrote {target}")
        return 1 if failed else 0
    rows = [
        [
            row["kernel"],
            row["variant"],
            row["loop"],
            "yes" if row["certified"] else "-",
            row["trip"] if row["trip"] is not None else "-",
            row["dynamic"] or "-",
            row["agreement"],
        ]
        for row in body["regions"]
    ]
    print(format_table(
        ["kernel", "variant", "loop", "cert", "trip", "dynamic", "agreement"],
        rows,
    ))
    for row in body["regions"]:
        if row["agreement"] in ("static-diagnosed", "unexplained"):
            print(f"  {row['kernel']}/{row['variant']} {row['loop']}: "
                  f"{row['explanation']}")
    counts = ", ".join(
        f"{count} {label}"
        for label, count in sorted(summary["by_agreement"].items())
    )
    print(f"\n{summary['regions']} region(s): {counts}; "
          f"{summary['unexplained']} unexplained")
    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import write_report

    path = write_report(args.output, fast=args.fast)
    print(f"wrote {path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.export import envelope, write_json
    from repro.perf import (
        SIMSPEED_KERNELS,
        measure_simspeed,
        render_simspeed,
        simspeed_report,
    )

    cases = SIMSPEED_KERNELS
    if args.kernel:
        wanted = {name.lower() for name in args.kernel}
        cases = tuple(
            case for case in SIMSPEED_KERNELS if case[0].lower() in wanted
        )
        unknown = wanted - {case[0].lower() for case in cases}
        if unknown:
            choices = ", ".join(case[0] for case in SIMSPEED_KERNELS)
            print(f"repro bench: error: invalid choice: {sorted(unknown)} "
                  f"(choose from {choices})", file=sys.stderr)
            return 2
    results = measure_simspeed(rounds=args.rounds, cases=cases)
    if args.json is not None:
        payload = envelope("benchmark", simspeed_report(results, args.rounds))
        target = write_json(args.json, payload)
        if target is not None:
            print(f"wrote {target}")
        return 0
    print(render_simspeed(results, args.rounds))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPU reproduction (Oliver/Akella/Chong, SPAA 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "table2", "table3", "fig9"):
        table_parser = sub.add_parser(name, help=f"regenerate {name}")
        table_parser.add_argument("--fast", action="store_true",
                                  help="shrink FFT1024 for quick runs")
        table_parser.set_defaults(func=_cmd_table)

    def add_runner_options(target: argparse.ArgumentParser) -> None:
        target.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes (default: 1 = serial)")
        target.add_argument(
            "--resume", default=None, metavar="PATH",
            help="crash-consistent journal; re-invoking with the same PATH "
            "skips already-completed tasks",
        )
        target.add_argument(
            "--interrupt-after", dest="interrupt_after", type=int,
            default=None, metavar="N",
            help="stop (exit 3) after N completed tasks, leaving the "
            "journal resumable (test/ops hook)",
        )
        target.add_argument(
            "--runner-json", dest="runner_json", nargs="?", const="-",
            default=None, metavar="PATH",
            help="write the repro.runner/1 execution report ('-': stdout)",
        )
        target.add_argument(
            "--spans", default=None, metavar="PATH",
            help="write an OTLP-flavored span JSONL timeline of the "
            "campaign (wall-clock only; the byte-stable report never "
            "carries it)",
        )
        target.add_argument(
            "--progress", action="store_true",
            help="print live per-slice progress lines to stderr",
        )

    run_parser = sub.add_parser(
        "run", help="verify and compare kernels (sweeps run on the "
        "resilient campaign runner)",
    )
    run_parser.add_argument(
        "kernel", nargs="*",
        help=f"kernel(s) to run (choose from {', '.join(sorted(ALL_KERNELS))})",
    )
    run_parser.add_argument("--all", action="store_true",
                            help="run every registered kernel")
    run_parser.add_argument("--fast", action="store_true",
                            help="shrink FFT1024 for quick runs")
    add_runner_options(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    serve_parser = sub.add_parser(
        "serve", help="run the durable simulation job service (journalled "
        "jobs, crash recovery, admission control; see docs/robustness.md)",
    )
    serve_parser.add_argument(
        "--journal-dir", required=True,
        help="directory for the serve journal and job artifacts; restart "
        "with the same directory to resume unfinished jobs",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 binds an ephemeral port, published to "
        "<journal-dir>/endpoint.json)",
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=8,
        help="max queued jobs per tenant before submissions get 429",
    )
    serve_parser.add_argument(
        "--max-tenants", type=int, default=16,
        help="max distinct tenants with live queues",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="supervised job worker processes (jobs running concurrently)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1,
        help="campaign runner pool size inside each job worker",
    )
    serve_parser.add_argument(
        "--tenant-weight", action="append", default=[], metavar="NAME=W",
        help="dispatch weight for a tenant (repeatable; unlisted tenants "
        "weigh 1; weighted round-robin with a provable starvation bound)",
    )
    serve_parser.add_argument(
        "--max-inflight", type=int, default=0,
        help="max concurrently running jobs per tenant (0 = uncapped)",
    )
    serve_parser.add_argument(
        "--hang-timeout", type=float, default=10.0,
        help="seconds without a heartbeat before a job worker is SIGKILLed "
        "and the job requeued",
    )
    serve_parser.add_argument(
        "--job-attempts", type=int, default=3,
        help="supervision attempts per job before it is failed terminally",
    )
    serve_parser.add_argument(
        "--compact", action="store_true",
        help="compact the serve journal offline (crash-safe snapshot-then-"
        "rename) and exit without starting the server",
    )
    serve_parser.add_argument(
        "--compact-every", type=int, default=0,
        help="compact the journal when idle once it exceeds this many "
        "records (0 = never)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    list_parser = sub.add_parser("list", help="list kernels")
    list_parser.set_defaults(func=_cmd_list)

    cost_parser = sub.add_parser("cost", help="SPU hardware cost summary")
    cost_parser.add_argument("--config", default="D", help="configuration A-D")
    cost_parser.add_argument("--contexts", type=int, default=1)
    cost_parser.set_defaults(func=_cmd_cost)

    offload_parser = sub.add_parser("offload", help="show the off-load transform")
    offload_parser.add_argument("kernel", choices=sorted(ALL_KERNELS))
    offload_parser.set_defaults(func=_cmd_offload)

    compile_parser = sub.add_parser(
        "compile", help="compile a plain .asm file into its SPU-accelerated form"
    )
    compile_parser.add_argument("file", help="assembly source file")
    compile_parser.add_argument("--config", default="D", help="configuration A-D")
    compile_parser.set_defaults(func=_cmd_compile)

    profile_parser = sub.add_parser(
        "profile", help="instruction mix + cycle attribution + SPU occupancy"
    )
    profile_parser.add_argument("kernel", help="kernel name (forgiving match)")
    profile_parser.add_argument("--variant", choices=("mmx", "spu", "both"),
                                default="both")
    profile_parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the schema-versioned JSON report ('-' or no value: stdout)",
    )
    profile_parser.set_defaults(func=_cmd_profile)

    top_parser = sub.add_parser(
        "top",
        help="hot-trace profile: per-trace cycles, stalls and fusibility "
        "(the superop-compilation planning input)",
    )
    top_parser.add_argument("kernel", help="kernel name (forgiving match)")
    top_parser.add_argument("--variant", choices=("mmx", "spu", "both"),
                            default="both")
    top_parser.add_argument("--limit", type=int, default=10,
                            help="max traces listed (text mode; default: 10)")
    top_parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the repro.obs/2 trace-profile JSON ('-' or no value: "
        "stdout)",
    )
    top_parser.add_argument(
        "--fail-on", dest="fail_on",
        choices=("uncertified", "not-fusible"), default=None,
        help="uncertified: exit 1 when a dynamically fusible trace lacks "
        "a replay-checked certificate; not-fusible: exit 1 when any "
        "trace is not certified fusible (default: always exit 0)",
    )
    top_parser.set_defaults(func=_cmd_top)

    trace_parser = sub.add_parser(
        "trace", help="issue-by-issue pipeline listing for one kernel"
    )
    trace_parser.add_argument("kernel", help="kernel name (forgiving match)")
    trace_parser.add_argument("--variant", choices=("mmx", "spu"), default="spu")
    trace_parser.add_argument("--limit", type=int, default=64,
                              help="max listing lines (text mode)")
    trace_parser.add_argument("--max-entries", type=int, default=100_000)
    trace_parser.add_argument(
        "--jsonl", nargs="?", const="-", default=None, metavar="PATH",
        help="write one JSON record per issued instruction ('-': stdout)",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    check_parser = sub.add_parser(
        "check",
        help="differential self-check + seeded fault-injection campaign",
    )
    check_parser.add_argument(
        "kernel", nargs="*",
        help="kernel(s) to check (forgiving match; default: all)",
    )
    check_parser.add_argument("--faults", type=int, default=0, metavar="N",
                              help="fault injections to run (default: none)")
    check_parser.add_argument("--seed", type=int, default=0,
                              help="campaign seed (default: 0)")
    check_parser.add_argument(
        "--mode", choices=("strict", "degrade", "halt"), default="degrade",
        help="resilience mode of the machines under test (default: degrade)",
    )
    check_parser.add_argument("--fast", action="store_true",
                              help="shrink FFT1024 for quick runs")
    check_parser.add_argument(
        "--swar-check", dest="swar_check", action="store_true",
        help="also sample-diff the SWAR data path against the NumPy "
        "reference backend (adds summary.swar_mismatches to the report)",
    )
    check_parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the fault-campaign JSON report ('-' or no value: stdout)",
    )
    add_runner_options(check_parser)
    check_parser.set_defaults(func=_cmd_check)

    lint_parser = sub.add_parser(
        "lint",
        help="static verifier: microprograms, schedule agreement, "
        "off-load certificates, superop fusion legality",
    )
    lint_parser.add_argument(
        "kernel", nargs="*",
        help="kernel(s) to lint (forgiving match)",
    )
    lint_parser.add_argument("--all", action="store_true",
                             help="lint every registered kernel")
    lint_parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the repro.analysis/1 JSON report ('-': stdout)",
    )
    lint_parser.add_argument(
        "--fail-on", dest="fail_on", choices=("info", "warn", "error"),
        default="error",
        help="exit 1 when an unsuppressed finding reaches this severity "
        "(default: error)",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    certify_parser = sub.add_parser(
        "certify",
        help="superop legality cross-check: static certificates vs "
        "dynamic trace verdicts, per loop region",
    )
    certify_parser.add_argument(
        "kernel", nargs="*",
        help="kernel(s) to certify (forgiving match)",
    )
    certify_parser.add_argument("--all", action="store_true",
                                help="certify every registered kernel")
    certify_parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the repro.analysis/2 fusion-audit JSON ('-': stdout)",
    )
    certify_parser.add_argument(
        "--fail-on", dest="fail_on", choices=("unexplained", "uncertified"),
        default="unexplained",
        help="also exit 1 on static-diagnosed regions (default: only "
        "unexplained disagreements fail)",
    )
    certify_parser.set_defaults(func=_cmd_certify)

    report_parser = sub.add_parser(
        "report", help="run the full evaluation and write REPORT.md"
    )
    report_parser.add_argument("--output", default="REPORT.md")
    report_parser.add_argument("--fast", action="store_true")
    report_parser.set_defaults(func=_cmd_report)

    bench_parser = sub.add_parser(
        "bench",
        help="simulation throughput: SWAR data path vs the NumPy reference",
    )
    bench_parser.add_argument(
        "kernel", nargs="*",
        help="benchmark kernel(s) (default: DotProduct, FIR12, SAD)",
    )
    bench_parser.add_argument(
        "--rounds", type=int, default=5, metavar="N",
        help="timed rounds per kernel and backend; the median is reported "
        "(default: 5)",
    )
    bench_parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write the repro.simspeed/1 measurement ('-' or no value: "
        "stdout)",
    )
    bench_parser.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KernelError as error:
        print(f"repro {args.command}: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

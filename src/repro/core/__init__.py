"""The SPU: the paper's primary contribution.

Unified sub-word register, crossbar interconnect (configurations A-D),
decoupled controller with zero-overhead loop counters, memory-mapped
programming interface, high-level program builder, pipeline attachment and
the automatic permute off-load compiler pass.
"""

from repro.core.spu_register import (
    SPU_REGISTER_BITS,
    SPU_REGISTER_BYTES,
    SPURegister,
    byte_address,
    halfword_address,
)
from repro.core.interconnect import (
    CONFIG_A,
    CONFIG_B,
    CONFIG_C,
    CONFIG_D,
    CONFIG_D_MODED,
    CONFIGS,
    MODES,
    split_entry,
    OPERAND_BUSES,
    CrossbarConfig,
    OperandRoute,
    get_config,
)
from repro.core.program import (
    DEFAULT_NUM_STATES,
    ROUTED_SLOTS,
    SPUProgram,
    SPUState,
    decode_program,
    decode_state,
    encode_program,
    encode_state,
    state_word_bits,
)
from repro.core.controller import ControllerStats, SPUController
from repro.core.builder import (
    STRAIGHT,
    ByteSpec,
    SPUProgramBuilder,
    StateSpec,
    byte_route,
    halfword_route,
    identity_route,
)
from repro.core.mmio import (
    DEFAULT_MMIO_BASE,
    MMIO_WINDOW_BYTES,
    REG_CNTR0,
    REG_CNTR1,
    REG_CONFIG,
    REG_ENTRY,
    REG_STATUS,
    STATE_BASE,
    STATE_STRIDE,
    SPUMMIO,
    emit_upload,
)
from repro.core.integration import AttachedSPU, AttachmentStats, attach_spu

__all__ = [
    "SPU_REGISTER_BITS",
    "SPU_REGISTER_BYTES",
    "SPURegister",
    "byte_address",
    "halfword_address",
    "CONFIG_A",
    "CONFIG_B",
    "CONFIG_C",
    "CONFIG_D",
    "CONFIG_D_MODED",
    "CONFIGS",
    "MODES",
    "split_entry",
    "OPERAND_BUSES",
    "CrossbarConfig",
    "OperandRoute",
    "get_config",
    "DEFAULT_NUM_STATES",
    "ROUTED_SLOTS",
    "SPUProgram",
    "SPUState",
    "decode_program",
    "decode_state",
    "encode_program",
    "encode_state",
    "state_word_bits",
    "ControllerStats",
    "SPUController",
    "STRAIGHT",
    "ByteSpec",
    "SPUProgramBuilder",
    "StateSpec",
    "byte_route",
    "halfword_route",
    "identity_route",
    "DEFAULT_MMIO_BASE",
    "MMIO_WINDOW_BYTES",
    "REG_CNTR0",
    "REG_CNTR1",
    "REG_CONFIG",
    "REG_ENTRY",
    "REG_STATUS",
    "STATE_BASE",
    "STATE_STRIDE",
    "SPUMMIO",
    "emit_upload",
    "AttachedSPU",
    "AttachmentStats",
    "attach_spu",
]

from repro.core.offload import (
    OffloadError,
    OffloadReport,
    byte_sources,
    find_loop,
    is_pure_permute,
    mmx_source_slots,
    offload_loop,
)

__all__ += [
    "OffloadError",
    "OffloadReport",
    "byte_sources",
    "find_loop",
    "is_pure_permute",
    "mmx_source_slots",
    "offload_loop",
]

from repro.core.dataflow import (
    ByteMap,
    CertIssue,
    OffloadCertificate,
    OriginalAnalysis,
    PermuteWitness,
    analyze_original,
    check_certificate,
    derive_routes,
)

__all__ += [
    "ByteMap",
    "CertIssue",
    "OffloadCertificate",
    "OriginalAnalysis",
    "PermuteWitness",
    "analyze_original",
    "check_certificate",
    "derive_routes",
]

from repro.core.debug import render_program, render_state

__all__ += ["render_program", "render_state"]

from repro.core.autopilot import (
    CompileResult,
    DetectedLoop,
    detect_counted_loops,
    offload_program,
)

__all__ += [
    "CompileResult",
    "DetectedLoop",
    "detect_counted_loops",
    "offload_program",
]

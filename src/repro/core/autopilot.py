"""Whole-program SPU compilation: the fully automated path of §4.

"The generation of the code for the SPU is systematic and can be automated.
Additionally, a separate instruction set extension could be mapped to the
SPU controller freeing the programmer from having to micro-code this
engine."  :func:`offload_program` realizes that end to end: given a plain
MMX program with **no SPU plumbing at all**, it

1. finds every innermost counted loop (``label: ... loop rX, label``),
2. statically infers each trip count from the dominating ``mov rX, imm``,
3. runs the per-loop off-load pass (:func:`repro.core.offload.offload_loop`),
4. assigns controller contexts (up to four) to the profitable loops, and
5. injects the MMIO plumbing — one base-register load at program entry and
   a GO store immediately before each accelerated loop — using scalar
   registers the program does not touch.

The result is a transformed :class:`Program` plus the per-context
controller programs, ready for :func:`repro.core.integration.attach_spu`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builder import SPUProgramBuilder  # noqa: F401 (re-export site)
from repro.core.interconnect import CONFIG_D, CrossbarConfig
from repro.core.mmio import DEFAULT_MMIO_BASE
from repro.core.offload import OffloadError, OffloadReport, is_zero_idiom, mmx_dest, offload_loop
from repro.core.program import SPUProgram
from repro.isa.instructions import Instruction, Program
from repro.isa.opcodes import lookup
from repro.isa.operands import Imm, Label, Mem
from repro.isa.registers import MM, NUM_SCALAR_REGS, R, Register


@dataclass
class DetectedLoop:
    """One counted loop with a statically known trip count."""

    label: str
    start: int
    end: int
    counter: Register
    iterations: int


@dataclass
class CompileResult:
    """Output of :func:`offload_program`."""

    program: Program
    #: (context, controller program) for each accelerated loop, in order.
    controller_programs: list[tuple[int, SPUProgram]]
    #: Loops accelerated, by label.
    accelerated: list[str] = field(default_factory=list)
    #: Loops considered but skipped, with reasons.
    skipped: dict[str, str] = field(default_factory=dict)
    #: Static permutes removed in total.
    removed: int = 0


def detect_counted_loops(program: Program) -> tuple[list[DetectedLoop], dict[str, str]]:
    """Find innermost ``loop rX, label`` loops with inferable trip counts."""
    detected: list[DetectedLoop] = []
    skipped: dict[str, str] = {}
    for label, start in sorted(program.labels.items(), key=lambda kv: kv[1]):
        end = None
        counter: Register | None = None
        for index in range(start, len(program)):
            instr = program[index]
            if (
                instr.opcode.sem == "loop"
                and isinstance(instr.operands[1], Label)
                and instr.operands[1].name == label
            ):
                end = index
                counter = instr.operands[0]
        if end is None:
            continue
        if any(program[i].is_branch for i in range(start, end)):
            skipped[label] = "inner control flow"
            continue
        # Trip count: the closest write to the counter before the loop must
        # be `mov counter, imm`, with no branch between it and the loop head
        # and no other write to the counter inside the body.
        iterations = None
        for index in range(start - 1, -1, -1):
            instr = program[index]
            if instr.is_branch:
                skipped[label] = "branch between counter setup and loop head"
                break
            if counter in instr.regs_written():
                if instr.opcode.sem == "mov" and isinstance(instr.operands[1], Imm):
                    iterations = instr.operands[1].value
                else:
                    skipped[label] = "counter not initialized by mov-immediate"
                break
        else:
            skipped[label] = "no counter initialization found"
        if iterations is None:
            continue
        if iterations <= 0:
            skipped[label] = f"non-positive trip count {iterations}"
            continue
        body_writes_counter = any(
            counter in program[i].regs_written() for i in range(start, end)
        )
        if body_writes_counter:
            skipped[label] = "loop body modifies its own counter"
            continue
        detected.append(
            DetectedLoop(label=label, start=start, end=end, counter=counter,
                         iterations=iterations)
        )
    return detected, skipped


def _known_zero_at(program: Program, loop: DetectedLoop) -> tuple[Register, ...]:
    """MMX registers provably zero at the loop and untouched in its body.

    A pre-loop clear idiom (``pxor x,x``) establishes zero; any other write
    clears the fact; control flow resets the analysis conservatively.
    """
    zero_state: dict[int, bool] = {}
    for index in range(loop.start):
        instr = program[index]
        if instr.is_branch:
            zero_state.clear()
            continue
        dst = mmx_dest(instr)
        if dst is not None:
            zero_state[dst.index] = is_zero_idiom(instr)
    result = []
    for reg_index, is_zero in zero_state.items():
        if not is_zero:
            continue
        written_in_body = any(
            MM[reg_index] in program[i].mmx_regs_written()
            for i in range(loop.start, loop.end + 1)
        )
        if not written_in_body:
            result.append(MM[reg_index])
    return tuple(result)


def _free_scalar_registers(program: Program, count: int) -> list[Register]:
    """Scalar registers the program never reads or writes."""
    used: set[Register] = set()
    for instr in program.instructions:
        for reg in (*instr.regs_read(), *instr.regs_written()):
            if isinstance(reg, Register) and not reg.is_mmx:
                used.add(reg)
    free = [R[i] for i in range(NUM_SCALAR_REGS - 1, -1, -1) if R[i] not in used]
    if len(free) < count:
        raise OffloadError(
            f"need {count} free scalar registers for the MMIO plumbing, "
            f"found {len(free)}"
        )
    return free[:count]


def _inject(program: Program, insertions: dict[int, list[Instruction]]) -> Program:
    """Insert instruction lists *before* the given indexes, fixing labels."""
    new_instructions: list[Instruction] = []
    index_map: dict[int, int] = {}
    for index, instr in enumerate(program.instructions):
        for injected in insertions.get(index, ()):  # plumbing goes first
            new_instructions.append(injected)
        index_map[index] = len(new_instructions)
        new_instructions.append(instr)
    new_labels = {
        label: index_map[index] for label, index in program.labels.items()
    }
    result = Program(
        instructions=new_instructions, labels=new_labels, name=f"{program.name}+auto"
    )
    result.validate()
    return result


def offload_program(
    program: Program,
    config: CrossbarConfig = CONFIG_D,
    mmio_base: int = DEFAULT_MMIO_BASE,
    min_removed: int = 1,
) -> CompileResult:
    """Compile a plain MMX program into its SPU-accelerated form.

    Loops whose off-load removes fewer than *min_removed* instructions are
    left untouched (no GO overhead for nothing); at most four loops are
    accelerated (the MMIO context field width).
    """
    detected, skipped = detect_counted_loops(program)

    candidates: list[tuple[DetectedLoop, OffloadReport]] = []
    working = program
    for loop in detected:
        if len(candidates) == 4:
            skipped[loop.label] = "context limit (4) reached"
            continue
        report = offload_loop(
            working, loop.label, loop.iterations, config,
            known_zero=_known_zero_at(working, loop),
        )
        if report.removed_count < min_removed:
            skipped[loop.label] = "no removable permutes"
            continue
        working = report.program
        candidates.append((loop, report))

    if not candidates:
        return CompileResult(program=program, controller_programs=[],
                             skipped=skipped)

    base_reg, go_reg = _free_scalar_registers(program, 2)
    mov = lookup("mov")
    stw = lookup("stw")
    insertions: dict[int, list[Instruction]] = {
        0: [Instruction(opcode=mov, operands=(base_reg, Imm(mmio_base)))]
    }
    controller_programs: list[tuple[int, SPUProgram]] = []
    accelerated: list[str] = []
    removed_total = 0
    for context, (loop, report) in enumerate(candidates):
        head = working.target(loop.label)
        insertions.setdefault(head, []).extend([
            Instruction(opcode=mov, operands=(go_reg, Imm(1 | (context << 1)))),
            Instruction(opcode=stw, operands=(Mem(base=base_reg), go_reg)),
        ])
        controller_programs.append((context, report.spu_program))
        accelerated.append(loop.label)
        removed_total += report.removed_count

    final = _inject(working, insertions)
    return CompileResult(
        program=final,
        controller_programs=controller_programs,
        accelerated=accelerated,
        skipped=skipped,
        removed=removed_total,
    )

"""High-level construction of SPU controller programs.

Kernels describe routes at *byte* granularity against the architectural
register file — ``(register, byte)`` pairs — and the builder converts and
validates them for the target interconnect configuration.  Loop helpers
compute the dynamic-instruction counter values the way §4's example does
(CNTR0 = iterations × instructions-per-iteration) and wire the next-state
chains, including the two-level nesting the pair of counters supports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SPUProgramError
from repro.core.interconnect import CONFIG_D, CrossbarConfig, OperandRoute
from repro.core.program import DEFAULT_NUM_STATES, SPUProgram, SPUState
from repro.core.spu_register import byte_address
from repro.isa.registers import MMX_BYTES

#: Spec for one routed byte: (mmx_register_index, byte_offset) or None.
ByteSpec = tuple[int, int] | None


def byte_route(specs: list[ByteSpec]) -> tuple:
    """Absolute byte route from ``(reg, byte)`` specs (None = straight)."""
    if len(specs) != MMX_BYTES:
        raise SPUProgramError(f"byte route needs {MMX_BYTES} specs, got {len(specs)}")
    return tuple(None if s is None else byte_address(s[0], s[1]) for s in specs)


def halfword_route(specs: list[tuple[int, int] | None]) -> tuple:
    """Byte route from ``(reg, halfword)`` specs (None = straight half-word)."""
    if len(specs) != MMX_BYTES // 2:
        raise SPUProgramError(
            f"half-word route needs {MMX_BYTES // 2} specs, got {len(specs)}"
        )
    bytes_out: list[ByteSpec] = []
    for spec in specs:
        if spec is None:
            bytes_out.extend([None, None])
        else:
            reg, hw = spec
            if not 0 <= hw < MMX_BYTES // 2:
                raise SPUProgramError(f"half-word offset {hw} out of range")
            bytes_out.extend([(reg, 2 * hw), (reg, 2 * hw + 1)])
    return byte_route(bytes_out)


def identity_route(reg: int) -> tuple:
    """Route that explicitly re-fetches register *reg* (useful in tests)."""
    return byte_route([(reg, b) for b in range(MMX_BYTES)])


@dataclass
class StateSpec:
    """One loop-body state: byte-granularity routes per operand slot.

    ``routes`` maps slot (0 = destination-as-source, 1 = second source) to an
    8-entry byte route (see :func:`byte_route`).  An empty dict is a straight
    state — emitted for scalar/branch instructions in the loop body, which
    still advance the controller's dynamic-instruction counters.
    """

    routes: dict[int, tuple] | None = None

    def resolved(self, config: CrossbarConfig) -> dict[int, OperandRoute]:
        if not self.routes:
            return {}
        resolved: dict[int, OperandRoute] = {}
        for slot, route in self.routes.items():
            if len(route) == config.granules_per_operand:
                # Already in the config's granule space (possibly with §6
                # operand modes); for 8-bit ports this coincides with the
                # byte-route form.
                config.check_route(route)
                resolved[slot] = tuple(route)
            else:
                resolved[slot] = config.check_byte_route(route)
        return resolved


STRAIGHT = StateSpec()


class SPUProgramBuilder:
    """Builds :class:`SPUProgram` images state by state or loop by loop."""

    def __init__(
        self,
        config: CrossbarConfig = CONFIG_D,
        num_states: int = DEFAULT_NUM_STATES,
        name: str = "spu-program",
    ) -> None:
        self.config = config
        self._program = SPUProgram(num_states=num_states, name=name)
        self._next_free = 0
        self._counters: list[int | None] = [None, None]

    @property
    def idle(self) -> int:
        return self._program.idle_state

    def _allocate(self, count: int) -> int:
        first = self._next_free
        if first + count > self.idle:
            raise SPUProgramError(
                f"program needs {first + count} states; only {self.idle} available"
            )
        self._next_free += count
        return first

    def _set_counter(self, cntr: int, value: int) -> None:
        if value <= 0:
            raise SPUProgramError(f"counter {cntr} init must be positive, got {value}")
        existing = self._counters[cntr]
        if existing is not None and existing != value:
            raise SPUProgramError(
                f"counter {cntr} already set to {existing}; cannot reset to {value}"
            )
        self._counters[cntr] = value

    # ---- raw state ------------------------------------------------------------

    def add_state(
        self,
        spec: StateSpec | dict | None = None,
        *,
        cntr: int = 0,
        next0: int | None = None,
        next1: int | None = None,
    ) -> int:
        """Add one explicit state; next fields default to the idle state."""
        if isinstance(spec, dict):
            spec = StateSpec(routes=spec)
        elif spec is None:
            spec = STRAIGHT
        index = self._allocate(1)
        self._program.add_state(
            index,
            SPUState(
                cntr=cntr,
                routes=spec.resolved(self.config),
                next0=self.idle if next0 is None else next0,
                next1=self.idle if next1 is None else next1,
            ),
        )
        return index

    # ---- loops -----------------------------------------------------------------

    def loop(
        self,
        body: list[StateSpec | dict | None],
        iterations: int,
        *,
        counter: int = 0,
        exit_to: int | None = None,
    ) -> int:
        """A single-level zero-overhead loop over *body* states.

        One state per dynamic instruction of the loop body (§4): the counter
        is initialized to ``iterations × len(body)``, every state's ``next0``
        points at the exit (idle by default), and ``next1`` chains cyclically.
        Returns the index of the first state.
        """
        if not body:
            raise SPUProgramError("loop body must contain at least one state")
        if iterations <= 0:
            raise SPUProgramError(f"iterations must be positive, got {iterations}")
        first = self._allocate(len(body))
        exit_state = self.idle if exit_to is None else exit_to
        self._set_counter(counter, iterations * len(body))
        for offset, raw in enumerate(body):
            spec = raw if isinstance(raw, StateSpec) else StateSpec(routes=raw)
            index = first + offset
            next_in_chain = first + (offset + 1) % len(body)
            self._program.add_state(
                index,
                SPUState(
                    cntr=counter,
                    routes=spec.resolved(self.config),
                    next0=exit_state,
                    next1=next_in_chain,
                ),
            )
        return first

    def two_level_loop(
        self,
        inner: list[StateSpec | dict | None],
        inner_iterations: int,
        outer: list[StateSpec | dict | None],
        outer_iterations: int,
    ) -> int:
        """Nested loops using both counters (the paper's two-level limit, §4).

        Shape: ``inner^inner_iterations  outer  (back to inner)`` repeated
        *outer_iterations* times.  CNTR0 covers the inner chain and
        auto-reloads on exit; CNTR1 counts outer-state visits.
        """
        if not inner or not outer:
            raise SPUProgramError("both loop bodies must be non-empty")
        if inner_iterations <= 0 or outer_iterations <= 0:
            raise SPUProgramError("iteration counts must be positive")
        inner_first = self._allocate(len(inner))
        outer_first = self._allocate(len(outer))
        self._set_counter(0, inner_iterations * len(inner))
        self._set_counter(1, outer_iterations * len(outer))
        for offset, raw in enumerate(inner):
            spec = raw if isinstance(raw, StateSpec) else StateSpec(routes=raw)
            self._program.add_state(
                inner_first + offset,
                SPUState(
                    cntr=0,
                    routes=spec.resolved(self.config),
                    next0=outer_first,
                    next1=inner_first + (offset + 1) % len(inner),
                ),
            )
        for offset, raw in enumerate(outer):
            spec = raw if isinstance(raw, StateSpec) else StateSpec(routes=raw)
            last = offset == len(outer) - 1
            self._program.add_state(
                outer_first + offset,
                SPUState(
                    cntr=1,
                    routes=spec.resolved(self.config),
                    next0=self.idle,
                    next1=inner_first if last else outer_first + offset + 1,
                ),
            )
        return inner_first

    # ---- finish --------------------------------------------------------------------

    def build(self, entry: int = 0) -> SPUProgram:
        """Finalize: set counters and entry, validate against the config."""
        self._program.entry = entry
        self._program.counter_init = (
            self._counters[0] if self._counters[0] is not None else 0,
            self._counters[1] if self._counters[1] is not None else 0,
        )
        self._program.validate(self.config)
        return self._program

"""The decoupled SPU controller (Figure 8).

A K-state state machine (K = 128 in the paper) advanced once per dynamic MMX
instruction while active.  Each step emits the current state's operand routes,
decrements the state's selected counter, and follows ``next0`` (counter hit
zero — the counter auto-reloads to its programmed value, giving zero-overhead
nested loops) or ``next1`` otherwise.  Reaching the idle state (127) disables
the SPU and resets both counters (§4).

Multiple contexts hold independent program/counter banks for fast switching
(§3: "The SPU can support several copies of the SPU control registers").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SPUProgramError
from repro.core.interconnect import CONFIG_D, CrossbarConfig
from repro.core.program import DEFAULT_NUM_STATES, SPUProgram, SPUState
from repro.obs.events import ControllerStepEvent


@dataclass
class ControllerStats:
    """Counters describing controller activity for Table 3 accounting."""

    steps: int = 0
    activations: int = 0
    routed_steps: int = 0
    context_switches: int = 0


class SPUController:
    """Decoupled controller: contexts, zero-overhead counters, idle state."""

    def __init__(
        self,
        config: CrossbarConfig = CONFIG_D,
        num_states: int = DEFAULT_NUM_STATES,
        contexts: int = 1,
    ) -> None:
        if num_states < 2:
            raise SPUProgramError("controller needs at least 2 states (one + idle)")
        if contexts < 1:
            raise SPUProgramError("controller needs at least one context")
        self.config = config
        self.num_states = num_states
        self._programs: list[SPUProgram | None] = [None] * contexts
        self.context = 0
        self._active = False
        # Per-context control-register copies (§3): current state + counters
        # survive a context switch, so an exception handler can suspend one
        # loop, run another context, and resume where it left off (§4).
        self._current_by_ctx: list[int] = [num_states - 1] * contexts
        self._counters_by_ctx: list[list[int]] = [[0, 0] for _ in range(contexts)]
        self.stats = ControllerStats()
        #: Telemetry: set by attach_spu to the machine's EventBus; each
        #: step() then emits a ``controller_step`` event when observed.
        self.bus = None

    # ---- structural properties ------------------------------------------------

    @property
    def idle_state(self) -> int:
        return self.num_states - 1

    @property
    def contexts(self) -> int:
        return len(self._programs)

    @property
    def active(self) -> bool:
        """True while the state machine is running (not idle)."""
        return self._active

    @property
    def _current(self) -> int:
        return self._current_by_ctx[self.context]

    @_current.setter
    def _current(self, value: int) -> None:
        self._current_by_ctx[self.context] = value

    @property
    def _counters(self) -> list[int]:
        return self._counters_by_ctx[self.context]

    @_counters.setter
    def _counters(self, value: list[int]) -> None:
        self._counters_by_ctx[self.context] = list(value)

    @property
    def current_state(self) -> int:
        return self._current

    @property
    def counters(self) -> tuple[int, int]:
        """Live counter values of the selected context."""
        return (self._counters[0], self._counters[1])

    def program(self, context: int | None = None) -> SPUProgram | None:
        return self._programs[self.context if context is None else context]

    # ---- programming ------------------------------------------------------------

    def load_program(self, program: SPUProgram, context: int = 0) -> None:
        """Install *program* into a context bank (validates against the config)."""
        if not 0 <= context < self.contexts:
            raise SPUProgramError(f"context {context} out of range (have {self.contexts})")
        if program.num_states != self.num_states:
            raise SPUProgramError(
                f"program sized for K={program.num_states}, controller has "
                f"K={self.num_states}"
            )
        program.validate(self.config)
        self._programs[context] = program

    def switch_context(self, context: int) -> None:
        """Select another control-register bank (fast context switch, §3)."""
        if not 0 <= context < self.contexts:
            raise SPUProgramError(f"context {context} out of range (have {self.contexts})")
        if self._active:
            raise SPUProgramError("cannot switch contexts while the SPU is active")
        if context != self.context:
            self.context = context
            self.stats.context_switches += 1

    # ---- activation (the GO bit) ----------------------------------------------------

    def go(self, context: int | None = None) -> None:
        """Activate: load counters, jump to the entry state (§4's GO bit)."""
        if context is not None:
            self.switch_context(context)
        program = self._programs[self.context]
        if program is None:
            raise SPUProgramError(f"context {self.context} has no program loaded")
        self._counters = list(program.counter_init)
        self._current = program.entry
        self._active = True
        self.stats.activations += 1

    def stop(self) -> None:
        """Force-disable and reset the selected context to its initial state."""
        self._active = False
        self._current = self.idle_state
        program = self._programs[self.context]
        if program is not None:
            self._counters = list(program.counter_init)

    def suspend(self) -> None:
        """Disable while *preserving* the context's state and counters (§4).

        The exception-handler pattern: suspend, optionally switch to a free
        context and run it, then :meth:`resume` the interrupted loop.
        """
        self._active = False

    def resume(self, context: int | None = None) -> None:
        """Continue a suspended context exactly where :meth:`suspend` left it."""
        if context is not None:
            self.switch_context(context)
        program = self._programs[self.context]
        if program is None:
            raise SPUProgramError(f"context {self.context} has no program loaded")
        if self._current == self.idle_state:
            raise SPUProgramError(
                f"context {self.context} is idle (completed or never started);"
                " use go() to restart it"
            )
        self._active = True

    # ---- the per-instruction step -----------------------------------------------------

    def peek(self) -> SPUState | None:
        """Current state's word without advancing (None when idle)."""
        if not self._active:
            return None
        return self._programs[self.context].states[self._current]

    def step(self) -> SPUState | None:
        """Advance one dynamic MMX instruction; returns the emitted state.

        Sequencing per §4: emit the current state's routes, decrement the
        selected counter; zero selects ``next0`` and reloads the counter,
        otherwise ``next1``; landing on the idle state disables the SPU.
        """
        if not self._active:
            return None
        program = self._programs[self.context]
        emitted_index = self._current
        state = program.states[emitted_index]
        self.stats.steps += 1
        if state.routes:
            self.stats.routed_steps += 1

        self._counters[state.cntr] -= 1
        if self._counters[state.cntr] <= 0:
            # Zero-overhead loop exit: auto-restore the counter (§4).
            self._counters[state.cntr] = program.counter_init[state.cntr]
            next_index = state.next0
        else:
            next_index = state.next1

        if next_index == self.idle_state:
            self._active = False
            self._current = self.idle_state
            self._counters = list(program.counter_init)
        else:
            self._current = next_index
        bus = self.bus
        if bus is not None and bus.controller_step:
            bus.dispatch(
                "controller_step",
                ControllerStepEvent(
                    context=self.context,
                    state_index=emitted_index,
                    next_index=next_index,
                    counters=(self._counters[0], self._counters[1]),
                    routed=bool(state.routes),
                    went_idle=next_index == self.idle_state,
                ),
            )
        return state

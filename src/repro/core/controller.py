"""The decoupled SPU controller (Figure 8).

A K-state state machine (K = 128 in the paper) advanced once per dynamic MMX
instruction while active.  Each step emits the current state's operand routes,
decrements the state's selected counter, and follows ``next0`` (counter hit
zero — the counter auto-reloads to its programmed value, giving zero-overhead
nested loops) or ``next1`` otherwise.  Reaching the idle state (127) disables
the SPU and resets both counters (§4).

Multiple contexts hold independent program/counter banks for fast switching
(§3: "The SPU can support several copies of the SPU control registers").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SPUProgramError
from repro.resilience import ResilienceMode
from repro.core.interconnect import CONFIG_D, CrossbarConfig
from repro.core.program import DEFAULT_NUM_STATES, SPUProgram, SPUState
from repro.obs.events import ControllerStepEvent, DegradeEvent, FaultEvent, RecoveryEvent


@dataclass
class ControllerStats:
    """Counters describing controller activity for Table 3 accounting."""

    steps: int = 0
    activations: int = 0
    routed_steps: int = 0
    context_switches: int = 0
    #: Normal completions: the state machine followed an edge into idle-127.
    idle_entries: int = 0
    #: Faults absorbed by degrade mode (invalid state parked at idle).
    #: Disjoint from :attr:`idle_entries`, so degrade-mode runs are
    #: distinguishable from clean completions in ``repro profile`` output.
    fault_parks: int = 0
    #: GO re-arms of a fault-parked context (degrade-mode recoveries).
    park_recoveries: int = 0


class SPUController:
    """Decoupled controller: contexts, zero-overhead counters, idle state."""

    def __init__(
        self,
        config: CrossbarConfig = CONFIG_D,
        num_states: int = DEFAULT_NUM_STATES,
        contexts: int = 1,
        resilience: ResilienceMode | str | None = None,
    ) -> None:
        if num_states < 2:
            raise SPUProgramError("controller needs at least 2 states (one + idle)")
        if contexts < 1:
            raise SPUProgramError("controller needs at least one context")
        self.config = config
        #: Failure posture (see :mod:`repro.resilience`).  ``None`` means
        #: "inherit from the machine at attach time", falling back to STRICT
        #: for standalone controllers.
        self.resilience = None if resilience is None else ResilienceMode.parse(resilience)
        #: True after degrade mode parked the unit at idle because of a
        #: fault; cleared (with a ``recovery`` event) by the next go().
        self.fault_parked = False
        self.num_states = num_states
        self._programs: list[SPUProgram | None] = [None] * contexts
        self.context = 0
        self._active = False
        # Per-context control-register copies (§3): current state + counters
        # survive a context switch, so an exception handler can suspend one
        # loop, run another context, and resume where it left off (§4).
        self._current_by_ctx: list[int] = [num_states - 1] * contexts
        self._counters_by_ctx: list[list[int]] = [[0, 0] for _ in range(contexts)]
        self.stats = ControllerStats()
        #: Telemetry: set by attach_spu to the machine's EventBus; each
        #: step() then emits a ``controller_step`` event when observed.
        self.bus = None

    # ---- structural properties ------------------------------------------------

    @property
    def idle_state(self) -> int:
        return self.num_states - 1

    @property
    def contexts(self) -> int:
        return len(self._programs)

    @property
    def active(self) -> bool:
        """True while the state machine is running (not idle)."""
        return self._active

    @property
    def _current(self) -> int:
        return self._current_by_ctx[self.context]

    @_current.setter
    def _current(self, value: int) -> None:
        self._current_by_ctx[self.context] = value

    @property
    def _counters(self) -> list[int]:
        return self._counters_by_ctx[self.context]

    @_counters.setter
    def _counters(self, value: list[int]) -> None:
        self._counters_by_ctx[self.context] = list(value)

    @property
    def current_state(self) -> int:
        return self._current

    @property
    def counters(self) -> tuple[int, int]:
        """Live counter values of the selected context."""
        return (self._counters[0], self._counters[1])

    def program(self, context: int | None = None) -> SPUProgram | None:
        return self._programs[self.context if context is None else context]

    # ---- programming ------------------------------------------------------------

    def load_program(self, program: SPUProgram, context: int = 0) -> None:
        """Install *program* into a context bank (validates against the config)."""
        if not 0 <= context < self.contexts:
            raise SPUProgramError(f"context {context} out of range (have {self.contexts})")
        if program.num_states != self.num_states:
            raise SPUProgramError(
                f"program sized for K={program.num_states}, controller has "
                f"K={self.num_states}"
            )
        program.validate(self.config)
        self._programs[context] = program

    def switch_context(self, context: int) -> None:
        """Select another control-register bank (fast context switch, §3)."""
        if not 0 <= context < self.contexts:
            raise SPUProgramError(f"context {context} out of range (have {self.contexts})")
        if self._active:
            raise SPUProgramError("cannot switch contexts while the SPU is active")
        if context != self.context:
            self.context = context
            self.stats.context_switches += 1

    # ---- activation (the GO bit) ----------------------------------------------------

    def go(self, context: int | None = None) -> None:
        """Activate: load counters, jump to the entry state (§4's GO bit)."""
        if context is not None:
            self.switch_context(context)
        program = self._programs[self.context]
        if program is None:
            raise SPUProgramError(f"context {self.context} has no program loaded")
        self._counters = list(program.counter_init)
        self._current = program.entry
        self._active = True
        self.stats.activations += 1
        if self.fault_parked:
            # Degrade mode parked the unit on a fault; GO re-arms it (§4's
            # posture: idle-127 disables, the GO bit brings it back).
            self.fault_parked = False
            self.stats.park_recoveries += 1
            bus = self.bus
            if bus is not None and bus.recovery:
                bus.dispatch(
                    "recovery",
                    RecoveryEvent(
                        component="controller",
                        detail=f"context {self.context} re-armed after fault park",
                    ),
                )

    def stop(self) -> None:
        """Force-disable and reset the selected context to its initial state."""
        self._active = False
        self._current = self.idle_state
        program = self._programs[self.context]
        if program is not None:
            self._counters = list(program.counter_init)

    def suspend(self) -> None:
        """Disable while *preserving* the context's state and counters (§4).

        The exception-handler pattern: suspend, optionally switch to a free
        context and run it, then :meth:`resume` the interrupted loop.
        """
        self._active = False

    def resume(self, context: int | None = None) -> None:
        """Continue a suspended context exactly where :meth:`suspend` left it."""
        if context is not None:
            self.switch_context(context)
        program = self._programs[self.context]
        if program is None:
            raise SPUProgramError(f"context {self.context} has no program loaded")
        if self._current == self.idle_state:
            raise SPUProgramError(
                f"context {self.context} is idle (completed or never started);"
                " use go() to restart it"
            )
        self._active = True

    # ---- the per-instruction step -----------------------------------------------------

    def peek(self) -> SPUState | None:
        """Current state's word without advancing (None when idle)."""
        if not self._active:
            return None
        return self._programs[self.context].states[self._current]

    def step(self) -> SPUState | None:
        """Advance one dynamic MMX instruction; returns the emitted state.

        Sequencing per §4: emit the current state's routes, decrement the
        selected counter; zero selects ``next0`` and reloads the counter,
        otherwise ``next1``; landing on the idle state disables the SPU.
        """
        if not self._active:
            return None
        program = self._programs[self.context]
        emitted_index = self._current
        state = program.states.get(emitted_index)
        if state is None:
            # A corrupted next pointer (or control word) landed on an
            # undefined state — the paper's hardware has no defined routes
            # to emit here.  Degrade mode parks the unit at idle-127.
            return self._fault_park(
                kind="invalid_state",
                detail=(
                    f"controller reached undefined state {emitted_index} "
                    f"in {program.name!r} (context {self.context})"
                ),
            )
        self.stats.steps += 1
        if state.routes:
            self.stats.routed_steps += 1

        self._counters[state.cntr] -= 1
        if self._counters[state.cntr] <= 0:
            # Zero-overhead loop exit: auto-restore the counter (§4).
            self._counters[state.cntr] = program.counter_init[state.cntr]
            next_index = state.next0
        else:
            next_index = state.next1

        if not 0 <= next_index < self.num_states:
            return self._fault_park(
                kind="invalid_next",
                detail=(
                    f"state {emitted_index} selected next state {next_index}, "
                    f"outside K={self.num_states} (context {self.context})"
                ),
            )
        if next_index == self.idle_state:
            self._active = False
            self._current = self.idle_state
            self._counters = list(program.counter_init)
            self.stats.idle_entries += 1
        else:
            self._current = next_index
        bus = self.bus
        if bus is not None and bus.controller_step:
            bus.dispatch(
                "controller_step",
                ControllerStepEvent(
                    context=self.context,
                    state_index=emitted_index,
                    next_index=next_index,
                    counters=(self._counters[0], self._counters[1]),
                    routed=bool(state.routes),
                    went_idle=next_index == self.idle_state,
                ),
            )
        return state

    # ---- failure posture -------------------------------------------------------

    def _fault_park(self, kind: str, detail: str) -> None:
        """Handle an invalid controller condition per the resilience mode.

        STRICT (and HALT — the machine layer turns the raise into a clean
        stop) raises :class:`SPUProgramError`; DEGRADE parks the unit at the
        idle state with reset counters, emitting ``fault`` and ``degrade``
        events, and leaves re-arming to the next GO.
        """
        bus = self.bus
        if bus is not None and bus.fault:
            bus.dispatch(
                "fault",
                FaultEvent(component="controller", kind=kind, detail=detail),
            )
        mode = self.resilience if self.resilience is not None else ResilienceMode.STRICT
        if mode is not ResilienceMode.DEGRADE:
            raise SPUProgramError(detail)
        self._active = False
        self._current = self.idle_state
        program = self._programs[self.context]
        if program is not None:
            self._counters = list(program.counter_init)
        self.stats.fault_parks += 1
        self.fault_parked = True
        if bus is not None and bus.degrade:
            bus.dispatch(
                "degrade",
                DegradeEvent(component="controller", action="park_idle", detail=detail),
            )
        return None

    # ---- fault-injection hooks (repro.faults) ---------------------------------

    def inject_program(self, program: SPUProgram, context: int | None = None) -> None:
        """Install *program* WITHOUT validation, as corrupted control memory.

        Real control memory holds whatever bits an upset left in it; this is
        the :mod:`repro.faults` path for modeling that.  Normal code must use
        :meth:`load_program`, which validates.
        """
        self._programs[self.context if context is None else context] = program

    def skew_counter(self, counter: int, delta: int) -> None:
        """Perturb a live loop counter of the selected context by *delta*.

        Fault-injection hook (:mod:`repro.faults`): models an upset in the
        counter flip-flops.  The skewed value takes effect on the next step.
        """
        if counter not in (0, 1):
            raise SPUProgramError(f"counter {counter} out of range (0 or 1)")
        self._counters[counter] += delta

"""Symbolic byte-provenance dataflow: the engine behind off-load and lint.

The off-load pass (:mod:`repro.core.offload`) and the static certifier
(:mod:`repro.analysis.certificate`) share one question: *given a loop body
with some pure permutes deleted, do the recorded crossbar routes reproduce
exactly the byte movement the deleted instructions performed?*  This module
answers it with symbolic byte provenance — every MMX register byte at loop
entry gets a unique symbol, permutes relocate symbols, computes mint fresh
ones — packaged so the two clients stay honest about their division of
labor:

- :func:`derive_routes` *searches* for routes (the off-load pass's inner
  validation walk), and
- :func:`check_certificate` *verifies* recorded routes without re-deriving
  them, so a lint run never has to trust the synthesis machinery it is
  auditing.

The :class:`OffloadCertificate` a pass emits is the machine-checkable
artifact connecting the two: per deleted permute it names the consumer
routes that reproduce its byte movement, and the checker replays the walk
against those exact routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RouteError
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm
from repro.isa.registers import MMX_BYTES, Register

#: Symbol meaning "architectural zero shifted in" — never routable.
ZERO = -1


# --- per-instruction byte semantics ------------------------------------------


def is_pure_permute(instr: Instruction) -> bool:
    """True for instructions the off-load pass may delete (pure relocation)."""
    sem = instr.opcode.sem
    if sem in ("punpckl", "punpckh", "pshufw"):
        return True
    if sem == "movq":
        return all(isinstance(op, Register) and op.is_mmx for op in instr.operands)
    if sem in ("psll", "psrl") and instr.opcode.width == 64:
        count = instr.operands[1]
        return isinstance(count, Imm) and count.value % 8 == 0
    return False


def byte_sources(instr: Instruction) -> list[tuple[str, int] | None]:
    """Output-byte provenance of a pure permute.

    Each of the 8 entries is ``('a', i)`` (byte *i* of the destination-as-
    source operand), ``('b', i)`` (byte *i* of the second operand) or ``None``
    for a shifted-in zero byte.
    """
    sem = instr.opcode.sem
    if sem == "movq":
        return [("b", i) for i in range(MMX_BYTES)]
    if sem in ("psll", "psrl"):
        k = instr.operands[1].value // 8
        if sem == "psll":
            return [("a", i - k) if i >= k else None for i in range(MMX_BYTES)]
        return [("a", i + k) if i + k < MMX_BYTES else None for i in range(MMX_BYTES)]
    if sem == "pshufw":
        order = instr.operands[2].value & 0xFF
        out: list[tuple[str, int] | None] = []
        for lane in range(4):
            src_lane = (order >> (2 * lane)) & 3
            out.extend([("b", 2 * src_lane), ("b", 2 * src_lane + 1)])
        return out
    if sem in ("punpckl", "punpckh"):
        k = instr.opcode.width // 8  # bytes per lane
        lanes_n = MMX_BYTES // k
        half = lanes_n // 2
        base = 0 if sem == "punpckl" else half
        out = []
        for j in range(half):
            out.extend([("a", (base + j) * k + t) for t in range(k)])
            out.extend([("b", (base + j) * k + t) for t in range(k)])
        return out
    raise ValueError(f"{instr.name} is not a pure permute")


def mmx_source_slots(instr: Instruction) -> list[int]:
    """Operand slots read as routable MMX sources for *instr*."""
    sem = instr.opcode.sem
    slots: list[int] = []
    if not instr.is_mmx:
        return slots
    if sem in ("movq", "movd"):
        op = instr.operands[1]
        if isinstance(op, Register) and op.is_mmx:
            slots.append(1)
        return slots
    if sem == "pshufw":
        op = instr.operands[1]
        if isinstance(op, Register) and op.is_mmx:
            slots.append(1)
        return slots
    if sem in ("psll", "psrl", "psra"):
        # Route only the data operand; a register shift count stays literal.
        if isinstance(instr.operands[0], Register):
            slots.append(0)
        return slots
    # Packed read-modify-write forms: destination is also a source.
    if isinstance(instr.operands[0], Register) and instr.operands[0].is_mmx:
        slots.append(0)
    if len(instr.operands) > 1:
        op = instr.operands[1]
        if isinstance(op, Register) and op.is_mmx:
            slots.append(1)
    return slots


def mmx_dest(instr: Instruction) -> Register | None:
    """MMX register written by *instr*, if any."""
    dest = instr.dest
    if dest is not None and dest.is_mmx:
        return dest
    return None


def is_zero_idiom(instr: Instruction) -> bool:
    """True for the canonical register-clear idioms (``pxor x,x`` etc.).

    Their result is zero regardless of the register's content, so the
    analysis can treat the destination as a known-zero source — which both
    exempts the idiom from operand-routing requirements and lets consumers
    of shifted-in zeros find a zero byte to route from.
    """
    if instr.opcode.sem not in ("pxor", "psub", "psubs", "psubus", "pandn"):
        return False
    operands = instr.operands
    return (
        len(operands) == 2
        and isinstance(operands[0], Register)
        and operands[0] == operands[1]
    )


# --- the symbolic engine ------------------------------------------------------


class ByteMap:
    """Maps (reg_index, byte) → symbol; mutated as the walk proceeds."""

    def __init__(self, zero_regs: tuple = ()) -> None:
        self.map: dict[tuple[int, int], int] = {}
        self._next = 1
        zero_indexes = {reg.index for reg in zero_regs}
        for reg in range(8):
            for byte in range(MMX_BYTES):
                # Known-zero registers (pre-loop pxor idioms) seed ZERO
                # symbols, giving shifted-in zeros a routable source.
                self.map[(reg, byte)] = ZERO if reg in zero_indexes else self._fresh()

    def _fresh(self) -> int:
        sym = self._next
        self._next += 1
        return sym

    def operand_syms(self, reg: Register) -> list[int]:
        return [self.map[(reg.index, b)] for b in range(MMX_BYTES)]

    def write_fresh(self, reg: Register) -> None:
        for byte in range(MMX_BYTES):
            self.map[(reg.index, byte)] = self._fresh()

    def apply_permute(self, instr: Instruction) -> None:
        dst = instr.operands[0]
        a = self.operand_syms(dst)
        src_op = instr.operands[1] if len(instr.operands) > 1 else None
        b = (
            self.operand_syms(src_op)
            if isinstance(src_op, Register) and src_op.is_mmx
            else [ZERO] * MMX_BYTES
        )
        out = []
        for source in byte_sources(instr):
            if source is None:
                out.append(ZERO)
            else:
                which, i = source
                out.append(a[i] if which == "a" else b[i])
        for byte, sym in enumerate(out):
            self.map[(dst.index, byte)] = sym

    def step(self, instr: Instruction, *, removed: bool) -> None:
        """Advance the map across *instr* (removed permutes change nothing)."""
        if removed:
            return
        dst = mmx_dest(instr)
        if dst is None:
            return
        if is_zero_idiom(instr):
            for byte in range(MMX_BYTES):
                self.map[(dst.index, byte)] = ZERO
        elif is_pure_permute(instr):
            self.apply_permute(instr)
        else:
            self.write_fresh(dst)

    def set_dst(self, reg: Register, syms: list[int]) -> None:
        """Replay a known output symbol vector into *reg* (transformed walk)."""
        for byte, sym in enumerate(syms):
            self.map[(reg.index, byte)] = sym

    def locate(self, sym: int) -> tuple[int, int] | None:
        """Find any register byte currently holding *sym*."""
        for location, value in self.map.items():
            if value == sym:
                return location
        return None

    def locate_zero(self, byte: int) -> tuple[int, int] | None:
        """Find a zero byte, preferring offset *byte* within its register.

        Any ZERO byte is interchangeable at runtime; picking the same offset
        keeps the route granule-aligned for half-word-port configurations.
        """
        for reg in range(8):
            if self.map.get((reg, byte)) == ZERO:
                return (reg, byte)
        return self.locate(ZERO)


# --- whole-body analysis ------------------------------------------------------


@dataclass
class OriginalAnalysis:
    """Everything the walks need to know about the *original* loop body.

    Computed once by :func:`analyze_original`; consumed by both the
    route-deriving walk (off-load) and the certificate-checking walk (lint).
    """

    #: Per instruction: required symbols per routable operand slot.
    needed: list[dict[int, list[int]]]
    #: Per instruction and slot: body position of the last prior write to the
    #: slot's register (blame assignment), or None.
    def_of_slot: list[dict[int, int | None]]
    #: Per instruction: the destination's symbol vector *after* it runs
    #: (None for instructions without an MMX destination).
    out_syms: list[list[int] | None]
    #: Register indexes live-in to the body (read before any write).
    live_in: frozenset[int]
    #: End-of-body (reg, byte) → symbol map of the original body.
    final_syms: dict[tuple[int, int], int]


def analyze_original(
    body: list[Instruction], known_zero: tuple = ()
) -> OriginalAnalysis:
    """Walk the original body once, collecting the facts both walks replay."""
    bmap = ByteMap(known_zero)
    needed: list[dict[int, list[int]]] = []
    last_def: dict[int, int] = {}  # reg index -> body position of last write
    def_of_slot: list[dict[int, int | None]] = []
    out_syms: list[list[int] | None] = []
    live_in: set[int] = set()
    written: set[int] = set()
    for position, instr in enumerate(body):
        for reg in instr.mmx_regs_read():
            if reg.index not in written:
                live_in.add(reg.index)
        slot_syms: dict[int, list[int]] = {}
        slot_defs: dict[int, int | None] = {}
        # Zero idioms produce 0 regardless of their inputs: no routing needed.
        slots = () if is_zero_idiom(instr) else mmx_source_slots(instr)
        for slot in slots:
            reg = instr.operands[slot]
            slot_syms[slot] = bmap.operand_syms(reg)
            slot_defs[slot] = last_def.get(reg.index)
        needed.append(slot_syms)
        def_of_slot.append(slot_defs)
        bmap.step(instr, removed=False)
        dst = mmx_dest(instr)
        if dst is not None:
            last_def[dst.index] = position
            written.add(dst.index)
            out_syms.append(bmap.operand_syms(dst))
        else:
            out_syms.append(None)
    return OriginalAnalysis(
        needed=needed,
        def_of_slot=def_of_slot,
        out_syms=out_syms,
        live_in=frozenset(live_in),
        final_syms=dict(bmap.map),
    )


@dataclass
class WalkFailure:
    """Why a transformed walk is invalid, with blame for the fixed point."""

    #: Body position of the candidate to keep (may misattribute; see the
    #: off-load pass's fallback), or None.
    blame: int | None
    #: Body position where the failure surfaced (len(body) for back-edge).
    near: int
    reason: str
    #: Failing instruction (None for back-edge failures).
    instr: Instruction | None = None
    #: Failing operand slot, or the diverging register index (back edge).
    detail: int = -1


def derive_routes(
    body: list[Instruction],
    removed: set[int],
    analysis: OriginalAnalysis,
    known_zero: tuple,
    config,
) -> tuple[dict[int, dict[int, tuple]], WalkFailure | None]:
    """Walk the transformed body under *removed*, deriving crossbar routes.

    Returns ``(routes, failure)``: per-body-position slot routes (byte
    granularity) when the transformation is valid (``failure is None``), or
    the :class:`WalkFailure` naming the candidate to keep.
    """
    bmap = ByteMap(known_zero)
    routes: dict[int, dict[int, tuple]] = {}
    for position, instr in enumerate(body):
        if position in removed:
            continue  # removed instructions change nothing
        for slot, required in analysis.needed[position].items():
            reg = instr.operands[slot]
            byte_route: list[int | None] = []
            failed: str | None = None
            for byte, sym in enumerate(required):
                if bmap.map[(reg.index, byte)] == sym:
                    byte_route.append(None)  # already architectural
                    continue
                location = (
                    bmap.locate_zero(byte) if sym == ZERO else bmap.locate(sym)
                )
                if location is None:
                    failed = (
                        "consumes shifted-in zero bytes with no zero source"
                        if sym == ZERO
                        else "source sub-word no longer present in the register file"
                    )
                    break
                byte_route.append(location[0] * MMX_BYTES + location[1])
            if failed is None and any(sel is not None for sel in byte_route):
                try:
                    config.check_byte_route(tuple(byte_route))
                except RouteError as exc:
                    failed = f"route illegal for config {config.name}: {exc}"
            if failed is not None:
                blame = analysis.def_of_slot[position].get(slot)
                return routes, WalkFailure(
                    blame=blame, near=position, reason=failed,
                    instr=instr, detail=slot,
                )
            if any(sel is not None for sel in byte_route):
                routes.setdefault(position, {})[slot] = tuple(byte_route)
        # Kept instructions produce their original values (routes make
        # their operands the original ones), so replay original symbols.
        dst = mmx_dest(instr)
        if dst is not None:
            bmap.set_dst(dst, analysis.out_syms[position])
    # Back-edge check: live-in registers must reach the loop end holding
    # exactly what the original body left there.
    last_removed_writer: dict[int, int] = {}
    for position in removed:
        dst = mmx_dest(body[position])
        if dst is not None:
            prev = last_removed_writer.get(dst.index, -1)
            last_removed_writer[dst.index] = max(prev, position)
    for reg_index in sorted(analysis.live_in):
        mismatch = any(
            bmap.map[(reg_index, byte)] != analysis.final_syms[(reg_index, byte)]
            for byte in range(MMX_BYTES)
        )
        if mismatch:
            return routes, WalkFailure(
                blame=last_removed_writer.get(reg_index),
                near=len(body),
                reason="feeds the next iteration through the back edge",
                instr=None,
                detail=reg_index,
            )
    return routes, None


# --- certificates -------------------------------------------------------------


@dataclass
class PermuteWitness:
    """Per deleted permute: the consumer routes reproducing its byte movement."""

    #: Body position of the deleted permute.
    position: int
    #: Rendered instruction text (for reports and staleness checks).
    instr: str
    #: ``(consumer_position, slot)`` pairs whose routes carry this permute's
    #: output bytes to their consumers.
    consumers: tuple[tuple[int, int], ...]

    def as_dict(self) -> dict:
        return {
            "position": self.position,
            "instr": self.instr,
            "consumers": [list(pair) for pair in self.consumers],
        }


@dataclass
class OffloadCertificate:
    """Machine-checkable evidence that an off-load is sound.

    Everything :func:`check_certificate` needs to re-verify the
    transformation without re-running the pass: the original loop body, the
    removal set, and the exact byte routes the synthesized controller
    program applies.  ``body`` keeps the live :class:`Instruction` objects
    for in-process verification; :meth:`as_dict` exports the text form.
    """

    loop_label: str
    config_name: str
    iterations: int
    #: The original loop body, permutes still present.
    body: tuple[Instruction, ...] = field(repr=False)
    #: Body positions the pass deleted.
    removed: tuple[int, ...] = ()
    #: Kept body position → slot → byte-granularity route.
    routes: dict[int, dict[int, tuple]] = field(default_factory=dict)
    #: Register indexes pinned by the live-out rule.
    live_out: tuple[int, ...] = ()
    #: Register indexes seeded as known zero.
    known_zero: tuple[int, ...] = ()
    #: Per deleted permute, the consumers that route around it.
    witnesses: tuple[PermuteWitness, ...] = ()

    @property
    def body_text(self) -> tuple[str, ...]:
        return tuple(str(instr) for instr in self.body)

    @property
    def kept_positions(self) -> tuple[int, ...]:
        removed = set(self.removed)
        return tuple(
            position for position in range(len(self.body)) if position not in removed
        )

    def as_dict(self) -> dict:
        """JSON-friendly certificate (body as text, routes as lists)."""
        return {
            "loop_label": self.loop_label,
            "config": self.config_name,
            "iterations": self.iterations,
            "body": list(self.body_text),
            "removed": list(self.removed),
            "routes": {
                str(position): {
                    str(slot): [sel for sel in route]
                    for slot, route in sorted(slots.items())
                }
                for position, slots in sorted(self.routes.items())
            },
            "live_out": list(self.live_out),
            "known_zero": list(self.known_zero),
            "witnesses": [witness.as_dict() for witness in self.witnesses],
        }


@dataclass(frozen=True)
class CertIssue:
    """One verification failure; the lint layer maps ``code`` to a rule id."""

    code: str
    location: str
    message: str


def _zero_registers(indexes: tuple[int, ...]) -> tuple:
    from repro.isa.registers import MM

    return tuple(MM[index] for index in indexes)


def check_certificate(certificate: OffloadCertificate, config) -> list[CertIssue]:
    """Verify *certificate* by replaying the walk against its recorded routes.

    Independent of :func:`derive_routes`: where the deriving walk *searches*
    for a source byte, this walk only *checks* that the recorded selector
    holds the required symbol — so it cannot inherit a synthesis bug.
    """
    issues: list[CertIssue] = []
    body = list(certificate.body)
    removed = set(certificate.removed)
    label = certificate.loop_label

    for position in sorted(removed):
        if position >= len(body):
            issues.append(CertIssue(
                "stale", f"{label}+{position}",
                f"removed position {position} beyond the {len(body)}-instruction body",
            ))
            return issues
        instr = body[position]
        if not is_pure_permute(instr):
            issues.append(CertIssue(
                "not-permute", f"{label}+{position}",
                f"removed instruction {instr} is not a pure permute",
            ))

    # Live-out rule: no removed position may be the last writer of a
    # live-out register.
    last_writer: dict[int, int] = {}
    for position, instr in enumerate(body):
        dst = mmx_dest(instr)
        if dst is not None:
            last_writer[dst.index] = position
    for reg_index in certificate.live_out:
        position = last_writer.get(reg_index)
        if position is not None and position in removed:
            issues.append(CertIssue(
                "live-out", f"{label}+{position}",
                f"removed permute {body[position]} is the last writer of "
                f"live-out register mm{reg_index}",
            ))

    if issues:
        return issues

    known_zero = _zero_registers(certificate.known_zero)
    analysis = analyze_original(body, known_zero)
    bmap = ByteMap(known_zero)
    for position, instr in enumerate(body):
        if position in removed:
            continue
        slot_routes = certificate.routes.get(position, {})
        for slot, required in analysis.needed[position].items():
            reg = instr.operands[slot]
            route = slot_routes.get(slot)
            if route is not None and len(route) != MMX_BYTES:
                issues.append(CertIssue(
                    "route-illegal", f"{label}+{position}",
                    f"slot {slot} route has {len(route)} entries, "
                    f"need {MMX_BYTES}",
                ))
                continue
            for byte, sym in enumerate(required):
                selector = None if route is None else route[byte]
                if selector is None:
                    held = bmap.map[(reg.index, byte)]
                    source = f"architectural {reg}[{byte}]"
                else:
                    held = bmap.map[(selector // MMX_BYTES, selector % MMX_BYTES)]
                    source = (
                        f"routed mm{selector // MMX_BYTES}"
                        f"[{selector % MMX_BYTES}]"
                    )
                if held != sym:
                    issues.append(CertIssue(
                        "byte-mismatch", f"{label}+{position}",
                        f"{instr}: slot {slot} byte {byte} needs "
                        f"{'zero' if sym == ZERO else f'symbol {sym}'} but "
                        f"{source} holds "
                        f"{'zero' if held == ZERO else f'symbol {held}'}",
                    ))
                    break
            if route is not None and any(sel is not None for sel in route):
                try:
                    config.check_byte_route(tuple(route))
                except RouteError as exc:
                    issues.append(CertIssue(
                        "route-illegal", f"{label}+{position}",
                        f"slot {slot} route illegal for config "
                        f"{config.name}: {exc}",
                    ))
        dst = mmx_dest(instr)
        if dst is not None:
            bmap.set_dst(dst, analysis.out_syms[position])

    for reg_index in sorted(analysis.live_in):
        mismatch = [
            byte for byte in range(MMX_BYTES)
            if bmap.map[(reg_index, byte)] != analysis.final_syms[(reg_index, byte)]
        ]
        if mismatch:
            issues.append(CertIssue(
                "backedge", f"{label}+{len(body)}",
                f"live-in register mm{reg_index} diverges from the original "
                f"at the back edge (bytes {mismatch})",
            ))
    return issues

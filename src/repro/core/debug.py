"""Rendering SPU controller programs as the paper's Figure 6/7 tables."""

from __future__ import annotations

from repro.core.interconnect import split_entry
from repro.core.program import SPUProgram, SPUState


def _render_route(route) -> str:
    parts = []
    for entry in route:
        sel, mode = split_entry(entry)
        if sel is None:
            parts.append(".")
        elif mode is None:
            parts.append(str(sel))
        else:
            parts.append(f"{sel}{mode[0]}")
    return "[" + " ".join(parts) + "]"


def render_state(index: int, state: SPUState, idle: int) -> str:
    """One microprogram row (Figure 7's layout)."""
    if state.routes:
        routes = " ".join(
            f"op{slot}={_render_route(route)}"
            for slot, route in sorted(state.routes.items())
        )
    else:
        routes = "straight"
    def name(target: int) -> str:
        return "IDLE" if target == idle else str(target)

    return (
        f"state{index:<4d} CNTR{state.cntr}  {routes:<40s} "
        f"next0={name(state.next0):<5s} next1={name(state.next1)}"
    )


def render_program(program: SPUProgram) -> str:
    """The whole controller image as a Figure 6/7-style table."""
    lines = [
        f"SPU program {program.name!r}: {program.state_count()} states, "
        f"entry={program.entry}, CNTR0={program.counter_init[0]}, "
        f"CNTR1={program.counter_init[1]}, idle={program.idle_state}"
    ]
    for index in sorted(program.states):
        lines.append(render_state(index, program.states[index], program.idle_state))
    return "\n".join(lines)

"""Attaching the SPU to the simulated machine.

:class:`AttachedSPU` implements the pipeline's ``SPUAttachment`` protocol: on
every issued dynamic instruction (while the controller is active) it advances
the decoupled state machine and, for MMX instructions with routed operand
slots, mirrors the architectural MMX file into the unified SPU register and
gathers the routed operand values through the crossbar.

Routing reaches the two operand buses of the instruction's pipe — including a
store's data operand: the U pipe reads store data through the same
register-to-functional-unit path the crossbar intercepts (Figure 4).  The
destination write-back stays architectural.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RouteError
from repro.resilience import ResilienceMode
from repro.core.controller import SPUController
from repro.core.mmio import DEFAULT_MMIO_BASE, MMIO_WINDOW_BYTES, SPUMMIO
from repro.core.spu_register import SPURegister
from repro.cpu.pipeline import Machine
from repro.cpu.state import MachineState
from repro.isa.instructions import Instruction
from repro.isa.registers import Register
from repro.obs.events import DegradeEvent, FaultEvent, SPURouteEvent


@dataclass
class AttachmentStats:
    """Routing activity counters."""

    instructions_seen: int = 0
    routed_operands: int = 0
    routed_instructions: int = 0
    #: Operands whose route was illegal and fell back to the architectural
    #: straight-through value (degrade mode only).
    serialized_operands: int = 0


class AttachedSPU:
    """SPU controller + interconnect + unified register bound to a pipeline."""

    def __init__(self, controller: SPUController) -> None:
        self.controller = controller
        self.register = SPURegister()
        self.stats = AttachmentStats()
        #: Telemetry: set by attach_spu to the machine's EventBus.
        self.bus = None

    @property
    def active(self) -> bool:
        return self.controller.active

    def _resilience(self) -> ResilienceMode:
        """The controller's effective failure posture (STRICT standalone)."""
        mode = self.controller.resilience
        return mode if mode is not None else ResilienceMode.STRICT

    def routes_for(self, instr: Instruction, state: MachineState) -> dict[int, int] | None:
        """Advance the controller for one dynamic instruction; route operands."""
        if not self.controller.active:
            return None
        emitting_state = self.controller.current_state
        spu_state = self.controller.step()
        self.stats.instructions_seen += 1
        if spu_state is None or spu_state.is_straight or not instr.is_mmx:
            return None
        # Mirror the architectural file into the unified register (§3) just
        # before the operand read, so routes see up-to-date sub-words.
        self.register.load_from_mmx(state.mmx)
        config = self.controller.config
        values: dict[int, int] = {}
        for slot, route in spu_state.routes.items():
            if slot >= len(instr.operands):
                continue
            operand = instr.operands[slot]
            if not (isinstance(operand, Register) and operand.is_mmx):
                continue  # only MMX register sources pass through the crossbar
            straight = state.read(operand)
            try:
                values[slot] = config.apply(route, self.register, straight)
            except RouteError as error:
                if self._resilience() is not ResilienceMode.DEGRADE:
                    raise
                # Serialize: the crossbar cannot realize this route, so the
                # operand takes the architectural straight-through path.
                values[slot] = straight
                self.stats.serialized_operands += 1
                bus = self.bus
                if bus is not None:
                    if bus.fault:
                        bus.dispatch(
                            "fault",
                            FaultEvent(
                                component="crossbar",
                                kind="route_error",
                                detail=str(error),
                                pc=state.pc,
                                error=error,
                            ),
                        )
                    if bus.degrade:
                        bus.dispatch(
                            "degrade",
                            DegradeEvent(
                                component="crossbar",
                                action="serialize_operand",
                                detail=f"slot {slot} of {instr.name} at pc={state.pc}",
                                pc=state.pc,
                            ),
                        )
        if not values:
            return None
        self.stats.routed_operands += len(values)
        self.stats.routed_instructions += 1
        bus = self.bus
        if bus is not None and bus.spu_route:
            bus.dispatch(
                "spu_route",
                SPURouteEvent(
                    pc=state.pc,
                    instr=instr.name,
                    slots=tuple(sorted(values)),
                    state_index=emitting_state,
                ),
            )
        return values


def attach_spu(
    machine: Machine,
    controller: SPUController,
    mmio_base: int | None = DEFAULT_MMIO_BASE,
) -> AttachedSPU:
    """Bind *controller* to *machine*; optionally map its MMIO window.

    Returns the :class:`AttachedSPU`; with ``mmio_base`` set (default
    ``0xF0000``) the program under simulation can program the controller
    through stores, as the paper's memory-mapped interface specifies (§3).
    Pass ``mmio_base=None`` for host-side-only control.
    """
    spu = AttachedSPU(controller)
    spu.bus = machine.bus
    controller.bus = machine.bus
    if controller.resilience is None:
        # Inherit the machine's failure posture unless the controller was
        # constructed with an explicit mode of its own.
        controller.resilience = machine.resilience
    machine.spu = spu
    if mmio_base is not None:
        machine.memory.map_device(mmio_base, MMIO_WINDOW_BYTES, SPUMMIO(controller))
    return spu

"""The SPU interconnect: a sub-word-granularity crossbar with configurations.

The interconnect forwards arbitrary sub-words from the unified SPU register to
the MMX functional-unit operand inputs, eliminating both inter-word and
intra-word restrictions (§3).  Table 1 of the paper evaluates four
configurations trading flexibility for area/delay:

====  =================================  ========================================
name  crossbar                           semantics modeled here
====  =================================  ========================================
A     64×32 with 8-bit ports             any byte of all 8 registers → any
                                         output byte (full orthogonality)
B     32×32 with 8-bit ports             byte granularity over a 4-register
                                         input window
C     32×16 with 16-bit ports            half-word granularity over all 8
                                         registers
D     16×16 with 16-bit ports            half-word granularity over a
                                         4-register window (fits all paper
                                         kernels)
====  =================================  ========================================

All configurations drive 256 output bits = four 64-bit operand buses (two
pipes × two operands, Figure 4).

A *route* for one operand is a per-granule selector: entry ``i`` gives the
absolute granule address in the SPU register feeding output granule ``i``, or
``None`` for the architectural (straight-through) value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import RouteError
from repro.core.spu_register import SPU_REGISTER_BYTES, SPURegister
from repro.isa.registers import MMX_BYTES
from repro.simd import lanes

#: Operand buses fed by the crossbar (2 pipes × 2 operands, Figure 4).
OPERAND_BUSES = 4

#: A route for one 64-bit operand: one entry per granule.  An entry is
#: ``None`` (straight), an ``int`` selector, or ``(selector, mode)`` where
#: *mode* names an operand transform the configuration supports (§6:
#: "additional modes could be added to the SPU, like sign extension,
#: negation, or even more complex operations").
OperandRoute = tuple


def _mode_neg(raw: bytes) -> bytes:
    """Two's-complement negation of the granule."""
    width = 8 * len(raw)
    value = int.from_bytes(raw, "little")
    return ((-value) & ((1 << width) - 1)).to_bytes(len(raw), "little")


def _mode_sxb(raw: bytes) -> bytes:
    """Sign-extend the granule's low byte to the full granule width."""
    fill = b"\xff" if raw[0] & 0x80 else b"\x00"
    return raw[:1] + fill * (len(raw) - 1)


def _mode_zxb(raw: bytes) -> bytes:
    """Zero-extend the granule's low byte."""
    return raw[:1] + b"\x00" * (len(raw) - 1)


#: Registry of operand-mode transforms, keyed by their route-entry name.
MODES = {"neg": _mode_neg, "sxb": _mode_sxb, "zxb": _mode_zxb}


def split_entry(entry) -> tuple[int | None, str | None]:
    """Normalize a route entry to ``(selector, mode)``."""
    if entry is None:
        return None, None
    if isinstance(entry, tuple):
        if len(entry) != 2:
            raise RouteError(f"route entry {entry!r} must be (selector, mode)")
        return entry[0], entry[1]
    return entry, None


@dataclass(frozen=True)
class CrossbarConfig:
    """One interconnect configuration (paper Table 1 rows)."""

    name: str
    in_ports: int  # selectable source granules
    out_ports: int  # total output granules across the 4 operand buses
    port_bits: int  # granule size: 8 or 16
    description: str = ""
    #: Operand-mode transforms this configuration's crossbar implements
    #: (§6 extension; empty for the paper's base design).
    modes: tuple = ()

    def __post_init__(self) -> None:
        if self.port_bits not in (8, 16):
            raise RouteError(f"{self.name}: port width must be 8 or 16 bits")
        if self.in_ports <= 0 or self.out_ports <= 0:
            raise RouteError(f"{self.name}: ports must be positive")
        if self.out_bits != OPERAND_BUSES * 64:
            raise RouteError(
                f"{self.name}: output must total {OPERAND_BUSES * 64} bits "
                f"(got {self.out_bits})"
            )
        if self.in_bits > SPU_REGISTER_BYTES * 8:
            raise RouteError(f"{self.name}: input window exceeds the SPU register")
        for mode in self.modes:
            if mode not in MODES:
                raise RouteError(
                    f"{self.name}: unknown operand mode {mode!r}; "
                    f"available: {sorted(MODES)}"
                )

    # ---- derived geometry ---------------------------------------------------

    @property
    def granule_bytes(self) -> int:
        return self.port_bits // 8

    @property
    def in_bits(self) -> int:
        return self.in_ports * self.port_bits

    @property
    def out_bits(self) -> int:
        return self.out_ports * self.port_bits

    @property
    def granules_per_operand(self) -> int:
        """Output granules per 64-bit operand bus."""
        return 64 // self.port_bits

    @property
    def window_regs(self) -> int:
        """How many MMX registers the input side can address."""
        return self.in_bits // 64

    @property
    def select_bits(self) -> int:
        """Selector width per output granule."""
        return max(1, math.ceil(math.log2(self.in_ports)))

    @property
    def mode_bits(self) -> int:
        """Extra bits per output granule for the operand-mode field."""
        if not self.modes:
            return 0
        return max(1, math.ceil(math.log2(len(self.modes) + 1)))

    @property
    def route_bits(self) -> int:
        """Interconnect field width in one controller state (Figure 6)."""
        return self.out_ports * (self.select_bits + self.mode_bits)

    @property
    def full_register_reach(self) -> bool:
        """True when every MMX register is addressable (no window limit)."""
        return self.window_regs >= SPU_REGISTER_BYTES // MMX_BYTES

    # ---- route validation -----------------------------------------------------

    def check_route(self, route: OperandRoute) -> None:
        """Raise :class:`RouteError` unless *route* is legal here."""
        if len(route) != self.granules_per_operand:
            raise RouteError(
                f"{self.name}: route needs {self.granules_per_operand} granule "
                f"selectors, got {len(route)}"
            )
        for entry in route:
            sel, mode = split_entry(entry)
            if mode is not None and mode not in self.modes:
                raise RouteError(
                    f"{self.name}: operand mode {mode!r} not supported "
                    f"(configuration modes: {self.modes or 'none'})"
                )
            if sel is None:
                if mode is not None:
                    raise RouteError(f"{self.name}: mode {mode!r} on a straight granule")
                continue
            if not isinstance(sel, int):
                raise RouteError(f"{self.name}: selector {sel!r} is not an int")
            if not 0 <= sel < self.in_ports:
                raise RouteError(
                    f"{self.name}: selector {sel} outside the {self.in_ports}-port "
                    f"input window ({self.window_regs} registers reachable)"
                )

    def check_byte_route(self, byte_route: tuple) -> OperandRoute:
        """Convert an 8-entry *byte*-granularity route to this config's granules.

        Byte routes are the natural output of the off-load pass; half-word
        configurations accept them only when adjacent byte pairs move
        together (no half-word tearing).
        """
        if len(byte_route) != MMX_BYTES:
            raise RouteError(f"byte route needs {MMX_BYTES} entries, got {len(byte_route)}")
        if self.port_bits == 8:
            route = tuple(byte_route)
            self.check_route(route)
            return route
        granules: list = []
        for pair_index in range(MMX_BYTES // 2):
            lo, hi = byte_route[2 * pair_index], byte_route[2 * pair_index + 1]
            if lo is None and hi is None:
                granules.append(None)
                continue
            if lo is None or hi is None:
                raise RouteError(
                    f"{self.name}: half of output half-word {pair_index} is straight"
                    " — 16-bit ports cannot split granules"
                )
            if lo % 2 != 0 or hi != lo + 1:
                raise RouteError(
                    f"{self.name}: bytes ({lo},{hi}) do not form an aligned source"
                    " half-word — illegal at 16-bit granularity"
                )
            granules.append(lo // 2)
        route = tuple(granules)
        self.check_route(route)
        return route

    # ---- data movement -----------------------------------------------------------

    def apply(self, route: OperandRoute | None, spu_register: SPURegister,
              straight_value: int) -> int:
        """Route one operand: gather selected granules, defaulting to *straight_value*."""
        if route is None:
            return straight_value
        self.check_route(route)
        granule = self.granule_bytes
        default = lanes.bytes_of(straight_value)
        window = spu_register.read_all()[: self.in_bits // 8]
        out = bytearray(MMX_BYTES)
        for i, entry in enumerate(route):
            sel, mode = split_entry(entry)
            dst = i * granule
            if sel is None:
                out[dst : dst + granule] = default[dst : dst + granule]
            else:
                src = sel * granule
                raw = window[src : src + granule]
                if mode is not None:
                    raw = MODES[mode](bytes(raw))
                out[dst : dst + granule] = raw
        return lanes.from_bytes(bytes(out))


#: The four published configurations (paper Table 1).
CONFIG_A = CrossbarConfig(
    name="A", in_ports=64, out_ports=32, port_bits=8,
    description="64x32 crossbar with 8-bit ports",
)
CONFIG_B = CrossbarConfig(
    name="B", in_ports=32, out_ports=32, port_bits=8,
    description="32x32 crossbar with 8-bit ports",
)
CONFIG_C = CrossbarConfig(
    name="C", in_ports=32, out_ports=16, port_bits=16,
    description="32x16 crossbar with 16-bit ports",
)
CONFIG_D = CrossbarConfig(
    name="D", in_ports=16, out_ports=16, port_bits=16,
    description="16 x16 crossbar with 16-bit ports",
)

#: §6 extension point: configuration D with the operand-mode transforms
#: (sign/zero byte extension, negation) the paper lists as future additions.
CONFIG_D_MODED = CrossbarConfig(
    name="D+",
    in_ports=16,
    out_ports=16,
    port_bits=16,
    description="16x16 crossbar, 16-bit ports, with operand modes (§6)",
    modes=("neg", "sxb", "zxb"),
)

CONFIGS: dict[str, CrossbarConfig] = {
    c.name: c for c in (CONFIG_A, CONFIG_B, CONFIG_C, CONFIG_D)
}


def get_config(name: str) -> CrossbarConfig:
    """Look up a published configuration by letter."""
    try:
        return CONFIGS[name.upper()]
    except KeyError as exc:
        raise RouteError(f"unknown SPU configuration {name!r}; choose A-D") from exc

"""Memory-mapped programming interface of the SPU controller (§3, §4).

The SPU's control registers are memory mapped; a program running on the
simulated machine configures the controller with ordinary stores and starts
it by writing the GO bit to the configuration register.

Register map (offsets within the window; all registers 64-bit, and partial
stores of 1/2/4 bytes merge read-modify-write):

=========  =============================================================
offset     register
=========  =============================================================
``0x00``   CONFIG — write bit 0 = GO (activate selected context), bits
           2:1 = context select; writing 0 stops the SPU
``0x08``   CNTR0 initial value
``0x10``   CNTR1 initial value
``0x18``   STATUS (read-only) — bit 0 active, bits 15:8 current state
``0x20``   ENTRY — entry state index
``0x100``  state words, 32 bytes (256 bits) per state, state *s* at
           ``0x100 + 32*s``
=========  =============================================================

State words are staged per-context; GO decodes the staged image into an
:class:`~repro.core.program.SPUProgram`, loads it and activates.
"""

from __future__ import annotations

from repro.errors import SPUProgramError
from repro.core.controller import SPUController
from repro.core.program import SPUProgram, decode_state, state_word_bits

#: Default placement of the SPU window in the simulated address space.
DEFAULT_MMIO_BASE = 0xF0000

REG_CONFIG = 0x00
REG_CNTR0 = 0x08
REG_CNTR1 = 0x10
REG_STATUS = 0x18
REG_ENTRY = 0x20
STATE_BASE = 0x100
STATE_STRIDE = 32  # bytes reserved per state word

#: Window size: control registers + 128 state slots.
MMIO_WINDOW_BYTES = STATE_BASE + 128 * STATE_STRIDE


def emit_upload(
    builder,
    program: "SPUProgram",
    config,
    context: int = 0,
    base_reg: str = "r14",
    scratch_reg: str = "r13",
    *,
    go: bool = True,
) -> int:
    """Emit instructions that stage *program* into the controller via MMIO.

    Generates the §4 programming sequence — state-word stores, counter
    initializations, entry register, optional GO — into *builder* (a
    :class:`~repro.isa.assembler.ProgramBuilder` whose *base_reg* already
    holds the MMIO window base).  Returns the number of instructions
    emitted, the quantity behind the paper's start-up-cost discussion.
    """
    from repro.core.program import encode_program

    emitted = 0
    words = encode_program(program, config)
    word_bytes = (state_word_bits(config) + 7) // 8
    for index, word in sorted(words.items()):
        offset = STATE_BASE + index * STATE_STRIDE
        for chunk_start in range(0, word_bytes, 4):
            chunk = (word >> (8 * chunk_start)) & 0xFFFFFFFF
            builder.mov(scratch_reg, chunk)
            builder.stw(f"[{base_reg}+{offset + chunk_start}]", scratch_reg)
            emitted += 2
    for reg_offset, value in ((REG_CNTR0, program.counter_init[0]),
                              (REG_CNTR1, program.counter_init[1])):
        builder.mov(scratch_reg, value)
        builder.stw(f"[{base_reg}+{reg_offset}]", scratch_reg)
        emitted += 2
    builder.mov(scratch_reg, program.entry)
    builder.stw(f"[{base_reg}+{REG_ENTRY}]", scratch_reg)
    emitted += 2
    if go:
        builder.mov(scratch_reg, 1 | (context << 1))
        builder.stw(f"[{base_reg}]", scratch_reg)
        emitted += 2
    return emitted


class SPUMMIO:
    """MMIO device translating stores into controller programming."""

    def __init__(self, controller: SPUController) -> None:
        self.controller = controller
        if state_word_bits(controller.config) > STATE_STRIDE * 8:
            raise SPUProgramError(
                "state word exceeds the 256-bit MMIO state slot for this config"
            )
        contexts = controller.contexts
        self._staged_words: list[dict[int, bytearray]] = [dict() for _ in range(contexts)]
        self._staged_cntr: list[list[int]] = [[0, 0] for _ in range(contexts)]
        self._staged_entry: list[int] = [0] * contexts
        self._selected = 0

    # ---- helpers ------------------------------------------------------------

    def _state_slot(self, offset: int) -> tuple[int, int] | None:
        if offset < STATE_BASE:
            return None
        index, within = divmod(offset - STATE_BASE, STATE_STRIDE)
        if index >= self.controller.num_states:
            raise SPUProgramError(f"MMIO write beyond state memory (state {index})")
        return index, within

    def _stage_bytes(self, index: int) -> bytearray:
        words = self._staged_words[self._selected]
        if index not in words:
            words[index] = bytearray(STATE_STRIDE)
        return words[index]

    def _assemble_program(self, context: int) -> SPUProgram:
        words = self._staged_words[context]
        if not words:
            raise SPUProgramError(f"GO with no states staged for context {context}")
        program = SPUProgram(
            counter_init=tuple(self._staged_cntr[context]),
            entry=self._staged_entry[context],
            num_states=self.controller.num_states,
            name=f"mmio-context{context}",
        )
        for index, raw in sorted(words.items()):
            word = int.from_bytes(bytes(raw), "little")
            program.add_state(index, decode_state(word, self.controller.config))
        return program

    # ---- MMIODevice interface ------------------------------------------------

    def mmio_store(self, offset: int, size: int, value: int) -> None:
        slot = self._state_slot(offset)
        if slot is not None:
            index, within = slot
            if within + size > STATE_STRIDE:
                raise SPUProgramError("state-word store crosses a state boundary")
            raw = self._stage_bytes(index)
            raw[within : within + size] = value.to_bytes(size, "little")
            return
        if offset == REG_CONFIG:
            context = (value >> 1) & 0b11
            if value & 1:
                if value & 0b1000:
                    # RESUME bit (§4's exception-handler return path):
                    # continue the suspended context where it left off.
                    self.controller.resume(context=context)
                else:
                    # Hybrid flow: if nothing is staged through MMIO but the
                    # host pre-loaded a program, GO just activates it.
                    if self._staged_words[context]:
                        program = self._assemble_program(context)
                        self.controller.load_program(program, context=context)
                    self.controller.go(context=context)
            else:
                # Writing 0 suspends, preserving the context's state (§4:
                # "the exception handler disables the SPU by writing to the
                # SPU control register").
                self.controller.suspend()
            self._selected = context
            return
        if offset == REG_CNTR0:
            self._staged_cntr[self._selected][0] = value
            return
        if offset == REG_CNTR1:
            self._staged_cntr[self._selected][1] = value
            return
        if offset == REG_ENTRY:
            self._staged_entry[self._selected] = value
            return
        if offset == REG_STATUS:
            raise SPUProgramError("STATUS register is read-only")
        raise SPUProgramError(f"store to unmapped SPU register offset {offset:#x}")

    def mmio_load(self, offset: int, size: int) -> int:
        mask = (1 << (8 * size)) - 1
        slot = self._state_slot(offset)
        if slot is not None:
            index, within = slot
            raw = self._staged_words[self._selected].get(index)
            if raw is None:
                return 0
            return int.from_bytes(raw[within : within + size], "little")
        if offset == REG_CONFIG:
            return ((self._selected & 0b11) << 1 | int(self.controller.active)) & mask
        if offset == REG_CNTR0:
            return self._staged_cntr[self._selected][0] & mask
        if offset == REG_CNTR1:
            return self._staged_cntr[self._selected][1] & mask
        if offset == REG_ENTRY:
            return self._staged_entry[self._selected] & mask
        if offset == REG_STATUS:
            status = int(self.controller.active) | (self.controller.current_state << 8)
            return status & mask
        raise SPUProgramError(f"load from unmapped SPU register offset {offset:#x}")

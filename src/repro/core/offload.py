"""Automatic permute off-load: the compiler pass the paper sketches in §4.

Given an MMX loop, the pass deletes pure data-movement instructions
(``punpck*``, ``movq mm,mm``, ``pshufw``, whole-byte ``psllq``/``psrlq``)
from the body and synthesizes the SPU controller program that reroutes the
consumers' operands through the crossbar instead — "the generation of the
code for the SPU is systematic and can be automated".

Method: symbolic byte provenance (:mod:`repro.core.dataflow`).  Every MMX
register byte at loop entry gets a unique symbol; walking the body, pure
permutes relocate symbols while computes/loads mint fresh ones.  An
instruction's operand can be rerouted iff each byte's *original* symbol
still lives somewhere in the register file of the transformed (permute-less)
body at that point, at a location the interconnect configuration can
address.  Candidates whose consumers cannot be rerouted are kept; the
analysis iterates to a fixed point.

Every successful run emits an :class:`~repro.core.dataflow.OffloadCertificate`
— the removal set, the exact byte routes, and per deleted permute the
consumer routes that reproduce its byte movement — which
:func:`repro.core.dataflow.check_certificate` (and ``repro lint``) can
re-verify without re-running the pass.

Saturating packs (``packss*``/``packus*``) are value-transforming, not pure
routing, so they are never removed — matching the paper's SPU, which only
moves sub-words (§6 lists sign-extension/negation as future modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.core.builder import SPUProgramBuilder, StateSpec
from repro.core.dataflow import (
    ZERO,
    ByteMap,
    OffloadCertificate,
    PermuteWitness,
    analyze_original,
    byte_sources,
    derive_routes,
    is_pure_permute,
    is_zero_idiom,
    mmx_dest,
    mmx_source_slots,
)
from repro.core.interconnect import CONFIG_D, CrossbarConfig
from repro.core.program import SPUProgram
from repro.isa.instructions import Instruction, Program
from repro.isa.registers import Register

__all__ = [
    "OffloadError",
    "OffloadReport",
    "ZERO",
    "byte_sources",
    "find_loop",
    "is_pure_permute",
    "is_zero_idiom",
    "mmx_dest",
    "mmx_source_slots",
    "offload_loop",
]

#: Backwards-compatible alias; the engine now lives in repro.core.dataflow.
_ByteMap = ByteMap


class OffloadError(ReproError):
    """The loop cannot be analyzed (malformed region, inner control flow)."""


@dataclass
class OffloadReport:
    """Result of one off-load run."""

    program: Program
    spu_program: SPUProgram
    #: Program-order indices (in the original program) of removed instructions.
    removed: list[int]
    #: Loop bounds in the original program: [start, end] inclusive of the branch.
    loop_start: int = 0
    loop_end: int = 0
    #: Routed operand slots per transformed-body position.
    routes_by_position: dict[int, dict[int, tuple]] = field(default_factory=dict)
    #: Candidates considered but kept, with reasons (diagnostics).
    kept: dict[int, str] = field(default_factory=dict)
    #: Machine-checkable soundness evidence (see repro.core.dataflow).
    certificate: OffloadCertificate | None = None

    @property
    def removed_count(self) -> int:
        return len(self.removed)


# --- loop discovery -----------------------------------------------------------


def find_loop(program: Program, label: str) -> tuple[int, int]:
    """Locate the ``label: ... branch label`` region; returns (start, end)."""
    start = program.target(label)
    end = None
    for index in range(start, len(program)):
        instr = program[index]
        if instr.is_branch:
            targets_label = any(
                getattr(op, "name", None) == label for op in instr.operands
            )
            if targets_label:
                end = index
    if end is None:
        raise OffloadError(f"no branch back to label {label!r}")
    for index in range(start, end):
        if program[index].is_branch:
            raise OffloadError(
                f"loop body contains inner control flow at index {index}"
            )
    return start, end


# --- the pass -----------------------------------------------------------------


def offload_loop(
    program: Program,
    loop_label: str,
    iterations: int,
    config: CrossbarConfig = CONFIG_D,
    live_out: tuple[Register, ...] = (),
    known_zero: tuple[Register, ...] = (),
) -> OffloadReport:
    """Off-load the permutes of the ``loop_label`` loop onto the SPU.

    Parameters
    ----------
    program:
        The MMX-only program (must contain ``loop_label``).
    loop_label:
        Label of the loop head; the body extends to the last branch back.
    iterations:
        Dynamic trip count, used to program the zero-overhead counter
        (CNTR0 = iterations × body length, §4).
    config:
        Target interconnect configuration; routes illegal under it force the
        producing permute to stay in software.
    live_out:
        MMX registers read after the loop; a removed permute may not be the
        last writer of a live-out register.
    known_zero:
        MMX registers holding zero at loop entry (established by a pre-loop
        clear idiom and never written in the body): their bytes become
        routable zero sources, so zero-filling shifts can be off-loaded.
    """
    if iterations <= 0:
        raise OffloadError(f"iterations must be positive, got {iterations}")
    start, end = find_loop(program, loop_label)
    body = program.instructions[start : end + 1]
    for reg in known_zero:
        if any(reg in instr.mmx_regs_written() for instr in body):
            raise OffloadError(
                f"known_zero register {reg} is written inside the loop body"
            )
    analysis = analyze_original(body, known_zero)

    removed_set = {
        position for position, instr in enumerate(body) if is_pure_permute(instr)
    }
    kept_reasons: dict[int, str] = {}

    def _keep(position: int | None, reason: str) -> bool:
        """Move a candidate out of the removal set; True if the set changed."""
        if position is not None and position in removed_set:
            removed_set.discard(position)
            kept_reasons[position] = reason
            return True
        return False

    def _keep_fallback(blame: int | None, near: int, reason: str) -> bool:
        """Keep *blame*, or — when blame misattributes (the symbol was lost
        through a different candidate's removal) — conservatively keep the
        nearest still-removed candidate before *near*, else any.  Monotone,
        so the fixed point always terminates with a correct (possibly
        identity) transformation.
        """
        if _keep(blame, reason):
            return True
        earlier = [position for position in removed_set if position <= near]
        pool = earlier if earlier else sorted(removed_set)
        if not pool:
            return False
        return _keep(max(pool) if earlier else pool[-1], f"(fallback) {reason}")

    # Live-out rule: the last writer of a live-out register must be kept.
    # These keeps are pinned: re-expansion below must never undo them.
    last_writer: dict[int, int] = {}
    for position, instr in enumerate(body):
        dst = mmx_dest(instr)
        if dst is not None:
            last_writer[dst.index] = position
    pinned: set[int] = set()
    for reg in live_out:
        position = last_writer.get(reg.index)
        if _keep(position, "last writer of a live-out register"):
            pinned.add(position)

    # Fixed point: verify every kept instruction's operands are reachable,
    # keeping one more candidate per failing walk.
    while True:
        routes, failure = derive_routes(body, removed_set, analysis, known_zero, config)
        if failure is None:
            break
        if not _keep_fallback(failure.blame, failure.near, failure.reason):
            if failure.instr is not None:
                raise OffloadError(
                    f"cannot reroute {failure.instr.name} (body position "
                    f"{failure.near}, slot {failure.detail}): {failure.reason};"
                    " nothing left to keep"
                )
            raise OffloadError(
                f"live-in register mm{failure.detail} diverges at the back edge"
                " with nothing left to keep"
            )

    # Re-expansion: the fixed point only ever grows the keep set (that is
    # what makes it terminate), but blame ordering is path-dependent — a
    # candidate kept early may become removable once the *real* culprit is
    # kept later (e.g. once the permute producing a zero byte stays, its
    # consumers route from it again).  Without this pass a more flexible
    # interconnect could paradoxically off-load less than a stricter one.
    # Greedily try returning each unpinned kept candidate to the removal
    # set; accept whenever the whole walk (including the back edge) still
    # validates.  Removals only grow here, so the loop terminates.
    while True:
        reexpanded = False
        for position in sorted(kept_reasons, reverse=True):
            if position in pinned:
                continue
            trial = removed_set | {position}
            trial_routes, failure = derive_routes(
                body, trial, analysis, known_zero, config
            )
            if failure is None:
                removed_set.add(position)
                del kept_reasons[position]
                routes = trial_routes
                reexpanded = True
        if not reexpanded:
            break

    # --- emit the transformed program -------------------------------------------
    removed_original_indices = sorted(start + position for position in removed_set)
    new_instructions: list[Instruction] = []
    index_map: dict[int, int] = {}
    for old_index, instr in enumerate(program.instructions):
        if old_index in set(removed_original_indices):
            continue
        index_map[old_index] = len(new_instructions)
        new_instructions.append(instr)
    new_labels: dict[str, int] = {}
    for label, old_index in program.labels.items():
        adjusted = old_index
        while adjusted not in index_map and adjusted < len(program.instructions):
            adjusted += 1  # label pointed at a removed instruction
        new_labels[label] = index_map.get(adjusted, len(new_instructions))
    transformed = Program(
        instructions=new_instructions, labels=new_labels, name=f"{program.name}+spu"
    )
    transformed.validate()

    # --- emit the SPU controller program -----------------------------------------
    builder = SPUProgramBuilder(config=config, name=f"{program.name}-spu-ctl")
    specs: list[StateSpec] = []
    routes_by_position: dict[int, dict[int, tuple]] = {}
    new_position = 0
    for position in range(len(body)):
        if position in removed_set:
            continue
        slot_routes = routes.get(position)
        specs.append(StateSpec(routes=slot_routes) if slot_routes else StateSpec())
        if slot_routes:
            routes_by_position[new_position] = slot_routes
        new_position += 1
    builder.loop(specs, iterations)
    spu_program = builder.build()

    # --- emit the soundness certificate ------------------------------------------
    witnesses: list[PermuteWitness] = []
    for position in sorted(removed_set):
        consumers = tuple(
            (consumer, slot)
            for consumer in sorted(routes)
            for slot in sorted(routes[consumer])
            if analysis.def_of_slot[consumer].get(slot) == position
        )
        witnesses.append(
            PermuteWitness(
                position=position,
                instr=str(body[position]),
                consumers=consumers,
            )
        )
    certificate = OffloadCertificate(
        loop_label=loop_label,
        config_name=config.name,
        iterations=iterations,
        body=tuple(body),
        removed=tuple(sorted(removed_set)),
        routes={position: dict(slots) for position, slots in sorted(routes.items())},
        live_out=tuple(sorted({reg.index for reg in live_out})),
        known_zero=tuple(sorted({reg.index for reg in known_zero})),
        witnesses=tuple(witnesses),
    )

    return OffloadReport(
        program=transformed,
        spu_program=spu_program,
        removed=removed_original_indices,
        loop_start=start,
        loop_end=end,
        routes_by_position=routes_by_position,
        kept=kept_reasons,
        certificate=certificate,
    )

"""Automatic permute off-load: the compiler pass the paper sketches in §4.

Given an MMX loop, the pass deletes pure data-movement instructions
(``punpck*``, ``movq mm,mm``, ``pshufw``, whole-byte ``psllq``/``psrlq``)
from the body and synthesizes the SPU controller program that reroutes the
consumers' operands through the crossbar instead — "the generation of the
code for the SPU is systematic and can be automated".

Method: symbolic byte provenance.  Every MMX register byte at loop entry gets
a unique symbol; walking the body, pure permutes relocate symbols while
computes/loads mint fresh ones.  An instruction's operand can be rerouted iff
each byte's *original* symbol still lives somewhere in the register file of
the transformed (permute-less) body at that point, at a location the
interconnect configuration can address.  Candidates whose consumers cannot be
rerouted are kept; the analysis iterates to a fixed point.

Saturating packs (``packss*``/``packus*``) are value-transforming, not pure
routing, so they are never removed — matching the paper's SPU, which only
moves sub-words (§6 lists sign-extension/negation as future modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError, RouteError
from repro.core.builder import SPUProgramBuilder, StateSpec
from repro.core.interconnect import CONFIG_D, CrossbarConfig
from repro.core.program import SPUProgram
from repro.isa.instructions import Instruction, Program
from repro.isa.operands import Imm, Mem
from repro.isa.registers import MMX_BYTES, Register


class OffloadError(ReproError):
    """The loop cannot be analyzed (malformed region, inner control flow)."""


#: Symbol meaning "architectural zero shifted in" — never routable.
ZERO = -1


@dataclass
class OffloadReport:
    """Result of one off-load run."""

    program: Program
    spu_program: SPUProgram
    #: Program-order indices (in the original program) of removed instructions.
    removed: list[int]
    #: Loop bounds in the original program: [start, end] inclusive of the branch.
    loop_start: int = 0
    loop_end: int = 0
    #: Routed operand slots per transformed-body position.
    routes_by_position: dict[int, dict[int, tuple]] = field(default_factory=dict)
    #: Candidates considered but kept, with reasons (diagnostics).
    kept: dict[int, str] = field(default_factory=dict)

    @property
    def removed_count(self) -> int:
        return len(self.removed)


# --- loop discovery -----------------------------------------------------------


def find_loop(program: Program, label: str) -> tuple[int, int]:
    """Locate the ``label: ... branch label`` region; returns (start, end)."""
    start = program.target(label)
    end = None
    for index in range(start, len(program)):
        instr = program[index]
        if instr.is_branch:
            targets_label = any(
                getattr(op, "name", None) == label for op in instr.operands
            )
            if targets_label:
                end = index
    if end is None:
        raise OffloadError(f"no branch back to label {label!r}")
    for index in range(start, end):
        if program[index].is_branch:
            raise OffloadError(
                f"loop body contains inner control flow at index {index}"
            )
    return start, end


# --- per-instruction byte semantics -----------------------------------------------


def is_pure_permute(instr: Instruction) -> bool:
    """True for instructions the pass may delete (pure byte relocation)."""
    sem = instr.opcode.sem
    if sem in ("punpckl", "punpckh", "pshufw"):
        return True
    if sem == "movq":
        return all(isinstance(op, Register) and op.is_mmx for op in instr.operands)
    if sem in ("psll", "psrl") and instr.opcode.width == 64:
        count = instr.operands[1]
        return isinstance(count, Imm) and count.value % 8 == 0
    return False


def byte_sources(instr: Instruction) -> list[tuple[str, int] | None]:
    """Output-byte provenance of a pure permute.

    Each of the 8 entries is ``('a', i)`` (byte *i* of the destination-as-
    source operand), ``('b', i)`` (byte *i* of the second operand) or ``None``
    for a shifted-in zero byte.
    """
    sem = instr.opcode.sem
    if sem == "movq":
        return [("b", i) for i in range(MMX_BYTES)]
    if sem in ("psll", "psrl"):
        k = instr.operands[1].value // 8
        if sem == "psll":
            return [("a", i - k) if i >= k else None for i in range(MMX_BYTES)]
        return [("a", i + k) if i + k < MMX_BYTES else None for i in range(MMX_BYTES)]
    if sem == "pshufw":
        order = instr.operands[2].value & 0xFF
        out: list[tuple[str, int] | None] = []
        for lane in range(4):
            src_lane = (order >> (2 * lane)) & 3
            out.extend([("b", 2 * src_lane), ("b", 2 * src_lane + 1)])
        return out
    if sem in ("punpckl", "punpckh"):
        k = instr.opcode.width // 8  # bytes per lane
        lanes_n = MMX_BYTES // k
        half = lanes_n // 2
        base = 0 if sem == "punpckl" else half
        out = []
        for j in range(half):
            out.extend([("a", (base + j) * k + t) for t in range(k)])
            out.extend([("b", (base + j) * k + t) for t in range(k)])
        return out
    raise OffloadError(f"{instr.name} is not a pure permute")


def mmx_source_slots(instr: Instruction) -> list[int]:
    """Operand slots read as routable MMX sources for *instr*."""
    sem = instr.opcode.sem
    slots: list[int] = []
    if not instr.is_mmx:
        return slots
    if sem in ("movq", "movd"):
        op = instr.operands[1]
        if isinstance(op, Register) and op.is_mmx:
            slots.append(1)
        return slots
    if sem == "pshufw":
        op = instr.operands[1]
        if isinstance(op, Register) and op.is_mmx:
            slots.append(1)
        return slots
    if sem in ("psll", "psrl", "psra"):
        # Route only the data operand; a register shift count stays literal.
        if isinstance(instr.operands[0], Register):
            slots.append(0)
        return slots
    # Packed read-modify-write forms: destination is also a source.
    if isinstance(instr.operands[0], Register) and instr.operands[0].is_mmx:
        slots.append(0)
    if len(instr.operands) > 1:
        op = instr.operands[1]
        if isinstance(op, Register) and op.is_mmx:
            slots.append(1)
    return slots


def mmx_dest(instr: Instruction) -> Register | None:
    """MMX register written by *instr*, if any."""
    dest = instr.dest
    if dest is not None and dest.is_mmx:
        return dest
    return None


def is_zero_idiom(instr: Instruction) -> bool:
    """True for the canonical register-clear idioms (``pxor x,x`` etc.).

    Their result is zero regardless of the register's content, so the
    analysis can treat the destination as a known-zero source — which both
    exempts the idiom from operand-routing requirements and lets consumers
    of shifted-in zeros find a zero byte to route from.
    """
    if instr.opcode.sem not in ("pxor", "psub", "psubs", "psubus", "pandn"):
        return False
    operands = instr.operands
    return (
        len(operands) == 2
        and isinstance(operands[0], Register)
        and operands[0] == operands[1]
    )


# --- the symbolic engine ------------------------------------------------------------


class _ByteMap:
    """Maps (reg_index, byte) → symbol; mutated as the walk proceeds."""

    def __init__(self, zero_regs: tuple = ()) -> None:
        self.map: dict[tuple[int, int], int] = {}
        self._next = 1
        zero_indexes = {reg.index for reg in zero_regs}
        for reg in range(8):
            for byte in range(MMX_BYTES):
                # Known-zero registers (pre-loop pxor idioms) seed ZERO
                # symbols, giving shifted-in zeros a routable source.
                self.map[(reg, byte)] = ZERO if reg in zero_indexes else self._fresh()

    def _fresh(self) -> int:
        sym = self._next
        self._next += 1
        return sym

    def operand_syms(self, reg: Register) -> list[int]:
        return [self.map[(reg.index, b)] for b in range(MMX_BYTES)]

    def write_fresh(self, reg: Register) -> None:
        for byte in range(MMX_BYTES):
            self.map[(reg.index, byte)] = self._fresh()

    def apply_permute(self, instr: Instruction) -> None:
        dst = instr.operands[0]
        a = self.operand_syms(dst)
        src_op = instr.operands[1] if len(instr.operands) > 1 else None
        b = (
            self.operand_syms(src_op)
            if isinstance(src_op, Register) and src_op.is_mmx
            else [ZERO] * MMX_BYTES
        )
        out = []
        for source in byte_sources(instr):
            if source is None:
                out.append(ZERO)
            else:
                which, i = source
                out.append(a[i] if which == "a" else b[i])
        for byte, sym in enumerate(out):
            self.map[(dst.index, byte)] = sym

    def step(self, instr: Instruction, *, removed: bool) -> None:
        """Advance the map across *instr* (removed permutes change nothing)."""
        if removed:
            return
        dst = mmx_dest(instr)
        if dst is None:
            return
        if is_zero_idiom(instr):
            for byte in range(MMX_BYTES):
                self.map[(dst.index, byte)] = ZERO
        elif is_pure_permute(instr):
            self.apply_permute(instr)
        else:
            self.write_fresh(dst)

    def set_dst(self, reg: Register, syms: list[int]) -> None:
        """Replay a known output symbol vector into *reg* (transformed walk)."""
        for byte, sym in enumerate(syms):
            self.map[(reg.index, byte)] = sym

    def locate(self, sym: int) -> tuple[int, int] | None:
        """Find any register byte currently holding *sym*."""
        for location, value in self.map.items():
            if value == sym:
                return location
        return None

    def locate_zero(self, byte: int) -> tuple[int, int] | None:
        """Find a zero byte, preferring offset *byte* within its register.

        Any ZERO byte is interchangeable at runtime; picking the same offset
        keeps the route granule-aligned for half-word-port configurations.
        """
        for reg in range(8):
            if self.map.get((reg, byte)) == ZERO:
                return (reg, byte)
        return self.locate(ZERO)


def _analyze_original(
    body: list[Instruction],
    zero_regs: tuple = (),
) -> tuple[list[dict[int, list[int]]], list[int | None], list[list[int] | None]]:
    """Walk the original body.

    Returns, per instruction: the required symbols per routable slot, the
    body position of the last prior write to each source register (for
    blame assignment), and the destination's symbol vector *after* the
    instruction (``None`` for instructions without an MMX destination).
    The transformed walk replays those output vectors for kept
    instructions — with routing enforced, a kept instruction produces
    exactly the original values regardless of what its architectural
    operands currently hold.
    """
    bmap = _ByteMap(zero_regs)
    needed: list[dict[int, list[int]]] = []
    last_def: dict[int, int] = {}  # reg index -> body position of last write
    def_of_slot: list[dict[int, int | None]] = []
    out_syms: list[list[int] | None] = []
    for position, instr in enumerate(body):
        slot_syms: dict[int, list[int]] = {}
        slot_defs: dict[int, int | None] = {}
        # Zero idioms produce 0 regardless of their inputs: no routing needed.
        slots = () if is_zero_idiom(instr) else mmx_source_slots(instr)
        for slot in slots:
            reg = instr.operands[slot]
            slot_syms[slot] = bmap.operand_syms(reg)
            slot_defs[slot] = last_def.get(reg.index)
        needed.append(slot_syms)
        def_of_slot.append(slot_defs)
        bmap.step(instr, removed=False)
        dst = mmx_dest(instr)
        if dst is not None:
            last_def[dst.index] = position
            out_syms.append(bmap.operand_syms(dst))
        else:
            out_syms.append(None)
    return needed, def_of_slot, out_syms


def offload_loop(
    program: Program,
    loop_label: str,
    iterations: int,
    config: CrossbarConfig = CONFIG_D,
    live_out: tuple[Register, ...] = (),
    known_zero: tuple[Register, ...] = (),
) -> OffloadReport:
    """Off-load the permutes of the ``loop_label`` loop onto the SPU.

    Parameters
    ----------
    program:
        The MMX-only program (must contain ``loop_label``).
    loop_label:
        Label of the loop head; the body extends to the last branch back.
    iterations:
        Dynamic trip count, used to program the zero-overhead counter
        (CNTR0 = iterations × body length, §4).
    config:
        Target interconnect configuration; routes illegal under it force the
        producing permute to stay in software.
    live_out:
        MMX registers read after the loop; a removed permute may not be the
        last writer of a live-out register.
    known_zero:
        MMX registers holding zero at loop entry (established by a pre-loop
        clear idiom and never written in the body): their bytes become
        routable zero sources, so zero-filling shifts can be off-loaded.
    """
    if iterations <= 0:
        raise OffloadError(f"iterations must be positive, got {iterations}")
    start, end = find_loop(program, loop_label)
    body = program.instructions[start : end + 1]
    for reg in known_zero:
        if any(reg in instr.mmx_regs_written() for instr in body):
            raise OffloadError(
                f"known_zero register {reg} is written inside the loop body"
            )
    needed, def_of_slot, out_syms = _analyze_original(body, known_zero)

    # Registers live-in to the body (read before any write, in the original):
    # a removed permute may not leave such a register stale at the back edge,
    # or the next iteration would observe the wrong value.
    live_in: set[int] = set()
    written: set[int] = set()
    for instr in body:
        for reg in instr.mmx_regs_read():
            if reg.index not in written:
                live_in.add(reg.index)
        dst = mmx_dest(instr)
        if dst is not None:
            written.add(dst.index)

    # End-of-body symbol map of the original (fresh-symbol order aligns with
    # the transformed walk because permutes never allocate new symbols).
    orig_map = _ByteMap(known_zero)
    for instr in body:
        orig_map.step(instr, removed=False)
    final_orig = dict(orig_map.map)

    removed_set = {
        position for position, instr in enumerate(body) if is_pure_permute(instr)
    }
    kept_reasons: dict[int, str] = {}

    def _keep(position: int | None, reason: str) -> bool:
        """Move a candidate out of the removal set; True if the set changed."""
        if position is not None and position in removed_set:
            removed_set.discard(position)
            kept_reasons[position] = reason
            return True
        return False

    def _keep_fallback(blame: int | None, near: int, reason: str) -> bool:
        """Keep *blame*, or — when blame misattributes (the symbol was lost
        through a different candidate's removal) — conservatively keep the
        nearest still-removed candidate before *near*, else any.  Monotone,
        so the fixed point always terminates with a correct (possibly
        identity) transformation.
        """
        if _keep(blame, reason):
            return True
        earlier = [position for position in removed_set if position <= near]
        pool = earlier if earlier else sorted(removed_set)
        if not pool:
            return False
        return _keep(max(pool) if earlier else pool[-1], f"(fallback) {reason}")

    def _validate(trial_removed: set[int]):
        """Walk the transformed body under *trial_removed*.

        Returns ``(routes, failure)``: the per-position slot routes when the
        transformation is valid (``failure is None``), or ``failure =
        (blame, near, reason)`` naming the candidate to keep.
        """
        bmap = _ByteMap(known_zero)
        routes: dict[int, dict[int, tuple]] = {}
        for position, instr in enumerate(body):
            if position in trial_removed:
                continue  # removed instructions change nothing
            for slot, required in needed[position].items():
                reg = instr.operands[slot]
                byte_route: list[int | None] = []
                failed: str | None = None
                for byte, sym in enumerate(required):
                    if bmap.map[(reg.index, byte)] == sym:
                        byte_route.append(None)  # already architectural
                        continue
                    location = (
                        bmap.locate_zero(byte) if sym == ZERO else bmap.locate(sym)
                    )
                    if location is None:
                        failed = (
                            "consumes shifted-in zero bytes with no zero source"
                            if sym == ZERO
                            else "source sub-word no longer present in the register file"
                        )
                        break
                    byte_route.append(location[0] * MMX_BYTES + location[1])
                if failed is None and any(sel is not None for sel in byte_route):
                    try:
                        config.check_byte_route(tuple(byte_route))
                    except RouteError as exc:
                        failed = f"route illegal for config {config.name}: {exc}"
                if failed is not None:
                    blame = def_of_slot[position].get(slot)
                    return routes, (blame, position, failed, instr, slot)
                if any(sel is not None for sel in byte_route):
                    routes.setdefault(position, {})[slot] = tuple(byte_route)
            # Kept instructions produce their original values (routes make
            # their operands the original ones), so replay original symbols.
            dst = mmx_dest(instr)
            if dst is not None:
                bmap.set_dst(dst, out_syms[position])
        # Back-edge check: live-in registers must reach the loop end holding
        # exactly what the original body left there.
        last_removed_writer: dict[int, int] = {}
        for position in trial_removed:
            dst = mmx_dest(body[position])
            if dst is not None:
                prev = last_removed_writer.get(dst.index, -1)
                last_removed_writer[dst.index] = max(prev, position)
        for reg_index in sorted(live_in):
            mismatch = any(
                bmap.map[(reg_index, byte)] != final_orig[(reg_index, byte)]
                for byte in range(MMX_BYTES)
            )
            if mismatch:
                blame = last_removed_writer.get(reg_index)
                return routes, (
                    blame,
                    len(body),
                    "feeds the next iteration through the back edge",
                    None,
                    reg_index,
                )
        return routes, None

    # Live-out rule: the last writer of a live-out register must be kept.
    # These keeps are pinned: re-expansion below must never undo them.
    last_writer: dict[int, int] = {}
    for position, instr in enumerate(body):
        dst = mmx_dest(instr)
        if dst is not None:
            last_writer[dst.index] = position
    pinned: set[int] = set()
    for reg in live_out:
        position = last_writer.get(reg.index)
        if _keep(position, "last writer of a live-out register"):
            pinned.add(position)

    # Fixed point: verify every kept instruction's operands are reachable,
    # keeping one more candidate per failing walk.
    while True:
        routes, failure = _validate(removed_set)
        if failure is None:
            break
        blame, near, reason, instr, detail = failure
        if not _keep_fallback(blame, near, reason):
            if instr is not None:
                raise OffloadError(
                    f"cannot reroute {instr.name} (body position {near},"
                    f" slot {detail}): {reason}; nothing left to keep"
                )
            raise OffloadError(
                f"live-in register mm{detail} diverges at the back edge"
                " with nothing left to keep"
            )

    # Re-expansion: the fixed point only ever grows the keep set (that is
    # what makes it terminate), but blame ordering is path-dependent — a
    # candidate kept early may become removable once the *real* culprit is
    # kept later (e.g. once the permute producing a zero byte stays, its
    # consumers route from it again).  Without this pass a more flexible
    # interconnect could paradoxically off-load less than a stricter one.
    # Greedily try returning each unpinned kept candidate to the removal
    # set; accept whenever the whole walk (including the back edge) still
    # validates.  Removals only grow here, so the loop terminates.
    while True:
        reexpanded = False
        for position in sorted(kept_reasons, reverse=True):
            if position in pinned:
                continue
            trial = removed_set | {position}
            trial_routes, failure = _validate(trial)
            if failure is None:
                removed_set.add(position)
                del kept_reasons[position]
                routes = trial_routes
                reexpanded = True
        if not reexpanded:
            break

    # --- emit the transformed program -------------------------------------------
    removed_original_indices = sorted(start + position for position in removed_set)
    new_instructions: list[Instruction] = []
    index_map: dict[int, int] = {}
    for old_index, instr in enumerate(program.instructions):
        if old_index in set(removed_original_indices):
            continue
        index_map[old_index] = len(new_instructions)
        new_instructions.append(instr)
    new_labels: dict[str, int] = {}
    for label, old_index in program.labels.items():
        adjusted = old_index
        while adjusted not in index_map and adjusted < len(program.instructions):
            adjusted += 1  # label pointed at a removed instruction
        new_labels[label] = index_map.get(adjusted, len(new_instructions))
    transformed = Program(
        instructions=new_instructions, labels=new_labels, name=f"{program.name}+spu"
    )
    transformed.validate()

    # --- emit the SPU controller program -----------------------------------------
    builder = SPUProgramBuilder(config=config, name=f"{program.name}-spu-ctl")
    specs: list[StateSpec] = []
    routes_by_position: dict[int, dict[int, tuple]] = {}
    new_position = 0
    for position in range(len(body)):
        if position in removed_set:
            continue
        slot_routes = routes.get(position)
        specs.append(StateSpec(routes=slot_routes) if slot_routes else StateSpec())
        if slot_routes:
            routes_by_position[new_position] = slot_routes
        new_position += 1
    builder.loop(specs, iterations)
    spu_program = builder.build()

    return OffloadReport(
        program=transformed,
        spu_program=spu_program,
        removed=removed_original_indices,
        loop_start=start,
        loop_end=end,
        routes_by_position=routes_by_position,
        kept=kept_reasons,
    )

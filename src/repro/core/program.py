"""SPU controller programs: states, counters and their binary encoding.

A controller program is horizontal microcode (Figure 6): each state holds a
counter select bit (CNTRx), the interconnect configuration for that dynamic
instruction's operands ("Output to SPU Interconnect"), and two next-state
fields — ``next0`` taken when the selected counter reaches zero, ``next1``
otherwise.  State 127 is the hard-wired idle state: reaching it disables the
SPU and restores the counters to their programmed initial values (§4).

Routes here are *operand-slot* routes: slot 0 is the destination-as-source
operand of the instruction the state accompanies, slot 1 the second source
operand.  (Physically the crossbar drives four operand buses — two pipes ×
two operands; one controller state configures the two buses of one dynamic
instruction, and a paired cycle consumes two states.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SPUProgramError
from repro.core.interconnect import CrossbarConfig, OperandRoute

#: Number of controller states in the paper's design point (K = 128, §3).
DEFAULT_NUM_STATES = 128

#: Operand slots routed per state (destination-as-source, second source).
ROUTED_SLOTS = 2


@dataclass(frozen=True)
class SPUState:
    """One microprogram word.

    ``routes`` maps operand slot (0 or 1) to an :data:`OperandRoute`; missing
    slots pass the architectural value straight through.
    """

    cntr: int = 0
    routes: dict[int, OperandRoute] = field(default_factory=dict)
    next0: int = DEFAULT_NUM_STATES - 1
    next1: int = DEFAULT_NUM_STATES - 1

    def __post_init__(self) -> None:
        if self.cntr not in (0, 1):
            raise SPUProgramError(f"CNTRx must select counter 0 or 1, got {self.cntr}")
        for slot in self.routes:
            if slot not in range(ROUTED_SLOTS):
                raise SPUProgramError(f"route slot {slot} out of range (0..{ROUTED_SLOTS - 1})")

    @property
    def is_straight(self) -> bool:
        """True when this state routes nothing (architectural pass-through)."""
        return not self.routes


@dataclass
class SPUProgram:
    """A full controller image: states plus counter initial values."""

    states: dict[int, SPUState] = field(default_factory=dict)
    #: Initial values of the two zero-overhead loop counters (dynamic
    #: instruction counts; §4's example programs CNTR0 = 10 iterations × 3
    #: instructions = 30).
    counter_init: tuple[int, int] = (0, 0)
    entry: int = 0
    num_states: int = DEFAULT_NUM_STATES
    name: str = "spu-program"

    @property
    def idle_state(self) -> int:
        """Index of the hard-wired idle state (127 for K = 128)."""
        return self.num_states - 1

    def add_state(self, index: int, state: SPUState) -> None:
        if not 0 <= index < self.num_states:
            raise SPUProgramError(f"state index {index} out of range (K={self.num_states})")
        if index == self.idle_state:
            raise SPUProgramError(f"state {index} is the reserved idle state")
        if index in self.states:
            raise SPUProgramError(f"state {index} already defined")
        self.states[index] = state

    def validate(self, config: CrossbarConfig | None = None) -> list[str]:
        """Structural validation; with *config*, also route legality.

        Returns the rule ids of checks that were *skipped* because no
        *config* was supplied (``repro lint`` surfaces these as ``info``
        findings); an empty list means every check ran.  Raises
        :class:`SPUProgramError` on the first violation either way.
        """
        if self.entry == self.idle_state or self.entry not in self.states:
            raise SPUProgramError(
                f"entry state {self.entry} is undefined or idle in {self.name!r}"
            )
        used_counters: set[int] = set()
        for index, state in self.states.items():
            for next_index, field_name in ((state.next0, "next0"), (state.next1, "next1")):
                if not 0 <= next_index < self.num_states:
                    raise SPUProgramError(
                        f"state {index}: {field_name}={next_index} out of range"
                    )
                if next_index != self.idle_state and next_index not in self.states:
                    raise SPUProgramError(
                        f"state {index}: {field_name} targets undefined state {next_index}"
                    )
            used_counters.add(state.cntr)
            if config is not None:
                for route in state.routes.values():
                    config.check_route(route)
        for cntr in used_counters:
            if self.counter_init[cntr] <= 0:
                raise SPUProgramError(
                    f"counter {cntr} is used but initialized to "
                    f"{self.counter_init[cntr]} (must be positive)"
                )
        if config is None:
            # Crossbar checks need the interconnect geometry; name the rules
            # skipped so callers cannot mistake "not checked" for "legal".
            return ["mp-route-illegal", "mp-encode-roundtrip"]
        return []

    def state_count(self) -> int:
        return len(self.states)


# --- binary encoding (MMIO image) -------------------------------------------
#
# Practical state-word layout (little-endian bit order):
#   [cntr:1][next0:7][next1:7] then per slot, per output granule:
#   [valid:1][selector:config.select_bits]
# The paper's Table 1 control-memory *size* formula (15 + route bits over the
# full 4-bus crossbar) is modeled separately in repro.hw; this encoding is the
# working image the MMIO interface transports.


def state_word_bits(config: CrossbarConfig) -> int:
    """Bit width of one encoded state word for *config*."""
    per_granule = 1 + config.select_bits + config.mode_bits
    return 15 + ROUTED_SLOTS * config.granules_per_operand * per_granule


def encode_state(state: SPUState, config: CrossbarConfig) -> int:
    """Encode one state to its binary word."""
    from repro.core.interconnect import split_entry

    word = state.cntr & 1
    word |= (state.next0 & 0x7F) << 1
    word |= (state.next1 & 0x7F) << 8
    bit = 15
    per_granule = 1 + config.select_bits + config.mode_bits
    for slot in range(ROUTED_SLOTS):
        route = state.routes.get(slot)
        if route is not None:
            config.check_route(route)
        for granule in range(config.granules_per_operand):
            entry = None if route is None else route[granule]
            sel, mode = split_entry(entry)
            if sel is not None:
                word |= 1 << bit
                word |= (sel & ((1 << config.select_bits) - 1)) << (bit + 1)
                if mode is not None:
                    # mode index 0 is "plain"; configured modes are 1-based
                    mode_index = config.modes.index(mode) + 1
                    word |= mode_index << (bit + 1 + config.select_bits)
            bit += per_granule
    return word


def decode_state(word: int, config: CrossbarConfig) -> SPUState:
    """Inverse of :func:`encode_state`.

    Rejects malformed words: a selector beyond the configuration's input
    ports (possible when ``in_ports`` is not a power of two, or on a stuck
    select line) or a mode index beyond the configured operand modes raises
    :class:`~repro.errors.RouteError` rather than decoding garbage.
    """
    from repro.errors import RouteError

    cntr = word & 1
    next0 = (word >> 1) & 0x7F
    next1 = (word >> 8) & 0x7F
    routes: dict[int, OperandRoute] = {}
    bit = 15
    per_granule = 1 + config.select_bits + config.mode_bits
    for slot in range(ROUTED_SLOTS):
        entries: list = []
        any_valid = False
        for _ in range(config.granules_per_operand):
            valid = (word >> bit) & 1
            sel = (word >> (bit + 1)) & ((1 << config.select_bits) - 1)
            entry: int | tuple | None = None
            if valid:
                if sel >= config.in_ports:
                    raise RouteError(
                        f"{config.name}: malformed state word — selector {sel} "
                        f"outside the {config.in_ports}-port input window"
                    )
                entry = sel
                if config.mode_bits:
                    mode_index = (word >> (bit + 1 + config.select_bits)) & (
                        (1 << config.mode_bits) - 1
                    )
                    if mode_index > len(config.modes):
                        raise RouteError(
                            f"{config.name}: malformed state word — mode index "
                            f"{mode_index} beyond the {len(config.modes)} "
                            "configured operand modes"
                        )
                    if mode_index:
                        entry = (sel, config.modes[mode_index - 1])
                any_valid = True
            entries.append(entry)
            bit += per_granule
        if any_valid:
            routes[slot] = tuple(entries)
    return SPUState(cntr=cntr, routes=routes, next0=next0, next1=next1)


def encode_program(program: SPUProgram, config: CrossbarConfig) -> dict[int, int]:
    """Encode every defined state; returns ``{state_index: word}``."""
    program.validate(config)
    return {index: encode_state(state, config) for index, state in program.states.items()}


def decode_program(
    words: dict[int, int],
    config: CrossbarConfig,
    counter_init: tuple[int, int],
    entry: int = 0,
    num_states: int = DEFAULT_NUM_STATES,
    name: str = "spu-program",
) -> SPUProgram:
    """Rebuild a program from encoded state words."""
    program = SPUProgram(
        counter_init=counter_init, entry=entry, num_states=num_states, name=name
    )
    for index, word in sorted(words.items()):
        program.add_state(index, decode_state(word, config))
    program.validate(config)
    return program

"""The unified SPU register: a byte-addressable view of the MMX register file.

The paper's SPU register is "simply a set of D flip-flops that are grouped
into bytes" holding 512 bits — the full MM0..MM7 contents — giving the
interconnect access to *all* sub-words in the register space and thereby
eliminating inter-word restrictions (§3).  Byte ``8*r + j`` is byte ``j``
(little-endian) of register ``MMr``.

Reads return the whole register; writes update only the targeted bytes,
matching "On each read of the SPU register, the entire register is read.  On
writes to the SPU register, only those bits that are overwritten are changed."
"""

from __future__ import annotations

from repro.errors import SPUProgramError
from repro.isa.registers import MMX_BYTES, NUM_MMX_REGS
from repro.simd import lanes

#: Total bytes in the unified register (8 MMX registers × 8 bytes).
SPU_REGISTER_BYTES = NUM_MMX_REGS * MMX_BYTES  # 64
SPU_REGISTER_BITS = SPU_REGISTER_BYTES * 8  # 512


class SPURegister:
    """512-bit unified register shadowing MM0..MM7."""

    def __init__(self) -> None:
        self._bytes = bytearray(SPU_REGISTER_BYTES)
        # Armed single-event upsets (fault injection): (byte_index, bit_mask)
        # pairs applied to the flip-flops at the next full-register read.
        self._pending_flips: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return SPU_REGISTER_BYTES

    # ---- fault-injection hook (repro.faults) -----------------------------

    def inject_bit_flip(self, byte_index: int, bit: int) -> None:
        """Arm a single-event upset: flip one flip-flop at the next read.

        The flip lands between the mirror write and the crossbar's gather —
        the window in which the paper's D flip-flops actually hold state —
        and persists until the next :meth:`load_from_mmx` overwrites the
        affected byte (partial writes of other bytes leave it corrupted).
        """
        if not 0 <= byte_index < SPU_REGISTER_BYTES:
            raise SPUProgramError(f"SPU register byte {byte_index} out of range")
        if not 0 <= bit < 8:
            raise SPUProgramError(f"bit {bit} out of range (0..7)")
        self._pending_flips.append((byte_index, 1 << bit))

    # ---- whole-register access -------------------------------------------

    def read_all(self) -> bytes:
        """Snapshot of all 64 bytes (the full-register read of §3)."""
        if self._pending_flips:
            for byte_index, mask in self._pending_flips:
                self._bytes[byte_index] ^= mask
            self._pending_flips.clear()
        return bytes(self._bytes)

    def load_from_mmx(self, mmx_values: list[int]) -> None:
        """Mirror the architectural MMX file into the SPU register."""
        if len(mmx_values) != NUM_MMX_REGS:
            raise SPUProgramError(
                f"expected {NUM_MMX_REGS} MMX values, got {len(mmx_values)}"
            )
        for index, value in enumerate(mmx_values):
            self.write_reg(index, value)

    # ---- per-register access ----------------------------------------------

    def write_reg(self, reg_index: int, value: int) -> None:
        """Write one 64-bit register's bytes (a partial-register write)."""
        if not 0 <= reg_index < NUM_MMX_REGS:
            raise SPUProgramError(f"MMX register index {reg_index} out of range")
        offset = reg_index * MMX_BYTES
        self._bytes[offset : offset + MMX_BYTES] = lanes.bytes_of(value)

    def read_reg(self, reg_index: int) -> int:
        """Read one 64-bit register from the unified register."""
        if not 0 <= reg_index < NUM_MMX_REGS:
            raise SPUProgramError(f"MMX register index {reg_index} out of range")
        offset = reg_index * MMX_BYTES
        return lanes.from_bytes(bytes(self._bytes[offset : offset + MMX_BYTES]))

    # ---- byte access --------------------------------------------------------

    def read_byte(self, index: int) -> int:
        if not 0 <= index < SPU_REGISTER_BYTES:
            raise SPUProgramError(f"SPU register byte {index} out of range")
        return self._bytes[index]

    def write_byte(self, index: int, value: int) -> None:
        if not 0 <= index < SPU_REGISTER_BYTES:
            raise SPUProgramError(f"SPU register byte {index} out of range")
        self._bytes[index] = value & 0xFF

    def gather(self, byte_indices: list[int]) -> int:
        """Assemble a 64-bit word from eight absolute byte addresses."""
        if len(byte_indices) != MMX_BYTES:
            raise SPUProgramError(
                f"gather needs {MMX_BYTES} byte indices, got {len(byte_indices)}"
            )
        return lanes.from_bytes(bytes(self.read_byte(i) for i in byte_indices))


def byte_address(reg_index: int, byte: int) -> int:
    """Absolute SPU-register byte address of byte *byte* of ``MM{reg_index}``."""
    if not 0 <= reg_index < NUM_MMX_REGS:
        raise SPUProgramError(f"MMX register index {reg_index} out of range")
    if not 0 <= byte < MMX_BYTES:
        raise SPUProgramError(f"byte offset {byte} out of range")
    return reg_index * MMX_BYTES + byte


def halfword_address(reg_index: int, halfword: int) -> int:
    """Absolute 16-bit-granule address of half-word *halfword* of ``MM{reg_index}``."""
    if not 0 <= halfword < MMX_BYTES // 2:
        raise SPUProgramError(f"half-word offset {halfword} out of range")
    return reg_index * (MMX_BYTES // 2) + halfword

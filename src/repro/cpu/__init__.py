"""CPU substrate: memory, machine state, executor, pairing, cycle pipeline."""

from repro.cpu.branch import (
    PREDICTORS,
    AlwaysTaken,
    Bimodal,
    BranchPredictor,
    GShare,
    StaticBTFN,
    make_predictor,
)
from repro.cpu.executor import (
    DecodedOp,
    ExecOutcome,
    decode,
    effective_address,
    execute,
    uop_table,
)
from repro.cpu.memory import Memory, MMIODevice
from repro.cpu.pairing import can_pair
from repro.cpu.pipeline import Machine, PipelineConfig, SPUAttachment
from repro.cpu.state import Flags, MachineState
from repro.cpu.stats import RunStats

__all__ = [
    "PREDICTORS",
    "AlwaysTaken",
    "Bimodal",
    "BranchPredictor",
    "GShare",
    "StaticBTFN",
    "make_predictor",
    "DecodedOp",
    "ExecOutcome",
    "decode",
    "effective_address",
    "execute",
    "uop_table",
    "Memory",
    "MMIODevice",
    "can_pair",
    "Machine",
    "PipelineConfig",
    "SPUAttachment",
    "Flags",
    "MachineState",
    "RunStats",
]

from repro.cpu.trace import Trace, TraceEntry, trace_run

__all__ += ["Trace", "TraceEntry", "trace_run"]

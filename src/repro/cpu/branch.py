"""Branch predictor models used for the Table 2 branch statistics.

The paper extracted branch/mispredict counts with VTune on a Pentium III
(Table 2) and argues media kernels mispredict rarely (<0.16%) because they are
dominated by long counted loops.  We provide three predictors:

* :class:`StaticBTFN` — backward taken / forward not-taken (no state),
* :class:`Bimodal` — a table of 2-bit saturating counters indexed by PC,
* :class:`GShare` — global-history XOR PC indexing, Pentium III-class.

All share the interface ``predict(pc, target) -> bool`` / ``update(pc,
target, taken)``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class BranchPredictor:
    """Interface: override :meth:`predict` and :meth:`update`."""

    name = "abstract"

    def predict(self, pc: int, target: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, target: int, taken: bool) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Restore power-on state (default: nothing to clear)."""


class AlwaysTaken(BranchPredictor):
    """Degenerate predictor: every branch predicted taken."""

    name = "always-taken"

    def predict(self, pc: int, target: int) -> bool:
        return True

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass


class StaticBTFN(BranchPredictor):
    """Backward taken, forward not taken — classic static heuristic."""

    name = "static-btfn"

    def predict(self, pc: int, target: int) -> bool:
        return target <= pc

    def update(self, pc: int, target: int, taken: bool) -> None:
        pass


class Bimodal(BranchPredictor):
    """Per-PC 2-bit saturating counters (initialized weakly taken)."""

    name = "bimodal"

    def __init__(self, entries: int = 512) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError(f"bimodal entries must be a power of two, got {entries}")
        self.entries = entries
        self._table = [2] * entries  # 0..3; >=2 predicts taken

    def reset(self) -> None:
        self._table = [2] * self.entries

    def _index(self, pc: int) -> int:
        return pc & (self.entries - 1)

    def predict(self, pc: int, target: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, target: int, taken: bool) -> None:
        i = self._index(pc)
        counter = self._table[i]
        self._table[i] = min(3, counter + 1) if taken else max(0, counter - 1)


class GShare(BranchPredictor):
    """Global-history predictor: PC XOR history indexes 2-bit counters."""

    name = "gshare"

    def __init__(self, entries: int = 1024, history_bits: int = 8) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigurationError(f"gshare entries must be a power of two, got {entries}")
        if history_bits <= 0:
            raise ConfigurationError("history_bits must be positive")
        self.entries = entries
        self.history_bits = history_bits
        self._table = [2] * entries
        self._history = 0

    def reset(self) -> None:
        self._table = [2] * self.entries
        self._history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & (self.entries - 1)

    def predict(self, pc: int, target: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, target: int, taken: bool) -> None:
        i = self._index(pc)
        counter = self._table[i]
        self._table[i] = min(3, counter + 1) if taken else max(0, counter - 1)
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask


#: Registry for configuration by name.
PREDICTORS: dict[str, type[BranchPredictor]] = {
    "always-taken": AlwaysTaken,
    "static-btfn": StaticBTFN,
    "bimodal": Bimodal,
    "gshare": GShare,
}


def make_predictor(name: str, **kwargs) -> BranchPredictor:
    """Instantiate a predictor from the registry by name."""
    try:
        cls = PREDICTORS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown predictor {name!r}; choose from {sorted(PREDICTORS)}"
        ) from exc
    return cls(**kwargs)

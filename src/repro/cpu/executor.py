"""Functional execution of instructions (architectural state changes only).

The executor is timing-free: the pipeline model decides *when* an instruction
issues, then applies its architectural effect.  Since PR 5 the hot path is a
**decoded micro-op cache**: every static instruction is resolved exactly once
by :func:`decode` — opcode semantics to a bound handler, operand kinds to
direct register-file index reads / baked immediates / precomputed
effective-address closures, branch targets to instruction indices — into a
:class:`DecodedOp` whose ``run`` closure the pipeline calls on every dynamic
instance.  The per-issue cost is one dict probe plus one closure call; the
old per-issue dict lookups and ``isinstance`` chains happen only at decode.

``run(state, memory, operand_values)`` returns ``None`` for a fall-through
(so the common case allocates nothing) and a preallocated
:class:`ExecOutcome` for branches and ``halt``.  The decode table lives on
the :class:`~repro.isa.instructions.Program` (``uop_table``), keyed by pc and
validated by instruction *identity*, so transformation passes that rebuild a
program (or reuse :class:`Instruction` objects under different label maps)
can never be served a stale micro-op.

SPU transparent permutation is supported through ``operand_values`` — a
mapping from operand-slot index to a pre-routed 64-bit value that replaces
the register-file read for that slot (the crossbar sits between the register
file and the functional units, §3, so only *source* values are rerouted; the
destination write is architectural as usual).

Packed-op handlers are resolved through :func:`repro.simd.active_backend` at
decode time, so the SWAR fast path and the NumPy reference oracle are
swappable per-program (see ``benchmarks/bench_simspeed.py``).

Scalar comparisons set zero/sign flags from the 32-bit result; there is no
overflow flag, so signed conditional branches are exact for operand distances
below 2³¹ (always true for the media kernels' loop counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import simd
from repro.errors import SimulationError
from repro.cpu.memory import Memory
from repro.cpu.state import MachineState
from repro.isa.instructions import Instruction, Program
from repro.isa.operands import Imm, Mem
from repro.isa.registers import SCALAR_MASK, Register
from repro.simd.lanes import WORD_MASK


@dataclass(frozen=True, slots=True)
class ExecOutcome:
    """Result of executing one instruction."""

    next_pc: int
    is_branch: bool = False
    taken: bool = False
    target: int | None = None


#: Sentinel distinguishing "slot not routed" from a routed value of 0.
_MISS = object()


def effective_address(mem: Mem, state: MachineState) -> int:
    """Compute ``base + index*scale + disp`` from scalar registers."""
    address = state.read(mem.base) + mem.disp
    if mem.index is not None:
        address += state.read(mem.index) * mem.scale
    return address & SCALAR_MASK


# --- decode-time operand access ----------------------------------------------
#
# Each builder inspects an operand once and returns a closure specialised to
# its kind.  ``Mem`` operands may only use scalar base/index registers
# (enforced by ``Mem.__post_init__``), and scalar registers are kept masked
# by ``MachineState.write``, so the no-disp/no-index fast path needs no mask.


def _make_address(mem: Mem) -> Callable[[MachineState], int]:
    base = mem.base.index
    disp = mem.disp
    if mem.index is None:
        if disp == 0:
            def address(state: MachineState, _b: int = base) -> int:
                return state.scalar[_b]
            return address

        def address(state: MachineState, _b: int = base, _d: int = disp) -> int:
            return (state.scalar[_b] + _d) & SCALAR_MASK
        return address

    index = mem.index.index
    scale = mem.scale

    def address(
        state: MachineState, _b: int = base, _d: int = disp,
        _i: int = index, _s: int = scale,
    ) -> int:
        return (state.scalar[_b] + _d + state.scalar[_i] * _s) & SCALAR_MASK
    return address


def _make_reader(operand: object, size: int = 8) -> Callable[[MachineState, Memory], int]:
    """Source-value closure for one operand (register, immediate or memory)."""
    if isinstance(operand, Register):
        idx = operand.index
        if operand.is_mmx:
            def read(state: MachineState, memory: Memory, _i: int = idx) -> int:
                return state.mmx[_i]
            return read

        def read(state: MachineState, memory: Memory, _i: int = idx) -> int:
            return state.scalar[_i]
        return read
    if isinstance(operand, Imm):
        value = operand.value

        def read(state: MachineState, memory: Memory, _v: int = value) -> int:
            return _v
        return read
    if isinstance(operand, Mem):
        address = _make_address(operand)

        def read(
            state: MachineState, memory: Memory,
            _a: Callable[[MachineState], int] = address, _s: int = size,
        ) -> int:
            return memory.load(_a(state), _s)
        return read
    raise SimulationError(f"operand {operand} cannot be read as a source")


def _make_writer(operand: object, size: int = 8) -> Callable[[MachineState, Memory, int], None]:
    """Destination-write closure (register or memory operand)."""
    if isinstance(operand, Register):
        idx = operand.index
        if operand.is_mmx:
            def write(state: MachineState, memory: Memory, value: int, _i: int = idx) -> None:
                state.mmx[_i] = int(value) & WORD_MASK
            return write

        def write(state: MachineState, memory: Memory, value: int, _i: int = idx) -> None:
            state.scalar[_i] = int(value) & SCALAR_MASK
        return write
    if isinstance(operand, Mem):
        address = _make_address(operand)

        def write(
            state: MachineState, memory: Memory, value: int,
            _a: Callable[[MachineState], int] = address, _s: int = size,
        ) -> None:
            memory.store(_a(state), _s, value)
        return write
    raise SimulationError(f"operand {operand} cannot be written")


# --- packed dispatch tables --------------------------------------------------
#
# Handler *names*, resolved against the active simd backend at decode time.

_PACKED_BINARY = (
    "padd", "psub", "padds", "psubs", "paddus", "psubus", "pavg",
    "pcmpeq", "pcmpgt", "packss", "packus", "punpckl", "punpckh",
)

_PACKED_BINARY_NOWIDTH = (
    "pand", "pandn", "por", "pxor",
    "pmullw", "pmulhw", "pmulhuw", "pmaddwd", "pmuludq",
)

_MINMAX = {
    "pmins": ("pmin", True),
    "pmaxs": ("pmax", True),
    "pminu": ("pmin", False),
    "pmaxu": ("pmax", False),
}

_SHIFTS = ("psll", "psrl", "psra")

_SCALAR_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    # imul keeps the low 32 bits; signedness is irrelevant modulo 2^32.
    "imul": lambda a, b: a * b,
}

_CONDITIONS = {
    "jz": lambda f: f.zero,
    "jnz": lambda f: not f.zero,
    "js": lambda f: f.sign,
    "jns": lambda f: not f.sign,
    "jl": lambda f: f.sign,
    "jge": lambda f: not f.sign,
    "jle": lambda f: f.zero or f.sign,
    "jg": lambda f: not (f.zero or f.sign),
}

_LOAD_SIZES = {"ldw": (4, False), "ldh": (2, False), "ldhs": (2, True), "ldb": (1, False)}
_STORE_SIZES = {"stw": 4, "sth": 2, "stb": 1}


# --- run-closure builders ----------------------------------------------------
#
# ``operand_values`` (the SPU's routed sources) may override any *source*
# slot of an MMX instruction, so MMX closures probe it with the ``_MISS``
# sentinel (a routed value of 0 is legitimate).  Scalar/control closures
# never received overrides (the crossbar feeds only the MMX units) and
# ignore the argument, exactly as the pre-decode executor did.


def _packed2_w(fn, width, read0, read1, write):
    def run(state, memory, ov, _f=fn, _wd=width, _r0=read0, _r1=read1, _w=write):
        if ov is None:
            a = _r0(state, memory)
            b = _r1(state, memory)
        else:
            a = ov.get(0, _MISS)
            if a is _MISS:
                a = _r0(state, memory)
            b = ov.get(1, _MISS)
            if b is _MISS:
                b = _r1(state, memory)
        _w(state, memory, _f(a, b, _wd))
        return None
    return run


def _packed2(fn, read0, read1, write):
    def run(state, memory, ov, _f=fn, _r0=read0, _r1=read1, _w=write):
        if ov is None:
            a = _r0(state, memory)
            b = _r1(state, memory)
        else:
            a = ov.get(0, _MISS)
            if a is _MISS:
                a = _r0(state, memory)
            b = ov.get(1, _MISS)
            if b is _MISS:
                b = _r1(state, memory)
        _w(state, memory, _f(a, b))
        return None
    return run


def _packed2_minmax(fn, width, signed, read0, read1, write):
    def run(state, memory, ov, _f=fn, _wd=width, _s=signed,
            _r0=read0, _r1=read1, _w=write):
        if ov is None:
            a = _r0(state, memory)
            b = _r1(state, memory)
        else:
            a = ov.get(0, _MISS)
            if a is _MISS:
                a = _r0(state, memory)
            b = ov.get(1, _MISS)
            if b is _MISS:
                b = _r1(state, memory)
        _w(state, memory, _f(a, b, _wd, signed=_s))
        return None
    return run


def _vperm(read0, read1, read2, write):
    # 16-byte pool = dst (low 8) ++ src (high 8); each control nibble selects
    # a pool byte for the corresponding destination byte.
    def run(state, memory, ov, _r0=read0, _r1=read1, _r2=read2, _w=write):
        if ov is None:
            dst_val = _r0(state, memory)
            src_val = _r1(state, memory)
            control = _r2(state, memory)
        else:
            dst_val = ov.get(0, _MISS)
            if dst_val is _MISS:
                dst_val = _r0(state, memory)
            src_val = ov.get(1, _MISS)
            if src_val is _MISS:
                src_val = _r1(state, memory)
            control = ov.get(2, _MISS)
            if control is _MISS:
                control = _r2(state, memory)
        control &= 0xFFFFFFFF
        pool = dst_val | (src_val << 64)
        out = 0
        for i in range(0, 64, 8):
            out |= ((pool >> (((control & 0xF) << 3))) & 0xFF) << i
            control >>= 4
        _w(state, memory, out)
        return None
    return run


def _pshufw(fn, read1, read2, static_selector, write):
    def run(state, memory, ov, _f=fn, _r1=read1, _r2=read2,
            _sel=static_selector, _w=write):
        if ov is None:
            src = _r1(state, memory)
            if _sel is not None:
                _w(state, memory, _f(src, _sel, 16))
                return None
            order = _r2(state, memory) & 0xFF
        else:
            src = ov.get(1, _MISS)
            if src is _MISS:
                src = _r1(state, memory)
            order = ov.get(2, _MISS)
            if order is _MISS:
                order = _r2(state, memory)
            order &= 0xFF
        selector = [order & 3, (order >> 2) & 3, (order >> 4) & 3, (order >> 6) & 3]
        _w(state, memory, _f(src, selector, 16))
        return None
    return run


def _movq(read1, write):
    def run(state, memory, ov, _r1=read1, _w=write):
        if ov is None:
            value = _r1(state, memory)
        else:
            value = ov.get(1, _MISS)
            if value is _MISS:
                value = _r1(state, memory)
        _w(state, memory, value)
        return None
    return run


def _movd(read1, dest):
    if isinstance(dest, Register) and dest.is_mmx:
        idx = dest.index

        def run(state, memory, ov, _r1=read1, _i=idx):
            if ov is None:
                value = _r1(state, memory)
            else:
                value = ov.get(1, _MISS)
                if value is _MISS:
                    value = _r1(state, memory)
            state.mmx[_i] = value & 0xFFFFFFFF  # zero-extends to 64 bits
            return None
        return run

    write = _make_writer(dest, size=4)

    def run(state, memory, ov, _r1=read1, _w=write):
        if ov is None:
            value = _r1(state, memory)
        else:
            value = ov.get(1, _MISS)
            if value is _MISS:
                value = _r1(state, memory)
        _w(state, memory, value & 0xFFFFFFFF)
        return None
    return run


def _mov(dest, read1):
    write = _make_writer(dest)

    def run(state, memory, ov, _r1=read1, _w=write):
        _w(state, memory, _r1(state, memory))
        return None
    return run


def _scalar_binop(fn, dest, read1):
    idx = dest.index

    def run(state, memory, ov, _f=fn, _i=idx, _r1=read1):
        result = _f(state.scalar[_i], _r1(state, memory)) & SCALAR_MASK
        state.scalar[_i] = result
        state.flags.set_from(result)
        return None
    return run


def _scalar_shift(sem, dest, read1):
    idx = dest.index
    if sem == "shl":
        def run(state, memory, ov, _i=idx, _r1=read1):
            result = (state.scalar[_i] << (_r1(state, memory) & 31)) & SCALAR_MASK
            state.scalar[_i] = result
            state.flags.set_from(result)
            return None
    elif sem == "shr":
        def run(state, memory, ov, _i=idx, _r1=read1):
            result = state.scalar[_i] >> (_r1(state, memory) & 31)
            state.scalar[_i] = result
            state.flags.set_from(result)
            return None
    else:  # sar: arithmetic shift of the signed 32-bit value
        def run(state, memory, ov, _i=idx, _r1=read1):
            a = state.scalar[_i]
            signed = a - (1 << 32) if a >> 31 else a
            result = (signed >> (_r1(state, memory) & 31)) & SCALAR_MASK
            state.scalar[_i] = result
            state.flags.set_from(result)
            return None
    return run


def _cmp(read0, read1):
    def run(state, memory, ov, _r0=read0, _r1=read1):
        state.flags.set_from(_r0(state, memory) - (_r1(state, memory) & SCALAR_MASK))
        return None
    return run


def _inc_dec_neg(sem, dest):
    idx = dest.index
    if sem == "inc":
        def run(state, memory, ov, _i=idx):
            result = (state.scalar[_i] + 1) & SCALAR_MASK
            state.scalar[_i] = result
            state.flags.set_from(result)
            return None
    elif sem == "dec":
        def run(state, memory, ov, _i=idx):
            result = (state.scalar[_i] - 1) & SCALAR_MASK
            state.scalar[_i] = result
            state.flags.set_from(result)
            return None
    else:  # neg
        def run(state, memory, ov, _i=idx):
            result = -state.scalar[_i] & SCALAR_MASK
            state.scalar[_i] = result
            state.flags.set_from(result)
            return None
    return run


def _lea(dest, mem):
    idx = dest.index
    address = _make_address(mem)

    def run(state, memory, ov, _i=idx, _a=address):
        state.scalar[_i] = _a(state)
        return None
    return run


def _load(dest, mem, size, signed):
    idx = dest.index
    address = _make_address(mem)
    if signed:
        def run(state, memory, ov, _i=idx, _a=address, _s=size):
            state.scalar[_i] = memory.load_signed(_a(state), _s) & SCALAR_MASK
            return None
        return run

    def run(state, memory, ov, _i=idx, _a=address, _s=size):
        state.scalar[_i] = memory.load(_a(state), _s)
        return None
    return run


def _store(mem, src, size):
    address = _make_address(mem)
    read1 = _make_reader(src)

    def run(state, memory, ov, _a=address, _r1=read1, _s=size):
        memory.store(_a(state), _s, _r1(state, memory))
        return None
    return run


def _jmp(outcome):
    def run(state, memory, ov, _o=outcome):
        return _o
    return run


def _cond(cond_fn, taken_outcome, fall_outcome):
    def run(state, memory, ov, _c=cond_fn, _t=taken_outcome, _n=fall_outcome):
        return _t if _c(state.flags) else _n
    return run


def _loop(counter, taken_outcome, fall_outcome):
    idx = counter.index

    def run(state, memory, ov, _i=idx, _t=taken_outcome, _n=fall_outcome):
        value = (state.scalar[_i] - 1) & SCALAR_MASK
        state.scalar[_i] = value
        state.flags.set_from(value)
        return _t if value else _n
    return run


def _run_nop(state, memory, ov):
    return None


def _halt(outcome):
    def run(state, memory, ov, _o=outcome):
        state.halted = True
        return _o
    return run


# --- the decoded micro-op ----------------------------------------------------


class DecodedOp:
    """One static instruction, resolved to a flat executable form.

    ``run(state, memory, operand_values)`` applies the architectural effect
    and returns ``None`` for fall-through or a preallocated
    :class:`ExecOutcome` for control flow (and ``halt``).  Everything the
    issue loop consults per dynamic instance — class, latency, permute and
    hazard sets — is baked into slots so the hot loop never touches the
    :class:`Instruction` property layer.
    """

    __slots__ = (
        "instr", "run", "fall", "is_mmx", "is_branch", "iclass", "is_permute",
        "is_alignment_candidate", "latency", "reads_memory",
        "read_regs", "written_regs", "read_keys", "written_keys",
    )

    def __init__(self, instr: Instruction, run, fall: ExecOutcome) -> None:
        self.instr = instr
        self.run = run
        self.fall = fall
        self.is_mmx = instr.is_mmx
        self.is_branch = instr.is_branch
        self.iclass = instr.iclass
        self.is_permute = instr.is_permute
        self.is_alignment_candidate = instr.is_alignment_candidate
        self.latency = instr.opcode.latency
        self.reads_memory = instr.reads_memory
        # Hazard sets as tuples of architectural registers only: the flags
        # pseudo-register never entered the scoreboard (the pipeline filtered
        # it on every lookup; now it is filtered once, here).
        self.read_regs = tuple(
            r for r in instr.regs_read() if isinstance(r, Register)
        )
        self.written_regs = tuple(
            r for r in instr.regs_written() if isinstance(r, Register)
        )
        # Same registers as small-int scoreboard keys (scalar: index, MMX:
        # 16+index) so the hot loop's dict probes hash in C.
        self.read_keys = tuple(
            16 + r.index if r.is_mmx else r.index for r in self.read_regs
        )
        self.written_keys = tuple(
            16 + r.index if r.is_mmx else r.index for r in self.written_regs
        )


def decode(instr: Instruction, program: Program, pc: int) -> DecodedOp:
    """Resolve one static instruction at index *pc* into a :class:`DecodedOp`.

    Branch targets are looked up in *program*'s label map here, once, so an
    undefined label surfaces at first execution (``Program.validate`` catches
    it earlier still).  Packed-op handlers bind to the simd backend active
    at decode time.
    """
    sem = instr.opcode.sem
    width = instr.opcode.width
    operands = instr.operands
    fall = ExecOutcome(next_pc=pc + 1)

    if sem in _PACKED_BINARY:
        backend = simd.active_backend()
        run = _packed2_w(
            getattr(backend, sem), width,
            _make_reader(operands[0]), _make_reader(operands[1]),
            _make_writer(operands[0]),
        )
    elif sem in _PACKED_BINARY_NOWIDTH:
        backend = simd.active_backend()
        run = _packed2(
            getattr(backend, sem),
            _make_reader(operands[0]), _make_reader(operands[1]),
            _make_writer(operands[0]),
        )
    elif sem in _MINMAX:
        name, signed = _MINMAX[sem]
        run = _packed2_minmax(
            getattr(simd.active_backend(), name), width, signed,
            _make_reader(operands[0]), _make_reader(operands[1]),
            _make_writer(operands[0]),
        )
    elif sem in _SHIFTS:
        run = _packed2_w(
            getattr(simd.active_backend(), sem), width,
            _make_reader(operands[0]), _make_reader(operands[1]),
            _make_writer(operands[0]),
        )
    elif sem == "vperm":
        run = _vperm(
            _make_reader(operands[0]), _make_reader(operands[1]),
            _make_reader(operands[2]), _make_writer(operands[0]),
        )
    elif sem == "pshufw":
        selector = None
        if isinstance(operands[2], Imm):
            order = operands[2].value & 0xFF
            selector = [(order >> (2 * i)) & 3 for i in range(4)]
        run = _pshufw(
            getattr(simd.active_backend(), "permute_word"),
            _make_reader(operands[1]), _make_reader(operands[2]),
            selector, _make_writer(operands[0]),
        )
    elif sem == "movq":
        run = _movq(_make_reader(operands[1]), _make_writer(operands[0]))
    elif sem == "movd":
        run = _movd(_make_reader(operands[1], size=4), operands[0])
    elif sem == "mov":
        run = _mov(operands[0], _make_reader(operands[1], size=4))
    elif sem in _SCALAR_BINOPS:
        run = _scalar_binop(
            _SCALAR_BINOPS[sem], operands[0], _make_reader(operands[1], size=4)
        )
    elif sem in ("shl", "shr", "sar"):
        run = _scalar_shift(sem, operands[0], _make_reader(operands[1]))
    elif sem == "cmp":
        run = _cmp(_make_reader(operands[0]), _make_reader(operands[1], size=4))
    elif sem in ("inc", "dec", "neg"):
        run = _inc_dec_neg(sem, operands[0])
    elif sem == "lea":
        run = _lea(operands[0], operands[1])
    elif sem in _LOAD_SIZES:
        size, signed = _LOAD_SIZES[sem]
        run = _load(operands[0], operands[1], size, signed)
    elif sem in _STORE_SIZES:
        run = _store(operands[0], operands[1], _STORE_SIZES[sem])
    elif sem == "jmp":
        target = program.target(operands[0].name)
        run = _jmp(ExecOutcome(next_pc=target, is_branch=True, taken=True, target=target))
    elif sem in _CONDITIONS:
        target = program.target(operands[0].name)
        run = _cond(
            _CONDITIONS[sem],
            ExecOutcome(next_pc=target, is_branch=True, taken=True, target=target),
            ExecOutcome(next_pc=pc + 1, is_branch=True, taken=False, target=target),
        )
    elif sem == "loop":
        target = program.target(operands[1].name)
        run = _loop(
            operands[0],
            ExecOutcome(next_pc=target, is_branch=True, taken=True, target=target),
            ExecOutcome(next_pc=pc + 1, is_branch=True, taken=False, target=target),
        )
    elif sem in ("nop", "emms"):
        run = _run_nop
    elif sem == "halt":
        run = _halt(ExecOutcome(next_pc=pc))
    else:
        raise SimulationError(f"no executor for opcode {instr.name!r}")

    return DecodedOp(instr, run, fall)


def uop_table(program: Program) -> dict[int, DecodedOp]:
    """The per-program decode cache (created on first use).

    Lives on the :class:`Program` so every :class:`Machine` running the same
    program shares one decode, and a rebuilt program starts empty.  Entries
    are validated by instruction identity before use.
    """
    cache = program.__dict__.get("_uop_cache")
    if cache is None:
        cache = {}
        program._uop_cache = cache
    return cache


def cold_decode(
    uops: dict[int, DecodedOp], program: Program, pc: int,
    instr: Instruction, stale: DecodedOp | None,
) -> DecodedOp:
    """Decode-and-fill for a cache miss; maintains the program's uop stats.

    Every consumer of :func:`uop_table` routes its miss path through here,
    so ``decodes`` (first sight of a pc) and ``rebuilds`` (a cached entry
    failed identity revalidation — the instruction list was edited in
    place) stay accurate without touching the hot hit path.
    """
    uop = decode(instr, program, pc)
    uops[pc] = uop
    stats = program.__dict__.get("_uop_stats")
    if stats is None:
        stats = {"decodes": 0, "rebuilds": 0}
        program._uop_stats = stats
    if stale is None:
        stats["decodes"] += 1
    else:
        stats["rebuilds"] += 1
    return uop


def uop_cache_stats(program: Program) -> dict:
    """Lifetime decode-cache counters for *program* (all zero before use).

    ``decodes`` counts first-sight misses, ``rebuilds`` counts
    identity-revalidation misses, ``cached_entries`` is the table's current
    size.  Dynamic hits are derived by the observers that know the issue
    count (``hits = issues - misses``); see ``repro profile``.
    """
    stats = program.__dict__.get("_uop_stats")
    cache = program.__dict__.get("_uop_cache")
    return {
        "decodes": stats["decodes"] if stats else 0,
        "rebuilds": stats["rebuilds"] if stats else 0,
        "cached_entries": len(cache) if cache else 0,
    }


def execute(
    instr: Instruction,
    state: MachineState,
    memory: Memory,
    program: Program,
    operand_values: dict[int, int] | None = None,
) -> ExecOutcome:
    """Apply *instr* at ``state.pc`` to *state*/*memory*; return control flow.

    Thin compatibility wrapper over the micro-op cache: decodes (or fetches)
    the :class:`DecodedOp` for ``state.pc``, runs it, and materialises the
    fall-through outcome the closure elides.
    """
    pc = state.pc
    cache = uop_table(program)
    uop = cache.get(pc)
    if uop is None or uop.instr is not instr:
        uop = cold_decode(cache, program, pc, instr, uop)
    result = uop.run(state, memory, operand_values)
    return result if result is not None else uop.fall

"""Functional execution of instructions (architectural state changes only).

The executor is timing-free: the pipeline model decides *when* an instruction
issues, then calls :func:`execute` to apply its architectural effect.  SPU
transparent permutation is supported through ``operand_values`` — a mapping
from operand-slot index to a pre-routed 64-bit value that replaces the
register-file read for that slot (the crossbar sits between the register file
and the functional units, §3, so only *source* values are rerouted; the
destination write is architectural as usual).

Scalar comparisons set zero/sign flags from the 32-bit result; there is no
overflow flag, so signed conditional branches are exact for operand distances
below 2³¹ (always true for the media kernels' loop counters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import simd
from repro.errors import SimulationError
from repro.cpu.memory import Memory
from repro.cpu.state import MachineState
from repro.isa.instructions import Instruction, Program
from repro.isa.operands import Imm, Label, Mem
from repro.isa.registers import SCALAR_MASK, Register


@dataclass(frozen=True, slots=True)
class ExecOutcome:
    """Result of executing one instruction."""

    next_pc: int
    is_branch: bool = False
    taken: bool = False
    target: int | None = None


def effective_address(mem: Mem, state: MachineState) -> int:
    """Compute ``base + index*scale + disp`` from scalar registers."""
    address = state.read(mem.base) + mem.disp
    if mem.index is not None:
        address += state.read(mem.index) * mem.scale
    return address & SCALAR_MASK


def _source_value(
    instr: Instruction,
    slot: int,
    state: MachineState,
    memory: Memory,
    operand_values: dict[int, int] | None,
    size: int = 8,
) -> int:
    """Value of operand *slot* as a source (register, memory or immediate)."""
    if operand_values is not None and slot in operand_values:
        return operand_values[slot]
    operand = instr.operands[slot]
    if isinstance(operand, Register):
        return state.read(operand)
    if isinstance(operand, Imm):
        return operand.value
    if isinstance(operand, Mem):
        return memory.load(effective_address(operand, state), size)
    raise SimulationError(f"operand {operand} cannot be read as a source")


def _write_dest(instr: Instruction, value: int, state: MachineState, memory: Memory,
                size: int = 8) -> None:
    dest = instr.operands[0]
    if isinstance(dest, Register):
        state.write(dest, value)
    elif isinstance(dest, Mem):
        memory.store(effective_address(dest, state), size, value)
    else:
        raise SimulationError(f"operand {dest} cannot be written")


# --- packed dispatch tables --------------------------------------------------

_PACKED_BINARY = {
    "padd": simd.padd,
    "psub": simd.psub,
    "padds": simd.padds,
    "psubs": simd.psubs,
    "paddus": simd.paddus,
    "psubus": simd.psubus,
    "pavg": simd.pavg,
    "pcmpeq": simd.pcmpeq,
    "pcmpgt": simd.pcmpgt,
    "packss": simd.packss,
    "packus": simd.packus,
    "punpckl": simd.punpckl,
    "punpckh": simd.punpckh,
}

_PACKED_BINARY_NOWIDTH = {
    "pand": simd.pand,
    "pandn": simd.pandn,
    "por": simd.por,
    "pxor": simd.pxor,
    "pmullw": simd.pmullw,
    "pmulhw": simd.pmulhw,
    "pmulhuw": simd.pmulhuw,
    "pmaddwd": simd.pmaddwd,
    "pmuludq": simd.pmuludq,
}

_MINMAX = {
    "pmins": (simd.pmin, True),
    "pmaxs": (simd.pmax, True),
    "pminu": (simd.pmin, False),
    "pmaxu": (simd.pmax, False),
}

_SCALAR_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    # imul keeps the low 32 bits; signedness is irrelevant modulo 2^32.
    "imul": lambda a, b: a * b,
}

_CONDITIONS = {
    "jz": lambda f: f.zero,
    "jnz": lambda f: not f.zero,
    "js": lambda f: f.sign,
    "jns": lambda f: not f.sign,
    "jl": lambda f: f.sign,
    "jge": lambda f: not f.sign,
    "jle": lambda f: f.zero or f.sign,
    "jg": lambda f: not (f.zero or f.sign),
}

_LOAD_SIZES = {"ldw": (4, False), "ldh": (2, False), "ldhs": (2, True), "ldb": (1, False)}
_STORE_SIZES = {"stw": 4, "sth": 2, "stb": 1}


def execute(
    instr: Instruction,
    state: MachineState,
    memory: Memory,
    program: Program,
    operand_values: dict[int, int] | None = None,
) -> ExecOutcome:
    """Apply *instr* to *state*/*memory*; return control-flow outcome."""
    sem = instr.opcode.sem
    width = instr.opcode.width
    pc = state.pc
    fall_through = ExecOutcome(next_pc=pc + 1)

    # --- MMX packed two-operand forms -----------------------------------
    if sem in _PACKED_BINARY:
        a = _source_value(instr, 0, state, memory, operand_values)
        b = _source_value(instr, 1, state, memory, operand_values)
        _write_dest(instr, _PACKED_BINARY[sem](a, b, width), state, memory)
        return fall_through
    if sem in _PACKED_BINARY_NOWIDTH:
        a = _source_value(instr, 0, state, memory, operand_values)
        b = _source_value(instr, 1, state, memory, operand_values)
        _write_dest(instr, _PACKED_BINARY_NOWIDTH[sem](a, b), state, memory)
        return fall_through
    if sem in _MINMAX:
        fn, signed = _MINMAX[sem]
        a = _source_value(instr, 0, state, memory, operand_values)
        b = _source_value(instr, 1, state, memory, operand_values)
        _write_dest(instr, fn(a, b, width, signed=signed), state, memory)
        return fall_through

    # --- MMX shifts -------------------------------------------------------
    if sem in ("psll", "psrl", "psra"):
        value = _source_value(instr, 0, state, memory, operand_values)
        count = _source_value(instr, 1, state, memory, operand_values)
        fn = {"psll": simd.psll, "psrl": simd.psrl, "psra": simd.psra}[sem]
        _write_dest(instr, fn(value, count, width), state, memory)
        return fall_through

    if sem == "vperm":
        dst_val = _source_value(instr, 0, state, memory, operand_values)
        src_val = _source_value(instr, 1, state, memory, operand_values)
        control = _source_value(instr, 2, state, memory, operand_values) & 0xFFFFFFFF
        pool = dst_val.to_bytes(8, "little") + src_val.to_bytes(8, "little")
        out = bytes(pool[(control >> (4 * i)) & 0xF] for i in range(8))
        _write_dest(instr, int.from_bytes(out, "little"), state, memory)
        return fall_through

    if sem == "pshufw":
        src = _source_value(instr, 1, state, memory, operand_values)
        order = _source_value(instr, 2, state, memory, operand_values) & 0xFF
        selector = [(order >> (2 * i)) & 3 for i in range(4)]
        _write_dest(instr, simd.permute_word(src, selector, 16), state, memory)
        return fall_through

    # --- MMX moves --------------------------------------------------------
    if sem == "movq":
        value = _source_value(instr, 1, state, memory, operand_values)
        _write_dest(instr, value, state, memory)
        return fall_through
    if sem == "movd":
        value = _source_value(instr, 1, state, memory, operand_values, size=4)
        dest = instr.operands[0]
        if isinstance(dest, Register) and dest.is_mmx:
            state.write(dest, value & 0xFFFFFFFF)  # zero-extends to 64 bits
        else:
            _write_dest(instr, value & 0xFFFFFFFF, state, memory, size=4)
        return fall_through

    # --- scalar ALU -------------------------------------------------------
    if sem == "mov":
        state.write(instr.operands[0], _source_value(instr, 1, state, memory, None, size=4))
        return fall_through
    if sem in _SCALAR_BINOPS:
        a = state.read(instr.operands[0])
        b = _source_value(instr, 1, state, memory, None, size=4)
        result = _SCALAR_BINOPS[sem](a, b) & SCALAR_MASK
        state.write(instr.operands[0], result)
        state.flags.set_from(result)
        return fall_through
    if sem in ("shl", "shr", "sar"):
        a = state.read(instr.operands[0])
        count = _source_value(instr, 1, state, memory, None) & 31
        if sem == "shl":
            result = (a << count) & SCALAR_MASK
        elif sem == "shr":
            result = a >> count
        else:
            signed = a - (1 << 32) if a >> 31 else a
            result = (signed >> count) & SCALAR_MASK
        state.write(instr.operands[0], result)
        state.flags.set_from(result)
        return fall_through
    if sem == "cmp":
        a = state.read(instr.operands[0])
        b = _source_value(instr, 1, state, memory, None, size=4) & SCALAR_MASK
        state.flags.set_from(a - b)
        return fall_through
    if sem in ("inc", "dec", "neg"):
        a = state.read(instr.operands[0])
        result = {"inc": a + 1, "dec": a - 1, "neg": -a}[sem] & SCALAR_MASK
        state.write(instr.operands[0], result)
        state.flags.set_from(result)
        return fall_through
    if sem == "lea":
        state.write(instr.operands[0], effective_address(instr.operands[1], state))
        return fall_through

    # --- loads / stores ----------------------------------------------------
    if sem in _LOAD_SIZES:
        size, signed = _LOAD_SIZES[sem]
        address = effective_address(instr.operands[1], state)
        value = memory.load_signed(address, size) if signed else memory.load(address, size)
        state.write(instr.operands[0], value)
        return fall_through
    if sem in _STORE_SIZES:
        size = _STORE_SIZES[sem]
        address = effective_address(instr.operands[0], state)
        memory.store(address, size, state.read(instr.operands[1]))
        return fall_through

    # --- control flow -------------------------------------------------------
    if sem == "jmp":
        target = program.target(instr.operands[0].name)
        return ExecOutcome(next_pc=target, is_branch=True, taken=True, target=target)
    if sem in _CONDITIONS:
        target = program.target(instr.operands[0].name)
        taken = _CONDITIONS[sem](state.flags)
        return ExecOutcome(
            next_pc=target if taken else pc + 1, is_branch=True, taken=taken, target=target
        )
    if sem == "loop":
        counter: Register = instr.operands[0]
        value = (state.read(counter) - 1) & SCALAR_MASK
        state.write(counter, value)
        state.flags.set_from(value)
        target = program.target(instr.operands[1].name)
        taken = value != 0
        return ExecOutcome(
            next_pc=target if taken else pc + 1, is_branch=True, taken=taken, target=target
        )

    # --- system --------------------------------------------------------------
    if sem in ("nop", "emms"):
        return fall_through
    if sem == "halt":
        state.halted = True
        return ExecOutcome(next_pc=pc)

    raise SimulationError(f"no executor for opcode {instr.name!r}")

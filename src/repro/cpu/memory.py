"""Flat byte-addressable memory with typed accessors and MMIO hooks.

The evaluation assumes code and data resident in L1 (§5.2.1), so every access
costs one cycle; the memory model therefore concentrates on correctness:
bounds checking, little-endian typed loads/stores, and NumPy bulk transfer
helpers used by the kernel workload generators.

A memory-mapped I/O window can be registered (the SPU control registers are
memory mapped, §3); loads/stores inside a window are delegated to the device.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.errors import MemoryFault


class MMIODevice(Protocol):
    """Device interface for a memory-mapped window."""

    def mmio_load(self, offset: int, size: int) -> int: ...

    def mmio_store(self, offset: int, size: int, value: int) -> None: ...


class Memory:
    """Byte-addressable little-endian memory of fixed size."""

    def __init__(self, size: int = 1 << 20, require_alignment: bool = False) -> None:
        if size <= 0:
            raise MemoryFault(0, size, "memory size must be positive")
        self._data = np.zeros(size, dtype=np.uint8)
        self._windows: list[tuple[int, int, MMIODevice]] = []
        #: When True, multi-byte accesses must be naturally aligned — a
        #: misaligned packed load/store raises :class:`MemoryFault` (strict)
        #: or degrades to a no-op issue (see ResilienceMode.DEGRADE).  Off by
        #: default: MMX tolerates unaligned movq, and the paper's kernels
        #: assume it.
        self.require_alignment = require_alignment

    @property
    def size(self) -> int:
        return len(self._data)

    # ---- MMIO -----------------------------------------------------------

    def map_device(self, base: int, length: int, device: MMIODevice) -> None:
        """Register *device* over ``[base, base+length)``.

        The window may extend beyond physical memory (device-only addresses);
        overlapping windows are rejected.
        """
        if length <= 0 or base < 0:
            raise MemoryFault(base, length, "bad MMIO window")
        for other_base, other_len, _ in self._windows:
            if base < other_base + other_len and other_base < base + length:
                raise MemoryFault(base, length, "overlapping MMIO window")
        self._windows.append((base, length, device))

    def _window_at(self, address: int) -> tuple[int, MMIODevice] | None:
        for base, length, device in self._windows:
            if base <= address < base + length:
                return base, device
        return None

    # ---- typed access ---------------------------------------------------

    def _check(self, address: int, size: int) -> None:
        if address < 0 or address + size > len(self._data):
            raise MemoryFault(address, size)
        if self.require_alignment and size > 1 and address % size:
            raise MemoryFault(address, size, "misaligned access")

    def load(self, address: int, size: int) -> int:
        """Load *size* bytes (1/2/4/8) little-endian, unsigned."""
        window = self._window_at(address)
        if window is not None:
            base, device = window
            return device.mmio_load(address - base, size)
        self._check(address, size)
        return int.from_bytes(self._data[address : address + size].tobytes(), "little")

    def store(self, address: int, size: int, value: int) -> None:
        """Store the low *size* bytes of *value*, little-endian."""
        window = self._window_at(address)
        if window is not None:
            base, device = window
            device.mmio_store(address - base, size, value & ((1 << (8 * size)) - 1))
            return
        self._check(address, size)
        raw = (int(value) & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        self._data[address : address + size] = np.frombuffer(raw, dtype=np.uint8)

    def load_signed(self, address: int, size: int) -> int:
        value = self.load(address, size)
        half = 1 << (8 * size - 1)
        return value - (1 << (8 * size)) if value >= half else value

    # ---- bulk helpers ---------------------------------------------------

    def write_array(self, address: int, values, dtype) -> int:
        """Write a NumPy-convertible array at *address*; returns bytes written."""
        arr = np.asarray(values, dtype=dtype)
        raw = arr.tobytes()
        self._check(address, len(raw))
        self._data[address : address + len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        return len(raw)

    def read_array(self, address: int, count: int, dtype) -> np.ndarray:
        """Read *count* elements of *dtype* starting at *address*."""
        itemsize = np.dtype(dtype).itemsize
        self._check(address, count * itemsize)
        raw = self._data[address : address + count * itemsize].tobytes()
        return np.frombuffer(raw, dtype=dtype).copy()

    def fill(self, address: int, length: int, byte: int = 0) -> None:
        """Fill ``[address, address+length)`` with *byte*."""
        self._check(address, length)
        self._data[address : address + length] = byte & 0xFF

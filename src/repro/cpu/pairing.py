"""U/V dual-issue pairing rules of the Pentium MMX (§2 of the paper).

Published constraints modeled here:

* both pipes execute arithmetic and logic instructions;
* only one multiply instruction may issue per cycle;
* only one shift/pack/permutation instruction may issue per cycle;
* the U pipe performs all memory accesses (so the second instruction of a
  pair may not touch memory);
* the two instructions must not write the same destination register;
* no read-after-write or write-after-read register dependence may exist
  between the pair;
* a branch pairs only as the *second* instruction (it ends the issue group).

Condition flags are exempt from the cross-pipe dependence checks: the real
Pentium special-cases ``cmp``+``jcc`` pairing, which the paper's kernels rely
on for zero-overhead-looking loop ends.
"""

from __future__ import annotations

from repro.isa.instructions import FLAGS, Instruction
from repro.isa.opcodes import InstrClass


def _regs_only(regs: frozenset) -> frozenset:
    """Drop the flags pseudo-register from a hazard set."""
    return frozenset(r for r in regs if r is not FLAGS)


def can_pair(u: Instruction, v: Instruction) -> tuple[bool, str]:
    """Can *u* (U pipe) and *v* (V pipe) issue in the same cycle?

    Returns ``(True, "")`` or ``(False, reason)`` with a diagnostic reason
    used by the pairing-statistics ablation.
    """
    if u.is_branch:
        return False, "branch ends the issue group"
    if u.iclass is InstrClass.SYS or v.iclass is InstrClass.SYS:
        return False, "system instructions issue alone"
    if "V" not in v.opcode.pipes:
        return False, f"{v.name} restricted to the U pipe"
    if v.accesses_memory:
        return False, "memory access requires the U pipe"
    if u.iclass is InstrClass.MMX_MUL and v.iclass is InstrClass.MMX_MUL:
        return False, "only one multiply per cycle"
    if u.iclass is InstrClass.MMX_SHIFT and v.iclass is InstrClass.MMX_SHIFT:
        return False, "only one shift/pack instruction per cycle"

    u_reads = _regs_only(u.regs_read())
    u_writes = _regs_only(u.regs_written())
    v_reads = _regs_only(v.regs_read())
    v_writes = _regs_only(v.regs_written())

    if u_writes & v_writes:
        return False, "same destination register"
    if u_writes & v_reads:
        return False, "read-after-write between pipes"
    if u_reads & v_writes:
        return False, "write-after-read between pipes"
    return True, ""

"""In-order dual-issue cycle model and the top-level :class:`Machine`.

The timing model implements the machine the paper evaluates against (§2,
§5.2.1): an in-order processor whose MMX unit issues up to two instructions
per cycle into the U and V pipes under the published pairing rules, with
three-cycle multiplies, single-cycle everything else, and L1-resident code
and data.  Out-of-order execution is deliberately absent — "most vector
architectures are in-order machines, as out-of-order execution would not
improve ILP beyond vectorization" (§5.2.1).

An SPU can be attached (:mod:`repro.core.integration`); when active it
reroutes the source operands of each dynamic MMX instruction through the
crossbar and advances its decoupled controller — the pipeline only asks for
the routed values, keeping this module independent of the SPU internals.

Telemetry flows through :attr:`Machine.bus` (:mod:`repro.obs.events`): the
run loop publishes ``run_start``, ``issue``, ``stall``, ``branch`` and
``run_end`` events, each guarded by a subscriber-list emptiness test so an
unobserved run pays no event-construction cost.  (The legacy single-slot
``Machine.on_issue`` hook shim has been removed after its deprecation
window; subscribe to the bus instead.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import ReproError, RunnerInterrupted, SimulationError
from repro.resilience import ResilienceMode
from repro.cpu.branch import BranchPredictor, make_predictor
from repro.cpu.executor import (
    DecodedOp,
    ExecOutcome,
    cold_decode,
    decode,
    uop_table,
)
from repro.cpu.memory import Memory
from repro.cpu.pairing import can_pair
from repro.cpu.state import MachineState
from repro.cpu.stats import RunStats
from repro.isa.instructions import Instruction, Program
from repro.isa.registers import Register
from repro.obs.events import (
    BranchEvent,
    DegradeEvent,
    EventBus,
    FaultEvent,
    IssueEvent,
    RunEndEvent,
    RunStartEvent,
    StallEvent,
)


class SPUAttachment(Protocol):
    """What the pipeline needs from an attached SPU."""

    @property
    def active(self) -> bool:
        """True while the controller is running (GO set, not in idle state)."""
        ...

    def routes_for(self, instr: Instruction, state: MachineState) -> dict[int, int] | None:
        """Routed source-operand values for one dynamic instruction.

        Called exactly once per issued instruction in program order (the
        controller's counters count *all* dynamic loop instructions, §4);
        advances the decoupled controller.  Returns ``None`` when inactive,
        for non-MMX instructions, or when the state routes straight through.
        """
        ...


@dataclass
class PipelineConfig:
    """Timing-model parameters."""

    #: Cycles lost on a mispredicted branch (Pentium-class resolve depth).
    mispredict_penalty: int = 4
    #: Model the extra pipeline stage added for the SPU interconnect
    #: (§5.1.1): one extra fill cycle and +1 mispredict penalty.
    extra_stage: bool = False
    #: 2 = U+V pairing (default); 1 = single issue (pairing ablation).
    issue_width: int = 2
    #: Load-to-use latency in cycles.  1 models the paper's "code is assumed
    #: to reside in L1 cache" setting (§5.2.1); larger values model L1
    #: misses for the memory-sensitivity ablation.
    memory_latency: int = 1
    #: Upper bound on simulated cycles before aborting as a runaway.
    max_cycles: int = 200_000_000


class Machine:
    """A simulated Pentium-MMX-class processor running one program."""

    def __init__(
        self,
        program: Program,
        memory: Memory | None = None,
        predictor: BranchPredictor | str = "bimodal",
        config: PipelineConfig | None = None,
        spu: SPUAttachment | None = None,
        resilience: ResilienceMode | str | None = None,
    ) -> None:
        self.program = program
        #: Failure posture (see :mod:`repro.resilience`): STRICT raises on
        #: any fault, DEGRADE absorbs recoverable ones (emitting ``fault``/
        #: ``degrade`` events), HALT fail-stops the run cleanly.
        self.resilience = ResilienceMode.parse(resilience)
        self.memory = memory if memory is not None else Memory()
        self.predictor = (
            make_predictor(predictor) if isinstance(predictor, str) else predictor
        )
        self.config = config if config is not None else PipelineConfig()
        self.spu = spu
        self.state = MachineState()
        #: Telemetry: every observer attaches here (see repro.obs.events).
        #: With no subscribers the per-issue cost is one emptiness test.
        self.bus = EventBus()
        # Pairing decisions depend only on the two static instructions; the
        # program never changes under a machine, so memoize per pc pair.
        self._pair_cache: dict[tuple[int, int], tuple[bool, str]] = {}

    # ---- helpers ---------------------------------------------------------

    def reset(self) -> None:
        """Clear architectural state and predictor history (memory persists)."""
        self.state = MachineState()
        self.predictor.reset()

    @staticmethod
    def _ready_cycle(instr: Instruction, reg_ready: dict[Register, int]) -> int:
        ready = 0
        for reg in instr.regs_read():
            if isinstance(reg, Register):
                ready = max(ready, reg_ready.get(reg, 0))
        return ready

    def _spu_routes(self, instr: Instruction) -> dict[int, int] | None:
        if self.spu is None:
            return None
        return self.spu.routes_for(instr, self.state)

    def _uop_at(self, pc: int) -> DecodedOp:
        """Fetch (decoding on first sight) the micro-op for *pc*.

        Entries are validated by instruction identity, so a program whose
        instruction list was edited in place is re-decoded transparently.
        """
        program = self.program
        instr = program.instructions[pc]
        uops = uop_table(program)
        uop = uops.get(pc)
        if uop is None or uop.instr is not instr:
            uop = cold_decode(uops, program, pc, instr, uop)
        return uop

    def _issue(
        self,
        instr: Instruction,
        cycle: int,
        reg_ready: dict[Register, int],
        stats: RunStats,
        pipe: str = "U",
    ) -> ExecOutcome:
        """Issue by bare instruction (compatibility path; the run loop issues
        decoded micro-ops directly via :meth:`_issue_uop`)."""
        uop = self._uop_at(self.state.pc)
        if uop.instr is not instr:
            uop = decode(instr, self.program, self.state.pc)
        outcome = self._issue_uop(uop, cycle, reg_ready, stats, pipe)
        stats.by_class[uop.iclass] += 1
        if uop.is_permute:
            stats.permutes += 1
        if uop.is_alignment_candidate:
            stats.alignment_candidates += 1
        return outcome if outcome is not None else uop.fall

    def _issue_uop(
        self,
        uop: DecodedOp,
        cycle: int,
        reg_ready: dict[int, int],
        stats: RunStats,
        pipe: str = "U",
    ) -> ExecOutcome | None:
        """Issue one decoded micro-op; returns ``None`` for a fall-through.

        Event order and architectural effects are bit-identical to the
        pre-decode issue path: SPU routing, execution, dynamic count,
        ``issue`` event, then scoreboard update.  Per-class/permute counts
        are *not* bumped here — the run loop accumulates them per pc and
        folds them into :class:`RunStats` at run exit (see
        :meth:`_fold_issue_counts`); only the live ``instructions`` counter
        (the event sequence number) advances per issue.
        """
        instr = uop.instr
        spu = self.spu
        routes = spu.routes_for(instr, self.state) if spu is not None else None
        if routes is not None:
            stats.spu_routed += 1
        outcome = uop.run(self.state, self.memory, routes)
        stats.instructions += 1
        bus = self.bus
        if bus.issue:
            bus.dispatch(
                "issue",
                IssueEvent(
                    seq=stats.instructions - 1,
                    cycle=cycle,
                    pc=self.state.pc,
                    instr=instr,
                    pipe=pipe,
                    routed=routes is not None,
                ),
            )
        latency = uop.latency
        if uop.reads_memory and latency < self.config.memory_latency:
            latency = self.config.memory_latency
        for key in uop.written_keys:
            reg_ready[key] = cycle + latency
        return outcome

    @staticmethod
    def _fold_issue_counts(
        stats: RunStats,
        uops: dict[int, DecodedOp],
        issue_counts: dict[int, int],
    ) -> None:
        """Fold deferred per-pc issue counts into the class/permute stats.

        Equivalent to having called ``RunStats.record_issue`` per dynamic
        issue (minus the live ``instructions`` counter, which the issue path
        maintains), but pays the Counter/enum hashing once per *static*
        instruction instead of once per dynamic instance.
        """
        by_class = stats.by_class
        for pc, count in issue_counts.items():
            uop = uops[pc]
            by_class[uop.iclass] += count
            if uop.is_permute:
                stats.permutes += count
            if uop.is_alignment_candidate:
                stats.alignment_candidates += count

    def _issue_fault_action(self, error: ReproError, pc: int, stats: RunStats) -> str:
        """Policy + telemetry for a fault raised while issuing an instruction.

        STRICT re-raises *error*.  Otherwise a ``fault`` event is emitted and
        the returned action is ``"halt"`` (fail-stop the run cleanly) or
        ``"drop"`` (degrade: the faulting issue executes as a no-op, with a
        ``degrade`` event).
        """
        if self.resilience is ResilienceMode.STRICT:
            raise error
        stats.faults += 1
        bus = self.bus
        if bus.fault:
            bus.dispatch(
                "fault",
                FaultEvent(
                    component="machine",
                    kind=type(error).__name__,
                    detail=str(error),
                    pc=pc,
                    error=error,
                ),
            )
        if self.resilience is ResilienceMode.HALT:
            return "halt"
        stats.degraded_issues += 1
        if bus.degrade:
            bus.dispatch(
                "degrade",
                DegradeEvent(
                    component="machine",
                    action="drop_instruction",
                    detail=str(error),
                    pc=pc,
                ),
            )
        return "drop"

    def _abort(self, stats: RunStats, cycle: int, kind: str, message: str) -> None:
        """Watchdog/runaway exit: telemetry + a clean :class:`SimulationError`.

        The partial :class:`RunStats` are finalized, ``fault`` and ``run_end``
        events fire, and the raised error carries the stats as ``.stats`` so
        harnesses can report how far the run got.
        """
        stats.cycles = cycle
        stats.finished = False
        bus = self.bus
        if bus.fault:
            bus.dispatch("fault", FaultEvent(component="machine", kind=kind, detail=message))
        if bus.run_end:
            bus.dispatch(
                "run_end",
                RunEndEvent(
                    program=self.program.name,
                    cycles=stats.cycles,
                    instructions=stats.instructions,
                    finished=False,
                ),
            )
        error = SimulationError(message)
        error.stats = stats
        raise error

    def _branch_cost(self, instr: Instruction, pc: int, outcome: ExecOutcome,
                     stats: RunStats, cycle: int = 0) -> int:
        """Predictor bookkeeping; returns extra cycles for a mispredict."""
        stats.branches += 1
        if instr.opcode.sem == "jmp":
            predicted = True  # static target, BTB hit assumed
        else:
            predicted = self.predictor.predict(pc, outcome.target if outcome.target is not None else pc)
            self.predictor.update(pc, outcome.target or pc, outcome.taken)
        penalty = 0
        if predicted != outcome.taken:
            stats.mispredicts += 1
            penalty = self.config.mispredict_penalty + (1 if self.config.extra_stage else 0)
            stats.mispredict_cycles += penalty
        bus = self.bus
        if bus.branch:
            bus.dispatch(
                "branch",
                BranchEvent(
                    cycle=cycle,
                    pc=pc,
                    taken=outcome.taken,
                    predicted_taken=predicted,
                    mispredict=predicted != outcome.taken,
                    penalty=penalty,
                ),
            )
        return penalty

    # ---- main loop ---------------------------------------------------------

    def run(self, max_cycles: int | None = None) -> RunStats:
        """Execute until ``halt``; returns the run's :class:`RunStats`.

        Raises :class:`SimulationError` on runaway execution (cycle budget
        exhausted) or on falling off the end of the program.
        """
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        stats = RunStats()
        state = self.state
        program = self.program
        bus = self.bus
        instructions = program.instructions
        size = len(instructions)
        uops = uop_table(program)
        uops_get = uops.get
        reg_ready: dict[int, int] = {}
        reg_ready_get = reg_ready.get
        #: pc -> dynamic issues; folded into by_class/permute stats at exit.
        issue_counts: dict[int, int] = {}
        issue_counts_get = issue_counts.get
        pair_cache = self._pair_cache
        dual_issue = self.config.issue_width >= 2
        # Pipeline fill for the added SPU interconnect stage (§5.1.1) — the
        # timeline's initial "drain" cycles.
        fill = 1 if self.config.extra_stage else 0
        stats.drain_cycles = fill
        cycle = fill
        pc = state.pc
        if bus.run_start:
            bus.dispatch("run_start", RunStartEvent(program=program.name, fill_cycles=fill))

        while not state.halted:
            if cycle > limit:
                self._fold_issue_counts(stats, uops, issue_counts)
                self._abort(
                    stats, cycle, "watchdog",
                    f"cycle budget exceeded ({limit}) in {program.name!r} at pc={pc}",
                )
            if not 0 <= pc < size:
                self._fold_issue_counts(stats, uops, issue_counts)
                self._abort(
                    stats, cycle, "runaway_pc",
                    f"fell off program {program.name!r} (pc={pc}); missing halt?",
                )
            instr = instructions[pc]
            uop = uops_get(pc)
            if uop is None or uop.instr is not instr:
                uop = cold_decode(uops, program, pc, instr, uop)

            ready = 0
            for key in uop.read_keys:
                when = reg_ready_get(key, 0)
                if when > ready:
                    ready = when
            if ready > cycle:
                if bus.stall:
                    bus.dispatch("stall", StallEvent(cycle=cycle, pc=pc, cycles=ready - cycle))
                stats.stall_cycles += ready - cycle
                cycle = ready

            state.pc = pc
            try:
                outcome = self._issue_uop(uop, cycle, reg_ready, stats)
            except RunnerInterrupted:
                raise  # campaign-level stop, not a simulated fault
            except ReproError as error:
                action = self._issue_fault_action(error, pc, stats)
                cycle += 1
                stats.solo_cycles += 1
                if action == "halt":
                    break
                pc += 1
                continue
            issue_counts[pc] = issue_counts_get(pc, 0) + 1
            mmx_busy = uop.is_mmx

            if state.halted:
                cycle += 1
                stats.solo_cycles += 1
                break

            if outcome is not None:  # only control flow returns an outcome
                cycle += 1 + self._branch_cost(instr, pc, outcome, stats, cycle)
                stats.solo_cycles += 1
                if mmx_busy:
                    stats.mmx_busy_cycles += 1
                pc = outcome.next_pc
                continue

            pc += 1
            paired = False
            if dual_issue and pc < size:
                follower = instructions[pc]
                fuop = uops_get(pc)
                if fuop is None or fuop.instr is not follower:
                    fuop = cold_decode(uops, program, pc, follower, fuop)
                key = (state.pc, pc)
                cached = pair_cache.get(key)
                if cached is None:
                    cached = can_pair(instr, follower)
                    pair_cache[key] = cached
                ok, reason = cached
                if ok:
                    ready = 0
                    for key in fuop.read_keys:
                        when = reg_ready_get(key, 0)
                        if when > ready:
                            ready = when
                    if ready <= cycle:
                        state.pc = pc
                        try:
                            outcome2 = self._issue_uop(fuop, cycle, reg_ready, stats, "V")
                        except RunnerInterrupted:
                            raise  # campaign-level stop, not a simulated fault
                        except ReproError as error:
                            action = self._issue_fault_action(error, pc, stats)
                            cycle += 1
                            stats.solo_cycles += 1
                            if mmx_busy:
                                stats.mmx_busy_cycles += 1
                            if action == "halt":
                                break
                            pc += 1
                            continue
                        issue_counts[pc] = issue_counts_get(pc, 0) + 1
                        paired = True
                        mmx_busy = mmx_busy or fuop.is_mmx
                        extra = 0
                        if outcome2 is not None:
                            if outcome2.is_branch:
                                extra = self._branch_cost(follower, pc, outcome2, stats, cycle)
                            pc = outcome2.next_pc
                        else:
                            pc += 1
                        cycle += 1 + extra
                    else:
                        stats.pair_fail_reasons["operands not ready"] += 1
                        cycle += 1
                else:
                    stats.pair_fail_reasons[reason] += 1
                    cycle += 1
            else:
                cycle += 1

            if paired:
                stats.pair_cycles += 1
            else:
                stats.solo_cycles += 1
            if mmx_busy:
                stats.mmx_busy_cycles += 1

        self._fold_issue_counts(stats, uops, issue_counts)
        stats.cycles = cycle
        stats.finished = state.halted
        if bus.run_end:
            bus.dispatch(
                "run_end",
                RunEndEvent(
                    program=program.name,
                    cycles=stats.cycles,
                    instructions=stats.instructions,
                    finished=stats.finished,
                ),
            )
        return stats

    def step_functional(self) -> Instruction | None:
        """Execute exactly one instruction (no timing); None when halted.

        Useful for debuggers and breakpoint-style tests; the SPU still routes
        operands and advances, so stepping through an SPU loop is faithful.
        """
        state = self.state
        if state.halted:
            return None
        if not 0 <= state.pc < len(self.program):
            raise SimulationError(
                f"fell off program {self.program.name!r} (pc={state.pc}); missing halt?"
            )
        uop = self._uop_at(state.pc)
        instr = uop.instr
        routes = self._spu_routes(instr)
        outcome = uop.run(state, self.memory, routes)
        bus = self.bus
        if bus.issue:
            # Functional stepping has no timing model: cycle/seq are -1.
            bus.dispatch(
                "issue",
                IssueEvent(
                    seq=-1,
                    cycle=-1,
                    pc=state.pc,
                    instr=instr,
                    pipe="U",
                    routed=routes is not None,
                ),
            )
        state.pc = outcome.next_pc if outcome is not None else state.pc + 1
        return instr

    def run_functional(self, max_instructions: int = 100_000_000) -> int:
        """Execute with no timing model (fast path for correctness checks).

        Returns the dynamic instruction count.  The SPU still routes operands
        so SPU-variant kernels stay functionally correct.
        """
        state = self.state
        program = self.program
        executed = 0
        while not state.halted:
            if executed > max_instructions:
                raise SimulationError(
                    f"instruction budget exceeded in {program.name!r} at pc={state.pc}"
                )
            if not 0 <= state.pc < len(program):
                raise SimulationError(
                    f"fell off program {program.name!r} (pc={state.pc}); missing halt?"
                )
            uop = self._uop_at(state.pc)
            routes = self._spu_routes(uop.instr)
            outcome = uop.run(state, self.memory, routes)
            executed += 1
            state.pc = outcome.next_pc if outcome is not None else state.pc + 1
        return executed

"""In-order dual-issue cycle model and the top-level :class:`Machine`.

The timing model implements the machine the paper evaluates against (§2,
§5.2.1): an in-order processor whose MMX unit issues up to two instructions
per cycle into the U and V pipes under the published pairing rules, with
three-cycle multiplies, single-cycle everything else, and L1-resident code
and data.  Out-of-order execution is deliberately absent — "most vector
architectures are in-order machines, as out-of-order execution would not
improve ILP beyond vectorization" (§5.2.1).

An SPU can be attached (:mod:`repro.core.integration`); when active it
reroutes the source operands of each dynamic MMX instruction through the
crossbar and advances its decoupled controller — the pipeline only asks for
the routed values, keeping this module independent of the SPU internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import SimulationError
from repro.cpu.branch import BranchPredictor, make_predictor
from repro.cpu.executor import ExecOutcome, execute
from repro.cpu.memory import Memory
from repro.cpu.pairing import can_pair
from repro.cpu.state import MachineState
from repro.cpu.stats import RunStats
from repro.isa.instructions import Instruction, Program
from repro.isa.registers import Register


class SPUAttachment(Protocol):
    """What the pipeline needs from an attached SPU."""

    @property
    def active(self) -> bool:
        """True while the controller is running (GO set, not in idle state)."""
        ...

    def routes_for(self, instr: Instruction, state: MachineState) -> dict[int, int] | None:
        """Routed source-operand values for one dynamic instruction.

        Called exactly once per issued instruction in program order (the
        controller's counters count *all* dynamic loop instructions, §4);
        advances the decoupled controller.  Returns ``None`` when inactive,
        for non-MMX instructions, or when the state routes straight through.
        """
        ...


@dataclass
class PipelineConfig:
    """Timing-model parameters."""

    #: Cycles lost on a mispredicted branch (Pentium-class resolve depth).
    mispredict_penalty: int = 4
    #: Model the extra pipeline stage added for the SPU interconnect
    #: (§5.1.1): one extra fill cycle and +1 mispredict penalty.
    extra_stage: bool = False
    #: 2 = U+V pairing (default); 1 = single issue (pairing ablation).
    issue_width: int = 2
    #: Load-to-use latency in cycles.  1 models the paper's "code is assumed
    #: to reside in L1 cache" setting (§5.2.1); larger values model L1
    #: misses for the memory-sensitivity ablation.
    memory_latency: int = 1
    #: Upper bound on simulated cycles before aborting as a runaway.
    max_cycles: int = 200_000_000


class Machine:
    """A simulated Pentium-MMX-class processor running one program."""

    def __init__(
        self,
        program: Program,
        memory: Memory | None = None,
        predictor: BranchPredictor | str = "bimodal",
        config: PipelineConfig | None = None,
        spu: SPUAttachment | None = None,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.predictor = (
            make_predictor(predictor) if isinstance(predictor, str) else predictor
        )
        self.config = config if config is not None else PipelineConfig()
        self.spu = spu
        self.state = MachineState()
        #: Optional observer called with each issued instruction, in program
        #: order (used by the profiler; None = no tracing overhead).
        self.on_issue = None
        # Pairing decisions depend only on the two static instructions; the
        # program never changes under a machine, so memoize per pc pair.
        self._pair_cache: dict[tuple[int, int], tuple[bool, str]] = {}

    # ---- helpers ---------------------------------------------------------

    def reset(self) -> None:
        """Clear architectural state and predictor history (memory persists)."""
        self.state = MachineState()
        self.predictor.reset()

    @staticmethod
    def _ready_cycle(instr: Instruction, reg_ready: dict[Register, int]) -> int:
        ready = 0
        for reg in instr.regs_read():
            if isinstance(reg, Register):
                ready = max(ready, reg_ready.get(reg, 0))
        return ready

    def _spu_routes(self, instr: Instruction) -> dict[int, int] | None:
        if self.spu is None:
            return None
        return self.spu.routes_for(instr, self.state)

    def _issue(
        self,
        instr: Instruction,
        cycle: int,
        reg_ready: dict[Register, int],
        stats: RunStats,
    ) -> ExecOutcome:
        routes = self._spu_routes(instr)
        if routes is not None:
            stats.spu_routed += 1
        outcome = execute(instr, self.state, self.memory, self.program, routes)
        stats.record_issue(instr)
        if self.on_issue is not None:
            self.on_issue(instr)
        latency = instr.opcode.latency
        if instr.reads_memory:
            latency = max(latency, self.config.memory_latency)
        for reg in instr.regs_written():
            if isinstance(reg, Register):
                reg_ready[reg] = cycle + latency
        return outcome

    def _branch_cost(self, instr: Instruction, pc: int, outcome: ExecOutcome,
                     stats: RunStats) -> int:
        """Predictor bookkeeping; returns extra cycles for a mispredict."""
        stats.branches += 1
        if instr.opcode.sem == "jmp":
            predicted = True  # static target, BTB hit assumed
        else:
            predicted = self.predictor.predict(pc, outcome.target if outcome.target is not None else pc)
            self.predictor.update(pc, outcome.target or pc, outcome.taken)
        if predicted == outcome.taken:
            return 0
        stats.mispredicts += 1
        penalty = self.config.mispredict_penalty + (1 if self.config.extra_stage else 0)
        stats.mispredict_cycles += penalty
        return penalty

    # ---- main loop ---------------------------------------------------------

    def run(self, max_cycles: int | None = None) -> RunStats:
        """Execute until ``halt``; returns the run's :class:`RunStats`.

        Raises :class:`SimulationError` on runaway execution (cycle budget
        exhausted) or on falling off the end of the program.
        """
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        stats = RunStats()
        state = self.state
        program = self.program
        reg_ready: dict[Register, int] = {}
        # Pipeline fill for the added SPU interconnect stage (§5.1.1).
        cycle = 1 if self.config.extra_stage else 0
        pc = state.pc

        while not state.halted:
            if cycle > limit:
                stats.cycles = cycle
                raise SimulationError(
                    f"cycle budget exceeded ({limit}) in {program.name!r} at pc={pc}"
                )
            if not 0 <= pc < len(program):
                raise SimulationError(
                    f"fell off program {program.name!r} (pc={pc}); missing halt?"
                )
            instr = program[pc]

            ready = self._ready_cycle(instr, reg_ready)
            if ready > cycle:
                stats.stall_cycles += ready - cycle
                cycle = ready

            state.pc = pc
            outcome = self._issue(instr, cycle, reg_ready, stats)
            mmx_busy = instr.is_mmx

            if state.halted:
                cycle += 1
                stats.solo_cycles += 1
                break

            if outcome.is_branch:
                cycle += 1 + self._branch_cost(instr, pc, outcome, stats)
                stats.solo_cycles += 1
                if mmx_busy:
                    stats.mmx_busy_cycles += 1
                pc = outcome.next_pc
                continue

            pc = outcome.next_pc
            paired = False
            if self.config.issue_width >= 2 and 0 <= pc < len(program):
                follower = program[pc]
                key = (state.pc, pc)
                cached = self._pair_cache.get(key)
                if cached is None:
                    cached = can_pair(instr, follower)
                    self._pair_cache[key] = cached
                ok, reason = cached
                if ok:
                    if self._ready_cycle(follower, reg_ready) <= cycle:
                        state.pc = pc
                        outcome2 = self._issue(follower, cycle, reg_ready, stats)
                        paired = True
                        mmx_busy = mmx_busy or follower.is_mmx
                        extra = 0
                        if outcome2.is_branch:
                            extra = self._branch_cost(follower, pc, outcome2, stats)
                        pc = outcome2.next_pc
                        cycle += 1 + extra
                    else:
                        stats.pair_fail_reasons["operands not ready"] += 1
                        cycle += 1
                else:
                    stats.pair_fail_reasons[reason] += 1
                    cycle += 1
            else:
                cycle += 1

            if paired:
                stats.pair_cycles += 1
            else:
                stats.solo_cycles += 1
            if mmx_busy:
                stats.mmx_busy_cycles += 1

        stats.cycles = cycle
        stats.finished = state.halted
        return stats

    def step_functional(self) -> Instruction | None:
        """Execute exactly one instruction (no timing); None when halted.

        Useful for debuggers and breakpoint-style tests; the SPU still routes
        operands and advances, so stepping through an SPU loop is faithful.
        """
        state = self.state
        if state.halted:
            return None
        if not 0 <= state.pc < len(self.program):
            raise SimulationError(
                f"fell off program {self.program.name!r} (pc={state.pc}); missing halt?"
            )
        instr = self.program[state.pc]
        routes = self._spu_routes(instr)
        outcome = execute(instr, state, self.memory, self.program, routes)
        if self.on_issue is not None:
            self.on_issue(instr)
        state.pc = outcome.next_pc
        return instr

    def run_functional(self, max_instructions: int = 100_000_000) -> int:
        """Execute with no timing model (fast path for correctness checks).

        Returns the dynamic instruction count.  The SPU still routes operands
        so SPU-variant kernels stay functionally correct.
        """
        state = self.state
        program = self.program
        executed = 0
        while not state.halted:
            if executed > max_instructions:
                raise SimulationError(
                    f"instruction budget exceeded in {program.name!r} at pc={state.pc}"
                )
            if not 0 <= state.pc < len(program):
                raise SimulationError(
                    f"fell off program {program.name!r} (pc={state.pc}); missing halt?"
                )
            instr = program[state.pc]
            routes = self._spu_routes(instr)
            outcome = execute(instr, state, self.memory, program, routes)
            executed += 1
            state.pc = outcome.next_pc
        return executed

"""Architectural machine state: register files, flags, program counter."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa.registers import (
    NUM_MMX_REGS,
    NUM_SCALAR_REGS,
    SCALAR_MASK,
    RegClass,
    Register,
)
from repro.simd import lanes


@dataclass
class Flags:
    """Scalar condition flags produced by integer ALU operations."""

    zero: bool = False
    sign: bool = False

    def set_from(self, value: int) -> None:
        """Update from a 32-bit two's-complement result."""
        value &= SCALAR_MASK
        self.zero = value == 0
        self.sign = bool(value >> 31)


@dataclass
class MachineState:
    """Registers, flags and control state of the simulated processor."""

    mmx: list[int] = field(default_factory=lambda: [0] * NUM_MMX_REGS)
    scalar: list[int] = field(default_factory=lambda: [0] * NUM_SCALAR_REGS)
    flags: Flags = field(default_factory=Flags)
    #: Index of the next instruction in the program (not a byte address).
    pc: int = 0
    halted: bool = False

    def read(self, reg: Register) -> int:
        """Architectural read of *reg* (MMX 64-bit, scalar 32-bit unsigned)."""
        if reg.cls is RegClass.MMX:
            return self.mmx[reg.index]
        return self.scalar[reg.index]

    def write(self, reg: Register, value: int) -> None:
        """Architectural write (values truncated to the register width)."""
        if reg.cls is RegClass.MMX:
            self.mmx[reg.index] = int(value) & lanes.WORD_MASK
        else:
            self.scalar[reg.index] = int(value) & SCALAR_MASK

    def read_signed(self, reg: Register) -> int:
        """Scalar register as a signed 32-bit value."""
        if reg.cls is RegClass.MMX:
            raise SimulationError("signed scalar read of an MMX register")
        value = self.scalar[reg.index]
        return value - (1 << 32) if value >> 31 else value

    def mmx_file_bytes(self) -> bytes:
        """The 64 bytes of MM0..MM7, little-endian within each register.

        This is exactly the content of the paper's unified 512-bit SPU
        register (§3): byte ``8*i + j`` is byte ``j`` of ``MMi``.
        """
        return b"".join(lanes.bytes_of(v) for v in self.mmx)

    def snapshot(self) -> "MachineState":
        """Deep copy for checkpoint/compare in tests."""
        return MachineState(
            mmx=list(self.mmx),
            scalar=list(self.scalar),
            flags=Flags(zero=self.flags.zero, sign=self.flags.sign),
            pc=self.pc,
            halted=self.halted,
        )

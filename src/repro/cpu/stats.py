"""Execution statistics collected by the pipeline model.

These counters feed every experiment: Fig. 9 (cycles, MMX-busy fraction),
Table 2 (branches, mispredicts), Table 3 (permute counts, off-load counts)
and the pairing/predictor ablations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.opcodes import InstrClass


@dataclass
class RunStats:
    """Counters for one simulated run."""

    cycles: int = 0
    instructions: int = 0
    #: Dynamic instruction count per functional class.
    by_class: Counter = field(default_factory=Counter)
    #: Dynamic count of unconditional permutation instructions (pack/unpack).
    permutes: int = 0
    #: Dynamic count of alignment candidates (permutes + movq mm,mm + byte shifts).
    alignment_candidates: int = 0
    branches: int = 0
    mispredicts: int = 0
    mispredict_cycles: int = 0
    #: Cycles lost waiting on not-yet-ready source registers.
    stall_cycles: int = 0
    #: Pipeline-fill cycles charged before the first issue (the SPU's extra
    #: interconnect stage, §5.1.1) — the attribution timeline's "drain".
    drain_cycles: int = 0
    #: Issue cycles in which two instructions paired / one issued alone.
    pair_cycles: int = 0
    solo_cycles: int = 0
    #: Issue cycles in which at least one MMX instruction executed.
    mmx_busy_cycles: int = 0
    #: Dynamic MMX instructions whose operands were routed by the SPU.
    spu_routed: int = 0
    #: Reasons pairing failed (for the pairing ablation).
    pair_fail_reasons: Counter = field(default_factory=Counter)
    #: Faults the machine observed while issuing (non-STRICT modes only;
    #: STRICT raises before anything is counted).
    faults: int = 0
    #: Faulting issues absorbed as no-ops (DEGRADE mode).
    degraded_issues: int = 0
    finished: bool = False

    @property
    def mmx_instructions(self) -> int:
        """Dynamic MMX-class instruction count."""
        return sum(
            count for iclass, count in self.by_class.items() if iclass.is_mmx
        )

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 when nothing ran)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        """Mispredicted branches as a fraction of executed branches."""
        return self.mispredicts / self.branches if self.branches else 0.0

    @property
    def mmx_busy_fraction(self) -> float:
        """Fraction of cycles with the MMX engine executing (Fig. 9 hash)."""
        return self.mmx_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def permute_fraction_of_mmx(self) -> float:
        """Permutation instructions as a fraction of MMX instructions."""
        mmx = self.mmx_instructions
        return self.permutes / mmx if mmx else 0.0

    @property
    def permute_fraction_of_total(self) -> float:
        """Permutation instructions as a fraction of all instructions."""
        return self.permutes / self.instructions if self.instructions else 0.0

    @property
    def attributed_cycles(self) -> int:
        """Sum of the per-stage cycle attribution categories.

        Invariant: equals :attr:`cycles` for every completed run — each
        simulated cycle is exactly one of pair-issue, solo-issue, data-stall,
        mispredict-bubble or drain (see ``docs/observability.md``).
        """
        return (
            self.pair_cycles
            + self.solo_cycles
            + self.stall_cycles
            + self.mispredict_cycles
            + self.drain_cycles
        )

    def attribution(self) -> dict[str, int]:
        """Cycles per attribution category (keys match obs.CATEGORIES)."""
        return {
            "pair_issue": self.pair_cycles,
            "solo_issue": self.solo_cycles,
            "data_stall": self.stall_cycles,
            "mispredict_bubble": self.mispredict_cycles,
            "drain": self.drain_cycles,
        }

    def record_issue(self, instr) -> None:
        """Account one issued instruction (class, permute and MMX counts)."""
        self.instructions += 1
        self.by_class[instr.iclass] += 1
        if instr.is_permute:
            self.permutes += 1
        if instr.is_alignment_candidate:
            self.alignment_candidates += 1

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        """Rebuild counters from an :meth:`as_dict` export.

        Derived ratios are recomputed from the counters; the one lossy field
        is :attr:`pair_fail_reasons`, which ``as_dict`` does not export and
        comes back empty.  Used by the campaign runner to reconstruct
        :class:`RunStats` from worker results and resume journals.
        """
        return cls(
            cycles=data["cycles"],
            instructions=data["instructions"],
            by_class=Counter({
                InstrClass(name): count
                for name, count in data.get("by_class", {}).items()
            }),
            permutes=data["permutes"],
            alignment_candidates=data["alignment_candidates"],
            branches=data["branches"],
            mispredicts=data["mispredicts"],
            mispredict_cycles=data["mispredict_cycles"],
            stall_cycles=data["stall_cycles"],
            drain_cycles=data["drain_cycles"],
            pair_cycles=data["pair_cycles"],
            solo_cycles=data["solo_cycles"],
            mmx_busy_cycles=data["mmx_busy_cycles"],
            spu_routed=data["spu_routed"],
            faults=data.get("faults", 0),
            degraded_issues=data.get("degraded_issues", 0),
            finished=data.get("finished", False),
        )

    def as_dict(self) -> dict:
        """Flat dictionary (JSON-friendly) of all counters and ratios."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "mmx_instructions": self.mmx_instructions,
            "permutes": self.permutes,
            "alignment_candidates": self.alignment_candidates,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "mispredict_rate": self.mispredict_rate,
            "mispredict_cycles": self.mispredict_cycles,
            "stall_cycles": self.stall_cycles,
            "drain_cycles": self.drain_cycles,
            "pair_cycles": self.pair_cycles,
            "solo_cycles": self.solo_cycles,
            "cycle_attribution": self.attribution(),
            "mmx_busy_cycles": self.mmx_busy_cycles,
            "mmx_busy_fraction": self.mmx_busy_fraction,
            "ipc": self.ipc,
            "spu_routed": self.spu_routed,
            "by_class": {iclass.value: count for iclass, count in self.by_class.items()},
            "faults": self.faults,
            "degraded_issues": self.degraded_issues,
            "finished": self.finished,
        }

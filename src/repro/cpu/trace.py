"""Execution tracing: a human-readable issue-by-issue pipeline log.

Subscribes to the machine's event bus (``issue`` topic) and records, per
issued instruction: the dynamic index, issue cycle, pipe, program counter,
rendered instruction, and whether the SPU routed its operands.  Intended for
debugging kernels and the off-load pass — the textual rendering reads like a
pipeline listing, and :func:`repro.obs.export.trace_records` turns a trace
into JSONL.

Routed-ness comes straight from the pipeline's :class:`IssueEvent` (the
pipeline knows whether the SPU returned routes for the instruction), not
from the fragile counter-delta inference the pre-bus tracer used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.pipeline import Machine
from repro.cpu.stats import RunStats


@dataclass(frozen=True)
class TraceEntry:
    """One issued instruction."""

    seq: int
    pc: int
    text: str
    is_mmx: bool
    routed: bool
    cycle: int = -1
    pipe: str = "U"

    def render(self) -> str:
        flag = "R" if self.routed else ("M" if self.is_mmx else " ")
        return f"{self.seq:6d}  pc={self.pc:4d} [{flag}] {self.text}"


@dataclass
class Trace:
    """A recorded run: entries plus the final statistics."""

    entries: list[TraceEntry] = field(default_factory=list)
    stats: RunStats | None = None

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def routed_entries(self) -> list[TraceEntry]:
        return [entry for entry in self.entries if entry.routed]

    def render(self, limit: int | None = None) -> str:
        """The trace as text (``limit`` caps the line count)."""
        lines = ["   seq      pc      instruction"]
        entries = self.entries if limit is None else self.entries[:limit]
        lines += [entry.render() for entry in entries]
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... {len(self.entries) - limit} more")
        return "\n".join(lines)


def trace_run(machine: Machine, max_cycles: int | None = None,
              max_entries: int = 100_000) -> Trace:
    """Run *machine* to completion while recording a :class:`Trace`.

    A plain bus subscription: any number of other observers (profiler,
    timeline, trace profiler) can watch the same run, and they all detach
    independently.
    """
    trace = Trace()

    def on_issue(event) -> None:
        if len(trace.entries) < max_entries:
            trace.entries.append(
                TraceEntry(
                    seq=event.seq,
                    pc=event.pc,
                    text=str(event.instr).split(": ")[-1],
                    is_mmx=event.instr.is_mmx,
                    routed=event.routed,
                    cycle=event.cycle,
                    pipe=event.pipe,
                )
            )

    unsubscribe = machine.bus.subscribe("issue", on_issue)
    try:
        trace.stats = machine.run(max_cycles=max_cycles)
    finally:
        unsubscribe()
    return trace

"""Execution tracing: a human-readable issue-by-issue pipeline log.

Wraps a :class:`~repro.cpu.pipeline.Machine` run and records, per issued
instruction: the dynamic index, program counter, rendered instruction, and
whether the SPU routed its operands.  Intended for debugging kernels and the
off-load pass — the textual rendering reads like a pipeline listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.pipeline import Machine
from repro.cpu.stats import RunStats


@dataclass(frozen=True)
class TraceEntry:
    """One issued instruction."""

    seq: int
    pc: int
    text: str
    is_mmx: bool
    routed: bool

    def render(self) -> str:
        flag = "R" if self.routed else ("M" if self.is_mmx else " ")
        return f"{self.seq:6d}  pc={self.pc:4d} [{flag}] {self.text}"


@dataclass
class Trace:
    """A recorded run: entries plus the final statistics."""

    entries: list[TraceEntry] = field(default_factory=list)
    stats: RunStats | None = None

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def routed_entries(self) -> list[TraceEntry]:
        return [entry for entry in self.entries if entry.routed]

    def render(self, limit: int | None = None) -> str:
        """The trace as text (``limit`` caps the line count)."""
        lines = ["   seq      pc      instruction"]
        entries = self.entries if limit is None else self.entries[:limit]
        lines += [entry.render() for entry in entries]
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... {len(self.entries) - limit} more")
        return "\n".join(lines)


def trace_run(machine: Machine, max_cycles: int | None = None,
              max_entries: int = 100_000) -> Trace:
    """Run *machine* to completion while recording a :class:`Trace`.

    Routed-ness is derived from the attached SPU's routed-instruction
    counter delta, so the trace needs no changes to the pipeline.
    """
    trace = Trace()
    previous_hook = machine.on_issue
    spu = machine.spu

    def hook(instr) -> None:
        routed = False
        if spu is not None and hasattr(spu, "stats"):
            routed = spu.stats.routed_instructions > hook.last_routed
            hook.last_routed = spu.stats.routed_instructions
        if len(trace.entries) < max_entries:
            trace.entries.append(
                TraceEntry(
                    seq=len(trace.entries),
                    pc=machine.state.pc,
                    text=str(instr).split(": ")[-1],
                    is_mmx=instr.is_mmx,
                    routed=routed,
                )
            )
        if previous_hook is not None:
            previous_hook(instr)

    hook.last_routed = spu.stats.routed_instructions if spu is not None and hasattr(spu, "stats") else 0
    machine.on_issue = hook
    try:
        trace.stats = machine.run(max_cycles=max_cycles)
    finally:
        machine.on_issue = previous_hook
    return trace

"""Exception hierarchy for the SPU reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still
distinguishing assembler errors from simulator or SPU-programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class LaneError(ReproError):
    """Invalid sub-word lane width or lane vector (see :mod:`repro.simd`)."""


class AssemblerError(ReproError):
    """Syntactically or semantically invalid assembly input."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Instruction cannot be encoded to / decoded from its binary form."""


class SimulationError(ReproError):
    """The simulated machine entered an invalid state."""


class MemoryFault(SimulationError):
    """Out-of-range or misaligned memory access."""

    def __init__(self, address: int, size: int = 1, reason: str = "out of range") -> None:
        self.address = address
        self.size = size
        super().__init__(f"memory fault at {address:#x} (size {size}): {reason}")


class PairingViolation(SimulationError):
    """An instruction pair violated the published U/V pairing rules.

    Raised only in strict mode; the scheduler normally serializes instead.
    """


class SPUProgramError(ReproError):
    """Invalid SPU controller program (bad state index, counter, or route)."""


class RouteError(SPUProgramError):
    """A permutation route is illegal for the selected interconnect config."""


class KernelError(ReproError):
    """A media kernel was configured with unsupported parameters."""


class ConfigurationError(ReproError):
    """Invalid hardware-model or experiment configuration."""


class RunnerError(ReproError):
    """The campaign runner (:mod:`repro.runner`) hit an unrecoverable
    orchestration problem: an incompatible resume journal, an unknown task
    kind, or a phase whose required tasks terminally failed."""


class ServeError(ReproError):
    """The simulation job service (:mod:`repro.serve`) hit an internal
    problem: an unusable journal directory, a malformed persisted job record,
    or a store inconsistency."""


class ServeRejected(ServeError):
    """Admission control refused a job submission.

    Maps to HTTP 429; carries the back-off hint the client should honor as
    :attr:`retry_after_s` and the machine-readable :attr:`reason`
    (``"queue_full"`` or ``"draining"``)."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(
            f"job rejected ({reason}); retry after {retry_after_s:.1f}s"
        )


class RunnerInterrupted(RunnerError):
    """The runner stopped early on request (``--interrupt-after``).

    The journal on disk is crash-consistent at this point, so the same
    invocation with ``--resume`` picks up where it left off.  Carries the
    terminal results recorded so far as :attr:`results`.
    """

    def __init__(self, message: str, results: dict | None = None) -> None:
        self.results = results or {}
        super().__init__(message)

"""Experiment harness: paper data, cached suite, table/figure runners."""

from repro.experiments import paper_data
from repro.experiments.suite import (
    ExperimentSuite,
    comparison_from_record,
    comparison_record,
    run_suite_cell,
)
from repro.experiments.tables import Experiment, fig9, table1, table2, table3

__all__ = [
    "paper_data",
    "ExperimentSuite",
    "comparison_from_record",
    "comparison_record",
    "run_suite_cell",
    "Experiment",
    "fig9",
    "table1",
    "table2",
    "table3",
]

from repro.experiments.report import generate_report, write_report

__all__ += ["generate_report", "write_report"]

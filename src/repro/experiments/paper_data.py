"""Published numbers from the paper, transcribed for side-by-side comparison.

Sources: Table 1 (SPU configurations), Table 2 (branch statistics), Table 3
(decoupled-control overlap) and the §5.2.2 prose for Figure 9's anchors
(whose exact bar heights are not given numerically in the text).
"""

from __future__ import annotations

#: Table 1 — Delay and area for four SPU configurations, 0.25µm 2-metal CMOS.
TABLE1 = {
    "A": {
        "interconnect_area_mm2": 8.14,
        "interconnect_delay_ns": 3.14,
        "control_memory_mm2": 1.35,
        "description": "64x32 crossbar with 8-bit ports",
    },
    "B": {
        "interconnect_area_mm2": 4.07,
        "interconnect_delay_ns": 2.29,
        "control_memory_mm2": 1.1,
        "description": "32x32 crossbar with 8-bit ports",
    },
    "C": {
        "interconnect_area_mm2": 4.72,
        "interconnect_delay_ns": 1.95,
        "control_memory_mm2": 0.6,
        "description": "32x16 crossbar with 16-bit ports",
    },
    "D": {
        "interconnect_area_mm2": 2.36,
        "interconnect_delay_ns": 0.95,
        "control_memory_mm2": 0.5,
        "description": "16 x16 crossbar with 16-bit ports",
    },
}

#: §5.1.1 — die-area claim context.
PENTIUM3_DIE_MM2 = 106.0
DIE_FRACTION_CLAIM = 0.01  # "less than 1% area overhead"

#: Table 2 — Branch statistics for the media algorithms on the MMX.
TABLE2 = {
    "FIR12": {
        "clocks": 1.51e10,
        "branches": 2.56e9,
        "missed": 1.43e7,
        "missed_pct": 0.00094,
        "description": "12 TAP, 150 Sample blocks",
    },
    "FIR22": {
        "clocks": 2.13e10,
        "branches": 2.05e9,
        "missed": 1.00e7,
        "missed_pct": 0.00046,
        "description": "22 TAP, 150 Sample blocks",
    },
    "IIR": {
        "clocks": 1.45e10,
        "branches": 8.98e8,
        "missed": 1.11e7,
        "missed_pct": 0.00076,
        "description": "10 TAP, 150 Sample blocks",
    },
    "FFT1024": {
        "clocks": 1.27e10,
        "branches": 4.19e8,
        "missed": 8.42e6,
        "missed_pct": 0.00066,
        "description": "1024 Sample, Radix 2 Real FFT",
    },
    "FFT128": {
        "clocks": 1.19e10,
        "branches": 7.41e8,
        "missed": 1.87e7,
        "missed_pct": 0.00157,
        "description": "128 Sample, Radix 2 Real FFT",
    },
    "DCT": {
        "clocks": 1.69e10,
        "branches": 2.75e8,
        "missed": 1.84e4,
        "missed_pct": 0.0,
        "description": "8x8 Kernel",
    },
    "MatrixMultiply": {
        "clocks": 1.78e10,
        "branches": 3.53e8,
        "missed": 2.24e4,
        "missed_pct": 0.0,
        "description": "16x16 16b Matrix Multiply",
    },
    "MatrixTranspose": {
        "clocks": 1.88e10,
        "branches": 1.57e9,
        "missed": 7.73e6,
        "missed_pct": 0.00041,
        "description": "16x16 Matrix Transpose, 16-bits",
    },
}

#: Table 3 — Cycles overlapped through decoupled control.
TABLE3 = {
    "FIR12": {"cycles_overlapped": 1.12e9, "pct_mmx_instr": 0.1120, "pct_total_instr": 0.0742},
    "FIR22": {"cycles_overlapped": 1.38e9, "pct_mmx_instr": 0.1140, "pct_total_instr": 0.0648},
    "IIR": {"cycles_overlapped": 9.11e8, "pct_mmx_instr": 0.9363, "pct_total_instr": 0.0628},
    "FFT1024": {"cycles_overlapped": 4.98e8, "pct_mmx_instr": 0.5030, "pct_total_instr": 0.0392},
    "FFT128": {"cycles_overlapped": 4.26e8, "pct_mmx_instr": 0.4808, "pct_total_instr": 0.0358},
    "DCT": {"cycles_overlapped": 2.83e9, "pct_mmx_instr": 0.2398, "pct_total_instr": 0.1675},
    "MatrixMultiply": {"cycles_overlapped": 2.58e9, "pct_mmx_instr": 0.1870, "pct_total_instr": 0.1449},
    "MatrixTranspose": {"cycles_overlapped": 3.33e9, "pct_mmx_instr": 0.2012, "pct_total_instr": 0.1755},
}

#: Figure 9 anchors from the §5.2.2 prose (exact bar heights are not given):
#: overall speedups range 4-20%; FIR gains "a small eight percent"; the FFT
#: and IIR routines barely move; DCT/matmul/transpose show the big wins.
FIG9_SPEEDUP_RANGE = (1.04, 1.20)
FIG9_FIR_SPEEDUP = 1.08
FIG9_LOW_IMPACT = ("IIR", "FFT1024", "FFT128")
FIG9_HIGH_IMPACT = ("DCT", "MatrixMultiply", "MatrixTranspose")

#: §5.2.4 — off-load summary sentence.
OFFLOAD_PCT_MMX_RANGE = (0.112, 0.9363)
OFFLOAD_PCT_TOTAL_RANGE = (0.0358, 0.1755)

"""Experiment suite: run each benchmark once, derive every table from it.

Tables 2, 3 and Figure 9 all consume the same pair of runs per kernel
(MMX-only and MMX+SPU), so the suite runs and caches them.  ``fast=True``
shrinks the two slowest workloads (FFT1024 → FFT256, full-length otherwise)
for test-time use; benchmarks run the paper-faithful sizes.

:meth:`ExperimentSuite.prefetch` computes the cells on the resilient
campaign runner (:mod:`repro.runner`) instead of serially: one
``suite_cell`` task per kernel, each verifying both variants against the
golden reference and returning the comparison as JSON-friendly data.  A
crashed or hung worker costs a retry, not the suite; a journal makes a long
sweep resumable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cpu import RunStats
from repro.kernels import TABLE2_KERNELS, FFTKernel, Kernel, KernelComparison, make_kernel


def comparison_record(comparison: KernelComparison) -> dict:
    """JSON-friendly form of one comparison (journal/worker payload)."""
    return {
        "name": comparison.name,
        "mmx": comparison.mmx.as_dict(),
        "spu": comparison.spu.as_dict(),
        "removed_permutes": comparison.removed_permutes,
        "mmx_dynamic_permutes": comparison.mmx_dynamic_permutes,
    }


def comparison_from_record(record: dict) -> KernelComparison:
    """Rebuild a :class:`KernelComparison` from :func:`comparison_record`."""
    return KernelComparison(
        name=record["name"],
        mmx=RunStats.from_dict(record["mmx"]),
        spu=RunStats.from_dict(record["spu"]),
        removed_permutes=record["removed_permutes"],
        mmx_dynamic_permutes=record["mmx_dynamic_permutes"],
    )


def run_suite_cell(payload: dict) -> dict:
    """Executor for ``suite_cell`` tasks: verify + compare one kernel.

    Runs each variant once, checks both outputs exactly against the NumPy
    fixed-point reference (the ``repro run`` verification bar) and returns
    the comparison record; ``verified`` is False on any mismatch.
    """
    import numpy as np

    started = time.perf_counter()
    suite = ExperimentSuite(fast=payload.get("fast", False))
    kernel = suite.kernel(payload["kernel"])
    reference = np.asarray(kernel.reference())
    mmx_stats, mmx_out = kernel.run_mmx()
    spu_stats, spu_out = kernel.run_spu()
    verified = all(
        np.asarray(out).shape == reference.shape
        and np.array_equal(np.asarray(out), reference)
        for out in (mmx_out, spu_out)
    )
    comparison = KernelComparison(
        name=kernel.name,
        mmx=mmx_stats,
        spu=spu_stats,
        removed_permutes=kernel.removed_permutes,
        mmx_dynamic_permutes=mmx_stats.permutes,
    )
    record = comparison_record(comparison)
    record["verified"] = verified
    record["duration_s"] = time.perf_counter() - started
    return record


@dataclass
class ExperimentSuite:
    """Cached kernel comparisons for the evaluation experiments."""

    fast: bool = False
    kernel_names: tuple[str, ...] = tuple(TABLE2_KERNELS)
    _kernels: dict[str, Kernel] = field(default_factory=dict)
    _comparisons: dict[str, KernelComparison] = field(default_factory=dict)

    def kernel(self, name: str) -> Kernel:
        if name not in self._kernels:
            if self.fast and name == "FFT1024":
                # keep the FFT1024 row present but at a test-friendly size
                kernel = FFTKernel(n=256)
                kernel.name = "FFT1024"
                self._kernels[name] = kernel
            else:
                self._kernels[name] = make_kernel(name)
        return self._kernels[name]

    def comparison(self, name: str) -> KernelComparison:
        if name not in self._comparisons:
            self._comparisons[name] = self.kernel(name).compare()
        return self._comparisons[name]

    def comparisons(self) -> dict[str, KernelComparison]:
        return {name: self.comparison(name) for name in self.kernel_names}

    def prefetch(self, jobs: int = 1, journal_path=None, bus=None,
                 runner_config=None, tracer=None, progress=None):
        """Warm the comparison cache on the campaign runner; returns it.

        One ``suite_cell`` task per not-yet-cached kernel; with ``jobs >= 2``
        the cells run on the worker pool (timeouts, retries, breaker,
        replacement — see docs/robustness.md), with ``jobs 1`` or an
        unstartable pool they run serially in-process.  *journal_path*
        makes the sweep resumable.  Cells that terminally fail or are
        breaker-skipped stay uncached — a later :meth:`comparison` computes
        them serially — so the suite degrades instead of raising.

        *tracer* records the sweep as a ``campaign:suite`` span tree and
        *progress* gets the runner's live per-slice lines (``repro run
        --spans/--progress``); neither affects the cached comparisons.
        """
        from repro.runner import Journal, Runner, RunnerConfig, TaskSpec

        pending = [name for name in self.kernel_names
                   if name not in self._comparisons]
        config = runner_config or RunnerConfig(jobs=jobs)
        journal = None
        if journal_path is not None:
            fingerprint = {"verb": "suite", "kernels": list(self.kernel_names),
                           "fast": self.fast}
            journal = Journal(journal_path, fingerprint,
                              fsync_every=config.fsync_every)
        root = None
        if tracer is not None:
            root = tracer.begin("campaign:suite", kernels=len(pending),
                                fast=self.fast, jobs=config.jobs)
        runner = Runner(config, bus=bus, journal=journal,
                        tracer=tracer, span_parent=root, progress=progress)
        try:
            results = runner.run([
                TaskSpec(
                    id=f"cell:{name}",
                    kind="suite_cell",
                    payload={"kernel": name, "fast": self.fast},
                    slice=f"{name}/{self.kernel(name).config.name}",
                )
                for name in pending
            ])
        finally:
            if journal is not None:
                journal.close()
        for name in pending:
            result = results[f"cell:{name}"]
            if result.ok:
                self._comparisons[name] = comparison_from_record(result.result)
        # Success only: an interrupt leaves the root open (exports aborted).
        if root is not None:
            tracer.end(root)
        return runner, results

    def verify_all(self) -> None:
        """Bit-exact verification of every kernel in the suite."""
        for name in self.kernel_names:
            self.kernel(name).verify()

    # ---- observability ------------------------------------------------------

    def profile(self, name: str, variants: tuple[str, ...] = ("mmx", "spu")):
        """Schema-versioned profile report for one suite kernel.

        Same document as ``repro profile <name> --json`` (kind
        ``kernel-profile``): instruction mix, cycle attribution and SPU
        controller occupancy per variant.
        """
        from repro.obs.export import kernel_profile_report

        return kernel_profile_report(self.kernel(name), variants)

    def metrics(self, namespace: str = "suite"):
        """Flatten every cached comparison into a :class:`MetricsRegistry`.

        Exports ``<namespace>.<kernel>.{mmx,spu}.*`` counters plus the
        derived speedup, ready for ``envelope("metrics", ...)`` export.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(namespace=namespace)
        for name, comparison in self.comparisons().items():
            registry.observe_stats(f"{name}.mmx", comparison.mmx)
            registry.observe_stats(f"{name}.spu", comparison.spu)
            registry.set(f"{name}.speedup", comparison.speedup, unit="x",
                         help="MMX cycles / MMX+SPU cycles")
            registry.set(f"{name}.removed_permutes", comparison.removed_permutes,
                         help="static permutes off-loaded to the SPU")
        return registry

"""Experiment suite: run each benchmark once, derive every table from it.

Tables 2, 3 and Figure 9 all consume the same pair of runs per kernel
(MMX-only and MMX+SPU), so the suite runs and caches them.  ``fast=True``
shrinks the two slowest workloads (FFT1024 → FFT256, full-length otherwise)
for test-time use; benchmarks run the paper-faithful sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernels import TABLE2_KERNELS, FFTKernel, Kernel, KernelComparison, make_kernel


@dataclass
class ExperimentSuite:
    """Cached kernel comparisons for the evaluation experiments."""

    fast: bool = False
    kernel_names: tuple[str, ...] = tuple(TABLE2_KERNELS)
    _kernels: dict[str, Kernel] = field(default_factory=dict)
    _comparisons: dict[str, KernelComparison] = field(default_factory=dict)

    def kernel(self, name: str) -> Kernel:
        if name not in self._kernels:
            if self.fast and name == "FFT1024":
                # keep the FFT1024 row present but at a test-friendly size
                kernel = FFTKernel(n=256)
                kernel.name = "FFT1024"
                self._kernels[name] = kernel
            else:
                self._kernels[name] = make_kernel(name)
        return self._kernels[name]

    def comparison(self, name: str) -> KernelComparison:
        if name not in self._comparisons:
            self._comparisons[name] = self.kernel(name).compare()
        return self._comparisons[name]

    def comparisons(self) -> dict[str, KernelComparison]:
        return {name: self.comparison(name) for name in self.kernel_names}

    def verify_all(self) -> None:
        """Bit-exact verification of every kernel in the suite."""
        for name in self.kernel_names:
            self.kernel(name).verify()

    # ---- observability ------------------------------------------------------

    def profile(self, name: str, variants: tuple[str, ...] = ("mmx", "spu")):
        """Schema-versioned profile report for one suite kernel.

        Same document as ``repro profile <name> --json`` (kind
        ``kernel-profile``): instruction mix, cycle attribution and SPU
        controller occupancy per variant.
        """
        from repro.obs.export import kernel_profile_report

        return kernel_profile_report(self.kernel(name), variants)

    def metrics(self, namespace: str = "suite"):
        """Flatten every cached comparison into a :class:`MetricsRegistry`.

        Exports ``<namespace>.<kernel>.{mmx,spu}.*`` counters plus the
        derived speedup, ready for ``envelope("metrics", ...)`` export.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(namespace=namespace)
        for name, comparison in self.comparisons().items():
            registry.observe_stats(f"{name}.mmx", comparison.mmx)
            registry.observe_stats(f"{name}.spu", comparison.spu)
            registry.set(f"{name}.speedup", comparison.speedup, unit="x",
                         help="MMX cycles / MMX+SPU cycles")
            registry.set(f"{name}.removed_permutes", comparison.removed_permutes,
                         help="static permutes off-loaded to the SPU")
        return registry

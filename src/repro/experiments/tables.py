"""Experiment runners: regenerate every table and figure of the evaluation.

Each function returns structured rows (model/measured vs published) and a
rendered text table; the benchmarks print these so ``pytest benchmarks/``
reproduces the paper's evaluation section end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import (
    branch_row,
    format_table,
    overlap_row,
    pct,
    ratio,
    scale_to_paper,
    sci,
)
from repro.core import CONFIGS
from repro.experiments import paper_data
from repro.experiments.suite import ExperimentSuite
from repro.hw import spu_cost


@dataclass
class Experiment:
    """A regenerated table/figure: rows plus its rendered comparison."""

    name: str
    headers: list[str]
    rows: list[list[object]]
    text: str


# --- Table 1 -------------------------------------------------------------------


def table1() -> Experiment:
    """Area/delay for SPU configurations A-D (model vs published)."""
    headers = [
        "Config", "Area mm2 (model)", "(paper)", "Delay ns (model)", "(paper)",
        "CtlMem mm2 (model)", "(paper)", "CtlMem bits", "Die % @0.18um",
    ]
    rows = []
    for name, config in CONFIGS.items():
        published = paper_data.TABLE1[name]
        model = spu_cost(config, calibrated=False)
        rows.append([
            name,
            ratio(model.interconnect_area_mm2, 2),
            published["interconnect_area_mm2"],
            ratio(model.interconnect_delay_ns, 2),
            published["interconnect_delay_ns"],
            ratio(model.control_memory_mm2, 2),
            published["control_memory_mm2"],
            model.control_memory_bits,
            pct(model.die_fraction),
        ])
    text = format_table(headers, rows, title="Table 1: SPU configuration area/delay")
    return Experiment("table1", headers, rows, text)


# --- Table 2 ----------------------------------------------------------------------


def table2(suite: ExperimentSuite) -> Experiment:
    """Branch statistics per kernel, scaled to the paper's run lengths."""
    headers = [
        "Algorithm", "Clocks (scaled)", "(paper)", "Branches (scaled)", "(paper)",
        "Missed (scaled)", "(paper)", "Missed% (measured)", "(paper)",
    ]
    rows = []
    for name in suite.kernel_names:
        comparison = suite.comparison(name)
        published = paper_data.TABLE2[name]
        measured = branch_row(name, comparison.mmx, published["description"])
        scaled = scale_to_paper(measured, published["clocks"])
        rows.append([
            name,
            sci(scaled.clocks),
            sci(published["clocks"]),
            sci(scaled.branches),
            sci(published["branches"]),
            sci(scaled.missed),
            sci(published["missed"]),
            pct(measured.missed_pct, 3),
            pct(published["missed_pct"], 3),
        ])
    text = format_table(headers, rows, title="Table 2: branch statistics on the MMX")
    return Experiment("table2", headers, rows, text)


# --- Table 3 --------------------------------------------------------------------------


def table3(suite: ExperimentSuite) -> Experiment:
    """Decoupled-control overlap per kernel."""
    headers = [
        "Algorithm", "CyclesOverlapped", "(paper)", "%MMX instr", "(paper)",
        "%Total instr", "(paper)", "Offload rate",
    ]
    rows = []
    for name in suite.kernel_names:
        comparison = suite.comparison(name)
        published = paper_data.TABLE3[name]
        row = overlap_row(comparison)
        scale = published["cycles_overlapped"] and (
            paper_data.TABLE2[name]["clocks"] / comparison.mmx.cycles
        )
        rows.append([
            name,
            sci(row.cycles_overlapped * scale),
            sci(published["cycles_overlapped"]),
            pct(row.pct_mmx_instr),
            pct(published["pct_mmx_instr"]),
            pct(row.pct_total_instr),
            pct(published["pct_total_instr"]),
            pct(row.offload_rate),
        ])
    text = format_table(headers, rows, title="Table 3: cycles overlapped through decoupled control")
    return Experiment("table3", headers, rows, text)


# --- Figure 9 -----------------------------------------------------------------------------


def fig9(suite: ExperimentSuite) -> Experiment:
    """Cycles executed, MMX vs MMX+SPU, per kernel (the headline result)."""
    headers = [
        "Algorithm", "MMX cycles", "MMX+SPU cycles", "Speedup",
        "MMX busy% (MMX)", "MMX busy% (SPU)", "Instr saved",
    ]
    rows = []
    for name in suite.kernel_names:
        comparison = suite.comparison(name)
        rows.append([
            name,
            comparison.mmx.cycles,
            comparison.spu.cycles,
            ratio(comparison.speedup),
            pct(comparison.mmx.mmx_busy_fraction, 1),
            pct(comparison.spu.mmx_busy_fraction, 1),
            comparison.instructions_saved,
        ])
    text = format_table(
        headers,
        rows,
        title=(
            "Figure 9: cycles on MMX vs MMX+SPU "
            f"(paper: speedups {paper_data.FIG9_SPEEDUP_RANGE[0]:.2f}-"
            f"{paper_data.FIG9_SPEEDUP_RANGE[1]:.2f}, FIR ~{paper_data.FIG9_FIR_SPEEDUP:.2f}, "
            "FFT/IIR flat, DCT/MatMul/Transpose highest)"
        ),
    )
    return Experiment("fig9", headers, rows, text)

"""repro.faults — seeded, deterministic fault injection for the SPU simulator.

The paper's SPU is deployable because its failure posture is explicit: the
idle state (127) disables the unit, the GO bit re-arms it (§4).  This package
stress-tests that posture the way hardware-verification campaigns do: flip
bits in the 512-bit unified register, corrupt control-memory words and
crossbar routes, race the GO bit and skew the zero-overhead loop counters
mid-run, then classify each injection as *masked*, *detected* or
*silently-corrupting* against the kernel's NumPy fixed-point golden
reference.

Everything is driven by declarative :class:`FaultCampaign` specs and a
per-injection ``random.Random(f"{seed}:{index}")`` stream, so a campaign is
bit-identical across runs — ``repro check --faults 100 --seed 7`` twice
yields byte-identical reports.

Entry points:

- :func:`run_check` — the differential self-check harness behind
  ``repro check`` (clean replay of every kernel, optional fault campaign).
- :class:`FaultInjector` — arm one :class:`FaultSpec` on a machine.
- :func:`generate_spec` — the seeded spec generator.

See ``docs/robustness.md`` for the fault taxonomy and report schema.
"""

from repro.faults.spec import (
    FAULT_KINDS,
    FaultCampaign,
    FaultSpec,
    generate_spec,
)
from repro.faults.injector import FaultInjector, clone_spu_program
from repro.faults.campaign import (
    OUTCOMES,
    CheckResult,
    classify_injection,
    run_campaign,
    run_check,
    run_one_injection,
)
from repro.faults.report import check_report, render_check
from repro.faults.parallel import run_check_parallel

__all__ = [
    "FAULT_KINDS",
    "FaultCampaign",
    "FaultSpec",
    "generate_spec",
    "FaultInjector",
    "clone_spu_program",
    "OUTCOMES",
    "CheckResult",
    "classify_injection",
    "run_campaign",
    "run_check",
    "run_check_parallel",
    "run_one_injection",
    "check_report",
    "render_check",
]

"""The differential self-check harness behind ``repro check``.

Two layers:

- the *clean check* replays every registered kernel's MMX and MMX+SPU
  variants against the NumPy fixed-point reference (exact equality, same
  bar as :meth:`repro.kernels.Kernel.verify`), and
- the *fault campaign* re-runs the SPU variant once per injection with a
  :class:`~repro.faults.injector.FaultInjector` armed, then classifies the
  outcome as ``masked`` (output still exact), ``detected`` (an exception,
  a ``fault`` event or a fail-stop flagged the corruption) or ``silent``
  (wrong output with no detection — the dangerous quadrant).

Determinism: kernels run in sorted registry order, injection *i* targets
kernel ``kernels[i % len(kernels)]`` with spec stream ``Random(f"{seed}:{i}")``,
and reports carry no wall-clock data, so the same campaign is bit-identical
across runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError, RunnerInterrupted
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultCampaign, generate_spec
from repro.obs.spans import maybe_span
from repro.resilience import ResilienceMode
from repro.simd import full_validation

#: Injection outcomes, from benign to dangerous.
OUTCOMES = ("masked", "detected", "silent")

#: Bus topics counted per faulty run.
_COUNTED_TOPICS = ("fault", "degrade", "recovery")


@dataclass
class CheckResult:
    """Everything ``repro check`` measured, pre-report."""

    #: Kernel names in run order.
    kernels: tuple[str, ...]
    #: Per-kernel clean differential results (dicts keyed by variant).
    clean: list[dict] = field(default_factory=list)
    #: Per-injection records, in injection order.
    injections: list[dict] = field(default_factory=list)
    #: The campaign that was run, or None for a clean-only check.
    campaign: FaultCampaign | None = None
    #: Opt-in SWAR-vs-reference sample diff (``--swar-check``), or None.
    #: When None the report carries no trace of it, keeping default
    #: exports byte-identical to pre-SWAR baselines.
    swar_check: dict | None = None

    @property
    def clean_ok(self) -> bool:
        """Every variant of every kernel matched the golden reference."""
        return all(
            entry["variants"][variant]["match"]
            for entry in self.clean
            for variant in entry["variants"]
        )

    def outcome_counts(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in self.injections:
            # "skipped" (circuit-breaker degraded slice, parallel runs only)
            # and any future outcome count too, without disturbing the
            # canonical masked/detected/silent key order of healthy runs.
            counts[record["outcome"]] = counts.get(record["outcome"], 0) + 1
        return counts

    def injection_durations(self) -> dict[int, float]:
        """Per-injection wall-clock seconds, by injection index.

        Surfaced for the campaign runner's timeout calibration; deliberately
        absent from :func:`repro.faults.check_report`, which must stay a
        pure function of (kernels, seed, faults, mode).
        """
        return {
            record["index"]: record["duration_s"]
            for record in self.injections
            if record.get("duration_s") is not None
        }


def classify_injection(stats, error, output_matches, event_counts) -> str:
    """Sort one injection into the masked/detected/silent taxonomy.

    An injection is *detected* when anything flagged it: an exception
    escaped, a ``fault`` event fired (degrade-mode absorption still
    detects), or the run fail-stopped short of ``halt``.  Otherwise the
    output decides: exact match → *masked*, mismatch → *silent*.
    """
    if error is not None:
        return "detected"
    if event_counts.get("fault", 0) > 0:
        return "detected"
    if stats is None or not stats.finished:
        return "detected"
    return "masked" if output_matches else "silent"


def _count_events(machine) -> dict[str, int]:
    """Subscribe counters for the fault-related topics; returns the live dict."""
    counts = {topic: 0 for topic in _COUNTED_TOPICS}

    def _bump(event, topic):
        counts[topic] += 1

    for topic in _COUNTED_TOPICS:
        machine.bus.subscribe(topic, lambda event, _t=topic: _bump(event, _t))
    return counts


def _check_output(kernel, machine, reference) -> tuple[bool, int]:
    """Exact comparison against the golden reference: (match, mismatches)."""
    output = np.asarray(kernel.extract(machine))
    if output.shape != reference.shape:
        return False, -1
    if np.array_equal(output, reference):
        return True, 0
    return False, int(np.sum(output != reference))


def _make_kernel(name: str, fast: bool):
    if fast and name == "FFT1024":
        # same shrink ExperimentSuite(fast=True) uses: the row stays present
        # at a test-friendly size
        from repro.kernels.fft import FFTKernel

        kernel = FFTKernel(n=256)
        kernel.name = "FFT1024"
        return kernel
    from repro.kernels import make_kernel

    return make_kernel(name)


def _clean_check(kernel, reference, tracer=None, parent=None) -> dict:
    """Run both variants clean; returns the per-kernel clean record.

    *tracer*/*parent* add ``run:<variant>`` and ``phase:compare`` spans
    (serial ``--spans`` path; the record itself carries no wall-clock).
    """
    variants: dict[str, dict] = {}
    for variant in ("mmx", "spu"):
        machine = kernel.machine(variant)
        with maybe_span(tracer, f"run:{variant}", parent=parent,
                        kernel=kernel.name):
            stats = machine.run()
        with maybe_span(tracer, "phase:compare", parent=parent,
                        kernel=kernel.name, variant=variant):
            match, mismatches = _check_output(kernel, machine, reference)
        variants[variant] = {
            "match": match,
            "mismatching_elements": mismatches,
            "cycles": stats.cycles,
            "instructions": stats.instructions,
        }
    return {"kernel": kernel.name, "config": kernel.config.name,
            "variants": variants}


def run_one_injection(
    campaign: FaultCampaign,
    index: int,
    kernel,
    reference,
    spu_clean: dict,
) -> dict:
    """Execute injection *index* of *campaign* against *kernel*.

    The record is a deterministic function of (campaign, index, kernel) —
    plus a ``duration_s`` wall-clock field, which exists for the parallel
    runner's timeout calibration and is stripped from the byte-stable
    campaign report.  This is the unit of work the campaign runner ships to
    worker processes; the serial loop calls it too, so both paths produce
    identical records by construction.

    *spu_clean* is the kernel's clean SPU-variant record: ``instructions``
    scales the trigger window, ``cycles`` the per-run watchdog.
    """
    started = time.perf_counter()
    _, controller_programs = kernel.spu_programs()
    spec = generate_spec(
        campaign.rng(index),
        campaign.kinds,
        spu_clean["instructions"],
        controller_programs,
        kernel.config,
    )

    machine = kernel.machine("spu", resilience=campaign.resilience)
    injector = FaultInjector(machine, spec)
    event_counts = _count_events(machine)
    watchdog = (
        spu_clean["cycles"] * campaign.watchdog_factor
        + campaign.watchdog_slack
    )
    stats = None
    error: BaseException | None = None
    # Faulty runs execute under full per-op word validation (the hot path
    # skips it, see repro.simd.swar): a corrupted word can then never
    # propagate silently through the data-path model.  All injected words
    # are valid 64-bit values, so this cannot change any outcome — records
    # stay byte-identical to the committed baselines.
    try:
        with full_validation():
            stats = machine.run(max_cycles=watchdog)
    except RunnerInterrupted:
        # Campaign-level stop (signal/cancel), not a simulated fault —
        # recording it would make the outcome depend on signal timing.
        raise
    except ReproError as exc:
        error = exc
        stats = getattr(exc, "stats", None)
    finally:
        injector.detach()

    output_matches = None
    mismatches = None
    if error is None and stats is not None and stats.finished:
        output_matches, mismatches = _check_output(kernel, machine, reference)
    outcome = classify_injection(stats, error, output_matches, event_counts)

    # Static cross-check (lazy import: repro.analysis imports the kernel
    # registry, which must not load when the faults package does): would
    # `repro lint` have flagged this corruption, or does a documented
    # known-silent suppression cover it?
    from repro.analysis.verdict import injection_verdict

    verdict = injection_verdict(kernel, spec)

    controller = machine.spu.controller
    return {
        "index": index,
        "kernel": kernel.name,
        "spec": spec.as_dict(),
        "fired": injector.fired,
        "applied": injector.applied,
        "inject_error": (
            f"{type(injector.apply_error).__name__}: {injector.apply_error}"
            if injector.apply_error is not None else None
        ),
        "outcome": outcome,
        "analysis": verdict,
        "output_matches": output_matches,
        "mismatching_elements": mismatches,
        "events": dict(event_counts),
        "finished": bool(stats.finished) if stats is not None else False,
        "cycles": stats.cycles if stats is not None else None,
        "machine_faults": stats.faults if stats is not None else None,
        "degraded_issues": (
            stats.degraded_issues if stats is not None else None
        ),
        "fault_parks": controller.stats.fault_parks,
        "serialized_operands": machine.spu.stats.serialized_operands,
        "error": f"{type(error).__name__}: {error}" if error else None,
        "duration_s": time.perf_counter() - started,
    }


def run_campaign(
    campaign: FaultCampaign,
    kernels: dict,
    references: dict,
    clean_spu: dict,
    tracer=None,
    slices: dict | None = None,
) -> list[dict]:
    """Execute every injection of *campaign*; returns per-injection records.

    *kernels* maps name → prepared :class:`~repro.kernels.Kernel`,
    *references* maps name → golden output, *clean_spu* maps name → the
    clean SPU-variant record (its ``instructions`` scales the trigger
    window, its ``cycles`` the per-run watchdog).  *slices* maps name →
    open slice span; each injection then gets a ``task:inject:<i>`` span
    under its kernel's slice.
    """
    names = sorted(kernels)
    slices = slices or {}
    records: list[dict] = []
    for index in range(campaign.faults):
        name = names[index % len(names)]
        with maybe_span(tracer, f"task:inject:{index}",
                        parent=slices.get(name), kernel=name, index=index):
            records.append(run_one_injection(
                campaign, index, kernels[name], references[name],
                clean_spu[name]
            ))
    return records


def run_check(
    kernels: tuple[str, ...] = (),
    faults: int = 0,
    seed: int = 0,
    resilience: ResilienceMode | str = ResilienceMode.DEGRADE,
    fast: bool = False,
    kinds: tuple[str, ...] | None = None,
    watchdog_factor: int | None = None,
    watchdog_slack: int | None = None,
    swar_check: bool = False,
    tracer=None,
) -> CheckResult:
    """The full ``repro check`` measurement: clean differential + campaign.

    *swar_check* additionally sample-diffs the SWAR data path against the
    NumPy reference backend (:func:`repro.simd.selftest.sample_diff`, seeded
    from *seed*) and surfaces the mismatch count in the report summary.

    *tracer* (a :class:`repro.obs.spans.SpanTracer`) records the serial
    campaign as a ``campaign → slice → task → run → phase`` span tree.
    Slice spans stay open across both phases — a kernel's injections nest
    under the same slice as its clean check.  The tracer only observes;
    the returned :class:`CheckResult` is identical with or without it.
    """
    from repro.kernels import ALL_KERNELS

    names = tuple(kernels) if kernels else tuple(sorted(ALL_KERNELS))
    instances = {name: _make_kernel(name, fast) for name in names}
    references = {
        name: np.asarray(instances[name].reference()) for name in names
    }

    root = None
    slices: dict = {}
    if tracer is not None:
        root = tracer.begin("campaign:check", kernels=len(names),
                            faults=faults, seed=seed)
        slices = {
            name: tracer.begin(f"slice:{name}", parent=root, kernel=name)
            for name in names
        }

    clean = []
    for name in names:
        with maybe_span(tracer, f"task:clean:{name}",
                        parent=slices.get(name), kernel=name):
            clean.append(_clean_check(
                instances[name], references[name],
                tracer=tracer, parent=slices.get(name),
            ))

    result = CheckResult(kernels=names, clean=clean)
    if faults > 0:
        campaign = FaultCampaign(
            seed=seed,
            faults=faults,
            kernels=names,
            resilience=resilience,
            **({"kinds": tuple(kinds)} if kinds else {}),
            **({"watchdog_factor": watchdog_factor}
               if watchdog_factor is not None else {}),
            **({"watchdog_slack": watchdog_slack}
               if watchdog_slack is not None else {}),
        )
        clean_spu = {entry["kernel"]: entry["variants"]["spu"] for entry in clean}
        result.campaign = campaign
        result.injections = run_campaign(
            campaign, instances, references, clean_spu,
            tracer=tracer, slices=slices,
        )
    if swar_check:
        from repro.simd.selftest import sample_diff

        with maybe_span(tracer, "phase:swar-check", parent=root, seed=seed):
            result.swar_check = sample_diff(seed=seed)
    # Closed only on success: an exception leaves the spans open, so an
    # aborted campaign exports them with an aborted status instead of a
    # fabricated clean one.
    if tracer is not None:
        for span in slices.values():
            tracer.end(span)
        tracer.end(root)
    return result

"""Arming :class:`FaultSpec`\\ s on a live machine.

The injector rides the PR-1 event bus: it subscribes to the ``issue`` topic
and fires its fault when the dynamic-issue sequence number reaches the
spec's trigger, then detaches.  All mutations go through documented
fault-injection hooks (``SPURegister.inject_bit_flip``,
``SPUController.inject_program`` / ``skew_counter``) or public controller
operations (``suspend``/``resume``/``go`` for the GO race), and corrupted
controller programs are installed on a *clone* so a kernel's cached build is
never poisoned across runs.
"""

from __future__ import annotations

from repro.core.program import SPUProgram, SPUState, decode_state, encode_state
from repro.errors import RunnerInterrupted
from repro.faults.spec import FaultSpec


def clone_spu_program(program: SPUProgram) -> SPUProgram:
    """Shallow-clone a controller program so corruption stays run-local."""
    return SPUProgram(
        states=dict(program.states),
        counter_init=tuple(program.counter_init),
        entry=program.entry,
        num_states=program.num_states,
        name=program.name,
    )


# -- pure corruption models ----------------------------------------------------
#
# The clone-and-corrupt logic is shared with the static-analysis verdict
# layer (repro.analysis.verdict), which rebuilds the exact artifact an
# injection would install and lints it — so the corruption model cannot
# drift between the dynamic campaign and its static cross-check.


def corrupt_control_word(
    program: SPUProgram, state_index: int, word_bit: int, config
) -> SPUProgram | None:
    """The program a ``control_word`` injection installs (None if no target)."""
    if state_index not in program.states:
        return None
    clone = clone_spu_program(program)
    word = encode_state(clone.states[state_index], config)
    word ^= 1 << word_bit
    clone.states[state_index] = decode_state(word, config)
    return clone


def corrupt_route(
    program: SPUProgram, state_index: int, slot: int, granule: int, selector: int
) -> SPUProgram | None:
    """The program a ``route`` injection installs (None if no target)."""
    if state_index not in program.states:
        return None
    clone = clone_spu_program(program)
    state = clone.states[state_index]
    routes = dict(state.routes)
    route = list(routes[slot])
    route[granule] = selector
    routes[slot] = tuple(route)
    clone.states[state_index] = SPUState(
        cntr=state.cntr, routes=routes, next0=state.next0, next1=state.next1
    )
    return clone


def _apply_register_bit(machine, spec: FaultSpec) -> str:
    machine.spu.register.inject_bit_flip(spec.byte, spec.bit)
    return f"armed flip of SPU register byte {spec.byte} bit {spec.bit}"


def _apply_control_word(machine, spec: FaultSpec) -> str:
    controller = machine.spu.controller
    program = controller.program(spec.context)
    if program is None:
        return "target state no longer loaded; no corruption applied"
    clone = corrupt_control_word(
        program, spec.state_index, spec.word_bit, controller.config
    )
    if clone is None:
        return "target state no longer loaded; no corruption applied"
    controller.inject_program(clone, spec.context)
    return (
        f"flipped bit {spec.word_bit} of state {spec.state_index} "
        f"(context {spec.context})"
    )


def _apply_route(machine, spec: FaultSpec) -> str:
    controller = machine.spu.controller
    program = controller.program(spec.context)
    if program is None:
        return "target state no longer loaded; no corruption applied"
    clone = corrupt_route(
        program, spec.state_index, spec.slot, spec.granule, spec.selector
    )
    if clone is None:
        return "target state no longer loaded; no corruption applied"
    controller.inject_program(clone, spec.context)
    return (
        f"rewrote state {spec.state_index} slot {spec.slot} granule "
        f"{spec.granule} selector to {spec.selector} (context {spec.context})"
    )


def _apply_go_race(machine, spec: FaultSpec) -> str:
    controller = machine.spu.controller
    if controller.active:
        controller.suspend()
        return "spurious suspend while active"
    if controller.program() is None:
        return "no program loaded; race had no target"
    if controller.current_state != controller.idle_state:
        controller.resume()
        return "spurious resume of a suspended context"
    controller.go()
    return "spurious GO from idle"


def _apply_counter_skew(machine, spec: FaultSpec) -> str:
    controller = machine.spu.controller
    if not controller.active:
        return "controller idle; counter upset had no effect"
    controller.skew_counter(spec.counter, spec.delta)
    return f"skewed counter {spec.counter} by {spec.delta:+d}"


_APPLY = {
    "register_bit": _apply_register_bit,
    "control_word": _apply_control_word,
    "route": _apply_route,
    "go_race": _apply_go_race,
    "counter_skew": _apply_counter_skew,
}


class FaultInjector:
    """Arms one spec on a machine; fires at the spec's dynamic-issue trigger.

    Attributes after the run: ``fired`` (the trigger was reached),
    ``applied`` (human-readable description of what the fault did, or None),
    ``apply_error`` (exception raised *while injecting*, distinct from
    faults the injection later provokes in the simulated hardware).
    """

    def __init__(self, machine, spec: FaultSpec) -> None:
        if machine.spu is None:
            raise ValueError("fault injection targets the SPU; attach one first")
        self.machine = machine
        self.spec = spec
        self.fired = False
        self.applied: str | None = None
        self.apply_error: BaseException | None = None
        self._unsubscribe = machine.bus.subscribe("issue", self._on_issue)

    def _on_issue(self, event) -> None:
        if self.fired or event.seq < self.spec.trigger:
            return
        self.fired = True
        self._unsubscribe()
        try:
            self.applied = _APPLY[self.spec.kind](self.machine, self.spec)
        except RunnerInterrupted:
            # Campaign-level stop (signal/cancel) — not an apply failure;
            # recording it would make the report depend on signal timing.
            self.fired = False
            raise
        except Exception as exc:  # noqa: BLE001 - recorded for the report
            self.apply_error = exc

    def detach(self) -> None:
        """Disarm without firing (idempotent)."""
        self._unsubscribe()

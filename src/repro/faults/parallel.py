"""Parallel fault campaigns on the :mod:`repro.runner` worker pool.

The serial harness (:func:`repro.faults.run_check`) is a loop; this module
re-expresses it as independent tasks — one ``clean_check`` per kernel, one
``campaign_injection`` per injection — and drives them with a
:class:`~repro.runner.Runner`.  Determinism survives the decomposition
because every task is a pure function of campaign parameters: injection *i*
rebuilds its kernel and draws its spec from ``Random(f"{seed}:{i}")`` inside
the worker, so the record is identical no matter which worker runs it, in
what order, or after how many interruptions.  The merge is keyed by task id
and emitted in serial order, which is what makes a resumed ``--jobs 4`` run
byte-identical to an uninterrupted ``--jobs 1`` run.

Timeout calibration: injection tasks get a wall-clock budget derived from
the kernel's measured clean-run duration (``clean_duration * factor +
slack``), the orchestration-level analogue of the in-simulation cycle
watchdog ``clean_cycles * 4 + 10000``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import RunnerError
from repro.faults.campaign import (
    CheckResult,
    _clean_check,
    _make_kernel,
    run_one_injection,
)
from repro.faults.spec import FAULT_KINDS, FaultCampaign
from repro.obs.events import EventBus
from repro.resilience import ResilienceMode
from repro.runner import Journal, Runner, RunnerConfig, TaskSpec
from repro.runner.policy import calibrated_timeout_s

#: Wall-clock budget for one injection: clean seconds * factor + slack
#: (:func:`repro.runner.policy.calibrated_timeout_s`, shared with the serve
#: layer's per-job supervision budgets).
TIMEOUT_FACTOR = 25.0
TIMEOUT_SLACK_S = 10.0

#: Floor for clean-check tasks (no calibration data exists yet).
CLEAN_TIMEOUT_S = 300.0


# ---- task executors (run inside workers) -------------------------------------


def run_clean_task(payload: dict) -> dict:
    """Executor for ``clean_check`` tasks: one kernel, both variants."""
    started = time.perf_counter()
    kernel = _make_kernel(payload["kernel"], payload["fast"])
    reference = np.asarray(kernel.reference())
    record = _clean_check(kernel, reference)
    return {"record": record, "duration_s": time.perf_counter() - started}


def run_injection_task(payload: dict) -> dict:
    """Executor for ``campaign_injection`` tasks: one injection record."""
    campaign = FaultCampaign(
        seed=payload["seed"],
        faults=payload["faults"],
        kernels=tuple(payload["kernels"]),
        resilience=payload["resilience"],
        kinds=tuple(payload["kinds"]),
        watchdog_factor=payload["watchdog_factor"],
        watchdog_slack=payload["watchdog_slack"],
    )
    kernel = _make_kernel(payload["kernel"], payload["fast"])
    reference = np.asarray(kernel.reference())
    spu_clean = {
        "instructions": payload["clean_instructions"],
        "cycles": payload["clean_cycles"],
    }
    return run_one_injection(
        campaign, payload["index"], kernel, reference, spu_clean
    )


# ---- orchestration (runs in the parent) --------------------------------------


def _skipped_injection_record(index: int, kernel: str, failure: str) -> dict:
    """Terminal placeholder for an injection the runner could not execute.

    Shaped like a real record so reports and render paths need no special
    cases beyond "spec/analysis may be absent"; the outcome ``skipped``
    keeps the no-lost-tasks invariant — every injection index appears in the
    merged report exactly once.
    """
    return {
        "index": index,
        "kernel": kernel,
        "spec": None,
        "fired": False,
        "applied": False,
        "inject_error": None,
        "outcome": "skipped",
        "analysis": None,
        "output_matches": None,
        "mismatching_elements": None,
        "events": {},
        "finished": False,
        "cycles": None,
        "machine_faults": None,
        "degraded_issues": None,
        "fault_parks": None,
        "serialized_operands": None,
        "error": failure,
    }


def check_fingerprint(
    names: tuple[str, ...], faults: int, seed: int,
    resilience: ResilienceMode, fast: bool, kinds: tuple[str, ...],
    watchdog_factor: int, watchdog_slack: int,
) -> dict:
    """The resume-journal identity of one ``repro check`` invocation."""
    return {
        "verb": "check",
        "kernels": list(names),
        "faults": faults,
        "seed": seed,
        "resilience": resilience.value,
        "fast": fast,
        "kinds": list(kinds),
        "watchdog_factor": watchdog_factor,
        "watchdog_slack": watchdog_slack,
    }


def run_check_parallel(
    kernels: tuple[str, ...] = (),
    faults: int = 0,
    seed: int = 0,
    resilience: ResilienceMode | str = ResilienceMode.DEGRADE,
    fast: bool = False,
    kinds: tuple[str, ...] | None = None,
    watchdog_factor: int | None = None,
    watchdog_slack: int | None = None,
    swar_check: bool = False,
    jobs: int = 2,
    journal_path=None,
    bus: EventBus | None = None,
    runner_config: RunnerConfig | None = None,
    tracer=None,
    progress=None,
) -> tuple[CheckResult, Runner]:
    """``repro check`` on the worker pool; merges to serial-identical results.

    Returns ``(result, runner)`` — the merged :class:`CheckResult` plus the
    runner for orchestration telemetry (``repro.runner/1`` report, breaker
    state, fallback reason).  Raises
    :class:`~repro.errors.RunnerInterrupted` when the runner's
    ``interrupt_after`` budget stops the run early (journal stays
    resumable), and :class:`~repro.errors.RunnerError` when a *clean* task
    terminally fails — without clean references there is no campaign to
    calibrate or classify against.

    *tracer* opens a ``campaign:check`` root span and hands it to the
    runner as the parent of its per-slice and per-task spans; *progress*
    (a file-like) gets the runner's live per-slice progress lines.  The
    root span closes only on success — an interrupted campaign exports it
    (and any in-flight task spans) with an aborted status.  Neither
    observer touches task payloads, so the merged report stays
    byte-identical to a serial run.
    """
    from repro.kernels import ALL_KERNELS

    names = tuple(kernels) if kernels else tuple(sorted(ALL_KERNELS))
    mode = ResilienceMode.parse(resilience)
    use_kinds = tuple(kinds) if kinds else FAULT_KINDS
    factor = watchdog_factor if watchdog_factor is not None else 4
    slack = watchdog_slack if watchdog_slack is not None else 10_000

    fingerprint = check_fingerprint(
        names, faults, seed, mode, fast, use_kinds, factor, slack
    )
    config = runner_config or RunnerConfig(jobs=jobs)
    journal = (
        Journal(journal_path, fingerprint, fsync_every=config.fsync_every)
        if journal_path is not None else None
    )
    root = None
    if tracer is not None:
        root = tracer.begin("campaign:check", kernels=len(names),
                            faults=faults, seed=seed, jobs=config.jobs)
    runner = Runner(config, bus=bus, journal=journal,
                    tracer=tracer, span_parent=root, progress=progress)

    try:
        # Phase 1: clean differential checks (also the calibration data).
        configs = {name: _make_kernel(name, fast).config.name for name in names}
        clean_tasks = [
            TaskSpec(
                id=f"clean:{name}",
                kind="clean_check",
                payload={"kernel": name, "fast": fast},
                slice=f"{name}/{configs[name]}",
                timeout_s=CLEAN_TIMEOUT_S,
            )
            for name in names
        ]
        clean_results = runner.run(clean_tasks)
        broken = [r for r in clean_results.values() if not r.ok]
        if broken:
            details = ", ".join(
                f"{r.task} ({r.status}: {r.failure})" for r in sorted(
                    broken, key=lambda r: r.task)
            )
            raise RunnerError(
                f"clean differential check unrunnable for: {details}"
            )
        clean = [clean_results[f"clean:{name}"].result["record"]
                 for name in names]

        result = CheckResult(kernels=names, clean=clean)
        if faults > 0:
            campaign = FaultCampaign(
                seed=seed, faults=faults, kernels=names, resilience=mode,
                kinds=use_kinds, watchdog_factor=factor, watchdog_slack=slack,
            )
            result.campaign = campaign
            clean_spu = {entry["kernel"]: entry["variants"]["spu"]
                         for entry in clean}
            durations = {name: clean_results[f"clean:{name}"].result["duration_s"]
                         for name in names}
            ordered = sorted(names)
            injection_tasks = []
            for index in range(faults):
                name = ordered[index % len(ordered)]
                injection_tasks.append(TaskSpec(
                    id=f"inject:{index}",
                    kind="campaign_injection",
                    payload={
                        "kernel": name,
                        "fast": fast,
                        "index": index,
                        "seed": seed,
                        "faults": faults,
                        "kernels": list(names),
                        "resilience": mode.value,
                        "kinds": list(use_kinds),
                        "watchdog_factor": factor,
                        "watchdog_slack": slack,
                        "clean_instructions":
                            clean_spu[name]["instructions"],
                        "clean_cycles": clean_spu[name]["cycles"],
                    },
                    slice=f"{name}/{configs[name]}",
                    timeout_s=calibrated_timeout_s(
                        durations[name], TIMEOUT_FACTOR, TIMEOUT_SLACK_S
                    ),
                ))
            injection_results = runner.run(injection_tasks)

            # Deterministic merge: serial injection order, keyed by task id.
            for index in range(faults):
                task_result = injection_results[f"inject:{index}"]
                if task_result.ok:
                    result.injections.append(task_result.result)
                else:
                    result.injections.append(_skipped_injection_record(
                        index, ordered[index % len(ordered)],
                        task_result.failure or task_result.status,
                    ))
        if swar_check:
            # Deterministic and kernel-independent, so it runs in the
            # parent: the merged report matches a serial --swar-check run.
            from repro.simd.selftest import sample_diff

            result.swar_check = sample_diff(seed=seed)
        if root is not None:
            tracer.end(root)
        return result, runner
    finally:
        if journal is not None:
            journal.close()

"""Campaign reports: the ``fault-campaign`` export kind and its text view.

The JSON body rides the same versioned envelope as every other exporter
(:mod:`repro.obs.export`, ``{"schema": "repro.obs/1", "kind":
"fault-campaign", "data": ...}``).  Reports deliberately carry no
wall-clock data: a report is a pure function of (kernel set, seed, fault
count, resilience mode), which is what makes the CI determinism check —
run the campaign twice, compare bytes — meaningful.
"""

from __future__ import annotations

from repro.faults.campaign import OUTCOMES, CheckResult
from repro.faults.spec import FAULT_KINDS
from repro.obs.export import envelope


def check_report(result: CheckResult) -> dict:
    """The ``fault-campaign`` document for one :class:`CheckResult`."""
    body: dict = {
        "kernels": list(result.kernels),
        "clean": {
            "ok": result.clean_ok,
            "results": result.clean,
        },
    }
    if result.campaign is not None:
        campaign = result.campaign
        by_kind: dict[str, dict[str, int]] = {}
        for record in result.injections:
            if not record.get("spec"):
                continue  # breaker-skipped: no spec was ever generated
            kind = record["spec"]["kind"]
            per_kind = by_kind.setdefault(
                kind, {outcome: 0 for outcome in OUTCOMES}
            )
            per_kind[record["outcome"]] = per_kind.get(record["outcome"], 0) + 1
        body["campaign"] = {
            "seed": campaign.seed,
            "faults": campaign.faults,
            "kinds": list(campaign.kinds),
            "resilience": campaign.resilience.value,
            "watchdog_factor": campaign.watchdog_factor,
            "watchdog_slack": campaign.watchdog_slack,
        }
        # ``duration_s`` (surfaced for the runner's timeout calibration) is
        # wall-clock data: stripping it keeps the report a pure function of
        # (kernel set, seed, fault count, mode) — the determinism contract
        # CI compares bytes against.
        body["injections"] = [
            {key: value for key, value in record.items()
             if key != "duration_s"}
            for record in result.injections
        ]
        verdicts = {"flagged": 0, "suppressed": 0, "unexplained": 0}
        silent_verdicts = {"flagged": 0, "suppressed": 0, "unexplained": 0}
        for record in result.injections:
            if not record.get("analysis"):
                continue  # breaker-skipped: never ran, no static verdict
            verdict = record["analysis"]["verdict"]
            verdicts[verdict] += 1
            if record["outcome"] == "silent":
                silent_verdicts[verdict] += 1
        body["summary"] = {
            "outcomes": result.outcome_counts(),
            "by_kind": {
                kind: by_kind[kind] for kind in FAULT_KINDS if kind in by_kind
            },
            "fired": sum(1 for r in result.injections if r["fired"]),
            "inject_errors": sum(
                1 for r in result.injections if r["inject_error"]
            ),
            # The static cross-check (docs/static-analysis.md): every silent
            # injection must be flagged by the analyzer or covered by a
            # known-silent suppression — silent_unexplained is the gap count
            # the robustness bar requires to be zero.
            "analysis": {
                "flagged": verdicts["flagged"],
                "suppressed": verdicts["suppressed"],
                "unexplained": verdicts["unexplained"],
                "silent_flagged": silent_verdicts["flagged"],
                "silent_suppressed": silent_verdicts["suppressed"],
                "silent_unexplained": silent_verdicts["unexplained"],
            },
        }
    # Opt-in (--swar-check) only: absent, the document is byte-identical
    # to one produced before the SWAR data path existed.
    if result.swar_check is not None:
        body["swar_check"] = result.swar_check
        if "summary" in body:
            body["summary"]["swar_mismatches"] = result.swar_check["mismatches"]
    return envelope("fault-campaign", body)


def render_check(result: CheckResult) -> str:
    """Human-readable ``repro check`` output."""
    from repro.analysis.report import format_table

    rows = []
    for entry in result.clean:
        for variant, record in entry["variants"].items():
            rows.append([
                entry["kernel"],
                variant,
                "ok" if record["match"] else
                f"FAIL ({record['mismatching_elements']} mismatches)",
                record["cycles"],
                record["instructions"],
            ])
    parts = [format_table(
        ["kernel", "variant", "reference", "cycles", "instructions"],
        rows,
        title="Differential self-check (exact vs NumPy fixed-point)",
    )]

    if result.campaign is not None:
        campaign = result.campaign
        counts = result.outcome_counts()
        by_kind: dict[str, dict[str, int]] = {}
        skipped_count = 0
        for record in result.injections:
            if not record.get("spec"):
                skipped_count += 1
                continue
            kind = record["spec"]["kind"]
            per_kind = by_kind.setdefault(
                kind, {outcome: 0 for outcome in OUTCOMES}
            )
            per_kind[record["outcome"]] = per_kind.get(record["outcome"], 0) + 1
        kind_rows = [
            [kind, *[by_kind[kind].get(outcome, 0) for outcome in OUTCOMES],
             sum(by_kind[kind].values())]
            for kind in FAULT_KINDS if kind in by_kind
        ]
        kind_rows.append([
            "total", *[counts[outcome] for outcome in OUTCOMES],
            len(result.injections),
        ])
        parts.append(format_table(
            ["fault kind", *OUTCOMES, "total"],
            kind_rows,
            title=(
                f"Fault campaign: {campaign.faults} injections, seed "
                f"{campaign.seed}, mode {campaign.resilience.value}"
            ),
        ))
        if skipped_count:
            parts.append(
                f"circuit breaker: {skipped_count} injection(s) recorded as "
                "skipped (degraded slice; see docs/robustness.md)"
            )
        silent = [r for r in result.injections if r["outcome"] == "silent"]
        if silent:
            def _verdict(record):
                analysis = record["analysis"]
                if analysis["verdict"] == "flagged":
                    return "flagged: " + ", ".join(analysis["rules"])
                if analysis["verdict"] == "suppressed":
                    return f"known-silent: {analysis['suppression']}"
                return "UNEXPLAINED"

            parts.append(format_table(
                ["#", "kernel", "kind", "trigger", "mismatches",
                 "static analysis"],
                [[r["index"], r["kernel"], r["spec"]["kind"],
                  r["spec"]["trigger"], r["mismatching_elements"],
                  _verdict(r)]
                 for r in silent],
                title="Silent corruptions (wrong output, nothing flagged "
                "at runtime)",
            ))
        unexplained = sum(
            1 for r in silent if r["analysis"]["verdict"] == "unexplained"
        )
        parts.append(
            "static cross-check: "
            + (
                "every silent injection is flagged by repro lint or covered "
                "by a known-silent suppression"
                if unexplained == 0
                else f"{unexplained} silent injection(s) UNEXPLAINED by the "
                "static analyzer (see docs/static-analysis.md)"
            )
        )

    if result.swar_check is not None:
        diff = result.swar_check
        parts.append(
            f"swar check: {diff['samples']} sampled op evaluations vs the "
            f"NumPy reference (seed {diff['seed']}), "
            f"{diff['mismatches']} mismatch(es)"
        )

    status = "PASS" if result.clean_ok else "FAIL"
    parts.append(f"clean differential check: {status}")
    return "\n\n".join(parts)

"""Declarative fault specifications and their seeded generator.

A :class:`FaultSpec` fully describes one injection: what to corrupt, where,
and at which dynamic instruction to fire.  Specs are plain frozen data — the
injector (:mod:`repro.faults.injector`) interprets them — so a campaign
report can embed every spec verbatim and any single injection can be
replayed in isolation.

Generation is deterministic: injection *i* of a campaign draws from
``random.Random(f"{seed}:{i}")`` and from nothing else, so campaigns are
bit-identical across runs and independent of execution order.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from repro.core.program import SPUProgram, state_word_bits
from repro.resilience import ResilienceMode

#: The fault taxonomy (see docs/robustness.md):
#:
#: ``register_bit``
#:     Single-event upset in the 512-bit unified SPU register: one flip-flop
#:     flips between the MMX mirror write and the crossbar's gather.
#: ``control_word``
#:     Control-memory corruption: one bit of one encoded state word flips,
#:     perturbing counter select, next pointers or the route field.
#: ``route``
#:     Crossbar-route corruption: one granule selector of one routed state
#:     is rewritten (possibly outside the configuration's input window).
#: ``go_race``
#:     GO-bit race: the unit is spuriously suspended while active, or
#:     spuriously re-armed while idle/suspended.
#: ``counter_skew``
#:     Upset in a zero-overhead loop counter: a live counter is skewed by a
#:     small delta mid-run, desynchronizing the state machine from the loop.
FAULT_KINDS = ("register_bit", "control_word", "route", "go_race", "counter_skew")


@dataclass(frozen=True)
class FaultSpec:
    """One injection, fully resolved (fields unused by *kind* stay at -1/0)."""

    kind: str
    #: Dynamic-issue sequence number at which the fault fires.
    trigger: int
    #: Controller context holding the targeted program (control_word/route).
    context: int = -1
    #: Targeted state index (control_word/route).
    state_index: int = -1
    #: Bit to flip in the encoded state word (control_word).
    word_bit: int = -1
    #: Operand slot / output granule / corrupted selector (route).
    slot: int = -1
    granule: int = -1
    selector: int = -1
    #: SPU-register byte and bit (register_bit).
    byte: int = -1
    bit: int = -1
    #: Targeted loop counter and skew amount (counter_skew).
    counter: int = -1
    delta: int = 0

    def as_dict(self) -> dict:
        """JSON-friendly form with the unused ``-1``/``0`` fields dropped."""
        record = {"kind": self.kind, "trigger": self.trigger}
        for key, value in asdict(self).items():
            if key in record or value == -1 or (key == "delta" and value == 0):
                continue
            record[key] = value
        return record


@dataclass
class FaultCampaign:
    """A declarative campaign: which faults, how many, against what."""

    seed: int = 0
    faults: int = 25
    kinds: tuple[str, ...] = FAULT_KINDS
    #: Kernel registry names; empty means every registered kernel.
    kernels: tuple[str, ...] = ()
    #: Failure posture of the machines under test.
    resilience: ResilienceMode | str = ResilienceMode.DEGRADE
    #: Faulty-run watchdog: ``clean_cycles * factor + slack`` cycles.
    watchdog_factor: int = 4
    watchdog_slack: int = 10_000

    def __post_init__(self) -> None:
        self.resilience = ResilienceMode.parse(self.resilience)
        unknown = [kind for kind in self.kinds if kind not in FAULT_KINDS]
        if unknown:
            raise ValueError(f"unknown fault kinds {unknown}; choose from {FAULT_KINDS}")

    def rng(self, index: int) -> random.Random:
        """The per-injection stream; depends only on (seed, index)."""
        return random.Random(f"{self.seed}:{index}")


def generate_spec(
    rng: random.Random,
    kinds: tuple[str, ...],
    instructions: int,
    controller_programs: list[tuple[int, SPUProgram]],
    config,
) -> FaultSpec:
    """Draw one :class:`FaultSpec` for a kernel's SPU variant.

    *instructions* is the clean run's dynamic instruction count (the trigger
    is drawn from it so every fault lands inside the run);
    *controller_programs* are the kernel's ``(context, SPUProgram)`` pairs,
    used to aim control-memory and route faults at states that exist.
    """
    kind = rng.choice(list(kinds))
    trigger = rng.randrange(max(1, instructions))
    if kind == "register_bit":
        return FaultSpec(kind, trigger, byte=rng.randrange(64), bit=rng.randrange(8))
    if kind == "control_word":
        targets = [
            (context, index)
            for context, program in controller_programs
            for index in sorted(program.states)
        ]
        if not targets:  # no control memory to corrupt: degrade to an SEU
            return FaultSpec("register_bit", trigger,
                             byte=rng.randrange(64), bit=rng.randrange(8))
        context, index = rng.choice(targets)
        return FaultSpec(
            kind, trigger, context=context, state_index=index,
            word_bit=rng.randrange(state_word_bits(config)),
        )
    if kind == "route":
        targets = [
            (context, index, slot)
            for context, program in controller_programs
            for index in sorted(program.states)
            for slot in sorted(program.states[index].routes)
        ]
        if not targets:  # nothing routed: degrade to an SEU
            return FaultSpec("register_bit", trigger,
                             byte=rng.randrange(64), bit=rng.randrange(8))
        context, index, slot = rng.choice(targets)
        # Corrupt to any selector the field could physically hold — values
        # beyond in_ports model stuck select lines (detected as RouteError).
        return FaultSpec(
            kind, trigger, context=context, state_index=index, slot=slot,
            granule=rng.randrange(config.granules_per_operand),
            selector=rng.randrange(config.in_ports + 4),
        )
    if kind == "go_race":
        return FaultSpec(kind, trigger)
    if kind == "counter_skew":
        return FaultSpec(
            kind, trigger, counter=rng.randrange(2),
            delta=rng.choice([-3, -2, -1, 1, 2, 3]),
        )
    raise ValueError(f"unknown fault kind {kind!r}")

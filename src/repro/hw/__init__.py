"""Hardware cost models: crossbar area/delay, control memory, tech scaling."""

from repro.hw.crossbar import (
    AREA_CALIBRATION_MM2,
    AREA_PER_BIT_CROSSPOINT_8,
    AREA_PER_BIT_CROSSPOINT_16,
    DELAY_CALIBRATION_NS,
    bit_crosspoints,
    interconnect_area_mm2,
    interconnect_delay_ns,
    pipeline_stages,
)
from repro.hw.control_memory import (
    AREA_PER_BIT_MM2,
    SIZE_CALIBRATION_MM2,
    STATE_OVERHEAD_BITS,
    control_memory_area_mm2,
    control_memory_bits,
    state_bits,
)
from repro.hw.technology import (
    PENTIUM3_DIE_MM2,
    PENTIUM3_FEATURE_UM,
    PENTIUM3_METAL_LAYERS,
    TECH_018,
    TECH_025,
    Technology,
    die_fraction,
    scale_area_mm2,
)
from repro.hw.cost import SPUCost, spu_cost, table1_rows

__all__ = [
    "AREA_CALIBRATION_MM2",
    "AREA_PER_BIT_CROSSPOINT_8",
    "AREA_PER_BIT_CROSSPOINT_16",
    "DELAY_CALIBRATION_NS",
    "bit_crosspoints",
    "interconnect_area_mm2",
    "interconnect_delay_ns",
    "pipeline_stages",
    "AREA_PER_BIT_MM2",
    "SIZE_CALIBRATION_MM2",
    "STATE_OVERHEAD_BITS",
    "control_memory_area_mm2",
    "control_memory_bits",
    "state_bits",
    "PENTIUM3_DIE_MM2",
    "PENTIUM3_FEATURE_UM",
    "PENTIUM3_METAL_LAYERS",
    "TECH_018",
    "TECH_025",
    "Technology",
    "die_fraction",
    "scale_area_mm2",
    "SPUCost",
    "spu_cost",
    "table1_rows",
]

from repro.hw.scaling import (
    BENES_LEVEL_DELAY_NS,
    ScaledDesign,
    benes_network,
    design_options,
    full_crossbar,
    windowed_crossbar,
)

__all__ += [
    "BENES_LEVEL_DELAY_NS",
    "ScaledDesign",
    "benes_network",
    "design_options",
    "full_crossbar",
    "windowed_crossbar",
]

from repro.hw.energy import (
    EnergyBreakdown,
    EnergyComparison,
    EnergyModel,
    kernel_energy,
    run_energy,
)

__all__ += [
    "EnergyBreakdown",
    "EnergyComparison",
    "EnergyModel",
    "kernel_energy",
    "run_energy",
]

"""Control-memory size and area model (paper §5.1.1, Table 1).

"The control memory size in our implementation is given by a simple formula
128*(15+K) where K is the number of addressable locations" — with K the
interconnect field width of one state word (out_ports × log2(in_ports) bits;
Figure 6 shows 1 + 192 + 7 + 7 bits for configuration A) and 128 the number
of controller states.  The 15 overhead bits are CNTRx (1) plus two 7-bit
next-state fields.

Area per bit comes from the same Princeton VSP 0.25µm data as the crossbar;
the published sizes imply ≈4.95e-5 mm²/bit.  As with the crossbar, published
configurations return Table 1's value exactly by default.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.core.interconnect import CrossbarConfig
from repro.core.program import DEFAULT_NUM_STATES

#: Fixed per-state overhead bits: CNTRx (1) + NextState0 (7) + NextState1 (7).
STATE_OVERHEAD_BITS = 15

#: mm² per control-memory bit in 0.25µm 2-metal CMOS (least-squares over
#: Table 1's four published sizes).
AREA_PER_BIT_MM2 = 4.95e-5

#: Published Table 1 control-memory sizes.
SIZE_CALIBRATION_MM2: dict[tuple[int, int, int], float] = {
    (64, 32, 8): 1.35,
    (32, 32, 8): 1.1,
    (32, 16, 16): 0.6,
    (16, 16, 16): 0.5,
}


def state_bits(config: CrossbarConfig) -> int:
    """Bits per controller state word: 15 + the interconnect field."""
    return STATE_OVERHEAD_BITS + config.route_bits


def control_memory_bits(
    config: CrossbarConfig, num_states: int = DEFAULT_NUM_STATES, contexts: int = 1
) -> int:
    """Total control-memory bits: the paper's ``128*(15+K)`` per context."""
    if num_states < 2:
        raise ConfigurationError("controller needs at least 2 states")
    if contexts < 1:
        raise ConfigurationError("at least one context required")
    return num_states * state_bits(config) * contexts


def control_memory_area_mm2(
    config: CrossbarConfig,
    num_states: int = DEFAULT_NUM_STATES,
    contexts: int = 1,
    *,
    calibrated: bool = True,
) -> float:
    """Control-memory area in 0.25µm 2-metal CMOS.

    Published single-context 128-state configurations return Table 1's value
    exactly; anything else uses the per-bit density (additional contexts cost
    proportional area, §3: "more area would be required to support these
    extra contexts").
    """
    key = (config.in_ports, config.out_ports, config.port_bits)
    if (
        calibrated
        and contexts == 1
        and num_states == DEFAULT_NUM_STATES
        and key in SIZE_CALIBRATION_MM2
    ):
        return SIZE_CALIBRATION_MM2[key]
    return control_memory_bits(config, num_states, contexts) * AREA_PER_BIT_MM2

"""Aggregate SPU cost summary: one row of Table 1 plus the die-area claim."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interconnect import CONFIGS, CrossbarConfig
from repro.core.program import DEFAULT_NUM_STATES
from repro.hw.control_memory import (
    control_memory_area_mm2,
    control_memory_bits,
    state_bits,
)
from repro.hw.crossbar import (
    bit_crosspoints,
    interconnect_area_mm2,
    interconnect_delay_ns,
    pipeline_stages,
)
from repro.hw.technology import (
    PENTIUM3_DIE_MM2,
    TECH_018,
    TECH_025,
    die_fraction,
    scale_area_mm2,
)


@dataclass(frozen=True)
class SPUCost:
    """Full cost breakdown of one SPU configuration (Table 1 row + §5.1.1)."""

    config_name: str
    description: str
    interconnect_area_mm2: float
    interconnect_delay_ns: float
    control_memory_mm2: float
    control_memory_bits: int
    state_bits: int
    bit_crosspoints: int

    @property
    def total_area_mm2(self) -> float:
        """Interconnect + control memory in the 0.25µm source process."""
        return self.interconnect_area_mm2 + self.control_memory_mm2

    @property
    def scaled_area_mm2(self) -> float:
        """Total area scaled to the 0.18µm 6-layer Pentium III process."""
        return scale_area_mm2(
            self.interconnect_area_mm2, TECH_025, TECH_018, wiring_dominated=True
        ) + scale_area_mm2(
            self.control_memory_mm2, TECH_025, TECH_018, wiring_dominated=False
        )

    @property
    def die_fraction(self) -> float:
        """Fraction of the 106 mm² Pentium III die (§5.1.1: <1% for D)."""
        return die_fraction(self.scaled_area_mm2, PENTIUM3_DIE_MM2)


def spu_cost(
    config: CrossbarConfig,
    num_states: int = DEFAULT_NUM_STATES,
    contexts: int = 1,
    *,
    calibrated: bool = True,
) -> SPUCost:
    """Compute the full cost summary for *config*."""
    return SPUCost(
        config_name=config.name,
        description=config.description,
        interconnect_area_mm2=interconnect_area_mm2(config, calibrated=calibrated),
        interconnect_delay_ns=interconnect_delay_ns(config, calibrated=calibrated),
        control_memory_mm2=control_memory_area_mm2(
            config, num_states, contexts, calibrated=calibrated
        ),
        control_memory_bits=control_memory_bits(config, num_states, contexts),
        state_bits=state_bits(config),
        bit_crosspoints=bit_crosspoints(config),
    )


def table1_rows(*, calibrated: bool = True) -> list[SPUCost]:
    """Cost rows for the four published configurations A-D."""
    return [spu_cost(config, calibrated=calibrated) for config in CONFIGS.values()]

"""Crossbar area and delay model (paper §5.1.1, Table 1).

The paper estimates interconnect cost from the implementation and layout of
the Princeton VSP project (0.25µm CMOS, 2 metal layers, folded crossbars).
We reproduce that estimation methodology:

* **Area** is proportional to bit-crosspoints (``in_ports × out_ports ×
  port_bits``).  The published points give exactly 4.968e-4 mm² per
  bit-crosspoint for 8-bit ports and 5.762e-4 for 16-bit ports — wider ports
  pay a ≈1.16× wiring factor in the folded layout.  Area is therefore exact
  for the published configurations and analytic for others.

* **Delay** has two estimators.  ``calibrated`` linearly interpolates the
  four published (in, out) points exactly — the same role the VSP layout
  data plays in the paper.  ``analytic`` is a least-squares power law
  ``c · in^p · out^q`` fitted to the same points, for extrapolating to
  configurations outside Table 1 (e.g. the large-register-file designs of
  §6); it reproduces the published points to within ~20% and is monotone in
  both port counts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.core.interconnect import CrossbarConfig

#: mm² per bit-crosspoint in 0.25µm 2-metal CMOS (from Table 1: 8.14/16384).
AREA_PER_BIT_CROSSPOINT_8 = 8.14 / (64 * 32 * 8)
#: 16-bit ports pay a wiring factor (from Table 1: 4.72/8192 over the 8-bit rate).
AREA_PER_BIT_CROSSPOINT_16 = 4.72 / (32 * 16 * 16)

#: Published Table 1 delay points, keyed by (in_ports, out_ports, port_bits).
DELAY_CALIBRATION_NS: dict[tuple[int, int, int], float] = {
    (64, 32, 8): 3.14,
    (32, 32, 8): 2.29,
    (32, 16, 16): 1.95,
    (16, 16, 16): 0.95,
}

#: Published Table 1 area points (used verbatim when available).
AREA_CALIBRATION_MM2: dict[tuple[int, int, int], float] = {
    (64, 32, 8): 8.14,
    (32, 32, 8): 4.07,
    (32, 16, 16): 4.72,
    (16, 16, 16): 2.36,
}


def _fit_power_law() -> tuple[float, float, float]:
    """Least-squares fit of ``ln d = p·ln in + q·ln out + ln c``."""
    points = list(DELAY_CALIBRATION_NS.items())
    design = np.array([[math.log(i), math.log(o), 1.0] for (i, o, _w), _ in points])
    target = np.array([math.log(d) for _, d in points])
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    return float(coeffs[0]), float(coeffs[1]), float(math.exp(coeffs[2]))


_POWER_P, _POWER_Q, _POWER_C = _fit_power_law()


def bit_crosspoints(config: CrossbarConfig) -> int:
    """Crosspoint count × port width: the area-determining product."""
    return config.in_ports * config.out_ports * config.port_bits


def _width_area_rate(port_bits: int) -> float:
    if port_bits <= 8:
        return AREA_PER_BIT_CROSSPOINT_8
    if port_bits == 16:
        return AREA_PER_BIT_CROSSPOINT_16
    # Wider ports: extrapolate the per-octave wiring factor (≈1.16/octave).
    octaves = math.log2(port_bits / 8)
    factor = (AREA_PER_BIT_CROSSPOINT_16 / AREA_PER_BIT_CROSSPOINT_8) ** octaves
    return AREA_PER_BIT_CROSSPOINT_8 * factor


def interconnect_area_mm2(config: CrossbarConfig, *, calibrated: bool = True) -> float:
    """Crossbar area in 0.25µm 2-metal CMOS.

    With ``calibrated`` (default), published Table 1 configurations return
    the published value exactly; other configurations use the analytic
    bit-crosspoint model.
    """
    key = (config.in_ports, config.out_ports, config.port_bits)
    if calibrated and key in AREA_CALIBRATION_MM2:
        return AREA_CALIBRATION_MM2[key]
    return bit_crosspoints(config) * _width_area_rate(config.port_bits)


def interconnect_delay_ns(config: CrossbarConfig, *, calibrated: bool = True) -> float:
    """Crossbar delay in 0.25µm 2-metal CMOS.

    Published configurations return the published point (layout-derived, as
    in the paper); others use the fitted power law.
    """
    key = (config.in_ports, config.out_ports, config.port_bits)
    if calibrated and key in DELAY_CALIBRATION_NS:
        return DELAY_CALIBRATION_NS[key]
    if config.in_ports < 2 or config.out_ports < 2:
        raise ConfigurationError("delay model needs at least 2x2 ports")
    return _POWER_C * config.in_ports**_POWER_P * config.out_ports**_POWER_Q


def pipeline_stages(config: CrossbarConfig, cycle_time_ns: float) -> int:
    """Pipeline stages needed to hide the crossbar under *cycle_time_ns*.

    §5.1.1: "for modern designs, additional pipelining may be necessary to
    ensure that the SPU's interconnect meets clock cycle requirements."
    """
    if cycle_time_ns <= 0:
        raise ConfigurationError("cycle time must be positive")
    return max(1, math.ceil(interconnect_delay_ns(config) / cycle_time_ns))

"""Energy accounting: instruction overhead vs SPU routing energy.

The paper motivates the SPU partly on energy ("Performance is key, but
energy efficiency ... will also become important", §1) and argues that
software data orchestration "wastes expensive resources on the processor
like the instruction fetch and decode mechanism" (§7).  This model prices
that claim: every executed instruction pays a fetch/decode/retire overhead
plus a functional-unit energy, while each SPU-routed operand pays crossbar
traversal energy and each controller step pays a control-memory read.

Per-event energies are ballpark 0.25µm-class CMOS estimates (documented
below, in picojoules) — the *comparison* between variants is the point, not
the absolute joules; all knobs live in :class:`EnergyModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interconnect import CrossbarConfig
from repro.cpu.stats import RunStats
from repro.hw.control_memory import state_bits
from repro.hw.crossbar import bit_crosspoints
from repro.isa.opcodes import InstrClass


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in pJ (0.25µm-class estimates)."""

    #: Fetch + decode + retire overhead per instruction — the §7 "expensive
    #: resources" an off-loaded permute stops paying.
    fetch_decode_pj: float = 400.0
    #: Functional-unit energy per instruction class.
    alu_pj: float = 150.0
    multiply_pj: float = 600.0
    shift_pack_pj: float = 180.0
    move_pj: float = 120.0
    scalar_pj: float = 100.0
    memory_pj: float = 500.0  # L1 access
    branch_pj: float = 120.0
    #: Crossbar traversal per routed 64-bit operand, per 1k bit-crosspoints
    #: (bigger crossbars burn more wire capacitance).
    crossbar_pj_per_kxp: float = 12.0
    #: Controller step: one control-memory read, per 100 state-word bits.
    control_read_pj_per_100b: float = 6.0

    def unit_energy(self, iclass: InstrClass) -> float:
        return {
            InstrClass.MMX_ALU: self.alu_pj,
            InstrClass.MMX_MUL: self.multiply_pj,
            InstrClass.MMX_SHIFT: self.shift_pack_pj,
            InstrClass.MMX_MOV: self.move_pj,
            InstrClass.SCALAR: self.scalar_pj,
            InstrClass.LOAD: self.memory_pj,
            InstrClass.STORE: self.memory_pj,
            InstrClass.BRANCH: self.branch_pj,
            InstrClass.SYS: self.scalar_pj,
        }[iclass]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one run, in picojoules."""

    instruction_overhead_pj: float
    functional_pj: float
    crossbar_pj: float
    controller_pj: float

    @property
    def total_pj(self) -> float:
        return (
            self.instruction_overhead_pj
            + self.functional_pj
            + self.crossbar_pj
            + self.controller_pj
        )


def run_energy(
    stats: RunStats,
    config: CrossbarConfig | None = None,
    controller_steps: int = 0,
    model: EnergyModel = EnergyModel(),
) -> EnergyBreakdown:
    """Price a run: instruction overheads + units + SPU activity.

    ``controller_steps`` is the decoupled controller's dynamic step count
    (0 for MMX-only runs); ``stats.spu_routed`` supplies the routed-operand
    count for the crossbar term.
    """
    overhead = stats.instructions * model.fetch_decode_pj
    functional = sum(
        count * model.unit_energy(iclass) for iclass, count in stats.by_class.items()
    )
    crossbar = 0.0
    controller = 0.0
    if config is not None:
        crossbar = (
            stats.spu_routed * model.crossbar_pj_per_kxp
            * bit_crosspoints(config) / 1000.0
        )
        controller = (
            controller_steps * model.control_read_pj_per_100b
            * state_bits(config) / 100.0
        )
    return EnergyBreakdown(
        instruction_overhead_pj=overhead,
        functional_pj=functional,
        crossbar_pj=crossbar,
        controller_pj=controller,
    )


@dataclass(frozen=True)
class EnergyComparison:
    """MMX-only vs MMX+SPU energy for one kernel."""

    name: str
    mmx: EnergyBreakdown
    spu: EnergyBreakdown

    @property
    def savings_fraction(self) -> float:
        if not self.mmx.total_pj:
            return 0.0
        return 1.0 - self.spu.total_pj / self.mmx.total_pj


def kernel_energy(kernel, model: EnergyModel = EnergyModel()) -> EnergyComparison:
    """Energy comparison for a :class:`repro.kernels.Kernel`."""
    comparison = kernel.compare()
    # Controller steps = dynamic instructions seen while active; approximate
    # with the counter totals the kernel's loops program (exact for loops
    # that run to completion, which all kernels' do).
    _, controller_programs = kernel.spu_programs()
    steps = sum(program.counter_init[0] + program.counter_init[1]
                for _, program in controller_programs)
    return EnergyComparison(
        name=kernel.name,
        mmx=run_energy(comparison.mmx),
        spu=run_energy(comparison.spu, kernel.config, controller_steps=steps,
                       model=model),
    )

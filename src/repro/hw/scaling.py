"""Scaling the SPU to large register files (paper §6).

"Providing general inter-word permutations across a large register set would
require the SPU to have significantly more interconnect and register
bandwidth.  Design trade-offs would include restricting permutations to a
subset of registers, pipelining the SPU interconnect into multiple cycles,
and using a multi-stage interconnect instead of a crossbar."

This module prices exactly those three options for an arbitrary register
file (e.g. Altivec's 32×128 bits):

* **full crossbar** — every granule of every register selectable; area grows
  with in×out crosspoints,
* **windowed crossbar** — the paper's configuration-B/D trick generalized: a
  window of ``window_regs`` registers feeds the crossbar,
* **Benes network** — a rearrangeable multi-stage network: ``N/2·(2·log2 N−1)``
  2×2 switches instead of ``N·M`` crosspoints, at the cost of ``2·log2 N−1``
  stage delays and a harder (but offline — the SPU's routes are static)
  routing problem.

The per-level delay and per-switch area are anchored to the same 0.25µm
numbers the crossbar model is calibrated on; see the constants below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.crossbar import AREA_PER_BIT_CROSSPOINT_8, AREA_PER_BIT_CROSSPOINT_16

#: Delay of one 2×2 switch level in 0.25µm 2-metal CMOS.  Anchored so that a
#: 16-port network's 7 levels cost about what the published 16×16 crossbar
#: does (0.95 ns): ≈0.14 ns per level.
BENES_LEVEL_DELAY_NS = 0.14

#: A 2×2 switch costs four bit-crosspoints per data bit.
SWITCH_CROSSPOINTS = 4


def _area_rate(granule_bits: int) -> float:
    if granule_bits <= 8:
        return AREA_PER_BIT_CROSSPOINT_8
    octaves = math.log2(granule_bits / 8)
    factor = (AREA_PER_BIT_CROSSPOINT_16 / AREA_PER_BIT_CROSSPOINT_8) ** octaves
    return AREA_PER_BIT_CROSSPOINT_8 * factor


@dataclass(frozen=True)
class ScaledDesign:
    """One interconnect option for a (large) register file."""

    name: str
    register_count: int
    register_bits: int
    granule_bits: int
    #: Registers reachable by one route (= register_count for full reach).
    window_regs: int
    network: str  # "crossbar" or "benes"
    area_mm2: float
    delay_ns: float
    #: Route-selector bits per output granule.
    select_bits: int

    @property
    def in_ports(self) -> int:
        return self.window_regs * self.register_bits // self.granule_bits

    @property
    def full_reach(self) -> bool:
        return self.window_regs == self.register_count

    def pipeline_stages(self, cycle_time_ns: float) -> int:
        """Stages needed to hide the interconnect at *cycle_time_ns* (§6)."""
        if cycle_time_ns <= 0:
            raise ConfigurationError("cycle time must be positive")
        return max(1, math.ceil(self.delay_ns / cycle_time_ns))

    def control_bits_per_state(self, operand_buses: int = 4) -> int:
        """Interconnect field width of one controller state word."""
        out_granules = operand_buses * self.register_bits // self.granule_bits
        return out_granules * self.select_bits


def _check(register_count: int, register_bits: int, granule_bits: int) -> None:
    if register_count < 2 or register_count & (register_count - 1):
        raise ConfigurationError("register count must be a power of two >= 2")
    if register_bits % granule_bits:
        raise ConfigurationError("granule must divide the register width")
    if granule_bits % 8:
        raise ConfigurationError("granule must be a whole number of bytes")


def full_crossbar(
    register_count: int,
    register_bits: int,
    granule_bits: int = 8,
    operand_buses: int = 4,
) -> ScaledDesign:
    """Full-reach crossbar for the given register file."""
    _check(register_count, register_bits, granule_bits)
    in_ports = register_count * register_bits // granule_bits
    out_ports = operand_buses * register_bits // granule_bits
    area = in_ports * out_ports * granule_bits * _area_rate(granule_bits)
    # Delay: decoder depth plus port-count wire loading, anchored to the
    # published points through the power law of repro.hw.crossbar.
    from repro.hw.crossbar import _POWER_C, _POWER_P, _POWER_Q

    delay = _POWER_C * in_ports**_POWER_P * out_ports**_POWER_Q
    return ScaledDesign(
        name=f"crossbar-{register_count}x{register_bits}",
        register_count=register_count,
        register_bits=register_bits,
        granule_bits=granule_bits,
        window_regs=register_count,
        network="crossbar",
        area_mm2=area,
        delay_ns=delay,
        select_bits=max(1, math.ceil(math.log2(in_ports))),
    )


def windowed_crossbar(
    register_count: int,
    register_bits: int,
    window_regs: int,
    granule_bits: int = 8,
    operand_buses: int = 4,
) -> ScaledDesign:
    """Crossbar restricted to a *window_regs*-register window (§6 option 1)."""
    _check(register_count, register_bits, granule_bits)
    if not 1 <= window_regs <= register_count:
        raise ConfigurationError(
            f"window ({window_regs}) must be within the register file "
            f"({register_count})"
        )
    base = full_crossbar(window_regs if window_regs >= 2 else 2, register_bits,
                         granule_bits, operand_buses)
    return ScaledDesign(
        name=f"window{window_regs}-of-{register_count}x{register_bits}",
        register_count=register_count,
        register_bits=register_bits,
        granule_bits=granule_bits,
        window_regs=window_regs,
        network="crossbar",
        area_mm2=base.area_mm2,
        delay_ns=base.delay_ns,
        select_bits=base.select_bits,
    )


def benes_network(
    register_count: int,
    register_bits: int,
    granule_bits: int = 8,
    operand_buses: int = 4,
) -> ScaledDesign:
    """Rearrangeable Benes network with full reach (§6 option 3).

    Sized on the input port count (outputs are replicated reads of the
    permuted frame); switches carry *granule_bits*-wide lanes.
    """
    _check(register_count, register_bits, granule_bits)
    in_ports = register_count * register_bits // granule_bits
    levels = 2 * math.ceil(math.log2(in_ports)) - 1
    switches = (in_ports // 2) * levels
    area = switches * SWITCH_CROSSPOINTS * granule_bits * _area_rate(granule_bits)
    return ScaledDesign(
        name=f"benes-{register_count}x{register_bits}",
        register_count=register_count,
        register_bits=register_bits,
        granule_bits=granule_bits,
        window_regs=register_count,
        network="benes",
        area_mm2=area,
        delay_ns=levels * BENES_LEVEL_DELAY_NS,
        select_bits=max(1, math.ceil(math.log2(in_ports))),
    )


def design_options(
    register_count: int,
    register_bits: int,
    granule_bits: int = 8,
    windows: tuple[int, ...] = (4, 8),
) -> list[ScaledDesign]:
    """The §6 option set for one register file, ready to tabulate."""
    options = [full_crossbar(register_count, register_bits, granule_bits)]
    for window in windows:
        if window < register_count:
            options.append(
                windowed_crossbar(register_count, register_bits, window, granule_bits)
            )
    options.append(benes_network(register_count, register_bits, granule_bits))
    return options

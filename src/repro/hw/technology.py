"""Process and metal-layer scaling for the die-area claim (§5.1.1).

The SPU is estimated in 0.25µm 2-metal CMOS (Princeton VSP data) but the
target die is the 0.18µm 106mm² Pentium III with 6 metal layers.  Classic
constant-field scaling shrinks area with the square of the feature-size
ratio; wiring-dominated blocks (the crossbar explicitly is: "the crossbar
design is dominated by wiring") additionally benefit from extra routing
layers, modeled as a ``sqrt(old_layers/new_layers)`` density factor per the
usual wire-area arguments.  With both factors the config-D SPU lands under
1% of the Pentium III die, matching the paper's claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: The Princeton VSP process the estimates are calibrated in.
SOURCE_FEATURE_UM = 0.25
SOURCE_METAL_LAYERS = 2

#: The paper's target: a 106 mm², 0.18µm Pentium III die [1].
PENTIUM3_DIE_MM2 = 106.0
PENTIUM3_FEATURE_UM = 0.18
PENTIUM3_METAL_LAYERS = 6


@dataclass(frozen=True)
class Technology:
    """A CMOS process node for area scaling."""

    feature_um: float
    metal_layers: int = 2
    name: str = ""

    def __post_init__(self) -> None:
        if self.feature_um <= 0:
            raise ConfigurationError("feature size must be positive")
        if self.metal_layers < 1:
            raise ConfigurationError("at least one metal layer required")


TECH_025 = Technology(SOURCE_FEATURE_UM, SOURCE_METAL_LAYERS, "0.25um 2LM (VSP)")
TECH_018 = Technology(PENTIUM3_FEATURE_UM, PENTIUM3_METAL_LAYERS, "0.18um 6LM (P-III)")


def scale_area_mm2(
    area_mm2: float,
    source: Technology = TECH_025,
    target: Technology = TECH_018,
    *,
    wiring_dominated: bool = True,
) -> float:
    """Scale *area_mm2* from *source* to *target* technology.

    Feature scaling is quadratic; wiring-dominated blocks also gain a
    ``sqrt(layers_src/layers_dst)`` routing-density factor (more layers →
    denser wiring).  Pass ``wiring_dominated=False`` for transistor-limited
    blocks such as the control memory cells.
    """
    if area_mm2 < 0:
        raise ConfigurationError("area must be non-negative")
    scaled = area_mm2 * (target.feature_um / source.feature_um) ** 2
    if wiring_dominated:
        scaled *= math.sqrt(source.metal_layers / target.metal_layers)
    return scaled


def die_fraction(area_mm2: float, die_mm2: float = PENTIUM3_DIE_MM2) -> float:
    """Fraction of a die *area_mm2* occupies."""
    if die_mm2 <= 0:
        raise ConfigurationError("die area must be positive")
    return area_mm2 / die_mm2

"""ISA layer: registers, operands, opcodes, instruction IR, assembler."""

from repro.isa.registers import (
    MM,
    MMX_BITS,
    MMX_BYTES,
    NUM_MMX_REGS,
    NUM_SCALAR_REGS,
    R,
    SCALAR_BITS,
    SCALAR_MASK,
    RegClass,
    Register,
    is_register_name,
    parse_register,
)
from repro.isa.operands import Imm, Label, Mem, Operand, parse_memory
from repro.isa.opcodes import InstrClass, Opcode, all_opcodes, lookup, slot_allows
from repro.isa.instructions import FLAGS, Instruction, Program
from repro.isa.assembler import ProgramBuilder, assemble, disassemble
from repro.isa.encoding import (
    encode_subword_addressing,
    instruction_size,
    program_size,
)

__all__ = [
    "MM",
    "MMX_BITS",
    "MMX_BYTES",
    "NUM_MMX_REGS",
    "NUM_SCALAR_REGS",
    "R",
    "SCALAR_BITS",
    "SCALAR_MASK",
    "RegClass",
    "Register",
    "is_register_name",
    "parse_register",
    "Imm",
    "Label",
    "Mem",
    "Operand",
    "parse_memory",
    "InstrClass",
    "Opcode",
    "all_opcodes",
    "lookup",
    "slot_allows",
    "FLAGS",
    "Instruction",
    "Program",
    "ProgramBuilder",
    "assemble",
    "disassemble",
    "encode_subword_addressing",
    "instruction_size",
    "program_size",
]

from repro.isa.binary import assemble_binary, decode_program, encode_instruction

__all__ += ["assemble_binary", "decode_program", "encode_instruction"]

"""Two-pass text assembler and a programmatic :class:`ProgramBuilder`.

The assembly dialect is deliberately close to Intel MMX syntax::

    ; four-tap FIR inner loop (paper §2, Figure 1)
    loop:
        movq    mm0, [r1]       ; samples
        pmaddwd mm0, mm1        ; products, pairwise summed
        paddd   mm2, mm0        ; accumulate
        add     r1, 8
        loop    r0, loop        ; dec r0; jnz loop

Labels may appear alone on a line or as a ``name:`` prefix; comments start
with ``;`` or ``#``; immediates accept decimal and ``0x`` hex.
"""

from __future__ import annotations

from repro.errors import AssemblerError
from repro.isa.instructions import Instruction, Program
from repro.isa.opcodes import Opcode, lookup, slot_allows
from repro.isa.operands import Imm, Label, Mem, Operand, parse_memory
from repro.isa.registers import Register, is_register_name, parse_register


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas not inside brackets."""
    parts: list[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise AssemblerError(f"unbalanced ']' in {text!r}")
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if depth != 0:
        raise AssemblerError(f"unbalanced '[' in {text!r}")
    if current.strip():
        parts.append(current)
    return [p.strip() for p in parts if p.strip()]


def _parse_operand(text: str, slot: str, line: int) -> Operand:
    text = text.strip()
    if text.startswith("["):
        return parse_memory(text)
    if is_register_name(text):
        return parse_register(text)
    if slot_allows(slot, "label") and not slot_allows(slot, "imm"):
        return Label(text)
    try:
        return Imm(int(text, 0))
    except ValueError:
        if slot_allows(slot, "label"):
            return Label(text)
        raise AssemblerError(f"cannot parse operand {text!r}", line) from None


def assemble(source: str, name: str = "program") -> Program:
    """Assemble *source* text into a :class:`Program`.

    Pass 1 records label positions; pass 2 builds instructions.  Label
    resolution is validated before returning.
    """
    program = Program(name=name)
    pending_labels: list[str] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        # Leading "label:" prefixes (possibly several).
        while ":" in line:
            head, _, rest = line.partition(":")
            head = head.strip()
            if not head or any(ch.isspace() for ch in head) or "[" in head:
                break
            if is_register_name(head):
                raise AssemblerError(f"label {head!r} shadows a register name", lineno)
            pending_labels.append(head)
            line = rest.strip()
        if not line:
            continue
        mnemonic, _, operand_text = line.partition(" ")
        opcode = lookup(mnemonic)
        texts = _split_operands(operand_text)
        if len(texts) != len(opcode.signature):
            raise AssemblerError(
                f"{opcode.name} expects {len(opcode.signature)} operand(s), got {len(texts)}",
                lineno,
            )
        operands = tuple(
            _parse_operand(text, slot, lineno)
            for text, slot in zip(texts, opcode.signature)
        )
        index = len(program.instructions)
        label = pending_labels[0] if pending_labels else None
        for pending in pending_labels:
            if pending in program.labels:
                raise AssemblerError(f"duplicate label {pending!r}", lineno)
            program.labels[pending] = index
        pending_labels.clear()
        program.instructions.append(
            Instruction(opcode=opcode, operands=operands, label=label, line=lineno)
        )
    if pending_labels:
        raise AssemblerError(f"trailing label(s) {pending_labels} at end of program")
    program.validate()
    return program


class ProgramBuilder:
    """Fluent programmatic assembler used by the kernel library.

    Every opcode becomes a method; operands accept :class:`Register` objects,
    register-name strings, ints (immediates), :class:`Mem` or ``"[r1+8]"``
    strings, and bare strings for labels::

        b = ProgramBuilder("fir")
        b.label("loop")
        b.movq("mm0", "[r1]")
        b.pmaddwd("mm0", "mm1").tag("mul")
        b.loop("r0", "loop")
        program = b.build()
    """

    def __init__(self, name: str = "program") -> None:
        self._program = Program(name=name)
        self._pending: list[str] = []

    def label(self, name: str) -> "ProgramBuilder":
        if name in self._program.labels:
            raise AssemblerError(f"duplicate label {name!r}")
        if is_register_name(name):
            raise AssemblerError(f"label {name!r} shadows a register name")
        self._pending.append(name)
        return self

    def emit(self, mnemonic: str, *raw_operands, tag: str | None = None) -> "ProgramBuilder":
        opcode = lookup(mnemonic)
        if len(raw_operands) != len(opcode.signature):
            raise AssemblerError(
                f"{opcode.name} expects {len(opcode.signature)} operand(s),"
                f" got {len(raw_operands)}"
            )
        operands = tuple(
            self._coerce(raw, slot) for raw, slot in zip(raw_operands, opcode.signature)
        )
        index = len(self._program.instructions)
        label = self._pending[0] if self._pending else None
        for pending in self._pending:
            self._program.labels[pending] = index
        self._pending.clear()
        self._program.instructions.append(
            Instruction(opcode=opcode, operands=operands, label=label, tag=tag)
        )
        return self

    @staticmethod
    def _coerce(raw, slot: str) -> Operand:
        if isinstance(raw, (Register, Imm, Mem, Label)):
            return raw
        if isinstance(raw, int):
            return Imm(raw)
        if isinstance(raw, str):
            text = raw.strip()
            if text.startswith("["):
                return parse_memory(text)
            if is_register_name(text):
                return parse_register(text)
            if slot_allows(slot, "label"):
                return Label(text)
            try:
                return Imm(int(text, 0))
            except ValueError:
                raise AssemblerError(f"cannot coerce operand {raw!r}") from None
        raise AssemblerError(f"cannot coerce operand {raw!r}")

    def tag(self, tag: str) -> "ProgramBuilder":
        """Attach *tag* to the most recently emitted instruction."""
        if not self._program.instructions:
            raise AssemblerError("tag() before any instruction")
        self._program.instructions[-1] = self._program.instructions[-1].with_tag(tag)
        return self

    def __getattr__(self, mnemonic: str):
        # Builder methods for opcodes: b.paddw("mm0", "mm1").  Python keywords
        # and operator-like names use a trailing underscore (b.and_, b.or_).
        name = mnemonic.rstrip("_")
        try:
            lookup(name)
        except AssemblerError:
            raise AttributeError(mnemonic) from None
        return lambda *operands, tag=None: self.emit(name, *operands, tag=tag)

    def build(self) -> Program:
        if self._pending:
            raise AssemblerError(f"trailing label(s) {self._pending} at end of program")
        self._program.validate()
        return self._program


def disassemble(program: Program) -> str:
    """Render *program* back to assembly text (labels on their own lines)."""
    return str(program)

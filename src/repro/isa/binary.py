"""Binary machine-code encoding of the ISA.

A deterministic, fully self-describing byte format with exact round-trip
(``decode_program(assemble_binary(p))`` reproduces the instruction stream).
This complements :mod:`repro.isa.encoding`, which is the *x86-flavoured cost
model* used for the paper's code-size arguments; the binary format here is
the loadable representation (a couple of bytes larger per instruction
because every field is explicit).

Layout per instruction:

=============  =====================================================
field          bytes
=============  =====================================================
opcode         1 (scalar page, id < 0x80) or 2 (MMX page: 0x80|hi, lo)
flags          1 — see bit layout below
register ops   1 byte each: ``0x10|index`` for MMX, ``index`` for
               scalar; one byte per register-capable slot among the
               first two signature slots (a slot consumed by the
               immediate emits none)
index reg      1 byte, iff ``has_index``
displacement   0 / 1 / 4 bytes (signed), per ``disp_size``
immediate      0 / 1 / 2 / 4 bytes (signed), per ``has_imm``+``imm_size``
=============  =====================================================

Flags bits: 0 ``has_mem``, 1 ``mem_slot`` (0/1), 2 ``has_index``,
3-4 ``disp_size`` (0 → none, 1 → 1 byte, 2 → 4 bytes), 5 ``has_imm``,
6-7 ``imm_size`` (0 → 1 byte, 1 → 2 bytes, 2 → 4 bytes).

Branch targets encode as rel-16 *instruction-index* offsets in the
immediate field; :func:`decode_program` regenerates labels ``L<index>``.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instructions import Instruction, Program
from repro.isa.opcodes import Opcode, all_opcodes, lookup, slot_allows
from repro.isa.operands import Imm, Label, Mem, Operand
from repro.isa.registers import MM, R, Register

_SCALAR_IDS: dict[str, int] = {}
_MMX_IDS: dict[str, int] = {}
for _op in all_opcodes():
    table = _MMX_IDS if _op.is_mmx else _SCALAR_IDS
    table[_op.name] = len(table)
if len(_SCALAR_IDS) > 127 or len(_MMX_IDS) > 0x7FFF:
    raise EncodingError("opcode table outgrew the binary format")
_SCALAR_BY_ID = {v: k for k, v in _SCALAR_IDS.items()}
_MMX_BY_ID = {v: k for k, v in _MMX_IDS.items()}

_SCALE_CODE = {1: 0, 2: 1, 4: 2, 8: 3}
_SCALE_FROM_CODE = {v: k for k, v in _SCALE_CODE.items()}

_F_HAS_MEM = 1 << 0
_F_MEM_SLOT = 1 << 1
_F_HAS_INDEX = 1 << 2
_F_DISP_SHIFT = 3  # 2 bits
_F_HAS_IMM = 1 << 5
_F_IMM_SHIFT = 6  # 2 bits

_IMM_BYTES = {0: 1, 1: 2, 2: 4}


def _imm_slot_index(opcode: Opcode) -> int | None:
    """The slot an encoded immediate/label occupies (last one admitting it)."""
    result = None
    for index, slot in enumerate(opcode.signature):
        if slot_allows(slot, "imm") or slot_allows(slot, "label"):
            result = index
    return result


def _reg_byte(reg: Register) -> int:
    return (0x10 if reg.is_mmx else 0) | (reg.index & 0xF)


def _byte_reg(value: int) -> Register:
    if value & 0x10:
        return MM[value & 0x7]
    return R[value & 0xF]


def encode_instruction(instr: Instruction, rel: int | None = None) -> bytes:
    """Encode one instruction (*rel* resolves a branch label, if any)."""
    opcode = instr.opcode
    body = bytearray()
    flags = 0
    reg_bytes: list[int] = []
    mem: Mem | None = None
    imm_value: int | None = None
    imm_slot = _imm_slot_index(opcode)

    for index, operand in enumerate(instr.operands):
        if isinstance(operand, Register):
            if index < 2:
                reg_bytes.append(_reg_byte(operand))
            else:
                raise EncodingError("register in slot 3+ is not encodable")
        elif isinstance(operand, Mem):
            if index > 1:
                raise EncodingError("memory operand beyond slot 2")
            flags |= _F_HAS_MEM | (_F_MEM_SLOT if index == 1 else 0)
            reg_bytes.append(_reg_byte(operand.base))
            mem = operand
        elif isinstance(operand, Imm):
            if index != imm_slot:
                raise EncodingError(f"immediate in unexpected slot {index}")
            imm_value = operand.value
        elif isinstance(operand, Label):
            if rel is None:
                raise EncodingError("labels must be resolved before encoding")
            imm_value = rel
        else:  # pragma: no cover - operand types are closed
            raise EncodingError(f"unsupported operand {operand!r}")

    if imm_value is not None:
        flags |= _F_HAS_IMM
        if instr.is_branch or not -128 <= imm_value <= 127:
            if -(2**15) <= imm_value < 2**15:
                flags |= 1 << _F_IMM_SHIFT
            elif -(2**31) <= imm_value < 2**31:
                flags |= 2 << _F_IMM_SHIFT
            else:
                raise EncodingError(f"immediate {imm_value} exceeds 32 bits")

    disp_bytes = b""
    index_byte = b""
    if mem is not None and mem.index is not None:
        flags |= _F_HAS_INDEX
        # Scale rides in the index byte's high bits (meaningful only here).
        index_byte = bytes([_reg_byte(mem.index) | (_SCALE_CODE[mem.scale] << 5)])
    if mem is not None and mem.disp:
        if -128 <= mem.disp <= 127:
            flags |= 1 << _F_DISP_SHIFT
            disp_bytes = mem.disp.to_bytes(1, "little", signed=True)
        else:
            flags |= 2 << _F_DISP_SHIFT
            disp_bytes = mem.disp.to_bytes(4, "little", signed=True)

    if opcode.is_mmx:
        opcode_id = _MMX_IDS[opcode.name]
        body += bytes([0x80 | (opcode_id >> 8), opcode_id & 0xFF])
    else:
        body.append(_SCALAR_IDS[opcode.name])
    body.append(flags)
    body += bytes(reg_bytes)
    body += index_byte
    body += disp_bytes
    if imm_value is not None:
        size = _IMM_BYTES[(flags >> _F_IMM_SHIFT) & 0b11]
        body += imm_value.to_bytes(size, "little", signed=True)
    return bytes(body)


def assemble_binary(program: Program) -> bytes:
    """Encode a whole program (branch labels become rel16 index offsets)."""
    chunks = []
    for index, instr in enumerate(program.instructions):
        rel = None
        if instr.is_branch:
            label = next(op for op in instr.operands if isinstance(op, Label))
            rel = program.target(label.name) - index
        chunks.append(encode_instruction(instr, rel))
    return b"".join(chunks)


def _decode_one(raw: bytes, offset: int) -> tuple[Opcode, list, int | None, int]:
    """Decode at *offset*: (opcode, operands-with-rel-None, rel, new offset)."""
    def take(count: int) -> bytes:
        nonlocal offset
        if offset + count > len(raw):
            raise EncodingError(f"truncated instruction at byte {offset}")
        piece = raw[offset : offset + count]
        offset += count
        return piece

    first = take(1)[0]
    if first & 0x80:
        opcode_id = ((first & 0x7F) << 8) | take(1)[0]
        name = _MMX_BY_ID.get(opcode_id)
    else:
        name = _SCALAR_BY_ID.get(first)
    if name is None:
        raise EncodingError(f"unknown opcode encoding {first:#x}")
    opcode = lookup(name)
    flags = take(1)[0]

    has_mem = bool(flags & _F_HAS_MEM)
    mem_slot = 1 if flags & _F_MEM_SLOT else 0
    has_imm = bool(flags & _F_HAS_IMM)
    imm_slot = _imm_slot_index(opcode) if has_imm else None

    # How many register/base bytes follow?  One per register-capable slot of
    # the first two that the immediate does not occupy.
    reg_slot_indexes = [
        index
        for index, slot in enumerate(opcode.signature[:2])
        if (slot_allows(slot, "mm") or slot_allows(slot, "r") or slot_allows(slot, "mem"))
        and index != imm_slot
    ]
    raw_regs = [take(1)[0] for _ in reg_slot_indexes]

    mem: Mem | None = None
    if has_mem:
        index_reg = None
        scale = 1
        if flags & _F_HAS_INDEX:
            index_byte = take(1)[0]
            index_reg = R[index_byte & 0xF]
            scale = _SCALE_FROM_CODE[(index_byte >> 5) & 0b11]
        disp = 0
        disp_code = (flags >> _F_DISP_SHIFT) & 0b11
        if disp_code == 1:
            disp = int.from_bytes(take(1), "little", signed=True)
        elif disp_code == 2:
            disp = int.from_bytes(take(4), "little", signed=True)
        base_byte = raw_regs[reg_slot_indexes.index(mem_slot)]
        mem = Mem(base=R[base_byte & 0xF], disp=disp, index=index_reg, scale=scale)

    imm_value: int | None = None
    if has_imm:
        size = _IMM_BYTES[(flags >> _F_IMM_SHIFT) & 0b11]
        imm_value = int.from_bytes(take(size), "little", signed=True)

    operands: list[Operand | None] = []
    reg_cursor = 0
    rel: int | None = None
    for index, slot in enumerate(opcode.signature):
        if index == imm_slot:
            if slot_allows(slot, "label") and not slot_allows(slot, "imm"):
                rel = imm_value
                operands.append(None)  # patched by decode_program
            else:
                operands.append(Imm(imm_value))
        elif has_mem and index == mem_slot:
            operands.append(mem)
            reg_cursor += 1
        elif index < 2 and index in reg_slot_indexes:
            operands.append(_byte_reg(raw_regs[reg_cursor]))
            reg_cursor += 1
        else:  # pragma: no cover - signatures are closed
            raise EncodingError(f"cannot place operand for slot {slot!r}")
    return opcode, operands, rel, offset


def decode_program(raw: bytes, name: str = "decoded") -> Program:
    """Decode a binary stream back into a :class:`Program`.

    Branch targets become labels ``L<index>`` attached to their target
    instructions.
    """
    decoded: list[tuple[Opcode, list, int | None]] = []
    offset = 0
    while offset < len(raw):
        opcode, operands, rel, offset = _decode_one(raw, offset)
        decoded.append((opcode, operands, rel))

    targets: dict[int, str] = {}
    for index, (_, _, rel) in enumerate(decoded):
        if rel is not None:
            target = index + rel
            if not 0 <= target <= len(decoded):
                raise EncodingError(f"branch at {index} targets {target}: out of range")
            targets.setdefault(target, f"L{target}")

    program = Program(name=name)
    for index, (opcode, operands, rel) in enumerate(decoded):
        final = [
            Label(targets[index + rel]) if operand is None else operand
            for operand in operands
        ]
        program.instructions.append(Instruction(opcode=opcode, operands=tuple(final)))
    program.labels.update({label: index for index, label in targets.items()})
    program.validate()
    return program

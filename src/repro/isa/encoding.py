"""Instruction size model for code-size accounting.

The paper rejects sub-word register addressing through extra instruction bits
because it "would change the instruction set architecture and increase the
code size significantly" (§3).  To quantify such comparisons we assign each
instruction a deterministic byte size using x86-flavoured rules:

* 2 bytes of opcode + register specifier,
* +1 byte for a memory operand (ModRM-style), +1 more for an index register,
* +1 byte for a displacement in [-128, 127], +4 for wider displacements,
* +1 byte for an 8-bit immediate, +4 otherwise,
* +2 bytes for a branch target (rel16),
* MMX opcodes carry a +1 escape byte (the 0x0F prefix).

``encode_subword_addressing`` models the rejected alternative: the same
instruction stream with 6 extra bits per MMX operand, rounded up to bytes.
"""

from __future__ import annotations

import math

from repro.isa.instructions import Instruction, Program
from repro.isa.opcodes import InstrClass
from repro.isa.operands import Imm, Label, Mem
from repro.isa.registers import Register


def instruction_size(instr: Instruction) -> int:
    """Encoded size of one instruction in bytes."""
    size = 2
    if instr.is_mmx:
        size += 1  # 0x0F escape prefix
    for operand in instr.operands:
        if isinstance(operand, Mem):
            size += 1
            if operand.index is not None:
                size += 1
            if operand.disp != 0:
                size += 1 if -128 <= operand.disp <= 127 else 4
        elif isinstance(operand, Imm):
            size += 1 if -128 <= operand.value <= 127 else 4
        elif isinstance(operand, Label):
            size += 2
    return size


def program_size(program: Program) -> int:
    """Total encoded size of *program* in bytes."""
    return sum(instruction_size(instr) for instr in program.instructions)


def encode_subword_addressing(program: Program, bits_per_operand: int = 6) -> int:
    """Size of *program* if MMX operands carried sub-word address fields.

    This is the ISA-change alternative the paper rejects in §3: every MMX
    register operand gains *bits_per_operand* bits of sub-word selector.
    Per-instruction overhead is rounded up to whole bytes.
    """
    total = 0
    for instr in program.instructions:
        size = instruction_size(instr)
        if instr.is_mmx:
            mmx_operands = sum(
                1 for op in instr.operands if isinstance(op, Register) and op.is_mmx
            )
            size += math.ceil(mmx_operands * bits_per_operand / 8)
        total += size
    return total

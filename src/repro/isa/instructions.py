"""Instruction IR and the :class:`Program` container.

An :class:`Instruction` is an opcode plus validated operands, annotated with
everything the pairing engine and the SPU off-load pass need: read/written
register sets, memory behaviour, and whether it is (or may be treated as) a
sub-word permutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import AssemblerError
from repro.isa.opcodes import InstrClass, Opcode, slot_allows
from repro.isa.operands import Imm, Label, Mem, Operand
from repro.isa.registers import Register

#: Pseudo-register representing the scalar condition flags for hazard checks.
FLAGS = "flags"


def _operand_kind(operand: Operand) -> str:
    if isinstance(operand, Register):
        return "mm" if operand.is_mmx else "r"
    if isinstance(operand, Imm):
        return "imm"
    if isinstance(operand, Mem):
        return "mem"
    if isinstance(operand, Label):
        return "label"
    raise AssemblerError(f"unsupported operand {operand!r}")


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Instances are immutable; transformation passes (e.g. the SPU off-load
    pass) build new instructions with :func:`dataclasses.replace`.
    """

    opcode: Opcode
    operands: tuple[Operand, ...] = ()
    #: Source label attached to this instruction (branch target name).
    label: str | None = None
    #: Free-form annotation set by kernels/passes (e.g. ``"align"`` marks a
    #: shift used purely for data alignment).
    tag: str | None = None
    #: Source line for diagnostics.
    line: int | None = None

    def __post_init__(self) -> None:
        sig = self.opcode.signature
        if len(self.operands) != len(sig):
            raise AssemblerError(
                f"{self.opcode.name} expects {len(sig)} operand(s), got {len(self.operands)}",
                self.line,
            )
        mem_count = 0
        for slot, operand in zip(sig, self.operands):
            kind = _operand_kind(operand)
            if not slot_allows(slot, kind):
                raise AssemblerError(
                    f"{self.opcode.name}: operand {operand} ({kind}) not allowed in slot {slot!r}",
                    self.line,
                )
            if kind == "mem":
                mem_count += 1
        if mem_count > 1:
            raise AssemblerError(
                f"{self.opcode.name}: at most one memory operand allowed", self.line
            )
        if self.opcode.sem in ("movq", "movd"):
            kinds = tuple(_operand_kind(op) for op in self.operands)
            if "mm" not in kinds:
                raise AssemblerError(
                    f"{self.opcode.name} requires an MMX register operand", self.line
                )
            if kinds == ("mem", "mem"):
                raise AssemblerError(f"{self.opcode.name}: memory-to-memory move", self.line)

    # ---- structural queries -------------------------------------------------

    @property
    def name(self) -> str:
        return self.opcode.name

    @property
    def iclass(self) -> InstrClass:
        return self.opcode.iclass

    @property
    def is_mmx(self) -> bool:
        return self.opcode.is_mmx

    @property
    def is_branch(self) -> bool:
        return self.opcode.is_branch

    @property
    def mem_operand(self) -> Mem | None:
        for operand in self.operands:
            if isinstance(operand, Mem):
                return operand
        return None

    @property
    def reads_memory(self) -> bool:
        if self.iclass is InstrClass.LOAD:
            return True
        if self.iclass is InstrClass.STORE or self.opcode.sem == "lea":
            return False
        # movq/movd with a memory *source*; packed ops with mem second operand.
        mem = self.mem_operand
        if mem is None:
            return False
        return self.operands and not isinstance(self.operands[0], Mem)

    @property
    def writes_memory(self) -> bool:
        if self.iclass is InstrClass.STORE:
            return True
        return bool(self.operands) and isinstance(self.operands[0], Mem)

    @property
    def accesses_memory(self) -> bool:
        return self.mem_operand is not None

    @property
    def is_permute(self) -> bool:
        """Unconditionally a data-permutation instruction (pack/unpack/shuffle)."""
        return self.opcode.is_permute

    @property
    def is_alignment_candidate(self) -> bool:
        """Permutation, or data movement the off-load pass may subsume.

        ``movq mm,mm`` copies and byte-granular ``psllq/psrlq`` shifts move
        whole sub-words, so the SPU crossbar can express them (§3); other
        ``maybe_permute`` uses (memory moves, odd-bit shifts) cannot.
        """
        if self.opcode.is_permute:
            return True
        if not self.opcode.maybe_permute:
            return False
        if self.opcode.sem == "movq":
            return all(isinstance(op, Register) and op.is_mmx for op in self.operands)
        if self.opcode.sem in ("psll", "psrl") and self.opcode.width == 64:
            count = self.operands[1]
            return isinstance(count, Imm) and count.value % 8 == 0
        return False

    # ---- hazard sets ---------------------------------------------------------

    def _address_regs(self) -> set:
        mem = self.mem_operand
        if mem is None:
            return set()
        regs = {mem.base}
        if mem.index is not None:
            regs.add(mem.index)
        return regs

    @property
    def dest(self) -> Register | None:
        """The destination *register*, if any (None for stores/branches)."""
        if self.iclass in (InstrClass.BRANCH, InstrClass.STORE, InstrClass.SYS):
            if self.opcode.sem == "loop":
                return self.operands[0]  # the decremented counter
            return None
        if self.opcode.sem == "cmp":
            return None
        if not self.operands:
            return None
        first = self.operands[0]
        return first if isinstance(first, Register) else None

    def regs_written(self) -> frozenset:
        """Registers (plus the flags pseudo-register) this instruction writes.

        Memoized: instructions are immutable and the pipeline asks on every
        dynamic issue.
        """
        cached = self.__dict__.get("_regs_written")
        if cached is not None:
            return cached
        written: set = set()
        dest = self.dest
        if dest is not None:
            written.add(dest)
        if self.opcode.sem in ("cmp", "add", "sub", "and", "or", "xor", "imul", "shl",
                               "shr", "sar", "inc", "dec", "neg", "loop"):
            written.add(FLAGS)
        result = frozenset(written)
        object.__setattr__(self, "_regs_written", result)
        return result

    def regs_read(self) -> frozenset:
        """Registers (plus flags) this instruction reads (memoized)."""
        cached = self.__dict__.get("_regs_read")
        if cached is not None:
            return cached
        read: set = set(self._address_regs())
        sem = self.opcode.sem
        if sem in ("jz", "jnz", "js", "jns", "jl", "jge", "jle", "jg"):
            read.add(FLAGS)
            return self._memo_read(read)
        if sem == "jmp":
            return self._memo_read(read)
        operands = self.operands
        if sem in ("movq", "movd", "mov", "lea") or self.iclass is InstrClass.LOAD:
            # Pure moves/loads read only their source operand.
            for operand in operands[1:]:
                if isinstance(operand, Register):
                    read.add(operand)
        elif self.iclass is InstrClass.STORE:
            for operand in operands[1:]:
                if isinstance(operand, Register):
                    read.add(operand)
        else:
            # Read-modify-write style: destination register is also a source.
            for operand in operands:
                if isinstance(operand, Register):
                    read.add(operand)
        if sem == "cmp" and isinstance(operands[0], Register):
            read.add(operands[0])
        return self._memo_read(read)

    def _memo_read(self, read: set) -> frozenset:
        result = frozenset(read)
        object.__setattr__(self, "_regs_read", result)
        return result

    def mmx_regs_read(self) -> frozenset:
        return frozenset(r for r in self.regs_read() if isinstance(r, Register) and r.is_mmx)

    def mmx_regs_written(self) -> frozenset:
        return frozenset(r for r in self.regs_written() if isinstance(r, Register) and r.is_mmx)

    def with_tag(self, tag: str) -> "Instruction":
        """A copy of this instruction carrying annotation *tag*."""
        return replace(self, tag=tag)

    def __str__(self) -> str:
        text = self.opcode.name
        if self.operands:
            text += " " + ", ".join(str(op) for op in self.operands)
        if self.label:
            text = f"{self.label}: {text}"
        return text


@dataclass
class Program:
    """An assembled program: instructions plus the label → index map."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def target(self, label: str) -> int:
        """Instruction index of *label*."""
        try:
            return self.labels[label]
        except KeyError as exc:
            raise AssemblerError(f"undefined label {label!r}") from exc

    def validate(self) -> None:
        """Check that every referenced label resolves."""
        for instr in self.instructions:
            for operand in instr.operands:
                if isinstance(operand, Label):
                    self.target(operand.name)

    def permute_indices(self) -> list[int]:
        """Indices of unconditional permutation instructions."""
        return [i for i, instr in enumerate(self.instructions) if instr.is_permute]

    def mmx_count(self) -> int:
        """Number of MMX-class static instructions."""
        return sum(1 for instr in self.instructions if instr.is_mmx)

    def __str__(self) -> str:
        lines = []
        targets: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            targets.setdefault(index, []).append(label)
        for i, instr in enumerate(self.instructions):
            for label in targets.get(i, ()):  # emit label lines before the instr
                lines.append(f"{label}:")
            text = str(instr) if instr.label is None else str(instr).split(": ", 1)[-1]
            lines.append(f"    {text}")
        return "\n".join(lines)

"""Opcode table: structural metadata for every instruction the machine runs.

Each opcode carries the properties the cycle model and the SPU off-load pass
need: execution class (which shared functional unit it occupies), latency,
legal pipes, and whether it is a *data-permutation* instruction — the
pack/merge/unpack family the paper measures at >23% of dynamic instructions on
TriMedia (§1) and which the SPU makes transparent.

The pairing-relevant classes mirror the published Pentium-MMX constraints
(§2): both pipes execute arithmetic/logic, but only one multiply and only one
shift/pack/permutation instruction may issue per cycle, and memory accesses
use the U pipe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AssemblerError


class InstrClass(enum.Enum):
    """Functional-unit class used for pairing rules and statistics."""

    MMX_ALU = "mmx_alu"  # packed add/sub/logic/compare: either pipe
    MMX_MUL = "mmx_mul"  # packed multiply: one per cycle, 3-cycle latency
    MMX_SHIFT = "mmx_shift"  # shift/pack/unpack unit: one per cycle
    MMX_MOV = "mmx_mov"  # movq/movd data movement
    SCALAR = "scalar"  # integer ALU: either pipe
    LOAD = "load"  # memory read: U pipe
    STORE = "store"  # memory write: U pipe
    BRANCH = "branch"  # control flow: pairs only as the second instruction
    SYS = "sys"  # nop/halt/emms

    @property
    def is_mmx(self) -> bool:
        return self in (
            InstrClass.MMX_ALU,
            InstrClass.MMX_MUL,
            InstrClass.MMX_SHIFT,
            InstrClass.MMX_MOV,
        )


#: Operand-slot specs: a slot string is a ``|``-separated set of kinds drawn
#: from ``mm`` (MMX register), ``r`` (scalar register), ``imm``, ``mem``,
#: ``label``.
Slot = str

U = frozenset({"U"})
V = frozenset({"V"})
UV = frozenset({"U", "V"})


@dataclass(frozen=True, slots=True)
class Opcode:
    """Immutable description of one instruction mnemonic."""

    name: str
    iclass: InstrClass
    signature: tuple[Slot, ...]
    latency: int = 1
    pipes: frozenset = UV
    #: Pure data-permutation instruction (pack/unpack/shuffle) that the SPU
    #: interconnect can subsume (paper §3).
    is_permute: bool = False
    #: Data movement that the off-load pass may treat as a permutation when
    #: its operands allow (``movq mm,mm``; byte-granular ``psllq``/``psrlq``).
    maybe_permute: bool = False
    #: Semantic key used by the executor dispatch (shared across widths).
    sem: str = ""
    #: Sub-word width in bits for packed operations (None for full-word ops).
    width: int | None = None
    #: True for opcodes beyond the base MMX set (e.g. ``pshufw`` from SSE).
    extension: bool = False

    def __post_init__(self) -> None:
        if not self.sem:
            object.__setattr__(self, "sem", self.name)

    @property
    def is_mmx(self) -> bool:
        return self.iclass.is_mmx

    @property
    def is_branch(self) -> bool:
        return self.iclass is InstrClass.BRANCH

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


_TABLE: dict[str, Opcode] = {}


def _add(opcode: Opcode) -> Opcode:
    if opcode.name in _TABLE:
        raise ValueError(f"duplicate opcode {opcode.name}")
    _TABLE[opcode.name] = opcode
    return opcode


def _packed(name: str, sem: str, width: int | None, iclass: InstrClass, **kw) -> None:
    _add(Opcode(name=name, iclass=iclass, signature=("mm", "mm|mem"), sem=sem, width=width, **kw))


# --- MMX packed arithmetic / logic / compare (either pipe, 1 cycle) --------
for _suffix, _w in (("b", 8), ("w", 16), ("d", 32), ("q", 64)):
    _packed(f"padd{_suffix}", "padd", _w, InstrClass.MMX_ALU)
for _suffix, _w in (("b", 8), ("w", 16), ("d", 32)):
    _packed(f"psub{_suffix}", "psub", _w, InstrClass.MMX_ALU)
for _suffix, _w in (("b", 8), ("w", 16)):
    _packed(f"padds{_suffix}", "padds", _w, InstrClass.MMX_ALU)
    _packed(f"paddus{_suffix}", "paddus", _w, InstrClass.MMX_ALU)
    _packed(f"psubs{_suffix}", "psubs", _w, InstrClass.MMX_ALU)
    _packed(f"psubus{_suffix}", "psubus", _w, InstrClass.MMX_ALU)
for _name in ("pand", "pandn", "por", "pxor"):
    _packed(_name, _name, None, InstrClass.MMX_ALU)
for _suffix, _w in (("b", 8), ("w", 16), ("d", 32)):
    _packed(f"pcmpeq{_suffix}", "pcmpeq", _w, InstrClass.MMX_ALU)
    _packed(f"pcmpgt{_suffix}", "pcmpgt", _w, InstrClass.MMX_ALU)
_packed("pavgb", "pavg", 8, InstrClass.MMX_ALU, extension=True)
_packed("pavgw", "pavg", 16, InstrClass.MMX_ALU, extension=True)
_packed("pminsw", "pmins", 16, InstrClass.MMX_ALU, extension=True)
_packed("pmaxsw", "pmaxs", 16, InstrClass.MMX_ALU, extension=True)
_packed("pminub", "pminu", 8, InstrClass.MMX_ALU, extension=True)
_packed("pmaxub", "pmaxu", 8, InstrClass.MMX_ALU, extension=True)

# --- MMX multiply (one per cycle, 3-cycle latency per the paper §2) --------
for _name in ("pmullw", "pmulhw", "pmaddwd"):
    _packed(_name, _name, 16, InstrClass.MMX_MUL, latency=3)
_packed("pmulhuw", "pmulhuw", 16, InstrClass.MMX_MUL, latency=3, extension=True)
_packed("pmuludq", "pmuludq", 32, InstrClass.MMX_MUL, latency=3, extension=True)

# --- MMX shift / pack / unpack (shared shifter: one per cycle) -------------
for _suffix, _w in (("w", 16), ("d", 32), ("q", 64)):
    _add(
        Opcode(
            name=f"psll{_suffix}",
            iclass=InstrClass.MMX_SHIFT,
            signature=("mm", "imm|mm"),
            sem="psll",
            width=_w,
            maybe_permute=(_w == 64),
        )
    )
    _add(
        Opcode(
            name=f"psrl{_suffix}",
            iclass=InstrClass.MMX_SHIFT,
            signature=("mm", "imm|mm"),
            sem="psrl",
            width=_w,
            maybe_permute=(_w == 64),
        )
    )
for _suffix, _w in (("w", 16), ("d", 32)):
    _add(
        Opcode(
            name=f"psra{_suffix}",
            iclass=InstrClass.MMX_SHIFT,
            signature=("mm", "imm|mm"),
            sem="psra",
            width=_w,
        )
    )
_packed("packsswb", "packss", 16, InstrClass.MMX_SHIFT, is_permute=True)
_packed("packssdw", "packss", 32, InstrClass.MMX_SHIFT, is_permute=True)
_packed("packuswb", "packus", 16, InstrClass.MMX_SHIFT, is_permute=True)
for _suffix, _w in (("bw", 8), ("wd", 16), ("dq", 32)):
    _packed(f"punpckl{_suffix}", "punpckl", _w, InstrClass.MMX_SHIFT, is_permute=True)
    _packed(f"punpckh{_suffix}", "punpckh", _w, InstrClass.MMX_SHIFT, is_permute=True)
_add(
    Opcode(
        name="pshufw",
        iclass=InstrClass.MMX_SHIFT,
        signature=("mm", "mm|mem", "imm"),
        sem="pshufw",
        width=16,
        is_permute=True,
        extension=True,
    )
)
# Baseline for the paper's §6 comparison: an Altivec/TigerSHARC-style
# *explicit* two-source byte permute.  ``vperm dst, src, imm32`` selects each
# destination byte from the 16-byte concatenation (dst, src) by the
# corresponding control nibble.  Unlike the SPU it occupies an instruction
# slot, carries a 4-byte control immediate, and reaches only two registers.
_add(
    Opcode(
        name="vperm",
        iclass=InstrClass.MMX_SHIFT,
        signature=("mm", "mm", "imm"),
        sem="vperm",
        width=8,
        is_permute=True,
        extension=True,
    )
)

# --- MMX data movement ------------------------------------------------------
_add(
    Opcode(
        name="movq",
        iclass=InstrClass.MMX_MOV,
        signature=("mm|mem", "mm|mem"),
        sem="movq",
        maybe_permute=True,  # movq mm,mm is a candidate realignment move
    )
)
_add(
    Opcode(
        name="movd",
        iclass=InstrClass.MMX_MOV,
        signature=("mm|r|mem", "mm|r|mem"),
        sem="movd",
        width=32,
    )
)

# --- Scalar integer ALU ------------------------------------------------------
for _name in ("mov", "add", "sub", "and", "or", "xor"):
    _add(Opcode(name=_name, iclass=InstrClass.SCALAR, signature=("r", "r|imm"), sem=_name))
# Scalar multiply: not pipelined on the Pentium; modeled with 4-cycle latency.
_add(Opcode(name="imul", iclass=InstrClass.SCALAR, signature=("r", "r|imm"), sem="imul", latency=4))
for _name in ("shl", "shr", "sar"):
    _add(Opcode(name=_name, iclass=InstrClass.SCALAR, signature=("r", "imm"), sem=_name))
_add(Opcode(name="cmp", iclass=InstrClass.SCALAR, signature=("r", "r|imm"), sem="cmp"))
for _name in ("inc", "dec", "neg"):
    _add(Opcode(name=_name, iclass=InstrClass.SCALAR, signature=("r",), sem=_name))
_add(Opcode(name="lea", iclass=InstrClass.SCALAR, signature=("r", "mem"), sem="lea"))

# --- Scalar loads / stores (U pipe only, 1 cycle assuming L1 hit, §5.2.1) ---
for _name, _w in (("ldw", 32), ("ldh", 16), ("ldhs", 16), ("ldb", 8)):
    _add(
        Opcode(name=_name, iclass=InstrClass.LOAD, signature=("r", "mem"), sem=_name, width=_w, pipes=U)
    )
for _name, _w in (("stw", 32), ("sth", 16), ("stb", 8)):
    _add(
        Opcode(name=_name, iclass=InstrClass.STORE, signature=("mem", "r"), sem=_name, width=_w, pipes=U)
    )

# --- Control flow -----------------------------------------------------------
_add(Opcode(name="jmp", iclass=InstrClass.BRANCH, signature=("label",), sem="jmp"))
for _name in ("jz", "jnz", "js", "jns", "jl", "jge", "jle", "jg"):
    _add(Opcode(name=_name, iclass=InstrClass.BRANCH, signature=("label",), sem=_name))
# Fused decrement-and-branch: dec reg; jnz label (deterministic loop idiom).
_add(Opcode(name="loop", iclass=InstrClass.BRANCH, signature=("r", "label"), sem="loop"))

# --- System ------------------------------------------------------------------
_add(Opcode(name="nop", iclass=InstrClass.SYS, signature=(), sem="nop"))
_add(Opcode(name="halt", iclass=InstrClass.SYS, signature=(), sem="halt"))
_add(Opcode(name="emms", iclass=InstrClass.SYS, signature=(), sem="emms"))


def lookup(name: str) -> Opcode:
    """Return the opcode for *name*, raising :class:`AssemblerError` if unknown."""
    opcode = _TABLE.get(name.strip().lower())
    if opcode is None:
        raise AssemblerError(f"unknown opcode {name!r}")
    return opcode


def all_opcodes() -> tuple[Opcode, ...]:
    """Every opcode in the table (stable definition order)."""
    return tuple(_TABLE.values())


def slot_allows(slot: Slot, kind: str) -> bool:
    """True when operand *kind* (``mm``/``r``/``imm``/``mem``/``label``) fits *slot*."""
    return kind in slot.split("|")

"""Instruction operand types: registers, immediates, memory refs, labels."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.isa.registers import Register, is_register_name, parse_register


@dataclass(frozen=True, slots=True)
class Imm:
    """Immediate operand (signed 32-bit range is enforced at encode time)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Mem:
    """Memory operand ``[base + index*scale + disp]``.

    ``base`` is required; ``index`` optional with power-of-two ``scale``.
    """

    base: Register
    disp: int = 0
    index: Register | None = None
    scale: int = 1

    def __post_init__(self) -> None:
        if self.base.is_mmx or (self.index is not None and self.index.is_mmx):
            raise AssemblerError("memory addressing uses scalar registers only")
        if self.scale not in (1, 2, 4, 8):
            raise AssemblerError(f"scale must be 1/2/4/8, got {self.scale}")

    def __str__(self) -> str:
        parts = [self.base.name]
        if self.index is not None:
            parts.append(f"{self.index.name}*{self.scale}" if self.scale != 1 else self.index.name)
        text = "+".join(parts)
        if self.disp > 0:
            text += f"+{self.disp}"
        elif self.disp < 0:
            text += str(self.disp)
        return f"[{text}]"


@dataclass(frozen=True, slots=True)
class Label:
    """Symbolic branch target, resolved by the assembler's second pass."""

    name: str

    def __str__(self) -> str:
        return self.name


#: Union type of every operand an instruction can carry.
Operand = Register | Imm | Mem | Label


def parse_memory(text: str) -> Mem:
    """Parse a memory operand like ``[r1]``, ``[r1+8]`` or ``[r1+r2*4-6]``."""
    inner = text.strip()
    if not (inner.startswith("[") and inner.endswith("]")):
        raise AssemblerError(f"malformed memory operand {text!r}")
    inner = inner[1:-1].replace(" ", "")
    if not inner:
        raise AssemblerError(f"empty memory operand {text!r}")
    # Tokenize on +/- while keeping the sign attached to each term.
    terms: list[str] = []
    current = ""
    for ch in inner:
        if ch in "+-" and current:
            terms.append(current)
            current = ch if ch == "-" else ""
        else:
            current += ch
    terms.append(current)

    base: Register | None = None
    index: Register | None = None
    scale = 1
    disp = 0
    for term in terms:
        if not term or term == "-":
            raise AssemblerError(f"malformed memory operand {text!r}")
        neg = term.startswith("-")
        body = term[1:] if neg else term
        if "*" in body:
            reg_name, _, scale_text = body.partition("*")
            if neg or not is_register_name(reg_name):
                raise AssemblerError(f"malformed scaled index in {text!r}")
            if index is not None:
                raise AssemblerError(f"multiple index registers in {text!r}")
            index = parse_register(reg_name)
            try:
                scale = int(scale_text, 0)
            except ValueError as exc:
                raise AssemblerError(f"bad scale in {text!r}") from exc
        elif is_register_name(body):
            if neg:
                raise AssemblerError(f"negated register in {text!r}")
            if base is None:
                base = parse_register(body)
            elif index is None:
                index = parse_register(body)
            else:
                raise AssemblerError(f"too many registers in {text!r}")
        else:
            try:
                value = int(body, 0)
            except ValueError as exc:
                raise AssemblerError(f"bad displacement {body!r} in {text!r}") from exc
            disp += -value if neg else value
    if base is None:
        raise AssemblerError(f"memory operand {text!r} needs a base register")
    return Mem(base=base, disp=disp, index=index, scale=scale)

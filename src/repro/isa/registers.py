"""Register model: the eight 64-bit MMX registers plus a scalar file.

The MMX registers MM0–MM7 are the sub-word vector registers the SPU's unified
register shadows (8 × 64 bits = 512 bits, §3).  The scalar file models the
Pentium integer side — addresses, loop counters and branches live there, which
is why the paper argues an extra MMX pipe stage does not lengthen the branch
resolution path (§5.1.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AssemblerError

#: Number of MMX registers (MM0..MM7).
NUM_MMX_REGS = 8

#: Number of scalar integer registers (r0..r15).
NUM_SCALAR_REGS = 16

#: Width of an MMX register in bits / bytes.
MMX_BITS = 64
MMX_BYTES = 8

#: Width of a scalar register in bits.
SCALAR_BITS = 32
SCALAR_MASK = (1 << SCALAR_BITS) - 1


class RegClass(enum.Enum):
    """Architectural register file a register belongs to."""

    MMX = "mmx"
    SCALAR = "scalar"


@dataclass(frozen=True, slots=True, eq=False)
class Register:
    """An architectural register (immutable, interned via module tables).

    Equality and hashing are by (file, index) but precomputed — registers are
    compared and hashed millions of times in the pipeline's hazard checks.
    """

    cls: RegClass
    index: int

    def __eq__(self, other) -> bool:
        return (
            self is other
            or (isinstance(other, Register)
                and self.cls is other.cls and self.index == other.index)
        )

    def __hash__(self) -> int:
        # MMX registers hash to 16+index, scalars to their index: stable,
        # collision-free across the two files, and a single arithmetic op.
        return self.index + (16 if self.cls is RegClass.MMX else 0)

    @property
    def name(self) -> str:
        prefix = "mm" if self.cls is RegClass.MMX else "r"
        return f"{prefix}{self.index}"

    @property
    def is_mmx(self) -> bool:
        return self.cls is RegClass.MMX

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"Register({self.name})"


#: Interned MMX registers, MM[i] is MMi.
MM: tuple[Register, ...] = tuple(Register(RegClass.MMX, i) for i in range(NUM_MMX_REGS))

#: Interned scalar registers, R[i] is ri.
R: tuple[Register, ...] = tuple(Register(RegClass.SCALAR, i) for i in range(NUM_SCALAR_REGS))

_BY_NAME: dict[str, Register] = {reg.name: reg for reg in (*MM, *R)}


def parse_register(name: str) -> Register:
    """Look up a register by its assembly name (``mm3``, ``r11``)."""
    reg = _BY_NAME.get(name.strip().lower())
    if reg is None:
        raise AssemblerError(f"unknown register {name!r}")
    return reg


def is_register_name(name: str) -> bool:
    """True when *name* names an architectural register."""
    return name.strip().lower() in _BY_NAME

"""Media kernel library: the paper's eight benchmarks plus the §4 example."""

from repro.kernels.base import (
    COEFF_BASE,
    INPUT_BASE,
    MEMORY_SIZE,
    OUTPUT_BASE,
    SCRATCH_BASE,
    TABLE_BASE,
    Kernel,
    KernelComparison,
    LoopSpec,
)
from repro.kernels.dct import DCTKernel, dct_matrix_q12
from repro.kernels.dotprod import DotProductKernel
from repro.kernels.fft import FFT128Kernel, FFT1024Kernel, FFTKernel
from repro.kernels.fir import FIR12Kernel, FIR22Kernel, FIRKernel
from repro.kernels.iir import IIRKernel
from repro.kernels.matmul import MatMulKernel
from repro.kernels.transpose import TransposeKernel
from repro.kernels.sad import SADKernel
from repro.kernels.colorspace import ColorSpaceKernel
from repro.kernels.matvec import MatVecKernel
from repro.kernels.idct import IDCTKernel, roundtrip_error
from repro.kernels.viterbi import ViterbiKernel, convolutional_encode
from repro.kernels.registry import (
    ALL_KERNELS,
    EXTENSION_KERNELS,
    TABLE2_KERNELS,
    make_kernel,
)

__all__ = [
    "COEFF_BASE",
    "INPUT_BASE",
    "MEMORY_SIZE",
    "OUTPUT_BASE",
    "SCRATCH_BASE",
    "TABLE_BASE",
    "Kernel",
    "KernelComparison",
    "LoopSpec",
    "DCTKernel",
    "dct_matrix_q12",
    "DotProductKernel",
    "FFT128Kernel",
    "FFT1024Kernel",
    "FFTKernel",
    "FIR12Kernel",
    "FIR22Kernel",
    "FIRKernel",
    "IIRKernel",
    "MatMulKernel",
    "TransposeKernel",
    "ALL_KERNELS",
    "EXTENSION_KERNELS",
    "SADKernel",
    "ColorSpaceKernel",
    "MatVecKernel",
    "IDCTKernel",
    "roundtrip_error",
    "ViterbiKernel",
    "convolutional_encode",
    "TABLE2_KERNELS",
    "make_kernel",
]

"""Kernel framework: build, verify and compare MMX vs MMX+SPU variants.

Each kernel mirrors one Intel IPP routine from the paper's evaluation
(§5.2.1): it provides hand-written MMX assembly following the documented IPP
coding strategy, a NumPy *fixed-point mirror* as the golden reference (same
arithmetic, same rounding — equality is exact, not approximate), and the
workload parameters of Table 2.

The MMX+SPU variant follows the paper's methodology — "each of the
algorithms is re-coded to avoid utilizing the permutation instructions that
can be addressed by the SPU" — by running the automatic off-load pass on
every marked loop.  Loops get one SPU controller context each; the program
activates each phase's context by storing GO to the memory-mapped
configuration register just before entering the loop (§4).  In the MMX-only
baseline those stores hit plain memory and everything else is identical, so
the comparison isolates the SPU's contribution.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.errors import KernelError
from repro.core import (
    CONFIG_D,
    DEFAULT_MMIO_BASE,
    CrossbarConfig,
    OffloadReport,
    SPUController,
    SPUProgram,
    attach_spu,
    offload_loop,
)
from repro.cpu import Machine, PipelineConfig, RunStats
from repro.isa import Program, ProgramBuilder, Register
from repro.isa.registers import R

#: Registers reserved by the framework for SPU control stores.
SPU_BASE_REG = R[14]  # holds DEFAULT_MMIO_BASE
SPU_GO_REG = R[15]  # holds the GO word for the next phase

#: Conventional memory layout used by all kernels.
INPUT_BASE = 0x1000
COEFF_BASE = 0x4000
TABLE_BASE = 0x6000
OUTPUT_BASE = 0x8000
SCRATCH_BASE = 0xC000
MEMORY_SIZE = 1 << 20


@dataclass
class LoopSpec:
    """One SPU-accelerated loop: label plus dynamic trip count."""

    label: str
    iterations: int
    live_out: tuple[Register, ...] = ()
    #: Registers zeroed before the loop and untouched inside it: routable
    #: zero sources for the off-load pass.
    known_zero: tuple[Register, ...] = ()


@dataclass
class KernelComparison:
    """Measured MMX-only vs MMX+SPU results for one kernel."""

    name: str
    mmx: RunStats
    spu: RunStats
    removed_permutes: int
    #: Dynamic permute instructions executed by the MMX-only variant.
    mmx_dynamic_permutes: int

    @property
    def speedup(self) -> float:
        return self.mmx.cycles / self.spu.cycles if self.spu.cycles else 0.0

    @property
    def cycles_saved(self) -> int:
        return self.mmx.cycles - self.spu.cycles

    @property
    def instructions_saved(self) -> int:
        return self.mmx.instructions - self.spu.instructions


class Kernel(abc.ABC):
    """One benchmark kernel with MMX-only and MMX+SPU variants."""

    #: Table 2 benchmark name (e.g. ``"FIR12"``).
    name: str = "kernel"
    description: str = ""

    def __init__(self, config: CrossbarConfig = CONFIG_D) -> None:
        self.config = config
        self._mmx_program: Program | None = None
        self._spu_build: tuple[Program, list[tuple[int, SPUProgram]]] | None = None
        self._offload_reports: list[tuple[int, OffloadReport]] | None = None

    # ---- to implement per kernel -------------------------------------------

    @abc.abstractmethod
    def build_mmx(self) -> Program:
        """The MMX-only program (IPP-style, permutes in software)."""

    @abc.abstractmethod
    def loops(self) -> list[LoopSpec]:
        """The loops the SPU accelerates, in program order (≤4: contexts)."""

    @abc.abstractmethod
    def prepare(self, machine: Machine) -> None:
        """Write workload inputs into the machine's memory/registers."""

    @abc.abstractmethod
    def extract(self, machine: Machine) -> np.ndarray:
        """Read the kernel's output from the machine."""

    @abc.abstractmethod
    def reference(self) -> np.ndarray:
        """Golden output from the NumPy fixed-point mirror."""

    # ---- construction helpers -------------------------------------------------

    @staticmethod
    def go_store(b: ProgramBuilder, context: int = 0) -> None:
        """Emit the GO store activating SPU *context* (call just before a loop)."""
        b.mov(SPU_GO_REG, 1 | (context << 1))
        b.stw(f"[{SPU_BASE_REG.name}]", SPU_GO_REG)

    @staticmethod
    def preamble(b: ProgramBuilder) -> None:
        """Load the SPU MMIO base register (once, at program start)."""
        b.mov(SPU_BASE_REG, DEFAULT_MMIO_BASE)

    # ---- cached builds -----------------------------------------------------------

    def mmx_program(self) -> Program:
        if self._mmx_program is None:
            self._mmx_program = self.build_mmx()
        return self._mmx_program

    def spu_programs(self) -> tuple[Program, list[tuple[int, SPUProgram]]]:
        """Transformed program plus ``(context, controller program)`` pairs."""
        if self._spu_build is None:
            loops = self.loops()
            if not 1 <= len(loops) <= 4:
                raise KernelError(
                    f"{self.name}: {len(loops)} loops; the MMIO context field "
                    "supports 1-4"
                )
            program = self.mmx_program()
            controller_programs: list[tuple[int, SPUProgram]] = []
            reports: list[tuple[int, OffloadReport]] = []
            removed_total = 0
            for context, spec in enumerate(loops):
                report = offload_loop(
                    program,
                    spec.label,
                    spec.iterations,
                    self.config,
                    live_out=spec.live_out,
                    known_zero=spec.known_zero,
                )
                program = report.program
                removed_total += report.removed_count
                controller_programs.append((context, report.spu_program))
                reports.append((context, report))
            self._removed_permutes = removed_total
            self._offload_reports = reports
            self._spu_build = (program, controller_programs)
        return self._spu_build

    def offload_reports(self) -> list[tuple[int, OffloadReport]]:
        """Per-loop ``(context, OffloadReport)`` pairs, including certificates.

        The static analyzer (``repro lint``) re-verifies each report's
        :class:`~repro.core.dataflow.OffloadCertificate` without re-running
        the off-load pass.
        """
        self.spu_programs()
        assert self._offload_reports is not None
        return self._offload_reports

    @property
    def removed_permutes(self) -> int:
        self.spu_programs()
        return self._removed_permutes

    # ---- optional hand-tuned variant (§5.2.2's "lower estimate" remark) ------

    def build_spu_tuned(self) -> tuple[Program, list[tuple[int, SPUProgram]]] | None:
        """SPU-aware recoding of the kernel, if one exists.

        The paper notes its measurements are "a lower estimate of the true
        performance advantages" because the IPP code was written without
        knowledge of the SPU.  Kernels may override this with a hand-written
        variant exploiting routing more aggressively than the automatic
        off-load of MMX-shaped code can.
        """
        return None

    # ---- running -----------------------------------------------------------------

    def _machine(
        self,
        program: Program,
        controller_programs: list[tuple[int, SPUProgram]] | None,
        pipeline: PipelineConfig | None = None,
        resilience=None,
    ) -> Machine:
        config = pipeline
        if config is None:
            config = PipelineConfig(extra_stage=controller_programs is not None)
        machine = Machine(program, config=config, resilience=resilience)
        if controller_programs is not None:
            controller = SPUController(
                config=self.config, contexts=max(4, len(controller_programs))
            )
            for context, spu_program in controller_programs:
                controller.load_program(spu_program, context=context)
            attach_spu(machine, controller)
        self.prepare(machine)
        return machine

    def machine(self, variant: str = "mmx",
                pipeline: PipelineConfig | None = None,
                resilience=None) -> Machine:
        """A prepared, unrun :class:`Machine` for one variant.

        The public entry point for observers: build the machine, subscribe
        to ``machine.bus``, then drive it yourself (used by ``repro
        profile`` / ``repro trace``, :mod:`repro.obs.export` and the
        :mod:`repro.faults` campaigns).  *resilience* selects the failure
        posture (:mod:`repro.resilience`); the attached controller inherits
        it.
        """
        if variant == "mmx":
            return self._machine(self.mmx_program(), None, pipeline, resilience)
        if variant == "spu":
            program, controller_programs = self.spu_programs()
            return self._machine(program, controller_programs, pipeline, resilience)
        raise KernelError(f"unknown variant {variant!r}; use 'mmx' or 'spu'")

    def run_mmx(self, pipeline: PipelineConfig | None = None) -> tuple[RunStats, np.ndarray]:
        """Run the MMX-only variant; returns (stats, output)."""
        machine = self._machine(self.mmx_program(), None, pipeline)
        stats = machine.run()
        return stats, self.extract(machine)

    def run_spu(self, pipeline: PipelineConfig | None = None) -> tuple[RunStats, np.ndarray]:
        """Run the MMX+SPU variant (includes the extra pipeline stage cost)."""
        program, controller_programs = self.spu_programs()
        machine = self._machine(program, controller_programs, pipeline)
        stats = machine.run()
        return stats, self.extract(machine)

    def run_spu_tuned(self, pipeline: PipelineConfig | None = None) -> tuple[RunStats, np.ndarray]:
        """Run the hand-tuned SPU variant (raises if the kernel has none)."""
        build = self.build_spu_tuned()
        if build is None:
            raise KernelError(f"{self.name} has no hand-tuned SPU variant")
        program, controller_programs = build
        machine = self._machine(program, controller_programs, pipeline)
        stats = machine.run()
        return stats, self.extract(machine)

    # ---- verification and comparison ------------------------------------------------

    def verify(self) -> None:
        """Check both variants against the fixed-point reference (exact)."""
        reference = np.asarray(self.reference())
        for label, runner in (("MMX", self.run_mmx), ("MMX+SPU", self.run_spu)):
            _, output = runner()
            output = np.asarray(output)
            if output.shape != reference.shape or not np.array_equal(output, reference):
                mismatch = (
                    int(np.sum(output != reference))
                    if output.shape == reference.shape
                    else -1
                )
                raise KernelError(
                    f"{self.name}: {label} output diverges from the reference "
                    f"({mismatch} mismatching elements)"
                )

    def compare(self, pipeline_mmx: PipelineConfig | None = None,
                pipeline_spu: PipelineConfig | None = None) -> KernelComparison:
        """Run both variants and package the Figure 9 / Table 3 numbers."""
        mmx_stats, _ = self.run_mmx(pipeline_mmx)
        spu_stats, _ = self.run_spu(pipeline_spu)
        return KernelComparison(
            name=self.name,
            mmx=mmx_stats,
            spu=spu_stats,
            removed_permutes=self.removed_permutes,
            mmx_dynamic_permutes=mmx_stats.permutes,
        )

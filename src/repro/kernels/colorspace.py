"""RGBA → luma (Y) conversion (extension kernel: color-space conversion).

Pixel deinterleaving is the textbook permute-bound media workload: each
RGBA32 pixel's bytes must be widened and dotted with the BT.601-style luma
weights.  Two pixels per iteration: zero-register byte unpacks feed
``pmaddwd`` against the packed weights, horizontal adds fold the partial
sums, and a saturating pack emits two 16-bit Y values.

Like :mod:`repro.kernels.sad`, the widening unpacks are *byte*-granularity:
configuration A/B routes them away, configuration D cannot.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import COEFF_BASE, INPUT_BASE, OUTPUT_BASE, Kernel, LoopSpec

#: Q8 luma weights for (R, G, B, A): Y = (66R + 129G + 25B) >> 8.
WEIGHTS = (66, 129, 25, 0)


class ColorSpaceKernel(Kernel):
    """Interleaved RGBA8888 → planar 16-bit luma."""

    name = "ColorSpace"
    description = "RGBA to luma conversion (extension kernel)"

    def __init__(self, pixels: int = 128, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        if pixels % 2 != 0 or pixels <= 0:
            raise KernelError(f"pixel count must be a positive even number, got {pixels}")
        self.pixels = pixels
        rng = np.random.default_rng(seed)
        self.rgba = rng.integers(0, 256, size=(pixels, 4), dtype=np.uint8)

    @property
    def iterations(self) -> int:
        return self.pixels // 2

    def build_mmx(self) -> Program:
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)
        b.mov("r0", self.iterations)
        b.mov("r1", INPUT_BASE)
        b.mov("r2", OUTPUT_BASE)
        b.mov("r3", COEFF_BASE)
        b.pxor("mm3", "mm3")  # zero register
        self.go_store(b)
        b.label("loop")
        b.movq("mm0", "[r1]")  # R0 G0 B0 A0 R1 G1 B1 A1
        b.movq("mm1", "mm0")
        b.punpcklbw("mm0", "mm3")  # pixel 0 as words
        b.punpckhbw("mm1", "mm3")  # pixel 1 as words
        b.pmaddwd("mm0", "[r3]")  # (66R+129G, 25B+0A)
        b.pmaddwd("mm1", "[r3]")
        # Horizontal add each pair of dwords.
        b.movq("mm2", "mm0")
        b.psrlq("mm2", 32)
        b.paddd("mm0", "mm2")
        b.movq("mm2", "mm1")
        b.psrlq("mm2", 32)
        b.paddd("mm1", "mm2")
        b.punpckldq("mm0", "mm1")  # (y0<<8, y1<<8)
        b.psrad("mm0", 8)
        b.packssdw("mm0", "mm0")  # y0 y1 y0 y1
        b.movd("[r2]", "mm0")  # store two 16-bit lumas
        b.add("r1", 8)
        b.add("r2", 4)
        b.loop("r0", "loop")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        return [LoopSpec(label="loop", iterations=self.iterations)]

    def prepare(self, machine: Machine) -> None:
        machine.memory.write_array(INPUT_BASE, self.rgba.reshape(-1), np.uint8)
        machine.memory.write_array(
            COEFF_BASE, np.array(WEIGHTS, dtype=np.int16), np.int16
        )

    def extract(self, machine: Machine) -> np.ndarray:
        return machine.memory.read_array(OUTPUT_BASE, self.pixels, np.int16)

    def reference(self) -> np.ndarray:
        rgba = self.rgba.astype(np.int64)
        weighted = rgba @ np.array(WEIGHTS, dtype=np.int64)
        return (weighted >> 8).astype(np.int16)

"""8×8 two-dimensional DCT (Table 2's "DCT", the 8x8 kernel).

Row-column decomposition: a 1-D 8-point DCT over every row (a small
matrix-vector product via ``pmaddwd`` against the Q12 cosine matrix), a
transpose, a second row pass, and a final transpose.  The two transposes are
pure inter-word data movement — the reason DCT is among the kernels the
paper's unified SPU register helps most (§5.2.3).

Four flat loops → four SPU controller contexts, activated in turn by GO
stores (§3's multi-context support).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import (
    COEFF_BASE,
    INPUT_BASE,
    OUTPUT_BASE,
    SCRATCH_BASE,
    TABLE_BASE,
    Kernel,
    LoopSpec,
)

#: Q-format of the cosine coefficients and the matching output scale.
Q = 12

STAGE1_OUT = SCRATCH_BASE  # rows DCT'd
STAGE2_OUT = SCRATCH_BASE + 0x400  # transposed
STAGE3_OUT = SCRATCH_BASE + 0x800  # rows DCT'd again
TILE_TABLE_1 = TABLE_BASE
TILE_TABLE_2 = TABLE_BASE + 0x200


def dct_matrix_q12() -> np.ndarray:
    """8×8 DCT-II coefficient matrix in Q12 fixed point."""
    c = np.empty((8, 8), dtype=np.int16)
    for u in range(8):
        scale = math.sqrt(1 / 8) if u == 0 else math.sqrt(2 / 8)
        for k in range(8):
            value = scale * math.cos((2 * k + 1) * u * math.pi / 16)
            c[u, k] = int(round(value * (1 << Q)))
    return c


class DCTKernel(Kernel):
    """8×8 DCT via row-column passes with unpack-tile transposes."""

    name = "DCT"
    description = "8x8 Kernel (Table 2 row 6)"

    def __init__(self, blocks: int = 8, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 1 <= blocks <= 8:
            raise KernelError(
                f"blocks must be 1..8 (stage scratch buffers hold 8), got {blocks}"
            )
        self.blocks = blocks
        rng = np.random.default_rng(seed)
        # Pixel-difference-like inputs (DCT blocks in codecs are residuals);
        # IPP's timing harness streams many blocks back to back.
        self.block = rng.integers(-256, 256, size=(blocks, 8, 8), dtype=np.int16)
        self.cos = dct_matrix_q12()

    # ---- address tables ---------------------------------------------------------

    def _tile_table(self, src_base: int, dst_base: int) -> np.ndarray:
        row_bytes = 16
        entries = []
        for block in range(self.blocks):
            offset = 128 * block  # 8x8 int16 block stride
            for i in range(2):
                for j in range(2):
                    src = src_base + offset + (4 * i) * row_bytes + 8 * j
                    dst = dst_base + offset + (4 * j) * row_bytes + 8 * i
                    entries.append((src, dst))
        return np.array(entries, dtype=np.uint32).reshape(-1)

    # ---- program ---------------------------------------------------------------------

    def _emit_row_pass(self, b: ProgramBuilder, label: str, src: int, dst: int,
                       context: int) -> None:
        """One 1-D DCT pass over 8 rows: out_row = C × row."""
        b.mov("r0", 8 * self.blocks)
        b.mov("r1", src)
        b.mov("r2", dst)
        self.go_store(b, context=context)
        b.label(label)
        for u in range(8):
            b.pxor("mm2", "mm2")
            for g in range(2):
                b.movq("mm3", f"[r1+{8 * g}]")
                b.pmaddwd("mm3", f"[{'r3'}+{16 * u + 8 * g}]")
                b.paddd("mm2", "mm3")
            b.movq("mm3", "mm2")
            b.psrlq("mm3", 32)
            b.paddd("mm2", "mm3")
            # Collectors mm0/mm1 keep everything inside config D's window.
            if u % 4 == 0:
                b.movq("mm0", "mm2")
            elif u % 4 == 1:
                b.punpckldq("mm0", "mm2")
            elif u % 4 == 2:
                b.movq("mm1", "mm2")
            else:
                b.punpckldq("mm1", "mm2")
                b.psrad("mm0", Q)
                b.psrad("mm1", Q)
                b.packssdw("mm0", "mm1")
                b.movq(f"[r2+{0 if u < 4 else 8}]", "mm0")
        b.add("r1", 16)
        b.add("r2", 16)
        b.loop("r0", label)

    def _emit_transpose(self, b: ProgramBuilder, label: str, table: int,
                        context: int) -> None:
        row = 16
        b.mov("r0", 4 * self.blocks)
        b.mov("r10", table)
        self.go_store(b, context=context)
        b.label(label)
        b.ldw("r1", "[r10]")
        b.ldw("r2", "[r10+4]")
        b.add("r10", 8)
        b.movq("mm0", "[r1]")
        b.movq("mm1", f"[r1+{row}]")
        b.movq("mm2", f"[r1+{2 * row}]")
        b.movq("mm3", f"[r1+{3 * row}]")
        b.movq("mm4", "mm0")
        b.punpcklwd("mm0", "mm1")
        b.punpckhwd("mm4", "mm1")
        b.movq("mm5", "mm2")
        b.punpcklwd("mm2", "mm3")
        b.punpckhwd("mm5", "mm3")
        b.movq("mm6", "mm0")
        b.punpckldq("mm0", "mm2")
        b.punpckhdq("mm6", "mm2")
        b.movq("mm7", "mm4")
        b.punpckldq("mm4", "mm5")
        b.punpckhdq("mm7", "mm5")
        b.movq("[r2]", "mm0")
        b.movq(f"[r2+{row}]", "mm6")
        b.movq(f"[r2+{2 * row}]", "mm4")
        b.movq(f"[r2+{3 * row}]", "mm7")
        b.loop("r0", label)

    def build_mmx(self) -> Program:
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)
        b.mov("r3", COEFF_BASE)
        self._emit_row_pass(b, "rows1", INPUT_BASE, STAGE1_OUT, context=0)
        self._emit_transpose(b, "trans1", TILE_TABLE_1, context=1)
        self._emit_row_pass(b, "rows2", STAGE2_OUT, STAGE3_OUT, context=2)
        self._emit_transpose(b, "trans2", TILE_TABLE_2, context=3)
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        return [
            LoopSpec(label="rows1", iterations=8 * self.blocks),
            LoopSpec(label="trans1", iterations=4 * self.blocks),
            LoopSpec(label="rows2", iterations=8 * self.blocks),
            LoopSpec(label="trans2", iterations=4 * self.blocks),
        ]

    def prepare(self, machine: Machine) -> None:
        machine.memory.write_array(INPUT_BASE, self.block.reshape(-1), np.int16)
        machine.memory.write_array(COEFF_BASE, self.cos.reshape(-1), np.int16)
        machine.memory.write_array(
            TILE_TABLE_1, self._tile_table(STAGE1_OUT, STAGE2_OUT), np.uint32
        )
        machine.memory.write_array(
            TILE_TABLE_2, self._tile_table(STAGE3_OUT, OUTPUT_BASE), np.uint32
        )

    def extract(self, machine: Machine) -> np.ndarray:
        flat = machine.memory.read_array(OUTPUT_BASE, 64 * self.blocks, np.int16)
        return flat.reshape(self.blocks, 8, 8)

    # ---- reference mirror -----------------------------------------------------------

    def _row_pass_fixed(self, rows: np.ndarray) -> np.ndarray:
        """Mirror of one hardware row pass (wrap, >>Q, saturate)."""
        acc = rows.astype(np.int64) @ self.cos.T.astype(np.int64)
        wrapped = ((acc + 2**31) % 2**32 - 2**31).astype(np.int64)
        scaled = wrapped >> Q
        return np.clip(scaled, -32768, 32767).astype(np.int16)

    def reference(self) -> np.ndarray:
        out = np.empty_like(self.block)
        for index in range(self.blocks):
            stage1 = self._row_pass_fixed(self.block[index])
            stage3 = self._row_pass_fixed(stage1.T.copy())
            out[index] = stage3.T
        return out

"""The paper's §4 running example: sub-word dot-product products.

Memory holds pairs of 4-element 16-bit vectors ``(a,b,c,d)`` / ``(e,f,g,h)``;
each iteration computes the products ``a*c, e*g, b*d, f*h`` (both high and
low 16-bit halves, via ``pmulhw``/``pmullw``).  The MMX version realigns the
sub-words with ``punpckhwd``/``punpcklwd`` each iteration — exactly the two
instructions the paper's example off-loads onto the SPU.
"""

from __future__ import annotations

import numpy as np

from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import INPUT_BASE, OUTPUT_BASE, Kernel, LoopSpec


class DotProductKernel(Kernel):
    """§4's dot-product loop (not part of Table 2; used for the quickstart)."""

    name = "DotProduct"
    description = "Paper §4 example: packed products with sub-word realignment"

    def __init__(self, blocks: int = 16, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        self.blocks = blocks
        rng = np.random.default_rng(seed)
        self.data = rng.integers(-2000, 2000, size=8 * blocks, dtype=np.int16)

    def build_mmx(self) -> Program:
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)
        b.mov("r0", self.blocks)
        b.mov("r1", INPUT_BASE)
        b.mov("r2", OUTPUT_BASE)
        self.go_store(b)
        b.label("loop")
        b.movq("mm0", "[r1]")  # a b c d
        b.movq("mm1", "[r1+8]")  # e f g h
        b.movq("mm2", "mm0")
        b.punpckhwd("mm2", "mm1")  # c g d h
        b.punpcklwd("mm0", "mm1")  # a e b f
        b.movq("mm3", "mm0")
        b.pmulhw("mm3", "mm2")  # high halves of a*c, e*g, b*d, f*h
        b.pmullw("mm0", "mm2")  # low halves
        b.movq("[r2]", "mm3")
        b.movq("[r2+8]", "mm0")
        b.add("r1", 16)
        b.add("r2", 16)
        b.loop("r0", "loop")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        return [LoopSpec(label="loop", iterations=self.blocks)]

    def prepare(self, machine: Machine) -> None:
        machine.memory.write_array(INPUT_BASE, self.data, np.int16)

    def extract(self, machine: Machine) -> np.ndarray:
        return machine.memory.read_array(OUTPUT_BASE, 8 * self.blocks, np.int16)

    def reference(self) -> np.ndarray:
        data = self.data.astype(np.int64).reshape(self.blocks, 8)
        x, y = data[:, :4], data[:, 4:]
        # operand order after the unpacks: (a,e,b,f) * (c,g,d,h)
        lhs = np.stack([x[:, 0], y[:, 0], x[:, 1], y[:, 1]], axis=1)
        rhs = np.stack([x[:, 2], y[:, 2], x[:, 3], y[:, 3]], axis=1)
        products = lhs * rhs
        high = (products >> 16).astype(np.int16)
        low = (products & 0xFFFF).astype(np.uint16).astype(np.int16)
        return np.concatenate([high, low], axis=1).reshape(-1)

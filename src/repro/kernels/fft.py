"""Radix-2 fixed-point FFT (Table 2's FFT128 / FFT1024).

Decimation-in-time on interleaved 16-bit complex data.  Mirroring the
character the paper measures for IPP's FFT — "neither the FFT or IIR filter
routines from the IPP package utilize the MMX efficiently" (§5.2.2), with
permutations making up ~50% of its (few) MMX instructions (Table 3) — the
kernel vectorizes only the parts that map naturally onto sub-words:

1. a scalar bit-reversal pass (table-driven swaps; one complex value is one
   32-bit word),
2. the size-2 stage in MMX (SPU context 0): both butterfly halves share a
   register, so the *intra-word* restriction forces a shuffle/shift/merge
   dance — the permute-heavy MMX code the SPU absorbs,
3. the remaining stages through a scalar ``imul``-based butterfly loop over
   a precomputed schedule table (twiddles in Q15).

Each stage scales by ½ so magnitudes stay within int16 without saturation in
the scalar core; the size-2 MMX stage uses saturate-then-shift, mirrored
bit-exactly by the NumPy reference.

The paper's benchmark is a *real* FFT; we drive the identical butterfly
datapath with a complex FFT on real-valued input (same sub-word code path).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import (
    COEFF_BASE,
    INPUT_BASE,
    TABLE_BASE,
    Kernel,
    LoopSpec,
)

#: Twiddle fixed-point format (Q15).
TW_SHIFT = 15

SWAP_TABLE = TABLE_BASE
SCHED_TABLE = TABLE_BASE + 0x4000


def _sat16(value: int) -> int:
    return max(-32768, min(32767, value))


class FFTKernel(Kernel):
    """N-point radix-2 DIT FFT on Q15 complex data (N power of two ≥ 4)."""

    description = "Radix 2 FFT, 16-bit fixed point"

    def __init__(self, n: int = 128, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        if n < 4 or n & (n - 1):
            raise KernelError(f"FFT size must be a power of two >= 4, got {n}")
        self.n = n
        self.name = f"FFT{n}"
        rng = np.random.default_rng(seed)
        # Real-valued input (the paper's benchmark is a real FFT).
        self.x = rng.integers(-20000, 20000, size=n, dtype=np.int16)

    # ---- host-side tables -----------------------------------------------------

    def _bitrev_pairs(self) -> list[tuple[int, int]]:
        bits = self.n.bit_length() - 1
        pairs = []
        for i in range(self.n):
            j = int(f"{i:0{bits}b}"[::-1], 2)
            if i < j:
                pairs.append((i, j))
        return pairs

    def _swap_table(self) -> np.ndarray:
        entries = []
        for i, j in self._bitrev_pairs():
            entries.append((INPUT_BASE + 4 * i, INPUT_BASE + 4 * j))
        return np.array(entries, dtype=np.uint32).reshape(-1)

    def _twiddle(self, k: int, size: int) -> tuple[int, int]:
        angle = 2 * math.pi * k / size
        w_re = int(round(math.cos(angle) * 32767))
        w_im = int(round(-math.sin(angle) * 32767))
        return w_re, w_im

    def _schedule(self) -> tuple[np.ndarray, np.ndarray]:
        """(per-butterfly schedule, twiddle memory) for the scalar stages."""
        sched = []
        twiddles: list[int] = []
        tw_cache: dict[tuple[int, int], int] = {}
        size = 4
        while size <= self.n:
            half = size // 2
            for start in range(0, self.n, size):
                for j in range(half):
                    key = (size, j)
                    if key not in tw_cache:
                        tw_cache[key] = COEFF_BASE + 4 * len(twiddles)
                        twiddles.extend(self._twiddle(j, size))
                    a_addr = INPUT_BASE + 4 * (start + j)
                    b_addr = INPUT_BASE + 4 * (start + j + half)
                    sched.append((a_addr, b_addr, tw_cache[key]))
            size *= 2
        return (
            np.array(sched, dtype=np.uint32).reshape(-1),
            np.array(twiddles, dtype=np.int32),
        )

    @property
    def swap_count(self) -> int:
        return len(self._bitrev_pairs())

    @property
    def butterfly_count(self) -> int:
        """Butterflies in the scalar (size ≥ 4) stages."""
        return (self.n.bit_length() - 2) * self.n // 2

    # ---- program ------------------------------------------------------------------

    def build_mmx(self) -> Program:
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)

        # Phase 0 (scalar): bit-reversal permutation.
        b.mov("r0", self.swap_count)
        b.mov("r10", SWAP_TABLE)
        b.label("bitrev")
        b.ldw("r1", "[r10]")
        b.ldw("r2", "[r10+4]")
        b.ldw("r4", "[r1]")
        b.ldw("r5", "[r2]")
        b.stw("[r1]", "r5")
        b.stw("[r2]", "r4")
        b.add("r10", 8)
        b.loop("r0", "bitrev")

        # Phase 1 (MMX, context 0): size-2 stage, two complex per register.
        b.mov("r0", self.n // 2)
        b.mov("r1", INPUT_BASE)
        self.go_store(b, context=0)
        b.label("stage1")
        b.movq("mm0", "[r1]")  # [ar ai br bi]
        b.pshufw("mm1", "mm0", 0x4E)  # [br bi ar ai]
        b.movq("mm2", "mm0")
        b.paddsw("mm2", "mm1")  # lanes 0,1 = a+b (saturating)
        b.psubsw("mm1", "mm0")  # lanes 2,3 = a-b
        b.psraw("mm2", 1)  # per-stage ½ scaling
        b.psraw("mm1", 1)
        b.psrlq("mm1", 32)  # a-b down to lanes 0,1
        b.punpckldq("mm2", "mm1")  # [a+b, a-b]
        b.movq("[r1]", "mm2")
        b.add("r1", 8)
        b.loop("r0", "stage1")

        # Phase 2 (scalar): remaining stages, IPP-like scalar butterflies.
        b.mov("r0", self.butterfly_count)
        b.mov("r10", SCHED_TABLE)
        b.label("gloop")
        b.ldw("r1", "[r10]")  # a address
        b.ldw("r2", "[r10+4]")  # b address
        b.ldw("r3", "[r10+8]")  # twiddle address: wr, wi (int32)
        b.add("r10", 12)
        b.ldhs("r4", "[r2]")  # br
        b.ldhs("r5", "[r2+2]")  # bi
        b.ldw("r6", "[r3]")  # wr
        b.ldw("r7", "[r3+4]")  # wi
        # t = w*b in Q15
        b.mov("r8", "r4")
        b.imul("r8", "r6")  # br*wr
        b.mov("r9", "r5")
        b.imul("r9", "r7")  # bi*wi
        b.sub("r8", "r9")
        b.sar("r8", TW_SHIFT)  # t_re
        b.mov("r9", "r4")
        b.imul("r9", "r7")  # br*wi
        b.imul("r5", "r6")  # bi*wr
        b.add("r9", "r5")
        b.sar("r9", TW_SHIFT)  # t_im
        # butterflies with ½ scaling (results provably fit int16)
        b.ldhs("r4", "[r1]")  # ar
        b.ldhs("r5", "[r1+2]")  # ai
        b.mov("r6", "r4")
        b.add("r6", "r8")
        b.sar("r6", 1)
        b.sth("[r1]", "r6")
        b.mov("r7", "r5")
        b.add("r7", "r9")
        b.sar("r7", 1)
        b.sth("[r1+2]", "r7")
        b.sub("r4", "r8")
        b.sar("r4", 1)
        b.sth("[r2]", "r4")
        b.sub("r5", "r9")
        b.sar("r5", 1)
        b.sth("[r2+2]", "r5")
        b.loop("r0", "gloop")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        return [LoopSpec(label="stage1", iterations=self.n // 2)]

    def prepare(self, machine: Machine) -> None:
        interleaved = np.zeros(2 * self.n, dtype=np.int16)
        interleaved[0::2] = self.x
        machine.memory.write_array(INPUT_BASE, interleaved, np.int16)
        machine.memory.write_array(SWAP_TABLE, self._swap_table(), np.uint32)
        sched, twiddles = self._schedule()
        machine.memory.write_array(SCHED_TABLE, sched, np.uint32)
        machine.memory.write_array(COEFF_BASE, twiddles, np.int32)

    def extract(self, machine: Machine) -> np.ndarray:
        return machine.memory.read_array(INPUT_BASE, 2 * self.n, np.int16)

    # ---- bit-exact mirror --------------------------------------------------------

    def reference(self) -> np.ndarray:
        re = [0] * self.n
        im = [0] * self.n
        for i, value in enumerate(self.x):
            re[i] = int(value)
        for i, j in self._bitrev_pairs():
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
        # Stage 1: saturate-then-shift (the paddsw/psraw semantics).
        for t in range(0, self.n, 2):
            ar, ai, br, bi = re[t], im[t], re[t + 1], im[t + 1]
            re[t], im[t] = _sat16(ar + br) >> 1, _sat16(ai + bi) >> 1
            re[t + 1], im[t + 1] = _sat16(ar - br) >> 1, _sat16(ai - bi) >> 1
        # Scalar stages: plain wrap-free int32 arithmetic, floor shifts.
        size = 4
        while size <= self.n:
            half = size // 2
            for start in range(0, self.n, size):
                for j in range(half):
                    w_re, w_im = self._twiddle(j, size)
                    a, bidx = start + j, start + j + half
                    br, bi = re[bidx], im[bidx]
                    t_re = (br * w_re - bi * w_im) >> TW_SHIFT
                    t_im = (br * w_im + bi * w_re) >> TW_SHIFT
                    ar, ai = re[a], im[a]
                    re[a], im[a] = (ar + t_re) >> 1, (ai + t_im) >> 1
                    re[bidx], im[bidx] = (ar - t_re) >> 1, (ai - t_im) >> 1
            size *= 2
        out = np.empty(2 * self.n, dtype=np.int16)
        out[0::2] = np.array(re, dtype=np.int64).astype(np.int16)
        out[1::2] = np.array(im, dtype=np.int64).astype(np.int16)
        return out


class FFT128Kernel(FFTKernel):
    """Table 2 row 5: 128-sample radix-2 FFT."""

    def __init__(self, **kwargs) -> None:
        super().__init__(n=128, **kwargs)


class FFT1024Kernel(FFTKernel):
    """Table 2 row 4: 1024-sample radix-2 FFT."""

    def __init__(self, **kwargs) -> None:
        super().__init__(n=1024, **kwargs)

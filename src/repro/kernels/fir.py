"""Block FIR filters (Table 2's FIR12 / FIR22: 12/22 taps, 150-sample blocks).

The MMX code follows the IPP strategy the paper describes (§5.2.2): "The FIR
filters for the MMX try to avoid many sub-word permutes ... by having
multiple copies of the filter coefficients ... where each copy of
coefficients are offset by one sub word" — at the cost of register-file
pressure and extra memory.  Four *coefficient banks*, each the reversed tap
vector shifted by one more sub-word of zero padding, let one aligned sample
window serve all four output phases of a block, so the only remaining
permutes are the horizontal-sum reductions.  Consequently the SPU helps FIR
only modestly — the paper measures ≈8%.

Fixed point: Q15-style — 32-bit wrapping accumulation (``paddd``), arithmetic
scale (``psrad``) and a saturating pack (``packssdw``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import COEFF_BASE, INPUT_BASE, OUTPUT_BASE, Kernel, LoopSpec

#: Output scale shift (coefficients are Q-scaled by the workload generator).
SHIFT = 12


def _wrap32(values: np.ndarray) -> np.ndarray:
    """Wrap int64 sums to int32 two's complement (the paddd semantics)."""
    return ((values + 2**31) % 2**32 - 2**31).astype(np.int64)


class FIRKernel(Kernel):
    """T-tap block FIR over N samples, four outputs per iteration."""

    description = "Block FIR with sub-word-offset coefficient banks"

    def __init__(self, taps: int, samples: int = 152, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        if taps < 2:
            raise KernelError(f"need at least 2 taps, got {taps}")
        if samples % 4 != 0 or samples <= 0:
            raise KernelError(f"sample count must be a positive multiple of 4, got {samples}")
        self.taps = taps
        self.samples = samples
        self.name = f"FIR{taps}"
        rng = np.random.default_rng(seed)
        self.x = rng.integers(-20000, 20000, size=samples, dtype=np.int16)
        self.coeffs = rng.integers(-2000, 2000, size=taps, dtype=np.int16)

    # ---- geometry ---------------------------------------------------------

    @property
    def bank_len(self) -> int:
        """Bank length L: reversed taps + up to 3 phase-offset zeros, padded."""
        return 4 * ((self.taps + 3 + 3) // 4)

    @property
    def groups(self) -> int:
        """Sample groups (qwords) per block window."""
        return self.bank_len // 4

    @property
    def blocks(self) -> int:
        return self.samples // 4

    def _banks(self) -> np.ndarray:
        """Four phase banks: bank_a[m] = c_reversed[m - a], zero elsewhere."""
        reversed_taps = self.coeffs[::-1].astype(np.int16)
        banks = np.zeros((4, self.bank_len), dtype=np.int16)
        for phase in range(4):
            banks[phase, phase : phase + self.taps] = reversed_taps
        return banks.reshape(-1)

    def _xbuf(self) -> np.ndarray:
        """Input with T-1 zeros of history prepended (plus tail padding)."""
        pad_tail = self.bank_len  # safe margin for the last window
        buf = np.zeros(self.taps - 1 + self.samples + pad_tail, dtype=np.int16)
        buf[self.taps - 1 : self.taps - 1 + self.samples] = self.x
        return buf

    # ---- program ----------------------------------------------------------

    def build_mmx(self) -> Program:
        G = self.groups
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)
        b.mov("r0", self.blocks)
        b.mov("r1", INPUT_BASE)  # &xbuf[n]
        b.mov("r2", OUTPUT_BASE)
        b.mov("r3", COEFF_BASE)
        self.go_store(b)
        b.label("loop")
        # Registers stay within MM0..MM3 — config D's input window (§5.1.1:
        # every paper kernel fits configuration D).
        for phase in range(4):
            b.pxor("mm2", "mm2")
            for group in range(G):
                b.movq("mm3", f"[r1+{8 * group}]")
                b.pmaddwd("mm3", f"[r3+{8 * (phase * G + group)}]")
                b.paddd("mm2", "mm3")
            # Horizontal sum: lane0 += lane1 (mm3 is free after the last group).
            b.movq("mm3", "mm2")
            b.psrlq("mm3", 32)
            b.paddd("mm2", "mm3")
            if phase % 2 == 0:
                b.movq("mm0" if phase == 0 else "mm1", "mm2")
            else:
                b.punpckldq("mm0" if phase == 1 else "mm1", "mm2")
        b.psrad("mm0", SHIFT)
        b.psrad("mm1", SHIFT)
        b.packssdw("mm0", "mm1")
        b.movq("[r2]", "mm0")
        b.add("r1", 8)
        b.add("r2", 8)
        b.loop("r0", "loop")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        return [LoopSpec(label="loop", iterations=self.blocks)]

    def build_spu_tuned(self):
        """SPU-aware recoding (§5.2.2's 'if the code was reworked' remark).

        The automatic pass keeps the ``psrlq`` of each horizontal reduction
        because removing it would make the following ``paddd`` consume
        shifted-in zeros.  A programmer who *knows* the SPU routes both
        operands writes the reduction as a single ``paddd`` whose second
        operand is the accumulator with its 32-bit halves swapped — both
        result lanes then hold the full sum and the copy/shift pair
        disappears, two instructions per phase instead of one.
        """
        from repro.core import SPUProgramBuilder, StateSpec, halfword_route

        G = self.groups
        b = ProgramBuilder(f"{self.name.lower()}-spu-tuned")
        self.preamble(b)
        b.mov("r0", self.blocks)
        b.mov("r1", INPUT_BASE)
        b.mov("r2", OUTPUT_BASE)
        b.mov("r3", COEFF_BASE)
        self.go_store(b)
        specs: list[StateSpec] = []
        # acc(mm2) + swapped-halves(mm2): lane0 = l0+l1, lane1 = l1+l0.
        swap_halves = halfword_route([(2, 2), (2, 3), (2, 0), (2, 1)])
        b.label("loop")
        for phase in range(4):
            b.pxor("mm2", "mm2")
            specs.append(StateSpec())
            for group in range(G):
                b.movq("mm3", f"[r1+{8 * group}]")
                b.pmaddwd("mm3", f"[r3+{8 * (phase * G + group)}]")
                b.paddd("mm2", "mm3")
                specs.extend([StateSpec(), StateSpec(), StateSpec()])
            b.paddd("mm2", "mm3")  # mm3's value is overridden by the route
            specs.append(StateSpec(routes={1: swap_halves}))
            if phase % 2 == 0:
                b.movq("mm0" if phase == 0 else "mm1", "mm2")
            else:
                b.punpckldq("mm0" if phase == 1 else "mm1", "mm2")
            specs.append(StateSpec())
        b.psrad("mm0", SHIFT)
        b.psrad("mm1", SHIFT)
        b.packssdw("mm0", "mm1")
        b.movq("[r2]", "mm0")
        b.add("r1", 8)
        b.add("r2", 8)
        b.loop("r0", "loop")
        b.halt()
        specs.extend([StateSpec()] * 7)

        builder = SPUProgramBuilder(config=self.config, name=f"{self.name}-tuned-ctl")
        builder.loop(specs, self.blocks)
        return b.build(), [(0, builder.build())]

    def prepare(self, machine: Machine) -> None:
        machine.memory.write_array(INPUT_BASE, self._xbuf(), np.int16)
        machine.memory.write_array(COEFF_BASE, self._banks(), np.int16)

    def extract(self, machine: Machine) -> np.ndarray:
        return machine.memory.read_array(OUTPUT_BASE, self.samples, np.int16)

    def reference(self) -> np.ndarray:
        """Fixed-point mirror: wrapping 32-bit sums, psrad, saturating pack."""
        xbuf = self._xbuf().astype(np.int64)
        reversed_taps = self.coeffs[::-1].astype(np.int64)
        out = np.empty(self.samples, dtype=np.int16)
        for n in range(self.samples):
            window = xbuf[n : n + self.taps]
            acc = _wrap32(np.array([np.sum(window * reversed_taps)]))[0]
            scaled = int(acc) >> SHIFT
            out[n] = np.int16(max(-32768, min(32767, scaled)))
        return out


class FIR12Kernel(FIRKernel):
    """Table 2 row 1: 12 taps, 150-sample blocks (rounded to 152 for packing)."""

    def __init__(self, samples: int = 152, **kwargs) -> None:
        super().__init__(taps=12, samples=samples, **kwargs)


class FIR22Kernel(FIRKernel):
    """Table 2 row 2: 22 taps, 150-sample blocks (rounded to 152 for packing)."""

    def __init__(self, samples: int = 152, **kwargs) -> None:
        super().__init__(taps=22, samples=samples, **kwargs)

"""Inverse 8×8 DCT (extension kernel: the decoder half of the codec).

Identical row-column structure to the forward DCT — only the coefficient
matrix transposes — so it inherits the full four-phase, four-context SPU
treatment.  Together with :class:`~repro.kernels.dct.DCTKernel` it closes
the compression round trip the paper's motivation invokes ("DCT which is a
critical kernel in many multimedia and compression applications", §7).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.dct import DCTKernel, Q, dct_matrix_q12


class IDCTKernel(DCTKernel):
    """8×8 inverse DCT: x = Cᵀ·X·C in Q12 fixed point."""

    name = "IDCT"
    description = "8x8 inverse DCT (extension kernel)"

    def __init__(self, blocks: int = 8, seed: int = 2004, **kwargs) -> None:
        super().__init__(blocks=blocks, seed=seed, **kwargs)
        # The row pass multiplies by the matrix rows; inverting the DCT just
        # transposes the coefficient matrix.
        self.cos = np.ascontiguousarray(dct_matrix_q12().T)
        # Workload: plausible coefficient blocks — energy-compacted values
        # like a quantized encoder would produce.
        rng = np.random.default_rng(seed + 1)
        coeffs = np.zeros((self.blocks, 8, 8), dtype=np.int16)
        coeffs[:, :3, :3] = rng.integers(-1200, 1200, size=(self.blocks, 3, 3))
        coeffs[:, 0, 0] = rng.integers(-2000, 2000, size=self.blocks)
        self.block = coeffs


def roundtrip_error(blocks: int = 4, seed: int = 7) -> float:
    """Max |pixel error| of DCT→IDCT over random residual blocks.

    Diagnostic used by tests and docs: with Q12 coefficients the round trip
    is accurate to a few LSBs.
    """
    forward = DCTKernel(blocks=blocks, seed=seed)
    coefficients = forward.reference()
    inverse = IDCTKernel(blocks=blocks, seed=seed)
    inverse.block = coefficients
    recovered = inverse.reference()
    return float(np.max(np.abs(recovered.astype(np.int64)
                               - forward.block.astype(np.int64))))

"""Order-10 IIR filter (Table 2's "IIR": 10 taps, 150-sample blocks).

IIR filters have a serial feedback dependence, so — like the IPP routine the
paper measures — the core runs on the *scalar* pipeline (``imul``-based
multiply-accumulate), and the MMX unit only performs data-format conversion:
a widening pass (16→32 bit, via self-unpack + arithmetic shift) before the
recursion and a saturating narrowing pass (``packssdw``) after it.  That
reproduces the paper's observation that the IPP IIR "does not utilize the
MMX efficiently": almost all of its MMX instructions are permutations
(93.63% in Table 3), and the SPU barely moves the total (§5.2.2).

Stability: feedback coefficients satisfy Σ|a| < 2^SHIFT, so the recursion is
bounded; the 32-bit intermediate never wraps and only the final pack
saturates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import (
    COEFF_BASE,
    INPUT_BASE,
    OUTPUT_BASE,
    SCRATCH_BASE,
    Kernel,
    LoopSpec,
)

#: Feedback scale: y[n] = (Σ b·x − Σ a·y) >> SHIFT.
SHIFT = 14

X32_BASE = SCRATCH_BASE  # widened input, after `taps` zeros of history
Y32_BASE = SCRATCH_BASE + 0x2000  # 32-bit outputs, after `taps` zeros


class IIRKernel(Kernel):
    """Order-T direct-form-I IIR over N samples (N multiple of 4)."""

    name = "IIR"
    description = "10 TAP, 150 Sample blocks (Table 2 row 3)"

    def __init__(self, taps: int = 10, samples: int = 152, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        if samples % 4 != 0 or samples <= 0:
            raise KernelError(f"sample count must be a positive multiple of 4, got {samples}")
        if taps < 1:
            raise KernelError(f"need at least 1 tap, got {taps}")
        self.taps = taps
        self.samples = samples
        rng = np.random.default_rng(seed)
        self.x = rng.integers(-20000, 20000, size=samples, dtype=np.int16)
        self.b_coeffs = rng.integers(-2000, 2000, size=taps + 1, dtype=np.int32)
        # Σ|a| < 2^SHIFT keeps the recursion stable and the int32 core exact.
        bound = (1 << SHIFT) // (2 * taps)
        self.a_coeffs = rng.integers(-bound, bound, size=taps, dtype=np.int32)

    @property
    def groups(self) -> int:
        return self.samples // 4

    # ---- program -------------------------------------------------------------

    def build_mmx(self) -> Program:
        T = self.taps
        hist_bytes = 4 * T
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)

        # Phase 1 (MMX, context 0): widen int16 samples to int32.
        b.mov("r0", self.groups)
        b.mov("r1", INPUT_BASE)
        b.mov("r2", X32_BASE + hist_bytes)
        self.go_store(b, context=0)
        b.label("widen")
        b.movq("mm0", "[r1]")
        b.movq("mm1", "mm0")
        b.punpcklwd("mm0", "mm0")  # duplicate pairs...
        b.psrad("mm0", 16)  # ...then sign-extend
        b.punpckhwd("mm1", "mm1")
        b.psrad("mm1", 16)
        b.movq("[r2]", "mm0")
        b.movq("[r2+8]", "mm1")
        b.add("r1", 8)
        b.add("r2", 16)
        b.loop("r0", "widen")

        # Phase 2 (scalar): the serial recursion.
        b.mov("r0", self.samples)
        b.mov("r1", X32_BASE + hist_bytes)  # &x32[n]
        b.mov("r2", Y32_BASE + hist_bytes)  # &y32[n]
        b.mov("r3", COEFF_BASE)
        b.label("recur")
        b.mov("r5", 0)
        for k in range(T + 1):  # feedforward Σ b_k x[n-k]
            b.ldw("r6", f"[r1-{4 * k}]" if k else "[r1]")
            b.ldw("r7", f"[r3+{4 * k}]")
            b.imul("r6", "r7")
            b.add("r5", "r6")
        for k in range(1, T + 1):  # feedback Σ a_k y[n-k]
            b.ldw("r6", f"[r2-{4 * k}]")
            b.ldw("r7", f"[r3+{4 * (T + k)}]")
            b.imul("r6", "r7")
            b.sub("r5", "r6")
        b.sar("r5", SHIFT)
        b.stw("[r2]", "r5")
        b.add("r1", 4)
        b.add("r2", 4)
        b.loop("r0", "recur")

        # Phase 3 (MMX, context 1): saturating narrow back to int16.
        b.mov("r0", self.groups)
        b.mov("r1", Y32_BASE + hist_bytes)
        b.mov("r2", OUTPUT_BASE)
        self.go_store(b, context=1)
        b.label("narrow")
        b.movq("mm0", "[r1]")
        b.packssdw("mm0", "[r1+8]")
        b.movq("[r2]", "mm0")
        b.add("r1", 16)
        b.add("r2", 8)
        b.loop("r0", "narrow")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        return [
            LoopSpec(label="widen", iterations=self.groups),
            LoopSpec(label="narrow", iterations=self.groups),
        ]

    def prepare(self, machine: Machine) -> None:
        machine.memory.write_array(INPUT_BASE, self.x, np.int16)
        coeffs = np.concatenate([self.b_coeffs, self.a_coeffs]).astype(np.int32)
        machine.memory.write_array(COEFF_BASE, coeffs, np.int32)
        # Zero history for x32/y32 is the power-on memory state already.

    def extract(self, machine: Machine) -> np.ndarray:
        return machine.memory.read_array(OUTPUT_BASE, self.samples, np.int16)

    def reference(self) -> np.ndarray:
        x = self.x.astype(np.int64)
        y32 = np.zeros(self.samples, dtype=np.int64)
        for n in range(self.samples):
            acc = 0
            for k in range(self.taps + 1):
                if n - k >= 0:
                    acc += int(self.b_coeffs[k]) * int(x[n - k])
            for k in range(1, self.taps + 1):
                if n - k >= 0:
                    acc -= int(self.a_coeffs[k - 1]) * int(y32[n - k])
            y32[n] = acc >> SHIFT
        return np.clip(y32, -32768, 32767).astype(np.int16)

"""16×16 16-bit matrix multiply (Table 2's "Matrix Multiply").

Two phases, each a flat SPU-acceleratable loop:

1. **Transpose B** with the Figure 3 unpack-tile scheme (inter-word
   restrictions at work, §2.2) so the inner products read contiguous rows.
2. **Row × row dot products** via ``pmaddwd`` chains: each output element is
   a 16-element dot product — four ``pmaddwd`` against the transposed B row,
   accumulated in 32 bits, horizontally reduced, scaled and saturating-packed
   four at a time.

The addresses of both loops come from precomputed tables, keeping the bodies
branch-free.  Fixed point: entries are bounded so the 32-bit accumulators
cannot wrap (|a|,|b| < 4096 → |acc| < 2²⁸); results are scaled by ``>> 12``
and saturating-packed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import (
    INPUT_BASE,
    OUTPUT_BASE,
    SCRATCH_BASE,
    TABLE_BASE,
    Kernel,
    LoopSpec,
)

SHIFT = 12

#: Memory layout offsets within the kernel's regions.
A_BASE = INPUT_BASE
B_BASE = INPUT_BASE + 0x800
BT_BASE = SCRATCH_BASE  # transposed B
TILE_TABLE = TABLE_BASE
DOT_TABLE = TABLE_BASE + 0x800


class MatMulKernel(Kernel):
    """C = A × B for N×N int16 matrices (N multiple of 4)."""

    name = "MatrixMultiply"
    description = "16x16 16b Matrix Multiply (Table 2 row 7)"

    def __init__(self, n: int = 16, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        if n % 4 != 0 or n <= 0:
            raise KernelError(f"matrix size must be a positive multiple of 4, got {n}")
        self.n = n
        rng = np.random.default_rng(seed)
        self.a = rng.integers(-4096, 4096, size=(n, n), dtype=np.int16)
        self.b = rng.integers(-4096, 4096, size=(n, n), dtype=np.int16)

    # ---- geometry -----------------------------------------------------------

    @property
    def tiles(self) -> int:
        return (self.n // 4) ** 2

    @property
    def dot_groups(self) -> int:
        """Output groups of four elements."""
        return self.n * self.n // 4

    @property
    def row_groups(self) -> int:
        """Qwords per matrix row."""
        return self.n // 4

    def _tile_table(self) -> np.ndarray:
        row_bytes = 2 * self.n
        entries = []
        for i in range(self.n // 4):
            for j in range(self.n // 4):
                src = B_BASE + (4 * i) * row_bytes + 8 * j
                dst = BT_BASE + (4 * j) * row_bytes + 8 * i
                entries.append((src, dst))
        return np.array(entries, dtype=np.uint32).reshape(-1)

    def _dot_table(self) -> np.ndarray:
        """(A row, BT rows base, C destination) per output group of four."""
        row_bytes = 2 * self.n
        entries = []
        for i in range(self.n):
            for jg in range(self.n // 4):
                a_row = A_BASE + i * row_bytes
                bt_rows = BT_BASE + (4 * jg) * row_bytes
                c_dst = OUTPUT_BASE + i * row_bytes + 8 * jg
                entries.append((a_row, bt_rows, c_dst))
        return np.array(entries, dtype=np.uint32).reshape(-1)

    # ---- program ----------------------------------------------------------------

    def _emit_tile_transpose(self, b: ProgramBuilder, row_bytes: int) -> None:
        """Figure 3 tile body: rows at [r1], columns to [r2]."""
        b.movq("mm0", "[r1]")
        b.movq("mm1", f"[r1+{row_bytes}]")
        b.movq("mm2", f"[r1+{2 * row_bytes}]")
        b.movq("mm3", f"[r1+{3 * row_bytes}]")
        b.movq("mm4", "mm0")
        b.punpcklwd("mm0", "mm1")
        b.punpckhwd("mm4", "mm1")
        b.movq("mm5", "mm2")
        b.punpcklwd("mm2", "mm3")
        b.punpckhwd("mm5", "mm3")
        b.movq("mm6", "mm0")
        b.punpckldq("mm0", "mm2")
        b.punpckhdq("mm6", "mm2")
        b.movq("mm7", "mm4")
        b.punpckldq("mm4", "mm5")
        b.punpckhdq("mm7", "mm5")
        b.movq("[r2]", "mm0")
        b.movq(f"[r2+{row_bytes}]", "mm6")
        b.movq(f"[r2+{2 * row_bytes}]", "mm4")
        b.movq(f"[r2+{3 * row_bytes}]", "mm7")

    def _build(self, tuned: bool):
        """The program, plus (when *tuned*) the dloop microcode specs.

        The tuned variant replaces each horizontal reduction's copy/shift
        pair with one ``paddd`` whose second operand routes the accumulator's
        swapped 32-bit halves — both lanes end up holding the full sum.
        """
        from repro.core import StateSpec, halfword_route

        row = 2 * self.n
        G = self.row_groups
        suffix = "spu-tuned" if tuned else "mmx"
        b = ProgramBuilder(f"{self.name.lower()}-{suffix}")
        self.preamble(b)

        # Phase 1: transpose B (context 0).
        b.mov("r0", self.tiles)
        b.mov("r10", TILE_TABLE)
        self.go_store(b, context=0)
        b.label("tloop")
        b.ldw("r1", "[r10]")
        b.ldw("r2", "[r10+4]")
        b.add("r10", 8)
        self._emit_tile_transpose(b, row)
        b.loop("r0", "tloop")

        # Phase 2: dot products (context 1).
        swap_halves = halfword_route([(2, 2), (2, 3), (2, 0), (2, 1)])
        specs: list[StateSpec] = []
        b.mov("r0", self.dot_groups)
        b.mov("r10", DOT_TABLE)
        self.go_store(b, context=1)
        b.label("dloop")
        b.ldw("r1", "[r10]")  # A row
        b.ldw("r2", "[r10+4]")  # four BT rows
        b.ldw("r3", "[r10+8]")  # C destination
        b.add("r10", 12)
        specs.extend([StateSpec()] * 4)
        for j in range(4):  # four output elements of this group
            b.pxor("mm2", "mm2")
            specs.append(StateSpec())
            for g in range(G):
                b.movq("mm3", f"[r1+{8 * g}]")
                b.pmaddwd("mm3", f"[r2+{j * row + 8 * g}]")
                b.paddd("mm2", "mm3")
                specs.extend([StateSpec()] * 3)
            if tuned:
                b.paddd("mm2", "mm3")  # value overridden by the route
                specs.append(StateSpec(routes={1: swap_halves}))
            else:
                b.movq("mm3", "mm2")
                b.psrlq("mm3", 32)
                b.paddd("mm2", "mm3")
                specs.extend([StateSpec()] * 3)
            if j % 2 == 0:
                b.movq("mm0" if j == 0 else "mm1", "mm2")
            else:
                b.punpckldq("mm0" if j == 1 else "mm1", "mm2")
            specs.append(StateSpec())
        b.psrad("mm0", SHIFT)
        b.psrad("mm1", SHIFT)
        b.packssdw("mm0", "mm1")
        b.movq("[r3]", "mm0")
        b.loop("r0", "dloop")
        specs.extend([StateSpec()] * 5)
        b.halt()
        return b.build(), specs

    def build_mmx(self) -> Program:
        program, _ = self._build(tuned=False)
        return program

    def build_spu_tuned(self):
        """SPU-aware recoding (§5.2.2): tile loop auto-off-loaded, dot loop
        hand-routed with the swap-halves horizontal reduction."""
        from repro.core import SPUProgramBuilder, offload_loop

        program, specs = self._build(tuned=True)
        tile_report = offload_loop(program, "tloop", self.tiles, self.config)
        builder = SPUProgramBuilder(config=self.config, name=f"{self.name}-tuned-ctl")
        builder.loop(specs, self.dot_groups)
        return tile_report.program, [
            (0, tile_report.spu_program),
            (1, builder.build()),
        ]

    def loops(self) -> list[LoopSpec]:
        return [
            LoopSpec(label="tloop", iterations=self.tiles),
            LoopSpec(label="dloop", iterations=self.dot_groups),
        ]

    def prepare(self, machine: Machine) -> None:
        machine.memory.write_array(A_BASE, self.a.reshape(-1), np.int16)
        machine.memory.write_array(B_BASE, self.b.reshape(-1), np.int16)
        machine.memory.write_array(TILE_TABLE, self._tile_table(), np.uint32)
        machine.memory.write_array(DOT_TABLE, self._dot_table(), np.uint32)

    def extract(self, machine: Machine) -> np.ndarray:
        flat = machine.memory.read_array(OUTPUT_BASE, self.n * self.n, np.int16)
        return flat.reshape(self.n, self.n)

    def reference(self) -> np.ndarray:
        acc = self.a.astype(np.int64) @ self.b.astype(np.int64)
        wrapped = ((acc + 2**31) % 2**32 - 2**31).astype(np.int64)
        scaled = wrapped >> SHIFT
        return np.clip(scaled, -32768, 32767).astype(np.int16)

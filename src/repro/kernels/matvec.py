"""Matrix-vector multiply (extension kernel; named in §2.2).

"Typically, inter-word restrictions occur in multi-dimensional signal
processing that involves matrix manipulations like transposing a matrix or
multiplying a matrix with a vector."  Smart-antenna style beamforming
(§5.2.3's "next generation of communications applications") is y = A·x on
short fixed-point vectors; the MMX code is ``pmaddwd`` row dot products
with the same horizontal-reduction permutes the SPU absorbs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import COEFF_BASE, INPUT_BASE, OUTPUT_BASE, Kernel, LoopSpec

SHIFT = 12

A_BASE = INPUT_BASE
X_BASE = COEFF_BASE


class MatVecKernel(Kernel):
    """y = A·x for an N×N int16 matrix and int16 vector (N multiple of 4)."""

    name = "MatrixVector"
    description = "NxN 16b matrix-vector multiply (extension kernel, §2.2)"

    def __init__(self, n: int = 16, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        if n % 4 != 0 or n <= 0:
            raise KernelError(f"size must be a positive multiple of 4, got {n}")
        self.n = n
        rng = np.random.default_rng(seed)
        self.a = rng.integers(-4096, 4096, size=(n, n), dtype=np.int16)
        self.x = rng.integers(-4096, 4096, size=n, dtype=np.int16)

    @property
    def row_groups(self) -> int:
        return self.n // 4

    @property
    def output_groups(self) -> int:
        return self.n // 4

    def build_mmx(self) -> Program:
        G = self.row_groups
        row_bytes = 2 * self.n
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)
        b.mov("r0", self.output_groups)
        b.mov("r1", A_BASE)  # current row
        b.mov("r2", OUTPUT_BASE)
        b.mov("r3", X_BASE)
        self.go_store(b)
        b.label("loop")
        for j in range(4):  # four outputs per iteration
            b.pxor("mm2", "mm2")
            for g in range(G):
                b.movq("mm3", f"[r1+{j * row_bytes + 8 * g}]")
                b.pmaddwd("mm3", f"[r3+{8 * g}]")
                b.paddd("mm2", "mm3")
            b.movq("mm3", "mm2")
            b.psrlq("mm3", 32)
            b.paddd("mm2", "mm3")
            if j % 2 == 0:
                b.movq("mm0" if j == 0 else "mm1", "mm2")
            else:
                b.punpckldq("mm0" if j == 1 else "mm1", "mm2")
        b.psrad("mm0", SHIFT)
        b.psrad("mm1", SHIFT)
        b.packssdw("mm0", "mm1")
        b.movq("[r2]", "mm0")
        b.add("r1", 4 * row_bytes)
        b.add("r2", 8)
        b.loop("r0", "loop")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        return [LoopSpec(label="loop", iterations=self.output_groups)]

    def prepare(self, machine: Machine) -> None:
        machine.memory.write_array(A_BASE, self.a.reshape(-1), np.int16)
        machine.memory.write_array(X_BASE, self.x, np.int16)

    def extract(self, machine: Machine) -> np.ndarray:
        return machine.memory.read_array(OUTPUT_BASE, self.n, np.int16)

    def reference(self) -> np.ndarray:
        acc = self.a.astype(np.int64) @ self.x.astype(np.int64)
        wrapped = ((acc + 2**31) % 2**32 - 2**31).astype(np.int64)
        return np.clip(wrapped >> SHIFT, -32768, 32767).astype(np.int16)

"""Registry of the paper's benchmark kernels (Table 2 rows + the §4 example)."""

from __future__ import annotations

from repro.errors import KernelError
from repro.kernels.base import Kernel
from repro.kernels.dct import DCTKernel
from repro.kernels.dotprod import DotProductKernel
from repro.kernels.fft import FFT128Kernel, FFT1024Kernel
from repro.kernels.fir import FIR12Kernel, FIR22Kernel
from repro.kernels.iir import IIRKernel
from repro.kernels.matmul import MatMulKernel
from repro.kernels.transpose import TransposeKernel
from repro.kernels.sad import SADKernel
from repro.kernels.colorspace import ColorSpaceKernel
from repro.kernels.matvec import MatVecKernel
from repro.kernels.idct import IDCTKernel
from repro.kernels.viterbi import ViterbiKernel

#: Table 2 order: the eight media algorithms of the evaluation.
TABLE2_KERNELS: dict[str, type[Kernel]] = {
    "FIR12": FIR12Kernel,
    "FIR22": FIR22Kernel,
    "IIR": IIRKernel,
    "FFT1024": FFT1024Kernel,
    "FFT128": FFT128Kernel,
    "DCT": DCTKernel,
    "MatrixMultiply": MatMulKernel,
    "MatrixTranspose": TransposeKernel,
}

#: Extension workloads beyond the paper's Table 2 (byte-granularity media
#: kernels from the intro's motivation — they need configurations A/B).
EXTENSION_KERNELS: dict[str, type[Kernel]] = {
    "SAD": SADKernel,
    "ColorSpace": ColorSpaceKernel,
    "MatrixVector": MatVecKernel,
    "IDCT": IDCTKernel,
    "Viterbi": ViterbiKernel,
}

ALL_KERNELS: dict[str, type[Kernel]] = {
    **TABLE2_KERNELS,
    "DotProduct": DotProductKernel,
    **EXTENSION_KERNELS,
}


def make_kernel(name: str, **kwargs) -> Kernel:
    """Instantiate a kernel by its Table 2 name."""
    try:
        cls = ALL_KERNELS[name]
    except KeyError as exc:
        raise KernelError(
            f"unknown kernel {name!r}; choose from {sorted(ALL_KERNELS)}"
        ) from exc
    return cls(**kwargs)

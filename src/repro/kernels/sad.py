"""Sum of absolute differences (extension kernel: motion estimation).

Video encoders compare candidate blocks with SAD — a canonical MMX byte
kernel built from the ``psubusb``/``por`` absolute-difference idiom and
zero-register ``punpckl/hbw`` widening.  Not part of the paper's Table 2,
but exactly the media workload class its introduction motivates, and the
cleanest demonstration of *byte-granularity* interconnect value: the
widening unpacks route only under configurations A/B (8-bit ports), not
under the cheaper 16-bit configuration D.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import COEFF_BASE, INPUT_BASE, OUTPUT_BASE, Kernel, LoopSpec

A_BASE = INPUT_BASE
B_BASE = INPUT_BASE + 0x800


class SADKernel(Kernel):
    """SAD of two pixel blocks (uint8), 8 pixels per iteration."""

    name = "SAD"
    description = "16x16 block sum of absolute differences (extension kernel)"

    def __init__(self, pixels: int = 256, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        if pixels % 8 != 0 or pixels <= 0:
            raise KernelError(f"pixel count must be a positive multiple of 8, got {pixels}")
        if pixels > 2048:
            raise KernelError("word accumulators overflow beyond 2048 pixels")
        self.pixels = pixels
        rng = np.random.default_rng(seed)
        self.block_a = rng.integers(0, 256, size=pixels, dtype=np.uint8)
        self.block_b = rng.integers(0, 256, size=pixels, dtype=np.uint8)

    @property
    def groups(self) -> int:
        return self.pixels // 8

    def build_mmx(self) -> Program:
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)
        b.mov("r0", self.groups)
        b.mov("r1", A_BASE)
        b.mov("r2", B_BASE)
        b.pxor("mm2", "mm2")  # word accumulator
        b.pxor("mm3", "mm3")  # zero register for the widening unpacks
        self.go_store(b)
        b.label("loop")
        b.movq("mm0", "[r1]")
        b.movq("mm1", "[r2]")
        b.psubusb("mm0", "[r2]")  # max(a-b, 0)
        b.psubusb("mm1", "[r1]")  # max(b-a, 0)
        b.por("mm0", "mm1")  # |a-b| per byte
        b.movq("mm1", "mm0")
        b.punpcklbw("mm0", "mm3")  # widen low 4 bytes to words
        b.punpckhbw("mm1", "mm3")  # widen high 4 bytes
        b.paddw("mm0", "mm1")
        b.paddw("mm2", "mm0")
        b.add("r1", 8)
        b.add("r2", 8)
        b.loop("r0", "loop")
        # Epilogue: reduce the four word lanes to one scalar.
        b.pmaddwd("mm2", "[r3]")  # dot with (1,1,1,1)
        b.movq("mm1", "mm2")
        b.psrlq("mm1", 32)
        b.paddd("mm2", "mm1")
        b.movd("r5", "mm2")
        b.mov("r6", OUTPUT_BASE)
        b.stw("[r6]", "r5")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        from repro.isa import MM

        # mm2 carries the accumulator across iterations and into the
        # epilogue — the pass must keep its last in-loop writer.
        return [LoopSpec(label="loop", iterations=self.groups, live_out=(MM[2],))]

    def prepare(self, machine: Machine) -> None:
        machine.memory.write_array(A_BASE, self.block_a, np.uint8)
        machine.memory.write_array(B_BASE, self.block_b, np.uint8)
        machine.memory.write_array(COEFF_BASE, np.ones(4, dtype=np.int16), np.int16)
        machine.state.write(__import__("repro.isa", fromlist=["R"]).R[3], COEFF_BASE)

    def extract(self, machine: Machine) -> np.ndarray:
        return np.array([machine.memory.load(OUTPUT_BASE, 4)], dtype=np.uint32)

    def reference(self) -> np.ndarray:
        diff = np.abs(self.block_a.astype(np.int64) - self.block_b.astype(np.int64))
        return np.array([diff.sum()], dtype=np.uint32)

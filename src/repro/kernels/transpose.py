"""16×16 16-bit matrix transpose (Table 2's "Matrix Transpose").

The MMX version is the paper's Figure 3 scheme: each 4×4 tile is transposed
with eight merge instructions (two ``punpckl/hwd`` levels into ``punpckl/
hdq``), plus the ``movq`` copies the destructive two-operand forms require.
Inter-word restrictions make this the permute-heaviest kernel of the suite —
with full sub-word addressing a column could be gathered in one instruction
per row (§2.2), which is what the SPU-routed stores achieve.

Tile addresses come from a precomputed table so the body stays branch-free
(one flat loop over the 16 tiles).
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import INPUT_BASE, OUTPUT_BASE, TABLE_BASE, Kernel, LoopSpec


class TransposeKernel(Kernel):
    """N×N 16-bit transpose via 4×4 unpack tiles (N multiple of 4)."""

    name = "MatrixTranspose"
    description = "16x16 Matrix Transpose, 16-bits (Table 2 row 8)"

    def __init__(self, n: int = 16, seed: int = 2004, **kwargs) -> None:
        super().__init__(**kwargs)
        if n % 4 != 0 or n <= 0:
            raise KernelError(f"transpose size must be a positive multiple of 4, got {n}")
        self.n = n
        rng = np.random.default_rng(seed)
        self.matrix = rng.integers(-30000, 30000, size=(n, n), dtype=np.int16)

    @property
    def tiles(self) -> int:
        return (self.n // 4) ** 2

    def _address_table(self) -> np.ndarray:
        """(src, dst) byte addresses per 4×4 tile."""
        row_bytes = 2 * self.n
        entries = []
        for i in range(self.n // 4):
            for j in range(self.n // 4):
                src = INPUT_BASE + (4 * i) * row_bytes + 8 * j
                dst = OUTPUT_BASE + (4 * j) * row_bytes + 8 * i
                entries.append((src, dst))
        return np.array(entries, dtype=np.uint32).reshape(-1)

    def build_mmx(self) -> Program:
        row = 2 * self.n
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)
        b.mov("r0", self.tiles)
        b.mov("r10", TABLE_BASE)
        self.go_store(b)
        b.label("loop")
        b.ldw("r1", "[r10]")  # tile source
        b.ldw("r2", "[r10+4]")  # tile destination
        b.add("r10", 8)
        b.movq("mm0", "[r1]")  # row a
        b.movq("mm1", f"[r1+{row}]")  # row b
        b.movq("mm2", f"[r1+{2 * row}]")  # row c
        b.movq("mm3", f"[r1+{3 * row}]")  # row d
        # Figure 3: two unpack levels produce the four columns.
        b.movq("mm4", "mm0")
        b.punpcklwd("mm0", "mm1")  # a0 b0 a1 b1
        b.punpckhwd("mm4", "mm1")  # a2 b2 a3 b3
        b.movq("mm5", "mm2")
        b.punpcklwd("mm2", "mm3")  # c0 d0 c1 d1
        b.punpckhwd("mm5", "mm3")  # c2 d2 c3 d3
        b.movq("mm6", "mm0")
        b.punpckldq("mm0", "mm2")  # a0 b0 c0 d0 = column 0
        b.punpckhdq("mm6", "mm2")  # column 1
        b.movq("mm7", "mm4")
        b.punpckldq("mm4", "mm5")  # column 2
        b.punpckhdq("mm7", "mm5")  # column 3
        b.movq("[r2]", "mm0")
        b.movq(f"[r2+{row}]", "mm6")
        b.movq(f"[r2+{2 * row}]", "mm4")
        b.movq(f"[r2+{3 * row}]", "mm7")
        b.loop("r0", "loop")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        return [LoopSpec(label="loop", iterations=self.tiles)]

    def prepare(self, machine: Machine) -> None:
        machine.memory.write_array(INPUT_BASE, self.matrix.reshape(-1), np.int16)
        machine.memory.write_array(TABLE_BASE, self._address_table(), np.uint32)

    def extract(self, machine: Machine) -> np.ndarray:
        flat = machine.memory.read_array(OUTPUT_BASE, self.n * self.n, np.int16)
        return flat.reshape(self.n, self.n)

    def reference(self) -> np.ndarray:
        return self.matrix.T.copy()

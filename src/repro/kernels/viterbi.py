"""Viterbi decoder ACS kernel (extension; named in the paper's intro, §1).

"These applications operate on smaller data types ... common in Viterbi
decoding, FIR filters, FFT, LDPC decoders."  A rate-1/2, constraint-length-3
convolutional decoder has four trellis states whose path metrics fit one MMX
register as 16-bit lanes — and the add-compare-select butterfly needs the
old metrics *rearranged twice per symbol* (predecessor gathers), the classic
intra-word restriction:

    A = metrics[0,0,1,1]   (predecessor n>>1 of next-state n)
    B = metrics[2,2,3,3]   (predecessor (n>>1)|2)
    new[n] = min(A[n]+bmA[n], B[n]+bmB[n]);  survivor[n] = which side won

The two ``pshufw`` gathers and the copies around the compare are exactly
what the SPU absorbs.  A scalar traceback loop (branchless, mask-indexed)
recovers the decoded bits, diluting MMX utilization realistically.

Fixed point: metrics are saturating int16 (``paddsw``/``pminsw``); branch
metrics are scaled Hamming distances, small enough that no saturation occurs
at the default workload size — and the NumPy mirror reproduces the lane
semantics exactly regardless.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.cpu import Machine
from repro.isa import Program, ProgramBuilder
from repro.kernels.base import COEFF_BASE, INPUT_BASE, OUTPUT_BASE, Kernel, LoopSpec

#: Branch-metric scale (Hamming distance 0..2 per symbol × 64).
BM_SCALE = 64

#: Initial path metrics: state 0 known, others penalized.
INITIAL_METRICS = (0, 8000, 8000, 8000)

SURVIVOR_BASE = OUTPUT_BASE  # one qword of lane masks per symbol
# decoded bits (one 16-bit word per bit) follow the survivors
METRICS_OUT = COEFF_BASE + 0x800  # final metrics, for verification

#: pshufw orders for the predecessor gathers.
ORDER_A = 0x50  # lanes [0,0,1,1]
ORDER_B = 0xFA  # lanes [2,2,3,3]


def convolutional_encode(bits: np.ndarray) -> np.ndarray:
    """Rate-1/2, K=3 encoder with generators (7, 5) octal; returns symbols 0-3."""
    state = 0
    symbols = []
    for bit in bits:
        bit = int(bit)
        reg = (bit << 2) | state  # [newest, s1, s0]
        out0 = ((reg >> 2) ^ (reg >> 1) ^ reg) & 1  # 111
        out1 = ((reg >> 2) ^ reg) & 1  # 101
        symbols.append((out0 << 1) | out1)
        state = ((state << 1) | bit) & 3
    return np.array(symbols, dtype=np.uint8)


def _expected_symbol(prev_state: int, bit: int) -> int:
    reg = (bit << 2) | prev_state
    out0 = ((reg >> 2) ^ (reg >> 1) ^ reg) & 1
    out1 = ((reg >> 2) ^ reg) & 1
    return (out0 << 1) | out1


def _hamming2(a: int, b: int) -> int:
    return bin((a ^ b) & 3).count("1")


class ViterbiKernel(Kernel):
    """K=3 rate-1/2 Viterbi: vectorized ACS + scalar traceback."""

    name = "Viterbi"
    description = "K=3 rate-1/2 Viterbi decode (extension kernel, §1)"

    def __init__(self, nbits: int = 64, seed: int = 2004, flips: int = 3, **kwargs) -> None:
        super().__init__(**kwargs)
        if nbits < 4:
            raise KernelError(f"need at least 4 bits, got {nbits}")
        if nbits * 2 * BM_SCALE + max(INITIAL_METRICS) > 32000:
            raise KernelError("workload long enough to saturate the metrics")
        self.nbits = nbits
        rng = np.random.default_rng(seed)
        self.tx_bits = rng.integers(0, 2, size=nbits, dtype=np.uint8)
        symbols = convolutional_encode(self.tx_bits)
        # Channel: flip some symbol bits (errors the decoder must correct).
        noisy = symbols.copy()
        for index in rng.choice(nbits, size=min(flips, nbits), replace=False):
            noisy[index] ^= 1 << int(rng.integers(0, 2))
        self.rx_symbols = noisy

    # ---- branch-metric tables -----------------------------------------------
    #
    # Transition structure: the state update is s' = ((s<<1)|bit)&3, so a
    # next-state n encodes its input bit in its low bit, and its two
    # predecessors are p0 = n>>1 and p1 = (n>>1)|2 — the butterfly the two
    # pshufw gathers implement.

    def _branch_metrics(self) -> np.ndarray:
        """Per received symbol: bmA[4] then bmB[4] (int16, Hamming × scale)."""
        rows = []
        for symbol in self.rx_symbols:
            bm_a = []
            bm_b = []
            for next_state in range(4):
                bit = next_state & 1
                p0 = next_state >> 1
                p1 = (next_state >> 1) | 2
                bm_a.append(_hamming2(_expected_symbol(p0, bit), int(symbol)) * BM_SCALE)
                bm_b.append(_hamming2(_expected_symbol(p1, bit), int(symbol)) * BM_SCALE)
            rows.append(bm_a + bm_b)
        return np.array(rows, dtype=np.int16).reshape(-1)

    # ---- program -----------------------------------------------------------------

    def build_mmx(self) -> Program:
        n = self.nbits
        decoded_base = SURVIVOR_BASE + 8 * n
        b = ProgramBuilder(f"{self.name.lower()}-mmx")
        self.preamble(b)
        # mm0 = path metrics, preloaded by prepare().
        b.mov("r0", n)
        b.mov("r1", COEFF_BASE)  # branch-metric table
        b.mov("r3", SURVIVOR_BASE)
        self.go_store(b)
        b.label("acs")
        # Predecessor gathers: the intra-word shuffles the SPU removes.
        b.pshufw("mm1", "mm0", ORDER_A)  # A = metrics[0,0,1,1]
        b.pshufw("mm0", "mm0", ORDER_B)  # B = metrics[2,2,3,3]
        b.paddsw("mm1", "[r1]")  # A + bmA
        b.paddsw("mm0", "[r1+8]")  # B + bmB
        b.movq("mm2", "mm1")
        b.pcmpgtw("mm2", "mm0")  # mask: B path strictly better
        b.movq("[r3]", "mm2")  # survivors for the traceback
        b.pminsw("mm1", "mm0")  # selected metrics
        b.movq("mm0", "mm1")  # metrics live into the next iteration
        b.add("r1", 16)
        b.add("r3", 8)
        b.loop("r0", "acs")
        b.mov("r4", METRICS_OUT)
        b.movq("[r4]", "mm0")  # final metrics, for verification

        # Scalar traceback (branchless): start from state 0 (the encoder is
        # flushed conceptually; with distinct metrics the test uses argmin in
        # the mirror identically).
        b.mov("r5", 0)  # current state
        b.mov("r0", n)
        b.mov("r3", SURVIVOR_BASE + 8 * (n - 1))  # last survivor qword
        b.mov("r2", decoded_base + 2 * (n - 1))  # last decoded-bit slot
        b.label("trace")
        b.mov("r6", "r5")
        b.and_("r6", 1)  # decoded bit = state low bit
        b.sth("[r2]", "r6")
        b.mov("r7", "r5")
        b.shl("r7", 1)  # state*2 = lane byte offset
        b.add("r7", "r3")
        b.ldh("r8", "[r7]")  # survivor mask lane for this state
        b.and_("r8", 2)  # 0xFFFF -> 2, 0 -> 0
        b.mov("r6", "r5")
        b.shr("r6", 1)
        b.or_("r6", "r8")  # predecessor = (state>>1) | (mask & 2)
        b.mov("r5", "r6")
        b.sub("r3", 8)
        b.sub("r2", 2)
        b.loop("r0", "trace")
        b.halt()
        return b.build()

    def loops(self) -> list[LoopSpec]:
        from repro.isa import MM

        return [LoopSpec(label="acs", iterations=self.nbits, live_out=(MM[0],))]

    def prepare(self, machine: Machine) -> None:
        from repro import simd
        from repro.isa import MM

        machine.memory.write_array(COEFF_BASE, self._branch_metrics(), np.int16)
        machine.state.write(MM[0], simd.join(list(INITIAL_METRICS), 16))

    def extract(self, machine: Machine) -> np.ndarray:
        decoded_base = SURVIVOR_BASE + 8 * self.nbits
        survivors = machine.memory.read_array(SURVIVOR_BASE, 4 * self.nbits, np.uint16)
        bits = machine.memory.read_array(decoded_base, self.nbits, np.uint16)
        metrics = machine.memory.read_array(METRICS_OUT, 4, np.int16)
        return np.concatenate([
            survivors.astype(np.int64), bits.astype(np.int64),
            metrics.astype(np.int64),
        ])

    # ---- mirror ----------------------------------------------------------------------

    def reference(self) -> np.ndarray:
        metrics = np.array(INITIAL_METRICS, dtype=np.int64)
        table = self._branch_metrics().reshape(self.nbits, 8).astype(np.int64)
        survivors = np.zeros((self.nbits, 4), dtype=np.uint16)
        sat = lambda v: np.clip(v, -32768, 32767)
        for t in range(self.nbits):
            a = sat(metrics[[0, 0, 1, 1]] + table[t, :4])
            b = sat(metrics[[2, 2, 3, 3]] + table[t, 4:])
            survivors[t] = np.where(a > b, 0xFFFF, 0)
            metrics = np.minimum(a, b)
        # Traceback from state 0 (mirrors the hardware loop exactly).
        bits = np.zeros(self.nbits, dtype=np.uint16)
        state = 0
        for t in range(self.nbits - 1, -1, -1):
            bits[t] = state & 1
            mask_bit = 2 if survivors[t, state] else 0
            state = (state >> 1) | mask_bit
        return np.concatenate([
            survivors.reshape(-1).astype(np.int64), bits.astype(np.int64),
            metrics.astype(np.int64),
        ])

    def decoded_bits(self) -> np.ndarray:
        """The mirror's decoded bit sequence (for BER-style checks)."""
        out = self.reference()
        return out[4 * self.nbits : 5 * self.nbits].astype(np.uint8)

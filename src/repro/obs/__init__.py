"""repro.obs — the instrumentation subsystem.

A unified telemetry layer for the simulator: a multi-subscriber event bus
(:mod:`repro.obs.events`) replaces the old single-slot ``Machine.on_issue``
hook; per-stage cycle attribution (:mod:`repro.obs.attribution`) tags every
simulated cycle as pair-issue / solo-issue / data-stall / mispredict-bubble /
drain; SPU controller tracing (:mod:`repro.obs.spu`) records the microprogram
state machine's transitions, loop counters and GO/idle occupancy; a metrics
registry plus JSON/JSONL exporters (:mod:`repro.obs.metrics`,
:mod:`repro.obs.export`) turn all of it into machine-readable reports; a
back-edge hot-trace profiler (:mod:`repro.obs.traceprof`) aggregates runs
into the per-trace cycle attribution behind ``repro top``; and host-side
span tracing (:mod:`repro.obs.spans`) times campaigns as OTLP-flavored
hierarchical spans.

The modules here deliberately avoid module-level imports from the simulator
packages (``repro.cpu``, ``repro.core``, ``repro.kernels``): the pipeline's
hot loop imports :mod:`repro.obs.events`, so everything else stays lazy to
keep the import graph acyclic.

See ``docs/observability.md`` for the event and schema reference.
"""

from repro.obs.events import (
    TOPICS,
    BranchEvent,
    BreakerOpenEvent,
    ControllerStepEvent,
    DegradeEvent,
    EventBus,
    FaultEvent,
    IssueEvent,
    JobDegradedEvent,
    JobDoneEvent,
    JobRejectedEvent,
    JobRequeuedEvent,
    JobStartedEvent,
    JobSubmittedEvent,
    RecoveryEvent,
    RunEndEvent,
    RunStartEvent,
    ServeCompactEvent,
    ServeDrainEvent,
    SPURouteEvent,
    StallEvent,
    SubscriberError,
    TaskDoneEvent,
    TaskRetryEvent,
    TaskStartEvent,
    TaskTimeoutEvent,
)
from repro.obs.attribution import CATEGORIES, CycleAttribution, CycleSegment
from repro.obs.spu import ControllerTrace
from repro.obs.metrics import Metric, MetricsRegistry
from repro.obs.export import (
    SCHEMA_VERSION,
    SCHEMA_VERSION_2,
    envelope,
    kernel_profile_report,
    resolve_kernel_name,
    trace_header,
    trace_profile_report,
    trace_records,
    write_json,
    write_jsonl,
)
from repro.obs.spans import Span, SpanTracer, maybe_span
from repro.obs.traceprof import TraceProfiler, TraceStats

__all__ = [
    "TOPICS",
    "BranchEvent",
    "BreakerOpenEvent",
    "ControllerStepEvent",
    "DegradeEvent",
    "EventBus",
    "FaultEvent",
    "IssueEvent",
    "JobDegradedEvent",
    "JobDoneEvent",
    "JobRejectedEvent",
    "JobRequeuedEvent",
    "JobStartedEvent",
    "JobSubmittedEvent",
    "RecoveryEvent",
    "RunEndEvent",
    "RunStartEvent",
    "ServeCompactEvent",
    "ServeDrainEvent",
    "SPURouteEvent",
    "StallEvent",
    "SubscriberError",
    "TaskDoneEvent",
    "TaskRetryEvent",
    "TaskStartEvent",
    "TaskTimeoutEvent",
    "CATEGORIES",
    "CycleAttribution",
    "CycleSegment",
    "ControllerTrace",
    "Metric",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "SCHEMA_VERSION_2",
    "envelope",
    "kernel_profile_report",
    "resolve_kernel_name",
    "trace_header",
    "trace_profile_report",
    "trace_records",
    "write_json",
    "write_jsonl",
    "Span",
    "SpanTracer",
    "maybe_span",
    "TraceProfiler",
    "TraceStats",
]

"""Per-stage cycle attribution: a timeline built from bus events.

Every simulated cycle belongs to exactly one category:

``pair_issue``
    An issue cycle in which both the U and the V pipe executed.
``solo_issue``
    An issue cycle with a single instruction (pairing failed, a branch, the
    final ``halt``, or ``issue_width=1``).
``data_stall``
    Cycles spent waiting on a not-yet-ready source register.
``mispredict_bubble``
    Pipeline-refill cycles after a mispredicted branch.
``drain``
    Pipeline-fill cycles charged before the first issue (the SPU's extra
    interconnect stage).

The per-category sums live in :class:`repro.cpu.stats.RunStats`
(``pair_cycles``, ``solo_cycles``, ``stall_cycles``, ``mispredict_cycles``,
``drain_cycles``; see :meth:`RunStats.attribution`) and always satisfy the
invariant ``sum(categories) == RunStats.cycles`` for a completed run.  This
module adds the *timeline* view: an ordered, run-length-encoded list of
:class:`CycleSegment` reconstructed by subscribing to the ``run_start``,
``issue``, ``stall`` and ``branch`` topics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import BranchEvent, IssueEvent, RunStartEvent, StallEvent

#: Attribution categories, in timeline-priority order.
CATEGORIES = (
    "pair_issue",
    "solo_issue",
    "data_stall",
    "mispredict_bubble",
    "drain",
)


@dataclass(slots=True)
class CycleSegment:
    """A run of consecutive cycles with one attribution category."""

    start: int
    length: int
    category: str

    @property
    def end(self) -> int:
        """One past the last cycle of the segment."""
        return self.start + self.length

    def as_dict(self) -> dict:
        return {"start": self.start, "length": self.length, "category": self.category}


class CycleAttribution:
    """Event-bus subscriber reconstructing the cycle timeline of one run.

    Usage::

        timeline = CycleAttribution().attach(machine)
        stats = machine.run()
        assert timeline.total_cycles() == stats.cycles
        timeline.detach()

    Issue cycles are recorded as ``solo_issue`` when the first (U-pipe) issue
    of a cycle arrives and upgraded in place to ``pair_issue`` if a V-pipe
    issue follows at the same cycle.  Adjacent same-category segments merge,
    so tight loops compress to a handful of segments.
    """

    def __init__(self, max_segments: int = 1_000_000) -> None:
        self.segments: list[CycleSegment] = []
        self.max_segments = max_segments
        #: Segments dropped after :attr:`max_segments` was reached (their
        #: cycles are still counted in :attr:`overflow_totals`).
        self.truncated = False
        self.overflow_totals: dict[str, int] = {}
        self._last_issue_cycle = -1
        self._unsubscribes: list = []

    # -- wiring ---------------------------------------------------------------

    def attach(self, machine) -> "CycleAttribution":
        """Subscribe to *machine*'s bus; returns ``self`` for chaining."""
        bus = machine.bus
        self._unsubscribes = [
            bus.subscribe("run_start", self._on_run_start),
            bus.subscribe("issue", self._on_issue),
            bus.subscribe("stall", self._on_stall),
            bus.subscribe("branch", self._on_branch),
        ]
        return self

    def detach(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []

    # -- event handlers -------------------------------------------------------

    def _on_run_start(self, event: RunStartEvent) -> None:
        self.segments.clear()
        self.overflow_totals.clear()
        self.truncated = False
        self._last_issue_cycle = -1
        if event.fill_cycles:
            self._append(0, event.fill_cycles, "drain")

    def _on_issue(self, event: IssueEvent) -> None:
        if event.cycle == self._last_issue_cycle:
            # V-pipe partner: upgrade the cycle recorded for the U issue.
            self._upgrade_to_pair(event.cycle)
            return
        self._last_issue_cycle = event.cycle
        self._append(event.cycle, 1, "solo_issue")

    def _on_stall(self, event: StallEvent) -> None:
        self._append(event.cycle, event.cycles, "data_stall")

    def _on_branch(self, event: BranchEvent) -> None:
        if event.penalty:
            # The bubble follows the branch's own issue cycle.
            self._append(event.cycle + 1, event.penalty, "mispredict_bubble")

    # -- segment bookkeeping --------------------------------------------------

    def _append(self, start: int, length: int, category: str) -> None:
        segments = self.segments
        if segments:
            last = segments[-1]
            if last.category == category and last.end == start:
                last.length += length
                return
        if len(segments) >= self.max_segments:
            self.truncated = True
            totals = self.overflow_totals
            totals[category] = totals.get(category, 0) + length
            return
        segments.append(CycleSegment(start, length, category))

    def _upgrade_to_pair(self, cycle: int) -> None:
        last = self.segments[-1] if self.segments else None
        if last is None or last.end != cycle + 1:
            # The solo cycle overflowed into overflow_totals; recategorize.
            totals = self.overflow_totals
            if totals.get("solo_issue", 0) > 0:
                totals["solo_issue"] -= 1
                totals["pair_issue"] = totals.get("pair_issue", 0) + 1
            return
        if last.length == 1:
            last.category = "pair_issue"
            # Merge backwards if the previous segment is also pair_issue.
            if len(self.segments) >= 2:
                prev = self.segments[-2]
                if prev.category == "pair_issue" and prev.end == last.start:
                    prev.length += last.length
                    self.segments.pop()
        else:
            last.length -= 1
            self.segments.append(CycleSegment(cycle, 1, "pair_issue"))

    # -- views ----------------------------------------------------------------

    def totals(self) -> dict[str, int]:
        """Cycles per category (timeline + any overflowed remainder)."""
        totals = {category: 0 for category in CATEGORIES}
        for segment in self.segments:
            totals[segment.category] += segment.length
        for category, length in self.overflow_totals.items():
            totals[category] += length
        return totals

    def total_cycles(self) -> int:
        return sum(self.totals().values())

    def as_dict(self) -> dict:
        """JSON-friendly timeline summary."""
        return {
            "totals": self.totals(),
            "total_cycles": self.total_cycles(),
            "segments": [segment.as_dict() for segment in self.segments],
            "truncated": self.truncated,
        }

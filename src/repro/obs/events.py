"""The simulator's event bus and its event types.

The bus replaces the old single-slot ``Machine.on_issue`` hook: any number of
subscribers can observe a run concurrently, subscribers can attach and detach
mid-run, and a subscriber that raises does not corrupt the simulation (the
error is recorded on :attr:`EventBus.errors` and the offender is dropped).

Dispatch is designed around the pipeline's hot issue loop: each topic is a
plain list attribute on the bus, so the no-subscriber case costs one
attribute load plus an emptiness test per emission site — no event object is
even constructed.  Emitters follow the pattern::

    bus = self.bus
    if bus.issue:
        bus.dispatch("issue", IssueEvent(...))

This module must stay import-light: :mod:`repro.cpu.pipeline` imports it, so
nothing here may import from ``repro.cpu``/``repro.core``/``repro.kernels``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RunnerInterrupted

#: Every topic the simulator emits, in rough pipeline order.  The three
#: resilience topics (``fault``/``degrade``/``recovery``) fire only when
#: something goes wrong, so they are free on healthy runs.  The five
#: ``task_*``/``breaker_*`` topics are orchestration-level: they are emitted
#: by the :mod:`repro.runner` campaign runner (on its own bus instance, one
#: per :class:`repro.runner.Runner`), never by a simulated machine.  The
#: eight ``job_*``/``serve_*`` topics sit one level above that: emitted by
#: the :mod:`repro.serve` job service (on its own bus), they describe
#: admission, execution, supervision, compaction and drain of whole
#: campaigns.
TOPICS = (
    "run_start",
    "issue",
    "stall",
    "branch",
    "spu_route",
    "controller_step",
    "fault",
    "degrade",
    "recovery",
    "run_end",
    "task_start",
    "task_retry",
    "task_timeout",
    "breaker_open",
    "task_done",
    "job_submitted",
    "job_rejected",
    "job_started",
    "job_requeued",
    "job_degraded",
    "job_done",
    "serve_drain",
    "serve_compact",
)


# ---- event payloads ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RunStartEvent:
    """A :meth:`Machine.run` invocation began."""

    program: str
    #: Pipeline-fill cycles charged before the first issue (the SPU's extra
    #: interconnect stage, §5.1.1) — the timeline's initial ``drain`` segment.
    fill_cycles: int


@dataclass(frozen=True, slots=True)
class IssueEvent:
    """One dynamic instruction issued (U or V pipe)."""

    seq: int
    cycle: int
    pc: int
    instr: Any
    #: ``"U"`` for the first issue of a cycle, ``"V"`` for a paired follower.
    pipe: str
    #: True when the SPU rerouted at least one source operand.
    routed: bool


@dataclass(frozen=True, slots=True)
class StallEvent:
    """The next instruction waited on a not-yet-ready source register."""

    cycle: int
    pc: int
    cycles: int


@dataclass(frozen=True, slots=True)
class BranchEvent:
    """A branch resolved (every branch, mispredicted or not)."""

    cycle: int
    pc: int
    taken: bool
    predicted_taken: bool
    mispredict: bool
    #: Bubble cycles charged (0 on a correct prediction).
    penalty: int


@dataclass(frozen=True, slots=True)
class SPURouteEvent:
    """The attached SPU rerouted operands of one dynamic instruction."""

    pc: int
    instr: str
    #: Operand slots that received crossbar values.
    slots: tuple[int, ...]
    #: Controller state that emitted the routes.
    state_index: int


@dataclass(frozen=True, slots=True)
class ControllerStepEvent:
    """The decoupled controller advanced one dynamic MMX instruction."""

    context: int
    state_index: int
    next_index: int
    #: Loop-counter values *after* the step (post-decrement / post-reload).
    counters: tuple[int, int]
    #: True when the emitted state carried operand routes.
    routed: bool
    #: True when this step landed on the idle state (SPU disabled itself).
    went_idle: bool


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """A component hit an invalid state, route, access or control word.

    Emitted in every resilience mode that has a bus attached — STRICT raises
    right after emitting, DEGRADE pairs it with a :class:`DegradeEvent`,
    HALT pairs it with a clean run termination.
    """

    #: Which layer faulted: ``"controller"``, ``"crossbar"``, ``"machine"``.
    component: str
    #: Short machine-readable fault class (e.g. ``"invalid_state"``,
    #: ``"route_error"``, ``"memory_fault"``).
    kind: str
    detail: str
    #: Program counter at the faulting issue (-1 when not applicable).
    pc: int = -1
    #: The underlying exception, when one exists (e.g. a
    #: :class:`repro.errors.MemoryFault` carrying address/size).
    error: Any = None


@dataclass(frozen=True, slots=True)
class DegradeEvent:
    """A fault was absorbed and the run continues with reduced function."""

    component: str
    #: What the degradation did: ``"park_idle"`` (controller forced to the
    #: idle state), ``"serialize_operand"`` (straight-through value used),
    #: ``"drop_instruction"`` (faulting issue executed as a no-op).
    action: str
    detail: str = ""
    pc: int = -1


@dataclass(frozen=True, slots=True)
class RecoveryEvent:
    """A previously degraded component was re-armed (e.g. GO after a park)."""

    component: str
    detail: str = ""


@dataclass(frozen=True, slots=True)
class RunEndEvent:
    """A :meth:`Machine.run` invocation finished (also on abort)."""

    program: str
    cycles: int
    instructions: int
    finished: bool


# ---- task lifecycle (repro.runner) -------------------------------------------


@dataclass(frozen=True, slots=True)
class TaskStartEvent:
    """The campaign runner dispatched one attempt of a task."""

    task: str
    #: 1-based attempt number (``> 1`` means this is a retry attempt).
    attempt: int
    #: Worker slot executing the attempt (-1 on the serial in-process path).
    worker: int = -1


@dataclass(frozen=True, slots=True)
class TaskRetryEvent:
    """An attempt failed and the task was rescheduled with backoff."""

    task: str
    #: The attempt that just failed.
    attempt: int
    #: Why it failed: ``"error"``, ``"crash"``, ``"timeout"``, ``"hang"``.
    reason: str
    detail: str = ""
    #: Backoff before the next attempt (exponential, full jitter).
    delay_s: float = 0.0


@dataclass(frozen=True, slots=True)
class TaskTimeoutEvent:
    """A worker was killed for exceeding its budget (the attempt failed)."""

    task: str
    attempt: int
    #: ``"timeout"`` (wall-clock budget) or ``"hang"`` (heartbeats stopped).
    kind: str
    #: Seconds since dispatch (timeout) / since the last heartbeat (hang).
    seconds: float
    worker: int = -1


@dataclass(frozen=True, slots=True)
class BreakerOpenEvent:
    """A (kernel, config) slice's circuit breaker tripped open.

    Subsequent tasks of the slice are recorded as ``skipped`` instead of
    executed, so one persistently failing slice cannot sink the campaign.
    """

    slice: str
    #: Consecutive attempt-level failures that tripped the breaker.
    failures: int


@dataclass(frozen=True, slots=True)
class TaskDoneEvent:
    """A task reached a terminal state (every task eventually does)."""

    task: str
    #: ``"ok"``, ``"failed"`` (retries exhausted) or ``"skipped"`` (breaker).
    status: str
    attempts: int
    duration_s: float
    #: True when the result was satisfied from a resume journal, not re-run.
    cached: bool = False


# ---- job lifecycle (repro.serve) ---------------------------------------------


@dataclass(frozen=True, slots=True)
class JobSubmittedEvent:
    """The service accepted a job into a tenant queue."""

    job: str
    tenant: str
    #: ``"check"``, ``"campaign"`` or ``"suite"``.
    verb: str
    #: Queue depth for the tenant *after* admission.
    depth: int


@dataclass(frozen=True, slots=True)
class JobRejectedEvent:
    """Admission control refused a job (HTTP 429 + Retry-After)."""

    tenant: str
    verb: str
    #: Why: ``"queue_full"`` (per-tenant bound) or ``"draining"``.
    reason: str
    retry_after_s: float


@dataclass(frozen=True, slots=True)
class JobStartedEvent:
    """A queued job began executing on the job worker."""

    job: str
    tenant: str
    verb: str
    #: True when the job resumed from a pre-restart runner journal.
    resumed: bool = False


@dataclass(frozen=True, slots=True)
class JobRequeuedEvent:
    """Supervision SIGKILLed a hung/crashed job worker and requeued the job."""

    job: str
    tenant: str
    #: Why the attempt was abandoned: ``"hang"``, ``"timeout"`` or ``"crash"``.
    reason: str
    #: The attempt that failed (the requeued execution will be ``attempt+1``).
    attempt: int
    max_attempts: int


@dataclass(frozen=True, slots=True)
class JobDegradedEvent:
    """A job's campaign fell back to single-process execution (never silent)."""

    job: str
    tenant: str
    #: Why: ``"pool_breaker"`` (circuit breaker opened / infra failures) or
    #: ``"pool_start"`` (the worker pool never came up).
    reason: str
    detail: str = ""


@dataclass(frozen=True, slots=True)
class JobDoneEvent:
    """A job reached a terminal state."""

    job: str
    tenant: str
    #: ``"done"``, ``"failed"`` or ``"aborted"`` (drain interrupted it).
    status: str
    duration_s: float
    #: True when the campaign degraded to single-process execution.
    degraded: bool = False


@dataclass(frozen=True, slots=True)
class ServeDrainEvent:
    """The service began a graceful drain (SIGTERM / shutdown request)."""

    #: Jobs still queued or running when the drain began.
    pending: int
    reason: str = "sigterm"


@dataclass(frozen=True, slots=True)
class ServeCompactEvent:
    """The serve journal was compacted (snapshot + atomic rename)."""

    records_before: int
    records_after: int
    #: Terminal jobs whose full records were folded into the archive count.
    archived_terminals: int
    #: ``"idle"`` (idle-time policy), ``"cli"`` (``repro serve --compact``).
    reason: str = "idle"


@dataclass(frozen=True, slots=True)
class SubscriberError:
    """A subscriber raised during dispatch; it has been unsubscribed."""

    topic: str
    subscriber: Callable
    error: BaseException


# ---- the bus -----------------------------------------------------------------


class EventBus:
    """Multi-subscriber dispatch with per-topic subscriber lists."""

    __slots__ = TOPICS + ("errors",)

    def __init__(self) -> None:
        for topic in TOPICS:
            setattr(self, topic, [])
        #: :class:`SubscriberError` records, oldest first.
        self.errors: list[SubscriberError] = []

    # -- subscription management --------------------------------------------

    def subscribers(self, topic: str) -> list:
        """The live subscriber list for *topic* (raises on unknown topics)."""
        if topic not in TOPICS:
            raise ValueError(f"unknown topic {topic!r}; choose from {TOPICS}")
        return getattr(self, topic)

    def subscribe(self, topic: str, fn: Callable) -> Callable[[], None]:
        """Attach *fn* to *topic*; returns a zero-arg unsubscribe callable.

        The same callable may be subscribed to several topics (or twice to
        one — it will then run twice per event).  Unsubscribing is idempotent.
        """
        listeners = self.subscribers(topic)
        listeners.append(fn)

        def unsubscribe() -> None:
            try:
                listeners.remove(fn)
            except ValueError:
                pass

        return unsubscribe

    def unsubscribe(self, topic: str, fn: Callable) -> None:
        """Detach *fn* from *topic* (no-op when not subscribed)."""
        try:
            self.subscribers(topic).remove(fn)
        except ValueError:
            pass

    def has_subscribers(self, topic: str | None = None) -> bool:
        if topic is not None:
            return bool(self.subscribers(topic))
        return any(getattr(self, name) for name in TOPICS)

    def clear(self, topic: str | None = None) -> None:
        """Drop all subscribers of *topic* (or of every topic)."""
        for name in TOPICS if topic is None else (topic,):
            del self.subscribers(name)[:]

    # -- dispatch ------------------------------------------------------------

    def dispatch(self, topic: str, event) -> None:
        """Deliver *event* to every subscriber of *topic*.

        Iterates over a snapshot, so subscribers may unsubscribe (themselves
        or others) mid-dispatch.  A raising subscriber is recorded on
        :attr:`errors` and dropped — one faulty observer cannot corrupt the
        run or storm the error log.
        """
        listeners = getattr(self, topic)
        for fn in tuple(listeners):
            try:
                fn(event)
            except RunnerInterrupted:
                # Campaign-level stop (signal/cancel) raised by a handler
                # while a subscriber ran.  Not the subscriber's fault —
                # swallowing it here would both ignore the stop request and
                # silently drop the subscriber, changing simulation results.
                raise
            except Exception as exc:  # noqa: BLE001 - isolation by design
                self.errors.append(SubscriberError(topic, fn, exc))
                try:
                    listeners.remove(fn)
                except ValueError:
                    pass

    def emit(self, topic: str, event) -> None:
        """Validated dispatch for cold paths (hot paths inline the check)."""
        if self.subscribers(topic):
            self.dispatch(topic, event)

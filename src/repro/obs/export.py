"""Machine-readable exporters: schema-versioned JSON and JSONL.

Every exported document is wrapped in an :func:`envelope`::

    {"schema": "repro.obs/1", "kind": "<document kind>", "data": {...}}

so consumers can dispatch on ``kind`` and detect format drift via ``schema``.
The documented kinds are:

``kernel-profile``
    :func:`kernel_profile_report` — per-variant instruction mix, cycle
    attribution and SPU controller occupancy for one kernel (the payload of
    ``repro profile <kernel> --json``).
``trace``
    One JSONL record per issued instruction (``repro trace --jsonl``).
``benchmark``
    Structured benchmark results (``benchmarks/results/BENCH_*.json``).
``metrics``
    A flat :class:`repro.obs.metrics.MetricsRegistry` dump.
``fault-campaign``
    Differential self-check plus fault-injection results
    (:func:`repro.faults.check_report`, the payload of
    ``repro check --json``; see docs/robustness.md).
``runner``
    Campaign-runner execution report — per-task attempts, durations,
    retry/timeout/hang/crash counters and circuit-breaker state
    (:func:`repro.runner.runner_report`, schema ``repro.runner/1``;
    see docs/robustness.md).  Unlike the ``fault-campaign`` document it
    deliberately carries wall-clock data, so it is *not* byte-stable
    across runs.
``trace-header``
    Leading record of a ``repro trace --jsonl`` stream (schema, kernel,
    variant, config, seed) so consumers can validate a stream without
    out-of-band context.
``trace-profile``
    Hot-trace profile (schema ``repro.obs/2``): per-trace dynamic cycle /
    instruction / pairing / stall attribution with fusibility verdicts —
    the ``repro top`` payload and the planning input for trace-level
    superop compilation (ROADMAP item 1).
``span-header``
    Leading record of an OTLP-flavored span JSONL stream (schema
    ``repro.obs/2``; :class:`repro.obs.spans.SpanTracer`).

See ``docs/observability.md`` for the field-level schema.

Imports from the simulator packages happen inside functions: the pipeline
imports :mod:`repro.obs.events`, so this module must not import
``repro.kernels``/``repro.analysis`` at import time.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Iterable, Iterator

SCHEMA_VERSION = "repro.obs/1"

#: Schema tag for the level-2 observability documents introduced with the
#: hot-trace profiler: ``trace-profile``, ``trace-header`` and span streams.
SCHEMA_VERSION_2 = "repro.obs/2"

#: Schema tag for static-analysis documents (``repro lint --json``).
ANALYSIS_SCHEMA_VERSION = "repro.analysis/1"

#: Schema tag for the level-2 static-analysis documents introduced with the
#: superop legality engine: the ``fusion-audit`` cross-check export
#: (``repro certify --json``; see docs/static-analysis.md).
ANALYSIS_SCHEMA_VERSION_2 = "repro.analysis/2"

#: Schema tag for campaign-runner documents (journal header + runner report).
RUNNER_SCHEMA_VERSION = "repro.runner/1"

#: Schema tag for the simulation-service API: every ``repro serve`` response
#: envelope, its journal records and the ``serve-status`` document.
SERVE_SCHEMA_VERSION = "repro.serve/1"


def envelope(kind: str, data: dict, schema: str = SCHEMA_VERSION, **extra) -> dict:
    """Wrap *data* in the versioned export envelope."""
    return {"schema": schema, "kind": kind, **extra, "data": data}


def write_json(path: str | Path, payload: dict, indent: int = 2) -> Path | None:
    """Serialize *payload* to *path* (``"-"`` writes to stdout; returns None)."""
    text = json.dumps(payload, indent=indent, sort_keys=False, default=str)
    if str(path) == "-":
        sys.stdout.write(text + "\n")
        return None
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text + "\n")
    return target


def write_jsonl(path: str | Path, records: Iterable[dict]) -> Path | None:
    """One compact JSON document per line (``"-"`` streams to stdout)."""
    lines = (json.dumps(record, separators=(",", ":"), default=str) for record in records)
    if str(path) == "-":
        for line in lines:
            sys.stdout.write(line + "\n")
        return None
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as fp:
        for line in lines:
            fp.write(line + "\n")
    return target


# ---- kernel name resolution ---------------------------------------------------


def resolve_kernel_name(text: str) -> str:
    """Resolve a forgiving kernel spelling to its registry name.

    Accepts the exact registry name, any case-insensitive form, or a unique
    case-insensitive prefix — so ``repro profile dotprod`` finds
    ``DotProduct``.
    """
    from repro.errors import KernelError
    from repro.kernels import ALL_KERNELS

    if text in ALL_KERNELS:
        return text
    folded = text.casefold()
    matches = [name for name in ALL_KERNELS if name.casefold() == folded]
    if not matches:
        matches = [name for name in ALL_KERNELS if name.casefold().startswith(folded)]
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise KernelError(f"kernel {text!r} is ambiguous: {sorted(matches)}")
    raise KernelError(
        f"unknown kernel {text!r}; choose from {sorted(ALL_KERNELS)}"
    )


# ---- kernel profile reports ---------------------------------------------------


def variant_report(kernel, variant: str) -> dict:
    """Profile one kernel variant (``"mmx"`` or ``"spu"``) end to end.

    Runs the variant once with an instruction profiler, the cycle-attribution
    timeline and (for the SPU variant) the controller tracer all subscribed
    to the same bus — the multi-subscriber path the event bus exists for.
    """
    from repro.analysis.profiler import profile
    from repro.cpu.executor import uop_cache_stats
    from repro.obs.attribution import CycleAttribution
    from repro.obs.spu import ControllerTrace

    machine = kernel.machine(variant)
    timeline = CycleAttribution().attach(machine)
    controller_trace = ControllerTrace().attach(machine) if variant == "spu" else None
    uops_before = uop_cache_stats(machine.program)
    prof = profile(machine)
    uops_after = uop_cache_stats(machine.program)
    stats = prof.stats

    report = {
        "variant": variant,
        "stats": stats.as_dict(),
        "instruction_mix": prof.as_dict(),
        "cycle_attribution": {
            **stats.attribution(),
            "total_cycles": stats.cycles,
            "attributed_cycles": stats.attributed_cycles,
            "timeline": {
                "totals": timeline.totals(),
                "segments": len(timeline.segments),
                "truncated": timeline.truncated,
            },
        },
    }
    report["uop_cache"] = _uop_cache_delta(uops_before, uops_after, stats.instructions)
    if controller_trace is not None:
        report["controller"] = controller_trace.as_dict()
    timeline.detach()
    if controller_trace is not None:
        controller_trace.detach()
    return report


def kernel_profile_report(kernel, variants: tuple[str, ...] = ("mmx", "spu")) -> dict:
    """The full ``kernel-profile`` document body for one kernel."""
    body: dict = {
        "kernel": kernel.name,
        "description": kernel.description,
        "config": kernel.config.name,
        "variants": {variant: variant_report(kernel, variant) for variant in variants},
    }
    if {"mmx", "spu"} <= set(variants):
        mmx = body["variants"]["mmx"]["stats"]
        spu = body["variants"]["spu"]["stats"]
        body["comparison"] = {
            "speedup": mmx["cycles"] / spu["cycles"] if spu["cycles"] else 0.0,
            "cycles_saved": mmx["cycles"] - spu["cycles"],
            "instructions_saved": mmx["instructions"] - spu["instructions"],
            "removed_permutes": kernel.removed_permutes,
        }
    return envelope("kernel-profile", body)


# ---- hot-trace profile (repro top) --------------------------------------------

#: Traces exported per variant; the long tail aggregates under ``omitted``.
TRACE_EXPORT_LIMIT = 32


def _uop_cache_delta(before: dict, after: dict, instructions: int) -> dict:
    """Decoded-uop-cache behaviour of one run, from stat snapshots.

    ``misses`` counts cold decodes plus identity-revalidation rebuilds during
    the run; every other issue replayed a cached micro-op.
    """
    decodes = after["decodes"] - before["decodes"]
    rebuilds = after["rebuilds"] - before["rebuilds"]
    misses = decodes + rebuilds
    hits = max(0, instructions - misses)
    return {
        "hits": hits,
        "misses": misses,
        "rebuilds": rebuilds,
        "hit_rate": round(hits / instructions, 4) if instructions else 0.0,
        "cached_entries": after["cached_entries"],
    }


def trace_variant_profile(kernel, variant: str) -> dict:
    """Hot-trace profile of one kernel variant: the ``repro top`` body.

    Runs the variant once under a :class:`~repro.obs.traceprof.TraceProfiler`,
    then judges every trace with :func:`repro.analysis.fusion.fusion_verdict`
    against the static loop regions, the superop legality engine's
    certification of every loop (``fusible: true`` requires a replay-checked
    :class:`~repro.analysis.absint.FusionCertificate`) and — for the SPU
    variant — the PR 3 schedule-agreement analyzer.  Everything here derives
    from the simulation alone (no wall clock), so the document is byte-stable
    across reruns.
    """
    from repro.analysis.absint import certify_program
    from repro.analysis.fusion import find_loop_regions, fusion_verdict, schedule_blockers
    from repro.cpu.executor import uop_cache_stats
    from repro.obs.traceprof import TraceProfiler

    machine = kernel.machine(variant)
    profiler = TraceProfiler().attach(machine)
    uops_before = uop_cache_stats(machine.program)
    stats = machine.run()
    uops_after = uop_cache_stats(machine.program)
    profiler.detach()

    regions = find_loop_regions(machine.program)
    blockers = schedule_blockers(kernel) if variant == "spu" else None
    certification = certify_program(
        machine.program, subject=f"{kernel.name}/{variant}"
    )
    certified = certification.certified_map()
    labels = {start: label for label, start in machine.program.labels.items()}
    stable = profiler.stable_heads()

    records = []
    fusible_cycles = 0
    fusible_traces = 0
    uncertified_traces = 0
    for trace in profiler.sorted_traces():
        verdict = fusion_verdict(trace, regions, stable, blockers, certified)
        if verdict.fusible:
            fusible_cycles += trace.cycles
            fusible_traces += 1
        elif verdict.state == "uncertified":
            uncertified_traces += 1
        record = trace.as_dict()
        record["label"] = labels.get(trace.head)
        record["stable"] = trace.head in stable
        record["fusion"] = verdict.as_dict()
        records.append(record)

    exported = records[:TRACE_EXPORT_LIMIT]
    omitted = records[TRACE_EXPORT_LIMIT:]
    total_cycles = stats.cycles
    body: dict = {
        "variant": variant,
        "cycles": total_cycles,
        "instructions": stats.instructions,
        "attributed_cycles": profiler.attributed_cycles(),
        "uop_cache": _uop_cache_delta(uops_before, uops_after, stats.instructions),
        "loop_regions": [
            {"label": region.label, "start": region.start, "end": region.end}
            for region in regions
        ],
        "stable_heads": sorted(stable),
        "summary": {
            "traces": len(records),
            "fusible_traces": fusible_traces,
            "fusible_cycles": fusible_cycles,
            "fusible_share": (
                round(fusible_cycles / total_cycles, 4) if total_cycles else 0.0
            ),
            "certified_loops": sum(1 for rules in certified.values() if not rules),
            "uncertified_traces": uncertified_traces,
            "dominant_head": records[0]["head"] if records else None,
            "dominant_label": records[0]["label"] if records else None,
        },
        "certification": {
            label: certified[label] for label in sorted(certified)
        },
        "certificates": [
            cert.as_dict() for cert in certification.certificates()
        ],
        "traces": exported,
    }
    if blockers is not None:
        body["schedule_blockers"] = blockers
    if omitted:
        body["omitted"] = {
            "traces": len(omitted),
            "cycles": sum(record["cycles"] for record in omitted),
        }
    return body


def trace_profile_report(kernel, variants: tuple[str, ...] = ("mmx", "spu")) -> dict:
    """The full ``trace-profile`` document for one kernel (``repro top``)."""
    body = {
        "kernel": kernel.name,
        "description": kernel.description,
        "config": kernel.config.name,
        "variants": {
            variant: trace_variant_profile(kernel, variant) for variant in variants
        },
    }
    return envelope("trace-profile", body, schema=SCHEMA_VERSION_2)


# ---- trace export -------------------------------------------------------------


def trace_header(kernel, variant: str) -> dict:
    """Leading ``repro trace --jsonl`` record: stream provenance up front."""
    return {
        "schema": SCHEMA_VERSION_2,
        "kind": "trace-header",
        "kernel": kernel.name,
        "variant": variant,
        "config": kernel.config.name,
        "seed": getattr(kernel, "seed", None),
    }


def trace_records(trace) -> Iterator[dict]:
    """Per-issue JSONL records for a :class:`repro.cpu.trace.Trace`."""
    for entry in trace.entries:
        yield {
            "seq": entry.seq,
            "cycle": entry.cycle,
            "pc": entry.pc,
            "pipe": entry.pipe,
            "text": entry.text,
            "is_mmx": entry.is_mmx,
            "routed": entry.routed,
        }

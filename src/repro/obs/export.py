"""Machine-readable exporters: schema-versioned JSON and JSONL.

Every exported document is wrapped in an :func:`envelope`::

    {"schema": "repro.obs/1", "kind": "<document kind>", "data": {...}}

so consumers can dispatch on ``kind`` and detect format drift via ``schema``.
The documented kinds are:

``kernel-profile``
    :func:`kernel_profile_report` — per-variant instruction mix, cycle
    attribution and SPU controller occupancy for one kernel (the payload of
    ``repro profile <kernel> --json``).
``trace``
    One JSONL record per issued instruction (``repro trace --jsonl``).
``benchmark``
    Structured benchmark results (``benchmarks/results/BENCH_*.json``).
``metrics``
    A flat :class:`repro.obs.metrics.MetricsRegistry` dump.
``fault-campaign``
    Differential self-check plus fault-injection results
    (:func:`repro.faults.check_report`, the payload of
    ``repro check --json``; see docs/robustness.md).
``runner``
    Campaign-runner execution report — per-task attempts, durations,
    retry/timeout/hang/crash counters and circuit-breaker state
    (:func:`repro.runner.runner_report`, schema ``repro.runner/1``;
    see docs/robustness.md).  Unlike the ``fault-campaign`` document it
    deliberately carries wall-clock data, so it is *not* byte-stable
    across runs.

See ``docs/observability.md`` for the field-level schema.

Imports from the simulator packages happen inside functions: the pipeline
imports :mod:`repro.obs.events`, so this module must not import
``repro.kernels``/``repro.analysis`` at import time.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Iterable, Iterator

SCHEMA_VERSION = "repro.obs/1"

#: Schema tag for static-analysis documents (``repro lint --json``).
ANALYSIS_SCHEMA_VERSION = "repro.analysis/1"

#: Schema tag for campaign-runner documents (journal header + runner report).
RUNNER_SCHEMA_VERSION = "repro.runner/1"


def envelope(kind: str, data: dict, schema: str = SCHEMA_VERSION, **extra) -> dict:
    """Wrap *data* in the versioned export envelope."""
    return {"schema": schema, "kind": kind, **extra, "data": data}


def write_json(path: str | Path, payload: dict, indent: int = 2) -> Path | None:
    """Serialize *payload* to *path* (``"-"`` writes to stdout; returns None)."""
    text = json.dumps(payload, indent=indent, sort_keys=False, default=str)
    if str(path) == "-":
        sys.stdout.write(text + "\n")
        return None
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text + "\n")
    return target


def write_jsonl(path: str | Path, records: Iterable[dict]) -> Path | None:
    """One compact JSON document per line (``"-"`` streams to stdout)."""
    lines = (json.dumps(record, separators=(",", ":"), default=str) for record in records)
    if str(path) == "-":
        for line in lines:
            sys.stdout.write(line + "\n")
        return None
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as fp:
        for line in lines:
            fp.write(line + "\n")
    return target


# ---- kernel name resolution ---------------------------------------------------


def resolve_kernel_name(text: str) -> str:
    """Resolve a forgiving kernel spelling to its registry name.

    Accepts the exact registry name, any case-insensitive form, or a unique
    case-insensitive prefix — so ``repro profile dotprod`` finds
    ``DotProduct``.
    """
    from repro.errors import KernelError
    from repro.kernels import ALL_KERNELS

    if text in ALL_KERNELS:
        return text
    folded = text.casefold()
    matches = [name for name in ALL_KERNELS if name.casefold() == folded]
    if not matches:
        matches = [name for name in ALL_KERNELS if name.casefold().startswith(folded)]
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise KernelError(f"kernel {text!r} is ambiguous: {sorted(matches)}")
    raise KernelError(
        f"unknown kernel {text!r}; choose from {sorted(ALL_KERNELS)}"
    )


# ---- kernel profile reports ---------------------------------------------------


def variant_report(kernel, variant: str) -> dict:
    """Profile one kernel variant (``"mmx"`` or ``"spu"``) end to end.

    Runs the variant once with an instruction profiler, the cycle-attribution
    timeline and (for the SPU variant) the controller tracer all subscribed
    to the same bus — the multi-subscriber path the event bus exists for.
    """
    from repro.analysis.profiler import profile
    from repro.obs.attribution import CycleAttribution
    from repro.obs.spu import ControllerTrace

    machine = kernel.machine(variant)
    timeline = CycleAttribution().attach(machine)
    controller_trace = ControllerTrace().attach(machine) if variant == "spu" else None
    prof = profile(machine)
    stats = prof.stats

    report = {
        "variant": variant,
        "stats": stats.as_dict(),
        "instruction_mix": prof.as_dict(),
        "cycle_attribution": {
            **stats.attribution(),
            "total_cycles": stats.cycles,
            "attributed_cycles": stats.attributed_cycles,
            "timeline": {
                "totals": timeline.totals(),
                "segments": len(timeline.segments),
                "truncated": timeline.truncated,
            },
        },
    }
    if controller_trace is not None:
        report["controller"] = controller_trace.as_dict()
    timeline.detach()
    if controller_trace is not None:
        controller_trace.detach()
    return report


def kernel_profile_report(kernel, variants: tuple[str, ...] = ("mmx", "spu")) -> dict:
    """The full ``kernel-profile`` document body for one kernel."""
    body: dict = {
        "kernel": kernel.name,
        "description": kernel.description,
        "config": kernel.config.name,
        "variants": {variant: variant_report(kernel, variant) for variant in variants},
    }
    if {"mmx", "spu"} <= set(variants):
        mmx = body["variants"]["mmx"]["stats"]
        spu = body["variants"]["spu"]["stats"]
        body["comparison"] = {
            "speedup": mmx["cycles"] / spu["cycles"] if spu["cycles"] else 0.0,
            "cycles_saved": mmx["cycles"] - spu["cycles"],
            "instructions_saved": mmx["instructions"] - spu["instructions"],
            "removed_permutes": kernel.removed_permutes,
        }
    return envelope("kernel-profile", body)


# ---- trace export -------------------------------------------------------------


def trace_records(trace) -> Iterator[dict]:
    """Per-issue JSONL records for a :class:`repro.cpu.trace.Trace`."""
    for entry in trace.entries:
        yield {
            "seq": entry.seq,
            "cycle": entry.cycle,
            "pc": entry.pc,
            "pipe": entry.pipe,
            "text": entry.text,
            "is_mmx": entry.is_mmx,
            "routed": entry.routed,
        }

"""A small metrics registry: named, documented, JSON-exportable values.

Benchmarks and experiments register their headline numbers here instead of
formatting ad-hoc text, so every run can be exported through
:mod:`repro.obs.export` and diffed across commits.  Metrics are flat
name → value pairs with optional unit and help strings; namespacing is by
dotted prefix convention (``fig9.MatrixTranspose.speedup``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Metric:
    """One registered value."""

    name: str
    value: object
    unit: str = ""
    help: str = ""

    def as_dict(self) -> dict:
        data = {"name": self.name, "value": self.value}
        if self.unit:
            data["unit"] = self.unit
        if self.help:
            data["help"] = self.help
        return data


@dataclass
class MetricsRegistry:
    """Ordered name → :class:`Metric` mapping."""

    namespace: str = ""
    _metrics: dict[str, Metric] = field(default_factory=dict)

    def _qualify(self, name: str) -> str:
        return f"{self.namespace}.{name}" if self.namespace else name

    def set(self, name: str, value, unit: str = "", help: str = "") -> Metric:
        """Register (or overwrite) one metric; returns it."""
        metric = Metric(self._qualify(name), value, unit, help)
        self._metrics[metric.name] = metric
        return metric

    def inc(self, name: str, amount: int = 1) -> Metric:
        """Increment a counter metric (created at 0 when missing)."""
        qualified = self._qualify(name)
        metric = self._metrics.get(qualified)
        if metric is None:
            metric = Metric(qualified, 0)
            self._metrics[qualified] = metric
        metric.value += amount
        return metric

    def get(self, name: str):
        return self._metrics[self._qualify(name)].value

    def observe_stats(self, prefix: str, stats) -> None:
        """Flatten a :class:`RunStats`-like object (``as_dict``) into metrics."""
        for key, value in stats.as_dict().items():
            if isinstance(value, dict):
                for inner, count in value.items():
                    self.set(f"{prefix}.{key}.{inner}", count)
            else:
                self.set(f"{prefix}.{key}", value)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return self._qualify(name) in self._metrics

    def as_dict(self) -> dict:
        """Flat ``{name: value}`` view (the JSON export payload)."""
        return {name: metric.value for name, metric in self._metrics.items()}

    def describe(self) -> list[dict]:
        """Full metric records including units and help strings."""
        return [metric.as_dict() for metric in self._metrics.values()]

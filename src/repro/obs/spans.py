"""Host-side hierarchical span tracing (OTLP-flavored JSONL).

Level 2 of the profiling subsystem: where :mod:`repro.obs.traceprof`
answers "where did the *simulated* cycles go", spans answer "where did the
*wall-clock* go" across a campaign — ``campaign``, ``slice``, ``task``,
``run`` and ``phase`` spans nested through :mod:`repro.runner` and the
``repro check``/``repro run`` harnesses.

Design rules, mirroring ``CheckResult.injection_durations()``:

- wall-clock lives **only** here.  Byte-stable campaign exports never carry
  span data; spans go to their own JSONL file (``--spans PATH``).
- zero overhead when unobserved: every instrumentation site takes an
  optional tracer and does nothing when it is ``None`` (the
  :func:`maybe_span` helper); no tracer, no object construction.
- records are OTLP-flavored: ``traceId``/``spanId``/``parentSpanId``,
  nanosecond timestamps, ``attributes`` as key/typed-value pairs and a
  ``status`` code, one JSON object per line behind a ``span-header``
  record — close enough to OTLP/JSON that a collector adapter is a
  ``jq`` one-liner, without taking a protobuf dependency.

Span ids are sequential (deterministic given call order); only timestamps
carry entropy, and the clock is injectable so tests can pin them.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

__all__ = ["Span", "SpanTracer", "maybe_span"]

_STATUS_CODES = {
    "ok": "STATUS_CODE_OK",
    "error": "STATUS_CODE_ERROR",
    "aborted": "STATUS_CODE_ERROR",
    "unset": "STATUS_CODE_UNSET",
}


def _default_clock() -> int:
    """Monotonic durations on an epoch anchor: comparable *and* steady."""
    return time.time_ns()


class Span:
    """One timed operation; created by :meth:`SpanTracer.begin`."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start_ns", "end_ns", "attributes", "status",
    )

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, start_ns: int, attributes: dict) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: int | None = None
        self.attributes = attributes
        self.status = "unset"

    @property
    def open(self) -> bool:
        return self.end_ns is None

    @property
    def duration_s(self) -> float:
        if self.end_ns is None:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e9


def _otlp_value(value) -> dict:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}  # OTLP/JSON encodes int64 as string
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


class SpanTracer:
    """Collects spans; writes them as a JSONL stream with a header record.

    Roots (``parent=None``) start a fresh trace id; children inherit their
    parent's.  Spans may close out of order (the pooled runner completes
    tasks as workers finish), so parentage is explicit rather than a stack;
    :meth:`span` is the context-manager convenience for the serial paths.
    """

    def __init__(self, clock: Callable[[], int] = _default_clock,
                 id_base: int = 0,
                 remote_parent: tuple[str, str] | None = None) -> None:
        self._clock = clock
        self._next_id = id_base
        self._lock = threading.Lock()
        #: ``(trace_id, span_id)`` of a parent owned by *another* tracer —
        #: root spans attach under it instead of opening a fresh trace.
        #: ``repro serve`` uses this to keep span parentage intact across
        #: restarts: a resumed job's spans parent onto the span ids recorded
        #: by the pre-crash epoch, with ``id_base`` offset past that epoch's
        #: ids so the two JSONL files merge without collisions.
        self.remote_parent = remote_parent
        self.spans: list[Span] = []

    # -- span lifecycle -------------------------------------------------------

    def begin(self, name: str, parent: Span | None = None, **attributes) -> Span:
        with self._lock:
            self._next_id += 1
            next_id = self._next_id
        if parent is None and self.remote_parent is not None:
            trace_id, parent_id = self.remote_parent
        elif parent is None:
            trace_id = f"{next_id:032x}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"{next_id:016x}",
            parent_id=parent_id,
            start_ns=self._clock(),
            attributes=attributes,
        )
        with self._lock:
            self.spans.append(span)
        return span

    def end(self, span: Span, status: str = "ok") -> None:
        if span.end_ns is None:
            span.end_ns = self._clock()
            span.status = status

    @contextmanager
    def span(self, name: str, parent: Span | None = None,
             **attributes) -> Iterator[Span]:
        current = self.begin(name, parent=parent, **attributes)
        try:
            yield current
        except BaseException:
            self.end(current, status="error")
            raise
        self.end(current)

    # -- export ---------------------------------------------------------------

    def records(self) -> list[dict]:
        """OTLP-flavored dicts; still-open spans export as ``aborted``.

        An interrupted campaign (``RunnerInterrupted``, a crash handler)
        writes whatever it has — open spans get an end timestamp of *now*
        and an error status instead of being dropped.
        """
        now = self._clock()
        out = []
        for span in self.spans:
            end_ns = span.end_ns
            status = span.status
            if end_ns is None:
                end_ns = now
                status = "aborted"
            out.append({
                "traceId": span.trace_id,
                "spanId": span.span_id,
                "parentSpanId": span.parent_id,
                "name": span.name,
                "kind": "SPAN_KIND_INTERNAL",
                "startTimeUnixNano": str(span.start_ns),
                "endTimeUnixNano": str(end_ns),
                "attributes": [
                    {"key": key, "value": _otlp_value(value)}
                    for key, value in span.attributes.items()
                ],
                "status": {"code": _STATUS_CODES.get(status, "STATUS_CODE_UNSET")},
            })
        return out

    def write(self, path: str | Path) -> Path | None:
        """Header + span records, one JSON object per line (``"-"``: stdout)."""
        from repro.obs.export import SCHEMA_VERSION_2, write_jsonl

        header = {
            "schema": SCHEMA_VERSION_2,
            "kind": "span-header",
            "spans": len(self.spans),
        }
        return write_jsonl(path, [header, *self.records()])


@contextmanager
def maybe_span(tracer: SpanTracer | None, name: str,
               parent: Span | None = None, **attributes) -> Iterator[Span | None]:
    """``tracer.span(...)`` when a tracer exists; a no-op otherwise.

    The instrumentation sites in :mod:`repro.faults` and :mod:`repro.runner`
    all route through this, which is what keeps the untraced path free: no
    tracer means no span object, no clock read, nothing.
    """
    if tracer is None:
        yield None
        return
    with tracer.span(name, parent=parent, **attributes) as span:
        yield span

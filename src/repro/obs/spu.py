"""SPU controller tracing: microprogram activity from bus events.

Subscribes to the ``controller_step``, ``spu_route`` and ``issue`` topics and
accumulates, per run:

- **state occupancy** — dynamic steps spent in each of the K microprogram
  states (the hardware-counter view the paper's methodology leans on);
- **transitions** — ``(state, next_state)`` edge counts, including the edge
  into the idle state;
- **loop-counter timeline** — post-step CNTR0/CNTR1 values (capped);
- **GO/idle occupancy** — the fraction of all issued dynamic instructions
  the controller was active for (it steps exactly once per dynamic
  instruction while GO is set, §4);
- **routing** — how many steps emitted crossbar routes, and per-slot counts.
"""

from __future__ import annotations

from collections import Counter

from repro.obs.events import ControllerStepEvent, IssueEvent, SPURouteEvent


class ControllerTrace:
    """Event-bus subscriber recording SPU controller activity.

    Usage::

        trace = ControllerTrace().attach(machine)
        stats = machine.run()
        print(trace.go_occupancy, trace.state_occupancy)
        trace.detach()
    """

    def __init__(self, counter_log_limit: int = 4096) -> None:
        self.counter_log_limit = counter_log_limit
        #: state index -> dynamic steps emitted from that state.
        self.state_occupancy: Counter = Counter()
        #: (state, next_state) -> traversal count.
        self.transitions: Counter = Counter()
        #: (step#, cntr0, cntr1) snapshots, capped at counter_log_limit.
        self.counter_log: list[tuple[int, int, int]] = []
        #: operand slot -> instructions that received a routed value there.
        self.routed_slots: Counter = Counter()
        self.steps = 0
        self.routed_steps = 0
        self.routed_instructions = 0
        self.idle_entries = 0
        #: Controller steps per context (contexts step independently).
        self.steps_by_context: Counter = Counter()
        #: All dynamic instructions issued by the machine (GO set or not).
        self.issues = 0
        self._unsubscribes: list = []
        self._controller = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, machine) -> "ControllerTrace":
        """Subscribe to *machine*'s bus; returns ``self`` for chaining.

        When the machine has an attached SPU, static controller facts
        (activations, context switches) are pulled from its stats at export
        time.
        """
        bus = machine.bus
        self._unsubscribes = [
            bus.subscribe("controller_step", self._on_step),
            bus.subscribe("spu_route", self._on_route),
            bus.subscribe("issue", self._on_issue),
        ]
        spu = getattr(machine, "spu", None)
        self._controller = getattr(spu, "controller", None)
        return self

    def detach(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []

    # -- event handlers -------------------------------------------------------

    def _on_step(self, event: ControllerStepEvent) -> None:
        self.steps += 1
        self.state_occupancy[event.state_index] += 1
        self.transitions[(event.state_index, event.next_index)] += 1
        self.steps_by_context[event.context] += 1
        if event.routed:
            self.routed_steps += 1
        if event.went_idle:
            self.idle_entries += 1
        if len(self.counter_log) < self.counter_log_limit:
            self.counter_log.append((self.steps, *event.counters))

    def _on_route(self, event: SPURouteEvent) -> None:
        self.routed_instructions += 1
        for slot in event.slots:
            self.routed_slots[slot] += 1

    def _on_issue(self, event: IssueEvent) -> None:
        self.issues += 1

    # -- views ----------------------------------------------------------------

    @property
    def go_occupancy(self) -> float:
        """Fraction of dynamic instructions with the controller active."""
        return self.steps / self.issues if self.issues else 0.0

    def hottest_states(self, count: int = 8) -> list[tuple[int, int]]:
        return self.state_occupancy.most_common(count)

    def as_dict(self) -> dict:
        """JSON-friendly summary (string keys throughout)."""
        controller = self._controller
        data = {
            "steps": self.steps,
            "routed_steps": self.routed_steps,
            "routed_instructions": self.routed_instructions,
            "issues": self.issues,
            "go_occupancy": self.go_occupancy,
            "idle_entries": self.idle_entries,
            "state_occupancy": {
                str(state): count
                for state, count in sorted(self.state_occupancy.items())
            },
            "transitions": {
                f"{src}->{dst}": count
                for (src, dst), count in sorted(self.transitions.items())
            },
            "steps_by_context": {
                str(context): count
                for context, count in sorted(self.steps_by_context.items())
            },
            "routed_slots": {
                str(slot): count
                for slot, count in sorted(self.routed_slots.items())
            },
            "counter_log": [list(entry) for entry in self.counter_log],
            "counter_log_truncated": self.steps > len(self.counter_log),
        }
        if controller is not None:
            data["activations"] = controller.stats.activations
            data["context_switches"] = controller.stats.context_switches
            data["num_states"] = controller.num_states
            data["contexts"] = controller.contexts
            # Degrade-mode visibility: clean completions vs fault parks vs
            # GO re-arms are disjoint counters on the controller itself.
            data["clean_idle_entries"] = controller.stats.idle_entries
            data["fault_parks"] = controller.stats.fault_parks
            data["park_recoveries"] = controller.stats.park_recoveries
        return data

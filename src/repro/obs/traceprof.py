"""Back-edge-detecting hot-trace profiler (the ``repro top`` engine).

A *trace* is the dynamic instruction path between two backward control
transfers — the unit trace-level superop compilation would fuse (ROADMAP
item 1).  The profiler rides the event bus exactly like
:class:`repro.obs.attribution.CycleAttribution`: it subscribes to
``run_start``/``issue``/``stall``/``branch``/``run_end``, so an unattached
machine pays nothing (the pipeline's zero-subscriber guard) and attaching it
adds no emission sites.

Detection: the pipeline issues in dynamic program order, so any issue whose
pc is not past the previous one means control moved backward — the taken
back edge closed a trace and its target (the new pc) is a loop head.  The
steady-state body of a loop therefore aggregates as one trace keyed by its
exact pc path, executed once per iteration after the first; the entry path
(prologue + first iteration) and the exit path (last iteration + epilogue)
key separately, which is precisely the stability signal a superop compiler
needs.

Cycle attribution is exact by construction: each trace's cycles are the
delta between the cycle at which it started and the cycle at which the next
trace started (``run_end`` closes the final trace at the run's total), so
the per-trace cycles of one run always sum to ``RunStats.cycles`` —
including stalls, mispredict bubbles and pipeline fill, each of which is
also broken out per trace.  A stall event precedes the issue it delays, so
pending stall cycles are attributed to the trace of the *next* issue, which
is the trace whose cycle window contains them.

This module must stay import-light (no ``repro.cpu``/``repro.kernels``
imports): the trace-profile *export* with loop labels and fusibility
verdicts lives in :mod:`repro.obs.export` / :mod:`repro.analysis.fusion`.
"""

from __future__ import annotations

from repro.obs.events import BranchEvent, IssueEvent, RunEndEvent, RunStartEvent, StallEvent


class TraceStats:
    """Aggregate counters for one distinct trace body."""

    __slots__ = (
        "head", "body", "executions", "instructions", "cycles",
        "pair_issues", "stall_cycles", "mispredict_cycles",
        "mmx_instructions", "routed", "cold_decodes", "truncated",
    )

    def __init__(self, head: int, body: tuple[int, ...], truncated: bool) -> None:
        self.head = head
        self.body = body
        self.truncated = truncated
        self.executions = 0
        self.instructions = 0
        self.cycles = 0
        self.pair_issues = 0
        self.stall_cycles = 0
        self.mispredict_cycles = 0
        self.mmx_instructions = 0
        self.routed = 0
        #: Issues whose pc had not been executed before in this run — the
        #: per-run cold-start model of the decoded-uop cache (every static
        #: instruction decodes exactly once; see ``uop_cache_stats``).
        self.cold_decodes = 0

    @property
    def length(self) -> int:
        return len(self.body)

    def as_dict(self) -> dict:
        """JSON-friendly summary (derived rates included, rounded)."""
        instructions = self.instructions
        return {
            "head": self.head,
            "length": self.length,
            "executions": self.executions,
            "instructions": instructions,
            "cycles": self.cycles,
            "cpi": round(self.cycles / instructions, 4) if instructions else 0.0,
            "pair_issues": self.pair_issues,
            "pair_fraction": (
                round(self.pair_issues / instructions, 4) if instructions else 0.0
            ),
            "stall_cycles": self.stall_cycles,
            "mispredict_cycles": self.mispredict_cycles,
            "mmx_instructions": self.mmx_instructions,
            "routed": self.routed,
            "route_utilization": (
                round(self.routed / self.mmx_instructions, 4)
                if self.mmx_instructions else 0.0
            ),
            "uop_cold_decodes": self.cold_decodes,
            "uop_hit_rate": (
                round((instructions - self.cold_decodes) / instructions, 4)
                if instructions else 0.0
            ),
            "truncated": self.truncated,
        }


class TraceProfiler:
    """Event-bus subscriber aggregating one run into dynamic traces.

    Usage::

        profiler = TraceProfiler().attach(machine)
        stats = machine.run()
        profiler.detach()
        assert sum(t.cycles for t in profiler.traces.values()) == stats.cycles
    """

    def __init__(self, max_body: int = 4096) -> None:
        #: ``(head, body) -> TraceStats``, every distinct trace of the run.
        self.traces: dict[tuple[int, tuple[int, ...]], TraceStats] = {}
        #: Bodies longer than this stop recording pcs (the trace still
        #: accumulates counters, keyed by its first *max_body* pcs, and is
        #: marked truncated — never a fusion candidate).
        self.max_body = max_body
        self.total_cycles = 0
        self.total_instructions = 0
        self.finished = False
        self._pcs: list[int] = []
        self._open = False
        self._truncated = False
        self._start_cycle = 0
        self._prev_pc = -1
        self._pending_stall = 0
        self._counters = [0] * 6  # instr, pairs, stalls, mispredicts, mmx, routed
        self._cold = 0
        self._seen_pcs: set[int] = set()
        self._unsubscribes: list = []

    # -- wiring ---------------------------------------------------------------

    def attach(self, machine) -> "TraceProfiler":
        """Subscribe to *machine*'s bus; returns ``self`` for chaining."""
        bus = machine.bus
        self._unsubscribes = [
            bus.subscribe("run_start", self._on_run_start),
            bus.subscribe("issue", self._on_issue),
            bus.subscribe("stall", self._on_stall),
            bus.subscribe("branch", self._on_branch),
            bus.subscribe("run_end", self._on_run_end),
        ]
        return self

    def detach(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []

    # -- event handlers -------------------------------------------------------

    def _on_run_start(self, event: RunStartEvent) -> None:
        self.traces.clear()
        self.total_cycles = 0
        self.total_instructions = 0
        self.finished = False
        self._pcs = []
        self._open = False
        self._truncated = False
        # Pipeline-fill cycles belong to the entry trace, so the first
        # trace's window opens at cycle 0 and the per-trace cycles sum to
        # the run's total exactly.
        self._start_cycle = 0
        self._prev_pc = -1
        self._pending_stall = 0
        self._counters = [0] * 6
        self._cold = 0
        self._seen_pcs = set()

    def _on_issue(self, event: IssueEvent) -> None:
        pc = event.pc
        if self._open and pc <= self._prev_pc:
            # Backward control transfer: the back edge closed a trace and
            # this issue's pc is the (loop-head) start of the next one.
            self._close(event.cycle)
        self._open = True
        self._prev_pc = pc
        counters = self._counters
        counters[0] += 1
        self.total_instructions += 1
        if self._pending_stall:
            counters[2] += self._pending_stall
            self._pending_stall = 0
        if event.pipe == "V":
            counters[1] += 1
        if event.instr.is_mmx:
            counters[4] += 1
        if event.routed:
            counters[5] += 1
        seen = self._seen_pcs
        if pc not in seen:
            seen.add(pc)
            self._cold += 1
        pcs = self._pcs
        if len(pcs) < self.max_body:
            pcs.append(pc)
        else:
            self._truncated = True

    def _on_stall(self, event: StallEvent) -> None:
        # Fires before the issue it delays; buffered so the cycles land in
        # the trace whose window contains them (the next issue's trace).
        self._pending_stall += event.cycles

    def _on_branch(self, event: BranchEvent) -> None:
        # Fires after the branch's own issue, so the bubble cycles belong
        # to the currently open trace (its window extends to the next
        # issue, past the bubble).
        if event.penalty:
            self._counters[3] += event.penalty

    def _on_run_end(self, event: RunEndEvent) -> None:
        if self._open:
            self._close(event.cycles)
        self.total_cycles = event.cycles
        self.finished = event.finished

    # -- trace bookkeeping ----------------------------------------------------

    def _close(self, at_cycle: int) -> None:
        body = tuple(self._pcs)
        key = (body[0], body)
        trace = self.traces.get(key)
        if trace is None:
            trace = TraceStats(body[0], body, self._truncated)
            self.traces[key] = trace
        counters = self._counters
        trace.executions += 1
        trace.instructions += counters[0]
        trace.cycles += at_cycle - self._start_cycle
        trace.pair_issues += counters[1]
        trace.stall_cycles += counters[2]
        trace.mispredict_cycles += counters[3]
        trace.mmx_instructions += counters[4]
        trace.routed += counters[5]
        trace.cold_decodes += self._cold
        trace.truncated = trace.truncated or self._truncated
        self._pcs = []
        self._open = False
        self._truncated = False
        self._start_cycle = at_cycle
        self._counters = [0] * 6
        self._cold = 0

    # -- views ----------------------------------------------------------------

    def sorted_traces(self) -> list[TraceStats]:
        """Traces by descending cycles (head, then length break ties)."""
        return sorted(
            self.traces.values(),
            key=lambda t: (-t.cycles, t.head, t.length, t.body),
        )

    def stable_heads(self) -> set[int]:
        """Heads whose *repeating* trace body is unique.

        A head is schedule-stable when at most one of its bodies executed
        more than once — the entry/exit paths of a well-behaved loop run
        exactly once each, so only a data-dependent branch inside the body
        (two distinct repeating paths) breaks stability.
        """
        repeating: dict[int, int] = {}
        for trace in self.traces.values():
            if trace.executions > 1:
                repeating[trace.head] = repeating.get(trace.head, 0) + 1
        heads = {trace.head for trace in self.traces.values()}
        return {head for head in heads if repeating.get(head, 0) <= 1}

    def attributed_cycles(self) -> int:
        """Sum of per-trace cycles; equals the run's total for a full run."""
        return sum(trace.cycles for trace in self.traces.values())

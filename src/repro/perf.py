"""Simulator-throughput measurement: the tracked sim-speed benchmark core.

Measures how fast the simulator retires *simulated* cycles and instructions
per wall-clock second, comparing the SWAR integer data path (the default)
against the NumPy reference backend on the paper's hot kernels.  Consumed by
``benchmarks/bench_simspeed.py`` (the committed, CI-tracked benchmark) and
the ``repro bench`` CLI command.

Methodology
-----------

Per kernel and backend: one untimed warm-up run first (it fills the decoded
micro-op cache and lets CPython's adaptive specialization settle), then
``rounds`` timed runs on fresh machines, reporting the **median** wall time.
Reference-backend kernels are built *and* run inside
``simd.use_backend("reference")`` — packed-op handlers bind at
instruction-decode time, so a program decoded under one backend keeps that
backend's handlers forever.

The benchmark sizes in :data:`SIMSPEED_KERNELS` are deliberately larger than
the Table 2 defaults: short runs are dominated by fixed per-run costs
(machine construction, workload preparation) and understate the hot-loop
speedup.  SAD is capped at 2048 pixels by its word accumulators.

Simulated cycle counts are backend-independent (the timing model never
consults lane values), so each case reports a single ``cycles`` /
``instructions`` pair; the harness asserts the two backends agree.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro import simd
from repro.errors import ReproError
from repro.kernels import make_kernel

#: Measurement-payload schema tag (carried as ``data.measurement`` inside the
#: standard ``repro.obs/1`` benchmark envelope).
SIMSPEED_SCHEMA = "repro.simspeed/1"

#: Benchmark cases: ``(kernel name, constructor parameters)``.
SIMSPEED_KERNELS: tuple[tuple[str, dict[str, int]], ...] = (
    ("DotProduct", {"blocks": 256}),
    ("FIR12", {"samples": 304}),
    ("SAD", {"pixels": 2048}),
)

#: Default timed rounds per (kernel, backend) pair.
DEFAULT_ROUNDS = 5


@dataclass(frozen=True)
class KernelSpeed:
    """Measured simulation throughput for one kernel, both backends."""

    name: str
    params: dict[str, int] = field(compare=False)
    #: Simulated work per run (identical across backends and rounds).
    cycles: int
    instructions: int
    #: Median wall-clock seconds per run.
    swar_s: float
    reference_s: float

    @property
    def swar_cycles_per_s(self) -> float:
        return self.cycles / self.swar_s

    @property
    def swar_instrs_per_s(self) -> float:
        return self.instructions / self.swar_s

    @property
    def reference_cycles_per_s(self) -> float:
        return self.cycles / self.reference_s

    @property
    def reference_instrs_per_s(self) -> float:
        return self.instructions / self.reference_s

    @property
    def speedup(self) -> float:
        """SWAR wall-clock speedup over the NumPy reference backend."""
        return self.reference_s / self.swar_s

    @property
    def label(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.name}({inner})"


def _time_backend(
    name: str, params: Mapping[str, int], rounds: int
) -> tuple[int, int, float]:
    """(cycles, instructions, median seconds/run) under the active backend.

    Builds the kernel here — not in the caller — so its programs are decoded
    under whatever backend is active when we run.
    """
    kernel = make_kernel(name, **params)
    kernel.machine().run()  # warm-up: decode + adaptive specialization
    times = []
    stats = None
    for _ in range(rounds):
        machine = kernel.machine()
        start = time.perf_counter()
        stats = machine.run()
        times.append(time.perf_counter() - start)
    assert stats is not None
    return stats.cycles, stats.instructions, statistics.median(times)


def measure_simspeed(
    rounds: int = DEFAULT_ROUNDS,
    cases: Iterable[tuple[str, Mapping[str, int]]] = SIMSPEED_KERNELS,
) -> list[KernelSpeed]:
    """Measure SWAR-vs-reference simulation throughput for *cases*."""
    if rounds < 1:
        raise ReproError(f"rounds must be >= 1 (got {rounds})")
    results = []
    for name, params in cases:
        cycles, instructions, swar_s = _time_backend(name, params, rounds)
        with simd.use_backend("reference"):
            ref_cycles, ref_instructions, reference_s = _time_backend(
                name, params, rounds
            )
        if (cycles, instructions) != (ref_cycles, ref_instructions):
            raise ReproError(
                f"{name}: backends disagree on simulated work "
                f"(swar {cycles}/{instructions}, "
                f"reference {ref_cycles}/{ref_instructions})"
            )
        results.append(
            KernelSpeed(
                name=name,
                params=dict(params),
                cycles=cycles,
                instructions=instructions,
                swar_s=swar_s,
                reference_s=reference_s,
            )
        )
    return results


def min_speedup(results: Sequence[KernelSpeed]) -> float:
    return min(r.speedup for r in results)


def geomean_speedup(results: Sequence[KernelSpeed]) -> float:
    product = 1.0
    for r in results:
        product *= r.speedup
    return product ** (1.0 / len(results))


def simspeed_report(
    results: Sequence[KernelSpeed], rounds: int
) -> dict[str, Any]:
    """Schema-versioned measurement payload (``data`` of the envelope)."""
    return {
        "measurement": SIMSPEED_SCHEMA,
        "rounds": rounds,
        "backends": list(simd.BACKENDS),
        "kernels": [
            {
                "kernel": r.name,
                "params": r.params,
                "cycles": r.cycles,
                "instructions": r.instructions,
                "swar_s": round(r.swar_s, 6),
                "reference_s": round(r.reference_s, 6),
                "swar_cycles_per_s": round(r.swar_cycles_per_s, 1),
                "swar_instrs_per_s": round(r.swar_instrs_per_s, 1),
                "reference_cycles_per_s": round(r.reference_cycles_per_s, 1),
                "reference_instrs_per_s": round(r.reference_instrs_per_s, 1),
                "speedup": round(r.speedup, 2),
            }
            for r in results
        ],
        "min_speedup": round(min_speedup(results), 2),
        "geomean_speedup": round(geomean_speedup(results), 2),
    }


def simspeed_table(results: Sequence[KernelSpeed]) -> tuple[list, list]:
    """(headers, rows) for :func:`repro.analysis.format_table`."""
    headers = [
        "kernel", "sim cycles", "swar cyc/s", "swar instr/s",
        "reference cyc/s", "speedup",
    ]
    rows = [
        [
            r.label,
            r.cycles,
            f"{r.swar_cycles_per_s:,.0f}",
            f"{r.swar_instrs_per_s:,.0f}",
            f"{r.reference_cycles_per_s:,.0f}",
            f"{r.speedup:.2f}x",
        ]
        for r in results
    ]
    return headers, rows


def render_simspeed(results: Sequence[KernelSpeed], rounds: int) -> str:
    """Human-readable sim-speed table plus the summary line."""
    from repro.analysis import format_table

    headers, rows = simspeed_table(results)
    table = format_table(
        headers, rows,
        title=f"Simulation throughput, SWAR vs NumPy reference "
        f"(median of {rounds} rounds)",
    )
    return (
        f"{table}\n"
        f"min speedup {min_speedup(results):.2f}x, "
        f"geomean {geomean_speedup(results):.2f}x"
    )

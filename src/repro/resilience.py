"""Failure posture of the simulated machine and its SPU.

The paper's SPU is deployable because its failure posture is well defined:
the hard-wired idle state (127) disables the unit and the GO bit re-arms it
(§4).  :class:`ResilienceMode` makes that posture an explicit, selectable
policy for the whole simulator instead of an implicit "raise on anything
unexpected":

``STRICT``
    Every fault raises immediately (the historical behavior).  Right for
    unit tests and for debugging kernels, where the first wrong bit should
    stop the world with a precise exception.
``DEGRADE``
    Faults are absorbed the way the hardware would absorb them: an invalid
    controller state parks the unit at idle-127, an un-routable operand is
    serialized (the architectural straight-through value is used), a bad
    MMIO store is dropped, a faulting data access executes as a no-op.
    Every absorption emits ``fault``/``degrade`` events on the machine's
    bus, so nothing is silent — the run keeps going with reduced function.
``HALT``
    Fail-stop: the first fault ends the run cleanly.  :meth:`Machine.run`
    returns its :class:`~repro.cpu.stats.RunStats` (``finished=False``)
    instead of raising, after emitting ``fault`` and ``run_end`` events.

The same posture exists one level up: the campaign runner
(:mod:`repro.runner`) absorbs *orchestration* faults — worker crashes,
hangs, wall-clock timeouts — with retries and a per-slice circuit breaker,
degrading a persistently broken slice to recorded ``skipped`` outcomes the
way DEGRADE parks a broken controller at idle instead of sinking the run
(see ``docs/robustness.md``, "Campaign orchestration").

This module is import-light on purpose: :mod:`repro.cpu.pipeline` and
:mod:`repro.core.controller` both import it, so it must not import from any
simulator package.
"""

from __future__ import annotations

import enum


class ResilienceMode(enum.Enum):
    """How the simulator responds to faults (see module docstring)."""

    STRICT = "strict"
    DEGRADE = "degrade"
    HALT = "halt"

    @classmethod
    def parse(cls, value: "ResilienceMode | str | None") -> "ResilienceMode":
        """Coerce a mode name (``"strict"``/``"degrade"``/``"halt"``) to a mode.

        ``None`` means STRICT, so constructors can take ``resilience=None``
        and stay backward compatible.
        """
        if value is None:
            return cls.STRICT
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            names = ", ".join(mode.value for mode in cls)
            raise ValueError(
                f"unknown resilience mode {value!r}; choose from {names}"
            ) from exc

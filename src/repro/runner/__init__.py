"""repro.runner — the resilient parallel campaign runner.

The paper's controller keeps statically scheduled work flowing without
per-instruction intervention; this package gives the evaluation layer the
same decoupling at orchestration scale.  Fault-campaign injections
(``repro check --jobs N``), experiment-suite cells
(:meth:`repro.experiments.ExperimentSuite.prefetch`) and kernel sweeps
(``repro run --all --jobs N``) become independent tasks on a worker pool
with:

* per-task **wall-clock timeouts** (complementing the in-simulation cycle
  watchdog),
* bounded **retries** with exponential backoff and full jitter,
* a per-``(kernel, config)`` **circuit breaker** that degrades a
  persistently failing slice to recorded ``skipped`` outcomes,
* worker **heartbeats** with hang detection and process replacement, and
* a **crash-consistent JSONL journal** (atomic appends, fsync'd batches)
  enabling ``--resume`` to skip completed tasks and merge byte-identical
  results regardless of completion order or interruption point.

See docs/robustness.md ("Campaign orchestration") for semantics and the
journal format; lifecycle events (``task_start`` .. ``task_done``) ride the
:mod:`repro.obs` event bus.
"""

from repro.runner.chaos import KILL_EXIT, KILL_POINTS, kill_point
from repro.runner.journal import Journal, JournalLoad, load_journal
from repro.runner.policy import CircuitBreaker, RetryPolicy
from repro.runner.signals import CampaignSignalled, clean_interrupts
from repro.runner.pool import PoolStartError, WorkerPool
from repro.runner.report import runner_report
from repro.runner.service import Runner, RunnerConfig, RunnerStats
from repro.runner.tasks import (
    EXECUTORS,
    TaskResult,
    TaskSpec,
    probe_task,
    register_executor,
    resolve_executor,
)

__all__ = [
    "Journal",
    "JournalLoad",
    "load_journal",
    "KILL_EXIT",
    "KILL_POINTS",
    "kill_point",
    "CampaignSignalled",
    "clean_interrupts",
    "CircuitBreaker",
    "RetryPolicy",
    "PoolStartError",
    "WorkerPool",
    "runner_report",
    "Runner",
    "RunnerConfig",
    "RunnerStats",
    "EXECUTORS",
    "TaskResult",
    "TaskSpec",
    "probe_task",
    "register_executor",
    "resolve_executor",
]

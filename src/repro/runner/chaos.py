"""Chaos kill points: prove crash recovery instead of asserting it.

A *kill point* is a named place in the orchestration layer where a test can
make the process die with ``os._exit`` — no ``atexit``, no ``finally``, no
flushing — the closest a test harness gets to ``kill -9`` at an exact line.
The crash-recovery matrix (``tests/runner/``, ``tests/serve/``) and the CI
``serve-smoke`` job arm these points to demonstrate that the journal and the
service actually survive the crashes docs/robustness.md claims they survive.

Instrumented points (each site costs one dict lookup when unarmed):

``journal-append``
    :meth:`repro.runner.journal.Journal.append`, *before* the record is
    written — the record is lost entirely.
``pre-fsync``
    :meth:`repro.runner.journal.Journal.flush`, after the batched writes but
    *before* ``fsync`` — records are in the page cache, not yet durable.
``mid-response``
    :mod:`repro.serve.http`, halfway through writing a response body — the
    client sees a torn response for work the server already journaled.
``mid-drain``
    :meth:`repro.serve.app.ServeApp` graceful drain, after the in-flight job
    was interrupted but *before* the drain finishes cleanly.
``compact-snapshot``
    :meth:`repro.serve.store.ServeStore.compact`, after the snapshot file is
    written and fsync'd but *before* the atomic rename — the old journal is
    still the live one.
``compact-commit``
    Journal compaction, after the rename but *before* the directory fsync
    and journal reopen — the snapshot is the live journal, the directory
    entry may or may not be durable yet.

Environment protocol (mirrors the pool's ``REPRO_RUNNER_CRASH_TASK`` hook):

``REPRO_CHAOS_KILL_POINT``
    Name of the armed point.  Unset (the normal case) disables everything.
``REPRO_CHAOS_KILL_AFTER``
    Die on the Nth hit of the armed point (default 1 — the first hit).
``REPRO_CHAOS_KILL_MARKER``
    Optional once-marker path: the kill creates this file first, and a
    pre-existing marker disarms the point — so a restarted process with the
    same environment does not die again.
"""

from __future__ import annotations

import os

KILL_POINT_ENV = "REPRO_CHAOS_KILL_POINT"
KILL_AFTER_ENV = "REPRO_CHAOS_KILL_AFTER"
KILL_MARKER_ENV = "REPRO_CHAOS_KILL_MARKER"

#: Exit status of a chaos kill — distinctive, so tests can tell an injected
#: crash (53) from a real one.
KILL_EXIT = 53

#: All instrumented point names (validation + docs).
KILL_POINTS = ("journal-append", "pre-fsync", "mid-response", "mid-drain",
               "compact-snapshot", "compact-commit")

#: Per-point hit counters of this process (reset on restart by definition).
_hits: dict[str, int] = {}


def kill_point(name: str) -> None:
    """Die here iff *name* is the armed kill point and its hit count is due."""
    if os.environ.get(KILL_POINT_ENV) != name:
        return
    _hits[name] = _hits.get(name, 0) + 1
    if _hits[name] < int(os.environ.get(KILL_AFTER_ENV, "1")):
        return
    marker = os.environ.get(KILL_MARKER_ENV)
    if marker:
        try:
            fd = os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return  # already fired once; stay alive from now on
        os.close(fd)
    os._exit(KILL_EXIT)

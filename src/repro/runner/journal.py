"""Crash-consistent JSONL journal behind ``--resume``.

One record per line, appended with a single ``os.write`` to an ``O_APPEND``
file descriptor (the line is fully serialized before the write, so a crash
never interleaves records) and fsync'd in batches (every
:attr:`Journal.fsync_every` appends, plus on :meth:`flush`/:meth:`close`).

Crash consistency is the *reader's* contract: :func:`load_journal` accepts a
journal whose final line is truncated or half-written — it keeps the longest
valid prefix and flags ``truncated``.  A record is therefore durable once
fsync'd and *atomic* regardless: it is either entirely present in the loaded
prefix or entirely absent.  Since every ``done`` record carries the task's
full result, resuming from the prefix re-runs at most the tasks whose
records were lost — never half of one.

The first line is a header carrying the schema tag (``repro.runner/1``) and
a caller-supplied *fingerprint* of the campaign (kernels, seed, fault count,
mode...).  Resuming against a journal whose fingerprint differs from the
current invocation raises :class:`~repro.errors.RunnerError` instead of
silently merging results from a different campaign.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import RunnerError
from repro.obs.export import RUNNER_SCHEMA_VERSION


def load_journal(path: str | Path) -> tuple[dict | None, list[dict], bool]:
    """Read a journal; returns ``(header, records, truncated)``.

    *records* excludes the header.  Parsing stops at the first malformed
    line (a crash mid-append leaves at most one, at the tail); everything
    after it is discarded and ``truncated`` is True.  A missing or empty
    file yields ``(None, [], False)``.
    """
    target = Path(path)
    if not target.exists():
        return None, [], False
    raw = target.read_bytes()
    header: dict | None = None
    records: list[dict] = []
    truncated = False
    for index, line in enumerate(raw.split(b"\n")):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            truncated = True
            break
        if not isinstance(record, dict):
            truncated = True
            break
        if index == 0:
            header = record
        else:
            records.append(record)
    return header, records, truncated


class Journal:
    """Append-only JSONL task journal with atomic appends and batched fsync."""

    def __init__(
        self,
        path: str | Path,
        fingerprint: dict,
        fsync_every: int = 8,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.fsync_every = max(1, fsync_every)
        self._pending = 0
        self._completed: dict[str, dict] = {}
        self.truncated = False
        self.resumed = False

        header, records, self.truncated = load_journal(self.path)
        if header is not None:
            self._validate_header(header)
            self.resumed = True
            for record in records:
                if record.get("type") == "done" and record.get("status") == "ok":
                    self._completed[record["task"]] = record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if header is None:
            self.append({
                "type": "header",
                "schema": RUNNER_SCHEMA_VERSION,
                "fingerprint": fingerprint,
            })
            self.flush()

    def _validate_header(self, header: dict) -> None:
        schema = header.get("schema")
        if schema != RUNNER_SCHEMA_VERSION:
            raise RunnerError(
                f"{self.path}: journal schema {schema!r} is not "
                f"{RUNNER_SCHEMA_VERSION!r}"
            )
        found = header.get("fingerprint")
        if found != self.fingerprint:
            raise RunnerError(
                f"{self.path}: journal belongs to a different campaign "
                f"(journal fingerprint {found!r}, this invocation "
                f"{self.fingerprint!r}); pass a fresh --resume path or rerun "
                "the original command line"
            )

    # ---- writing -------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Atomically append one record (single write of the whole line)."""
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        os.write(self._fd, line.encode())
        if record.get("type") == "done" and record.get("status") == "ok":
            self._completed[record["task"]] = record
        self._pending += 1
        if self._pending >= self.fsync_every:
            self.flush()

    def flush(self) -> None:
        """Force the pending batch to stable storage."""
        if self._fd >= 0:
            os.fsync(self._fd)
        self._pending = 0

    def close(self) -> None:
        if self._fd >= 0:
            self.flush()
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---- resume --------------------------------------------------------------

    def completed(self) -> dict[str, dict]:
        """``task id -> done record`` for successfully completed tasks.

        Only ``status == "ok"`` records count: terminally ``failed`` or
        ``skipped`` tasks get a fresh chance on resume (the failure may have
        been environmental), which cannot hurt determinism — their recorded
        outcome was a degraded placeholder, not a result.
        """
        return dict(self._completed)

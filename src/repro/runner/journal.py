"""Crash-consistent JSONL journal behind ``--resume`` and ``repro serve``.

One record per line, appended with a single ``os.write`` to an ``O_APPEND``
file descriptor (the line is fully serialized before the write, so a crash
never interleaves records) and fsync'd in batches (every
:attr:`Journal.fsync_every` appends, plus on :meth:`flush`/:meth:`close`).

Every written line is checksummed: ``<crc32 hex> <compact json>``, where the
CRC covers the serialized record bytes.  Crash consistency is the *reader's*
contract, and :func:`load_journal` now distinguishes two failure shapes:

* a **truncated tail** — the final line is half-written or fails its CRC
  (the classic torn ``write``); the longest valid prefix is kept and
  ``truncated`` is flagged, exactly as before;
* a **corrupt mid-file record** — a line that fails its CRC or does not
  parse *with valid records after it* (bit rot, a disk error, a concurrent
  writer).  The loader skips it, counts it in ``corrupt``, and keeps
  reading — one damaged record no longer discards every record behind it.

Records written before checksumming existed (bare JSON lines) still load:
they are counted in ``legacy`` and reported with a single warning, so old
journals resume with reduced (parse-only) integrity checking rather than
being rejected.

A record is therefore durable once fsync'd and *atomic* regardless: it is
either entirely present in the loaded set or entirely absent.  Since every
``done`` record carries the task's full result, resuming re-runs at most the
tasks whose records were lost or damaged — never half of one.

The first line is a header carrying the schema tag (``repro.runner/1``) and
a caller-supplied *fingerprint* of the campaign (kernels, seed, fault count,
mode...).  Resuming against a journal whose fingerprint differs from the
current invocation raises :class:`~repro.errors.RunnerError` instead of
silently merging results from a different campaign.

The chaos kill points ``journal-append`` and ``pre-fsync``
(:mod:`repro.runner.chaos`) let the crash-recovery tests die at the exact
instants these guarantees are about.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import RunnerError
from repro.obs.export import RUNNER_SCHEMA_VERSION
from repro.runner.chaos import kill_point

_CRC_PREFIX_LEN = 8  # "%08x" + one space before the payload


def _encode_record(record: dict) -> bytes:
    """Serialize one record as its checksummed journal line."""
    payload = json.dumps(record, separators=(",", ":"), default=str).encode()
    return b"%08x " % zlib.crc32(payload) + payload + b"\n"


def _decode_line(line: bytes) -> tuple[dict | None, bool]:
    """Parse one journal line; returns ``(record | None, is_legacy)``.

    ``None`` means the line is damaged: a failed CRC, unparsable JSON, or a
    non-object payload.  A line without a CRC prefix is *legacy* (written
    before checksumming) and is accepted on JSON validity alone.
    """
    legacy = True
    payload = line
    if (
        len(line) > _CRC_PREFIX_LEN + 1
        and line[_CRC_PREFIX_LEN : _CRC_PREFIX_LEN + 1] == b" "
    ):
        try:
            expected = int(line[:_CRC_PREFIX_LEN], 16)
        except ValueError:
            expected = None
        if expected is not None:
            legacy = False
            payload = line[_CRC_PREFIX_LEN + 1 :]
            if zlib.crc32(payload) != expected:
                return None, False
    try:
        record = json.loads(payload)
    except ValueError:
        return None, legacy
    if not isinstance(record, dict):
        return None, legacy
    return record, legacy


@dataclass
class JournalLoad:
    """What :func:`load_journal` recovered from one journal file."""

    #: The leading ``type == "header"`` record, when one loaded cleanly.
    header: dict | None = None
    #: Every valid non-header record, in file order.
    records: list[dict] = field(default_factory=list)
    #: The final line was half-written or failed its CRC (torn append).
    truncated: bool = False
    #: Damaged records *before* valid ones — skipped, not fatal.
    corrupt: int = 0
    #: Checksum-less records accepted on JSON validity alone (pre-CRC files).
    legacy: int = 0


def load_journal(path: str | Path) -> JournalLoad:
    """Read a journal, keeping every record that survives validation.

    Each line is checked independently (CRC where present, JSON validity
    always).  A damaged *final* line is the truncated-tail case; a damaged
    line with valid records after it is counted in :attr:`JournalLoad.corrupt`
    and skipped.  A missing or empty file yields an empty load.
    """
    target = Path(path)
    load = JournalLoad()
    if not target.exists():
        return load
    lines = [line for line in target.read_bytes().split(b"\n") if line]
    for index, line in enumerate(lines):
        record, legacy = _decode_line(line)
        if record is None:
            if index == len(lines) - 1:
                load.truncated = True
            else:
                load.corrupt += 1
            continue
        if legacy:
            load.legacy += 1
        if load.header is None and not load.records and record.get("type") == "header":
            load.header = record
        else:
            load.records.append(record)
    return load


class Journal:
    """Append-only JSONL task journal with checksummed atomic appends."""

    def __init__(
        self,
        path: str | Path,
        fingerprint: dict,
        fsync_every: int = 8,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.fsync_every = max(1, fsync_every)
        self._pending = 0
        self._completed: dict[str, dict] = {}

        load = load_journal(self.path)
        self.truncated = load.truncated
        #: Damaged mid-file records skipped by the loader (see load_journal).
        self.corrupt_records = load.corrupt
        #: Checksum-less records accepted from a pre-CRC journal.
        self.legacy_records = load.legacy
        self.resumed = False
        if load.header is not None:
            self._validate_header(load.header)
            self.resumed = True
            for record in load.records:
                if record.get("type") == "done" and record.get("status") == "ok":
                    self._completed[record["task"]] = record
        elif load.records or load.corrupt or load.truncated:
            raise RunnerError(
                f"{self.path}: journal header is missing or corrupt; the "
                "file cannot be attributed to a campaign — move it aside "
                "or pass a fresh --resume path"
            )
        if self.corrupt_records:
            warnings.warn(
                f"{self.path}: skipped {self.corrupt_records} corrupt journal "
                "record(s) (failed checksum or unparsable); the affected "
                "tasks will re-run",
                RuntimeWarning,
                stacklevel=2,
            )
        if self.legacy_records:
            warnings.warn(
                f"{self.path}: loaded {self.legacy_records} checksum-less "
                "record(s) from a pre-CRC journal; integrity checking for "
                "them is parse-only",
                RuntimeWarning,
                stacklevel=2,
            )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if load.header is None:
            self.append({
                "type": "header",
                "schema": RUNNER_SCHEMA_VERSION,
                "fingerprint": fingerprint,
            })
            self.flush()

    def _validate_header(self, header: dict) -> None:
        schema = header.get("schema")
        if schema != RUNNER_SCHEMA_VERSION:
            raise RunnerError(
                f"{self.path}: journal schema {schema!r} is not "
                f"{RUNNER_SCHEMA_VERSION!r}"
            )
        found = header.get("fingerprint")
        if found != self.fingerprint:
            raise RunnerError(
                f"{self.path}: journal belongs to a different campaign "
                f"(journal fingerprint {found!r}, this invocation "
                f"{self.fingerprint!r}); pass a fresh --resume path or rerun "
                "the original command line"
            )

    # ---- writing -------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Atomically append one record (single write of the whole line)."""
        kill_point("journal-append")
        os.write(self._fd, _encode_record(record))
        if record.get("type") == "done" and record.get("status") == "ok":
            self._completed[record["task"]] = record
        self._pending += 1
        if self._pending >= self.fsync_every:
            self.flush()

    def flush(self) -> None:
        """Force the pending batch to stable storage."""
        kill_point("pre-fsync")
        if self._fd >= 0:
            os.fsync(self._fd)
        self._pending = 0

    def close(self) -> None:
        if self._fd >= 0:
            self.flush()
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---- resume --------------------------------------------------------------

    def completed(self) -> dict[str, dict]:
        """``task id -> done record`` for successfully completed tasks.

        Only ``status == "ok"`` records count: terminally ``failed`` or
        ``skipped`` tasks get a fresh chance on resume (the failure may have
        been environmental), which cannot hurt determinism — their recorded
        outcome was a degraded placeholder, not a result.
        """
        return dict(self._completed)

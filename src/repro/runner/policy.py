"""Retry and circuit-breaker policies of the campaign runner.

Retries use capped exponential backoff with *full jitter* (delay drawn
uniformly from ``[0, min(cap, base * 2^(attempt-1))]``): under correlated
failures — a machine-wide stall releasing many retries at once — full jitter
decorrelates the retry storm instead of synchronizing it.

The circuit breaker is keyed by *slice* (conventionally
``"<kernel>/<config>"``).  It counts **attempt-level infrastructure
failures** — crashes, hangs, wall-clock timeouts, escaped executor errors —
never task *outcomes*: an injection whose simulation trips the in-simulation
cycle watchdog completes successfully with outcome ``detected`` and resets
the slice, so a fault campaign full of watchdog detections cannot trip a
breaker.  After ``threshold`` consecutive failures the slice opens and stays
open for the rest of the run; pending tasks of the slice are recorded
``skipped`` instead of executed, bounding the damage of a persistently
broken slice to that slice.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Default wall-clock calibration: measured clean seconds * factor + slack.
#: Generous on purpose — precise bounds belong to the in-simulation cycle
#: watchdog; wall-clock budgets only catch work that stopped entirely.
CALIBRATION_FACTOR = 25.0
CALIBRATION_SLACK_S = 10.0


def calibrated_timeout_s(clean_s: float, factor: float = CALIBRATION_FACTOR,
                         slack_s: float = CALIBRATION_SLACK_S) -> float:
    """Wall-clock budget derived from a measured (or expected) clean duration.

    The orchestration analogue of the cycle watchdog's ``clean_cycles * 4 +
    10000``: one formula shared by the campaign runner's per-injection
    timeouts and the serve layer's per-job supervision budgets, so both
    layers stay calibrated the same way.
    """
    return max(0.0, clean_s) * factor + slack_s


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff + full jitter."""

    #: Total attempts per task (1 = no retries).
    max_attempts: int = 3
    #: Backoff cap base: attempt *n* draws from ``[0, base * 2^(n-1)]``.
    base_delay_s: float = 0.05
    #: Hard ceiling on any single backoff delay.
    max_delay_s: float = 2.0

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff after failed attempt *attempt* (1-based), full jitter."""
        cap = min(self.max_delay_s, self.base_delay_s * (2 ** max(0, attempt - 1)))
        return rng.uniform(0.0, cap)

    def exhausted(self, attempt: int) -> bool:
        return attempt >= self.max_attempts


class CircuitBreaker:
    """Per-slice consecutive-failure breaker (open = skip, never half-open).

    A campaign run is finite, so there is no recovery probe: once open, a
    slice stays open until the next invocation (a ``--resume`` starts with
    fresh breakers, giving previously skipped tasks another chance).
    """

    def __init__(self, threshold: int = 3) -> None:
        self.threshold = max(1, threshold)
        self._consecutive: dict[str, int] = {}
        self._open: set[str] = set()
        #: Times each slice tripped (at most once per run by construction).
        self.trips: dict[str, int] = {}

    def allow(self, slice: str) -> bool:
        """May a task of *slice* run?  The empty slice is never broken."""
        return not slice or slice not in self._open

    def record_success(self, slice: str) -> None:
        if slice:
            self._consecutive[slice] = 0

    def record_failure(self, slice: str) -> bool:
        """Count one attempt-level failure; returns True when this trip
        opened the breaker (emit ``breaker_open`` exactly then)."""
        if not slice or slice in self._open:
            return False
        count = self._consecutive.get(slice, 0) + 1
        self._consecutive[slice] = count
        if count >= self.threshold:
            self._open.add(slice)
            self.trips[slice] = self.trips.get(slice, 0) + 1
            return True
        return False

    @property
    def open_slices(self) -> tuple[str, ...]:
        return tuple(sorted(self._open))

    def consecutive_failures(self, slice: str) -> int:
        return self._consecutive.get(slice, 0)

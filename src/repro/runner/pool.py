"""The multi-process worker pool: heartbeats, hang detection, replacement.

Topology: every worker owns a private task queue (the parent targets a
specific idle worker per dispatch, so a dying worker can lose at most the
one task it holds — there is no shared queue a crash could strand work in)
and all workers share one result queue carrying three message types:

``("start", worker, task, attempt)``
    The worker picked the task up — execution begins now.
``("beat", worker, task, attempt)``
    Liveness heartbeat from a daemon thread inside the worker, every
    ``heartbeat_s`` while a task runs.  A worker that stops beating without
    finishing (frozen process, deadlocked interpreter) is *hung*.
``("done", worker, task, attempt, status, result, detail, duration_s)``
    Terminal attempt message: ``status`` is ``"ok"`` or ``"error"``.

The parent never joins a suspect worker politely: :meth:`WorkerPool.replace`
SIGKILLs the process (which also terminates SIGSTOPped ones) and boots a
fresh worker into the same slot.  Messages from the dead worker's last
attempt may still sit in the result queue; consumers match them against the
attempt token and drop stale ones.

Start method: ``fork`` where the platform offers it (workers inherit the
warm interpreter — kernel builds stay cheap), ``spawn`` otherwise.  Any
failure to bring the pool up raises :class:`PoolStartError`, which the
service layer turns into a graceful serial fallback.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import Any

from repro.errors import RunnerError
from repro.runner.tasks import TaskSpec, resolve_executor


class PoolStartError(RunnerError):
    """The worker pool could not start (callers fall back to serial)."""


#: Environment hook for crash-injection tests: ``<task id>`` makes the first
#: worker that picks the task up die with ``os._exit`` *before* executing it,
#: once (a marker file at ``$REPRO_RUNNER_CRASH_MARKER`` arms subsequent
#: attempts to proceed).  Used by the resume-determinism tests to simulate a
#: worker crash at an exact point of a real campaign.
CRASH_TASK_ENV = "REPRO_RUNNER_CRASH_TASK"
CRASH_MARKER_ENV = "REPRO_RUNNER_CRASH_MARKER"


def _maybe_injected_crash(task_id: str) -> None:
    if os.environ.get(CRASH_TASK_ENV) != task_id:
        return
    marker = os.environ.get(CRASH_MARKER_ENV)
    if not marker:
        return
    try:
        fd = os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
    except FileExistsError:
        return  # already crashed once; let the retry run
    os.close(fd)
    os._exit(41)


def _heartbeat_loop(result_queue, worker_id: int, task_id: str, attempt: int,
                    interval: float, stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            result_queue.put(("beat", worker_id, task_id, attempt))
        except Exception:
            return  # parent went away; nothing left to report to


def worker_main(worker_id: int, task_queue, result_queue,
                heartbeat_s: float) -> None:
    """Worker process body: execute tasks off the private queue until None."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, kind, payload, attempt = item
        _maybe_injected_crash(task_id)
        result_queue.put(("start", worker_id, task_id, attempt))
        stop = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(result_queue, worker_id, task_id, attempt, heartbeat_s, stop),
            daemon=True,
        )
        beat.start()
        started = time.perf_counter()
        status, result, detail = "ok", None, ""
        try:
            result = resolve_executor(kind)(dict(payload))
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            status = "error"
            detail = f"{type(exc).__name__}: {exc}"
        finally:
            stop.set()
        duration = time.perf_counter() - started
        result_queue.put(
            ("done", worker_id, task_id, attempt, status, result, detail,
             duration)
        )


@dataclass
class WorkerHandle:
    """Parent-side state of one worker slot."""

    slot: int
    process: Any
    queue: Any
    #: In-flight attempt: ``(task_id, attempt)``; None when idle.
    busy: tuple[str, int] | None = None
    dispatched_at: float = 0.0
    last_beat: float = 0.0
    #: Monotonically increasing worker id (slots are reused, ids are not).
    worker_id: int = 0

    @property
    def idle(self) -> bool:
        return self.busy is None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """A fixed number of replaceable worker processes."""

    def __init__(self, jobs: int, heartbeat_s: float = 0.2,
                 start_method: str | None = None) -> None:
        if jobs < 2:
            raise PoolStartError(f"worker pool needs jobs >= 2, got {jobs}")
        self.jobs = jobs
        self.heartbeat_s = heartbeat_s
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        try:
            self._ctx = multiprocessing.get_context(start_method)
        except ValueError as exc:
            raise PoolStartError(f"no usable start method: {exc}") from exc
        self._next_worker_id = 0
        self.workers: list[WorkerHandle] = []
        self.result_queue = None
        #: Worker replacements by reason: {"timeout": n, "hang": n, "crash": n}.
        self.replacements: dict[str, int] = {}

    # ---- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        try:
            self.result_queue = self._ctx.Queue()
            self.workers = [self._spawn(slot) for slot in range(self.jobs)]
        except PoolStartError:
            raise
        except Exception as exc:  # pragma: no cover - platform-dependent
            self.stop()
            raise PoolStartError(f"worker pool failed to start: {exc}") from exc

    def _spawn(self, slot: int) -> WorkerHandle:
        queue = self._ctx.Queue()
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, queue, self.result_queue, self.heartbeat_s),
            daemon=True,
            name=f"repro-runner-{slot}",
        )
        process.start()
        return WorkerHandle(slot=slot, process=process, queue=queue,
                            worker_id=worker_id)

    def stop(self) -> None:
        """Tear the pool down (graceful stop, then SIGKILL stragglers)."""
        for handle in self.workers:
            if handle.process.is_alive() and handle.idle:
                try:
                    handle.queue.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + 1.0
        for handle in self.workers:
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
        for handle in self.workers:
            try:
                handle.queue.close()
            except Exception:
                pass
        self.workers = []
        if self.result_queue is not None:
            try:
                self.result_queue.close()
            except Exception:
                pass
            self.result_queue = None

    # ---- dispatch / monitoring ----------------------------------------------

    def idle_workers(self) -> list[WorkerHandle]:
        return [h for h in self.workers if h.idle and h.alive]

    def dispatch(self, handle: WorkerHandle, task: TaskSpec,
                 attempt: int) -> None:
        now = time.monotonic()
        handle.busy = (task.id, attempt)
        handle.dispatched_at = now
        handle.last_beat = now
        handle.queue.put((task.id, task.kind, task.payload, attempt))

    def replace(self, handle: WorkerHandle, reason: str) -> WorkerHandle:
        """SIGKILL *handle*'s process and boot a fresh worker in its slot."""
        self.replacements[reason] = self.replacements.get(reason, 0) + 1
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(2.0)
        try:
            handle.queue.close()
        except Exception:
            pass
        fresh = self._spawn(handle.slot)
        self.workers[handle.slot] = fresh
        return fresh

    def poll(self, timeout: float) -> list[tuple]:
        """Drain available result-queue messages (waits up to *timeout* for
        the first).  Malformed messages from killed workers are dropped."""
        messages: list[tuple] = []
        assert self.result_queue is not None
        try:
            messages.append(self.result_queue.get(timeout=timeout))
        except Empty:
            return messages
        except (EOFError, OSError, ValueError):
            return messages
        while True:
            try:
                messages.append(self.result_queue.get_nowait())
            except Empty:
                break
            except (EOFError, OSError, ValueError):
                break
        return [m for m in messages if isinstance(m, tuple) and len(m) >= 4]

    def worker_for(self, worker_id: int) -> WorkerHandle | None:
        for handle in self.workers:
            if handle.worker_id == worker_id:
                return handle
        return None

"""The ``repro.runner/1`` execution report.

Unlike the ``fault-campaign`` document — a pure function of (kernels, seed,
faults, mode), byte-stable by contract — the runner report is *about* the
execution: per-task attempts and wall-clock durations, retry/timeout/hang/
crash counters, breaker state, fallback reason.  It deliberately varies
between runs; campaign results and timing live in separate documents so the
determinism guarantee of the former survives the usefulness of the latter.
"""

from __future__ import annotations

from repro.obs.export import RUNNER_SCHEMA_VERSION, envelope
from repro.runner.service import Runner
from repro.runner.tasks import TaskResult


def runner_report(runner: Runner,
                  results: dict[str, TaskResult] | None = None,
                  serve: dict | None = None) -> dict:
    """The ``runner`` document for one :class:`Runner`'s completed work.

    *results* defaults to everything the runner has driven terminal
    (:attr:`Runner.results`, accumulated across ``run()`` calls).  *serve*,
    when given, embeds the owning service's lifecycle counters (queue
    high-water, admissions rejected, restarts) under a ``serve`` key.
    """
    if results is None:
        results = runner.results
    ordered = [results[task_id] for task_id in sorted(results)]
    journal = None
    if runner.journal is not None:
        journal = {
            "resumed": runner.journal.resumed,
            "resumed_tasks": runner.stats.cached,
            "corrupt_records_skipped": runner.journal.corrupt_records,
            "legacy_records": runner.journal.legacy_records,
            "truncated_tail": runner.journal.truncated,
        }
    body = {
        "jobs": runner.config.jobs,
        "fallback": runner.fallback_reason,
        "journal": journal,
        "stats": runner.stats.as_dict(),
        "retry": {
            "max_attempts": runner.config.retry.max_attempts,
            "base_delay_s": runner.config.retry.base_delay_s,
            "max_delay_s": runner.config.retry.max_delay_s,
        },
        "breaker": {
            "threshold": runner.breaker.threshold,
            "open_slices": list(runner.breaker.open_slices),
            "trips": dict(sorted(runner.breaker.trips.items())),
        },
        "tasks": [
            {
                "task": result.task,
                "status": result.status,
                "attempts": result.attempts,
                "duration_s": result.duration_s,
                "cached": result.cached,
                "failure": result.failure,
            }
            for result in ordered
        ],
    }
    if serve is not None:
        body["serve"] = serve
    return envelope("runner", body, schema=RUNNER_SCHEMA_VERSION)

"""The resilient campaign runner: retries, breakers, journal, telemetry.

:class:`Runner` drives a set of :class:`~repro.runner.tasks.TaskSpec` to
*terminal* results — every submitted task ends as exactly one of ``ok``,
``failed`` (bounded retries exhausted) or ``skipped`` (circuit breaker) — no
lost tasks, regardless of worker crashes, hangs or wall-clock timeouts.

Execution strategy:

* ``jobs >= 2`` — a :class:`~repro.runner.pool.WorkerPool` with per-task
  wall-clock timeouts and heartbeat-based hang detection; suspect workers
  are SIGKILLed and replaced, their task retried elsewhere.
* ``jobs <= 1``, or the pool failing to start — the serial in-process path
  (:attr:`Runner.fallback_reason` records why).  Serial execution cannot
  preempt a task, so wall-clock timeouts are not enforced there; the
  in-simulation cycle watchdog (docs/robustness.md) still bounds every run.

Results are deterministic data, orchestration is not: retry timing, worker
assignment and completion order never leak into a :class:`TaskResult`'s
``result`` payload, which is how a resumed ``--jobs 4`` campaign merges
byte-identical to a serial one.

Lifecycle telemetry goes to :attr:`Runner.bus` (an
:class:`repro.obs.EventBus`): ``task_start``, ``task_retry``,
``task_timeout``, ``breaker_open``, ``task_done``.

Host-side wall-clock observability is opt-in and rides on top: pass a
:class:`repro.obs.spans.SpanTracer` (plus an optional parent span) and the
runner opens one ``slice:<name>`` span per task slice and one
``task:<id>`` span per fresh task — spans close as tasks reach terminal
state, so the pooled path's out-of-order completions nest correctly.  A
*progress* file-like gets one line per terminal task (``[slice] done/total``).
Both default to ``None`` and cost nothing when absent; wall-clock never
enters :class:`TaskResult` payloads either way, so merged campaign reports
stay byte-stable.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import RunnerError, RunnerInterrupted
from repro.obs.events import (
    BreakerOpenEvent,
    EventBus,
    TaskDoneEvent,
    TaskRetryEvent,
    TaskStartEvent,
    TaskTimeoutEvent,
)
from repro.runner.journal import Journal
from repro.runner.policy import CircuitBreaker, RetryPolicy
from repro.runner.pool import PoolStartError, WorkerPool
from repro.runner.tasks import TaskResult, TaskSpec


@dataclass(frozen=True)
class RunnerConfig:
    """Tunables of one runner instance."""

    #: Worker processes; ``<= 1`` selects the serial in-process path.
    jobs: int = 1
    #: Default per-task wall-clock budget (``None`` = unbounded).
    timeout_s: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Consecutive attempt-level failures that open a slice's breaker.
    breaker_threshold: int = 3
    #: Worker heartbeat period.
    heartbeat_s: float = 0.2
    #: Silence (no heartbeat, no completion) that declares a worker hung.
    hang_timeout_s: float = 5.0
    #: Parent poll granularity — bounds timeout/hang detection latency.
    poll_s: float = 0.05
    #: Seed for backoff jitter (orchestration-only; never affects results).
    retry_seed: int | None = None
    #: Stop after this many freshly recorded terminal tasks (test/ops hook
    #: simulating an interruption; the journal stays resumable).
    interrupt_after: int | None = None
    #: Journal fsync batch size.
    fsync_every: int = 8
    #: Cooperative cancellation: when another thread sets this event, the
    #: runner stops at the next scheduling point — journal flushed,
    #: :class:`RunnerInterrupted` raised, results so far attached.  This is
    #: how ``repro serve`` drains an in-flight campaign on SIGTERM without
    #: owning the campaign thread's signal handling.
    cancel_event: threading.Event | None = None


@dataclass
class RunnerStats:
    """Orchestration counters (reported via ``repro.runner/1`` exports)."""

    tasks: int = 0
    ok: int = 0
    failed: int = 0
    skipped: int = 0
    cached: int = 0
    attempts: int = 0
    retries: int = 0
    errors: int = 0
    timeouts: int = 0
    hangs: int = 0
    crashes: int = 0
    breaker_trips: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> dict:
        return dict(vars(self))


class Runner:
    """Resilient task execution with journaling and lifecycle telemetry."""

    def __init__(
        self,
        config: RunnerConfig | None = None,
        bus: EventBus | None = None,
        journal: Journal | None = None,
        tracer=None,
        span_parent=None,
        progress=None,
    ) -> None:
        self.config = config or RunnerConfig()
        self.bus = bus or EventBus()
        self.journal = journal
        self.breaker = CircuitBreaker(self.config.breaker_threshold)
        self.stats = RunnerStats()
        self.fallback_reason: str | None = None
        #: Every terminal result this runner has produced, across run() calls.
        self.results: dict[str, TaskResult] = {}
        self._jitter = random.Random(self.config.retry_seed)
        self._fresh_terminal = 0
        #: Optional :class:`repro.obs.spans.SpanTracer`; slice/task spans
        #: parent under *span_parent* (e.g. a campaign root span).
        self.tracer = tracer
        self.span_parent = span_parent
        #: Optional file-like for live per-slice progress lines.
        self.progress = progress
        self._task_slices: dict[str, str] = {}
        self._slice_spans: dict[str, object] = {}
        self._slice_total: dict[str, int] = {}
        self._slice_done: dict[str, int] = {}
        self._task_spans: dict[str, object] = {}

    # ---- public entry point --------------------------------------------------

    def run(self, tasks: list[TaskSpec]) -> dict[str, TaskResult]:
        """Drive *tasks* to terminal results; returns ``{task id: result}``.

        Tasks already completed (``ok``) in the resume journal are returned
        as cached results without re-running.  Raises
        :class:`RunnerInterrupted` when the configured ``interrupt_after``
        budget is hit (the journal is flushed first).
        """
        ids = [task.id for task in tasks]
        if len(set(ids)) != len(ids):
            raise RunnerError("duplicate task ids submitted to Runner.run")
        started = time.perf_counter()
        self.stats.tasks += len(tasks)

        results: dict[str, TaskResult] = {}
        cached = self.journal.completed() if self.journal is not None else {}
        fresh: list[TaskSpec] = []
        for task in tasks:
            record = cached.get(task.id)
            if record is not None:
                result = TaskResult.from_record(record, cached=True)
                results[task.id] = result
                self.stats.cached += 1
                self.stats.ok += 1
                self._emit_done(result)
            else:
                fresh.append(task)

        if self.tracer is not None or self.progress is not None:
            for task in fresh:
                self._task_slices[task.id] = task.slice
                self._slice_total[task.slice] = (
                    self._slice_total.get(task.slice, 0) + 1
                )

        try:
            if fresh:
                if self.config.jobs >= 2:
                    try:
                        self._run_pool(fresh, results)
                    except PoolStartError as exc:
                        self.fallback_reason = str(exc)
                        self._run_serial(fresh, results)
                else:
                    self._run_serial(fresh, results)
        finally:
            if self.journal is not None:
                self.journal.flush()
            self.results.update(results)
            self.stats.wall_s += time.perf_counter() - started
        return results

    # ---- shared terminal-result handling -------------------------------------

    def _emit_done(self, result: TaskResult) -> None:
        self.bus.emit("task_done", TaskDoneEvent(
            task=result.task, status=result.status, attempts=result.attempts,
            duration_s=result.duration_s, cached=result.cached,
        ))

    def _slice_span(self, slice_name: str):
        span = self._slice_spans.get(slice_name)
        if span is None:
            span = self.tracer.begin(
                f"slice:{slice_name}", parent=self.span_parent,
                tasks=self._slice_total.get(slice_name, 0),
            )
            self._slice_spans[slice_name] = span
        return span

    def _begin_task_span(self, task: TaskSpec, attempt: int) -> None:
        """Open the task's span on its first attempt (it covers retries)."""
        if self.tracer is None or attempt > 1:
            return
        self._task_spans[task.id] = self.tracer.begin(
            f"task:{task.id}", parent=self._slice_span(task.slice),
            kind=task.kind, slice=task.slice,
        )

    def _finish_task_obs(self, result: TaskResult) -> None:
        """Close the task span, count the slice, emit a progress line."""
        slice_name = self._task_slices.get(result.task)
        if self.tracer is not None:
            span = self._task_spans.pop(result.task, None)
            if span is not None:
                self.tracer.end(
                    span, status="ok" if result.status == "ok" else "error"
                )
        if slice_name is None:
            return
        done = self._slice_done.get(slice_name, 0) + 1
        self._slice_done[slice_name] = done
        total = self._slice_total.get(slice_name, 0)
        if self.progress is not None:
            print(f"[{slice_name}] {done}/{total} {result.task}: "
                  f"{result.status} ({result.attempts} attempt(s))",
                  file=self.progress, flush=True)
        if self.tracer is not None and done >= total:
            span = self._slice_spans.pop(slice_name, None)
            if span is not None:
                self.tracer.end(span)

    def _check_cancelled(self, results: dict[str, TaskResult]) -> None:
        """Raise the clean-interrupt path when the cancel event is set."""
        event = self.config.cancel_event
        if event is None or not event.is_set():
            return
        if self.journal is not None:
            self.journal.flush()
        raise RunnerInterrupted(
            "campaign cancelled; journal flushed — resume with the same "
            "journal to continue", results,
        )

    def _terminal(self, results: dict[str, TaskResult],
                  result: TaskResult) -> None:
        results[result.task] = result
        setattr(self.stats, result.status,
                getattr(self.stats, result.status) + 1)
        if self.journal is not None:
            self.journal.append(result.as_record())
        self._emit_done(result)
        # Before the interrupt check: an interrupted campaign's already
        # terminal tasks still close their spans; open ones export aborted.
        self._finish_task_obs(result)
        self._fresh_terminal += 1
        budget = self.config.interrupt_after
        if budget is not None and self._fresh_terminal >= budget:
            if self.journal is not None:
                self.journal.flush()
            raise RunnerInterrupted(
                f"interrupted after {self._fresh_terminal} task(s); resume "
                "with the same journal to continue", results,
            )

    def _attempt_failed(self, task: TaskSpec, attempt: int, reason: str,
                        detail: str, duration: float) -> tuple[bool, float]:
        """Account one failed attempt.  Returns ``(is_terminal, delay_s)``."""
        counter = {"error": "errors", "timeout": "timeouts", "hang": "hangs",
                   "crash": "crashes"}[reason]
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        if self.journal is not None:
            self.journal.append({
                "type": "attempt", "task": task.id, "attempt": attempt,
                "status": reason, "detail": detail, "duration_s": duration,
            })
        if self.breaker.record_failure(task.slice):
            self.stats.breaker_trips += 1
            self.bus.emit("breaker_open", BreakerOpenEvent(
                slice=task.slice,
                failures=self.breaker.consecutive_failures(task.slice),
            ))
        if not self.breaker.allow(task.slice):
            return True, 0.0
        if self.config.retry.exhausted(attempt):
            return True, 0.0
        delay = self.config.retry.delay(attempt, self._jitter)
        self.stats.retries += 1
        self.bus.emit("task_retry", TaskRetryEvent(
            task=task.id, attempt=attempt, reason=reason, detail=detail,
            delay_s=delay,
        ))
        return False, delay

    # ---- serial path ---------------------------------------------------------

    def _run_serial(self, tasks: list[TaskSpec],
                    results: dict[str, TaskResult]) -> None:
        for task in tasks:
            self._check_cancelled(results)
            if not self.breaker.allow(task.slice):
                self._terminal(results, TaskResult(
                    task=task.id, status="skipped", attempts=0,
                    failure=f"breaker_open:{task.slice}",
                ))
                continue
            attempt = 0
            while True:
                attempt += 1
                self.stats.attempts += 1
                self.bus.emit("task_start", TaskStartEvent(
                    task=task.id, attempt=attempt, worker=-1,
                ))
                self._begin_task_span(task, attempt)
                begun = time.perf_counter()
                try:
                    payload = task.execute()
                except RunnerInterrupted:
                    # A signal handler fired mid-task (clean_interrupts):
                    # not a task failure — flush what completed and stop.
                    if self.journal is not None:
                        self.journal.flush()
                    raise
                except Exception as exc:  # noqa: BLE001 - retried by policy
                    duration = time.perf_counter() - begun
                    detail = f"{type(exc).__name__}: {exc}"
                    terminal, delay = self._attempt_failed(
                        task, attempt, "error", detail, duration
                    )
                    if terminal:
                        self._terminal(results, TaskResult(
                            task=task.id, status="failed", attempts=attempt,
                            duration_s=duration, failure=f"error: {detail}",
                        ))
                        break
                    time.sleep(delay)
                    continue
                duration = time.perf_counter() - begun
                self.breaker.record_success(task.slice)
                self._terminal(results, TaskResult(
                    task=task.id, status="ok", result=payload,
                    attempts=attempt, duration_s=duration,
                ))
                break

    # ---- pooled path ---------------------------------------------------------

    def _run_pool(self, tasks: list[TaskSpec],
                  results: dict[str, TaskResult]) -> None:
        pool = WorkerPool(self.config.jobs, heartbeat_s=self.config.heartbeat_s)
        pool.start()
        try:
            self._drive(pool, tasks, results)
        finally:
            pool.stop()

    def _drive(self, pool: WorkerPool, tasks: list[TaskSpec],
               results: dict[str, TaskResult]) -> None:
        specs = {task.id: task for task in tasks}
        attempts: dict[str, int] = {task.id: 0 for task in tasks}
        ready: deque[str] = deque(task.id for task in tasks)
        delayed: list[tuple[float, str]] = []
        pending = set(specs)

        def fail_attempt(task: TaskSpec, attempt: int, reason: str,
                         detail: str, duration: float) -> None:
            terminal, delay = self._attempt_failed(
                task, attempt, reason, detail, duration
            )
            if terminal:
                self._terminal(results, TaskResult(
                    task=task.id, status="failed", attempts=attempt,
                    duration_s=duration, failure=f"{reason}: {detail}",
                ))
                pending.discard(task.id)
            else:
                delayed.append((time.monotonic() + delay, task.id))

        while pending:
            self._check_cancelled(results)
            now = time.monotonic()
            if delayed:
                due = [tid for when, tid in delayed if when <= now]
                delayed = [(when, tid) for when, tid in delayed
                           if when > now]
                ready.extend(due)

            for handle in pool.idle_workers():
                task = None
                while ready:
                    tid = ready.popleft()
                    if tid not in pending:
                        continue
                    candidate = specs[tid]
                    if not self.breaker.allow(candidate.slice):
                        self._terminal(results, TaskResult(
                            task=tid, status="skipped",
                            attempts=attempts[tid],
                            failure=f"breaker_open:{candidate.slice}",
                        ))
                        pending.discard(tid)
                        continue
                    task = candidate
                    break
                if task is None:
                    break
                attempts[task.id] += 1
                self.stats.attempts += 1
                pool.dispatch(handle, task, attempts[task.id])
                self.bus.emit("task_start", TaskStartEvent(
                    task=task.id, attempt=attempts[task.id],
                    worker=handle.worker_id,
                ))
                self._begin_task_span(task, attempts[task.id])

            for message in pool.poll(self.config.poll_s):
                kind, worker_id, task_id, attempt = message[:4]
                handle = pool.worker_for(worker_id)
                if handle is None or handle.busy != (task_id, attempt):
                    continue  # stale message from a replaced worker
                if kind in ("start", "beat"):
                    handle.last_beat = time.monotonic()
                    continue
                if kind != "done":
                    continue
                _, _, _, _, status, payload, detail, duration = message
                handle.busy = None
                if task_id not in pending:
                    continue
                task = specs[task_id]
                if status == "ok":
                    self.breaker.record_success(task.slice)
                    self._terminal(results, TaskResult(
                        task=task_id, status="ok", result=payload,
                        attempts=attempt, duration_s=duration,
                    ))
                    pending.discard(task_id)
                else:
                    fail_attempt(task, attempt, "error", detail, duration)

            now = time.monotonic()
            for handle in list(pool.workers):
                if handle.idle:
                    if not handle.alive:
                        pool.replace(handle, "crash")
                    continue
                task_id, attempt = handle.busy
                task = specs.get(task_id)
                if task is None:  # pragma: no cover - defensive
                    handle.busy = None
                    continue
                budget = (task.timeout_s if task.timeout_s is not None
                          else self.config.timeout_s)
                since_dispatch = now - handle.dispatched_at
                since_beat = now - handle.last_beat
                if not handle.alive:
                    pool.replace(handle, "crash")
                    fail_attempt(task, attempt, "crash",
                                 f"worker {handle.worker_id} died "
                                 f"(exitcode {handle.process.exitcode})",
                                 since_dispatch)
                elif budget is not None and since_dispatch > budget:
                    self._emit_timeout(task_id, attempt, "timeout",
                                             since_dispatch, handle.worker_id)
                    pool.replace(handle, "timeout")
                    fail_attempt(task, attempt, "timeout",
                                 f"exceeded {budget:.1f}s wall clock",
                                 since_dispatch)
                elif since_beat > self.config.hang_timeout_s:
                    self._emit_timeout(task_id, attempt, "hang",
                                             since_beat, handle.worker_id)
                    pool.replace(handle, "hang")
                    fail_attempt(task, attempt, "hang",
                                 f"no heartbeat for {since_beat:.1f}s",
                                 since_dispatch)

    def _emit_timeout(self, task: str, attempt: int, kind: str,
                      seconds: float, worker: int) -> None:
        self.bus.emit("task_timeout", TaskTimeoutEvent(
            task=task, attempt=attempt, kind=kind, seconds=seconds,
            worker=worker,
        ))

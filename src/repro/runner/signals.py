"""Clean SIGINT/SIGTERM handling for campaign commands.

``repro check`` and ``repro run`` already had *one* clean-interrupt path:
``--interrupt-after N`` raises :class:`~repro.errors.RunnerInterrupted` with
the journal flushed and exits 3.  A real Ctrl-C or a supervisor's SIGTERM
used to take the default path instead — ``KeyboardInterrupt`` tracebacks,
no span export, an exit status that reads as a crash.

:func:`clean_interrupts` converts both signals into the same clean path:
the handler raises :class:`CampaignSignalled` (a ``RunnerInterrupted``), so
the runner's ``finally`` blocks flush the journal, the CLI's ``finally``
writes span files (open spans export as aborted), and the command exits 3 —
resumable exactly like an ``--interrupt-after`` stop.

Signal handlers can only be installed from the main thread; elsewhere (the
``repro serve`` job executor runs campaigns on a worker thread) the context
manager is a no-op and cancellation rides
:attr:`repro.runner.RunnerConfig.cancel_event` instead.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import RunnerInterrupted

__all__ = ["CampaignSignalled", "clean_interrupts"]


class CampaignSignalled(RunnerInterrupted):
    """A termination signal arrived; the campaign stopped on the clean path.

    Carries the signal name as :attr:`signal_name`.  Handled like every
    ``RunnerInterrupted``: journal flushed, spans exported as aborted,
    exit code 3, journal resumable.
    """

    def __init__(self, signum: int) -> None:
        self.signal_name = signal.Signals(signum).name
        super().__init__(
            f"received {self.signal_name}; journal flushed — rerun with the "
            "same --resume path to continue"
        )


@contextmanager
def clean_interrupts(
    signums: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[None]:
    """Raise :class:`CampaignSignalled` on SIGINT/SIGTERM inside the block.

    Previous handlers are restored on exit.  Outside the main thread this
    is a transparent no-op (Python only delivers signals to the main
    thread, and only the main thread may install handlers).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum: int, frame) -> None:
        raise CampaignSignalled(signum)

    previous = {signum: signal.signal(signum, _handler) for signum in signums}
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)

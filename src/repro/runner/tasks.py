"""Task model and the executor registry of the campaign runner.

A :class:`TaskSpec` is plain picklable data: an id, an executor *kind*, a
JSON-friendly payload, and orchestration metadata (circuit-breaker slice,
wall-clock timeout).  Workers never receive code — they receive specs and
resolve the kind through :data:`EXECUTORS`, a registry mapping kind names to
``"module:callable"`` entry points.  That keeps the worker protocol stable
under both ``fork`` and ``spawn`` start methods: anything a worker needs is
importable, nothing is pickled by value.

Executors are pure-ish functions ``payload dict -> result dict``.  Results
must be JSON-serializable: the journal (:mod:`repro.runner.journal`) persists
them verbatim, and ``--resume`` replays them without re-running the task —
so the merged output of a resumed run can be byte-identical to an
uninterrupted one.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RunnerError

#: Built-in executor entry points.  Extend with :func:`register_executor`
#: (test workloads register their own kinds; under ``fork`` the registration
#: is inherited, under ``spawn`` the target string must be importable).
EXECUTORS: dict[str, str | Callable[[dict], dict]] = {
    "probe": "repro.runner.tasks:run_probe",
    "clean_check": "repro.faults.parallel:run_clean_task",
    "campaign_injection": "repro.faults.parallel:run_injection_task",
    "suite_cell": "repro.experiments.suite:run_suite_cell",
}


def register_executor(kind: str, target: str | Callable[[dict], dict]) -> None:
    """Register (or override) an executor entry point for *kind*."""
    EXECUTORS[kind] = target


def resolve_executor(kind: str) -> Callable[[dict], dict]:
    """Import and return the executor callable behind *kind*."""
    try:
        target = EXECUTORS[kind]
    except KeyError:
        raise RunnerError(
            f"unknown task kind {kind!r}; choose from {sorted(EXECUTORS)}"
        ) from None
    if callable(target):
        return target
    module_name, _, attr = target.partition(":")
    return getattr(importlib.import_module(module_name), attr)


@dataclass(frozen=True)
class TaskSpec:
    """One unit of campaign work, fully described by data."""

    #: Unique, deterministic id (e.g. ``"inject:17"``) — the journal key.
    id: str
    #: Executor registry kind (see :data:`EXECUTORS`).
    kind: str
    #: JSON-friendly executor arguments.
    payload: dict = field(default_factory=dict)
    #: Circuit-breaker slice, conventionally ``"<kernel>/<config>"``.
    #: The empty string opts the task out of breaker accounting.
    slice: str = ""
    #: Per-task wall-clock budget; ``None`` inherits the runner default.
    timeout_s: float | None = None

    def execute(self) -> dict:
        """Run the task in the current process (serial path and workers)."""
        return resolve_executor(self.kind)(dict(self.payload))


@dataclass
class TaskResult:
    """Terminal outcome of one task — every submitted task gets exactly one."""

    task: str
    #: ``"ok"``, ``"failed"`` (retries exhausted) or ``"skipped"`` (breaker).
    status: str
    #: The executor's return value (``None`` unless status is ``"ok"``).
    result: dict | None = None
    attempts: int = 0
    duration_s: float = 0.0
    #: Satisfied from a resume journal instead of being re-run.
    cached: bool = False
    #: Last attempt-level failure, e.g. ``"timeout: exceeded 30.0s"``.
    failure: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_record(self) -> dict:
        """The journal ``done`` record for this result."""
        return {
            "type": "done",
            "task": self.task,
            "status": self.status,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
            "failure": self.failure,
            "result": self.result,
        }

    @classmethod
    def from_record(cls, record: dict, cached: bool = False) -> "TaskResult":
        return cls(
            task=record["task"],
            status=record["status"],
            result=record.get("result"),
            attempts=record.get("attempts", 0),
            duration_s=record.get("duration_s", 0.0),
            cached=cached,
            failure=record.get("failure"),
        )


# ---- the built-in probe executor ---------------------------------------------


def run_probe(payload: dict) -> dict:
    """Deterministic test workload for pool/retry/breaker exercises.

    Payload keys (all optional):

    ``sleep_s``
        Sleep this long before answering (drives wall-clock timeouts).
    ``freeze``
        ``SIGSTOP`` the worker process: it stays alive but its heartbeats
        stop — the hang-detection scenario.  (The parent's ``SIGKILL``
        terminates a stopped process, so replacement still works.)
    ``crash``
        ``os._exit`` with this status: a hard worker crash, no traceback,
        no ``done`` message.
    ``fail``
        Raise ``RuntimeError`` with this text: an ordinary retryable error.
    ``fail_marker`` / ``fail_times``
        Deterministic transient failure: append one line to the marker file
        and fail while it has ≤ ``fail_times`` lines — so attempt
        ``fail_times + 1`` succeeds.  The marker lives on the shared
        filesystem, which makes the sequence identical across retries,
        workers and worker replacements.
    ``result``
        Echoed back in the result dict (default ``{}``).
    """
    import os
    import signal

    if payload.get("sleep_s"):
        time.sleep(float(payload["sleep_s"]))
    if payload.get("freeze"):
        os.kill(os.getpid(), signal.SIGSTOP)
    if payload.get("crash") is not None:
        os._exit(int(payload["crash"]))
    if payload.get("fail_marker"):
        path = payload["fail_marker"]
        with open(path, "a") as fp:
            fp.write("attempt\n")
        with open(path) as fp:
            attempts = sum(1 for _ in fp)
        if attempts <= int(payload.get("fail_times", 1)):
            raise RuntimeError(f"probe transient failure {attempts}")
    if payload.get("fail"):
        raise RuntimeError(str(payload["fail"]))
    return {"ok": True, "echo": payload.get("result", {}), "pid": os.getpid()}


def probe_task(task_id: str, slice: str = "", timeout_s: float | None = None,
               **payload: Any) -> TaskSpec:
    """Convenience constructor for probe tasks (tests, smoke jobs)."""
    return TaskSpec(id=task_id, kind="probe", payload=payload, slice=slice,
                    timeout_s=timeout_s)

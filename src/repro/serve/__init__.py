"""repro.serve — the durable simulation job service (``repro serve``).

A long-lived, stdlib-only (asyncio) service that accepts kernel-profile,
fault-campaign and probe jobs over schema-versioned JSON endpoints
(``repro.serve/1``), executes them in supervised child processes on the
hardened :mod:`repro.runner` stack, and holds four promises the CLI alone
cannot:

**Durability.**  Admissions, completions and supervision strikes live in a
CRC-checksummed, fsync-per-record journal; campaign progress lives in
per-job runner journals.  ``kill -9`` the server (or any job child) at any
instant — restarting it with the same ``--journal-dir`` resumes every
unfinished job and produces final reports byte-identical to uninterrupted
serial runs.  Idle-time compaction folds the journal into an equivalent
bounded snapshot without weakening any of that (crash-safe
write/fsync/rename, chaos-tested at the kill points inside it).

**Bounded state.**  Per-tenant bounded queues drained by smooth weighted
round-robin with per-tenant in-flight caps — fairness with a provable
starvation bound; a submission beyond the bound gets HTTP 429 with a
load-proportional ``Retry-After`` hint instead of unbounded memory growth.
The event ring, header sizes and body sizes are bounded the same way (ring
losses are surfaced, not silent).

**Supervision.**  ``--workers M`` jobs run concurrently, each campaign on
its own ``--jobs N`` worker pool.  Heartbeats and calibrated wall-clock
budgets detect hung children; suspects are SIGKILLed and requeued under a
journalled, bounded attempt budget.  A campaign whose pool breaks degrades
to a serial re-run — recorded in the job's report and events, never silent.

**Graceful drain.**  SIGTERM (or ``POST /v1/drain``) stops admissions,
cancels every running campaign at a task boundary with its journal
flushed, exports open spans as aborted, and exits 3 — the same resumable
contract as an interrupted ``repro check``.

The chaos kill points (:mod:`repro.runner.chaos`) — ``journal-append``,
``pre-fsync``, ``mid-response``, ``mid-drain``, ``compact-snapshot``,
``compact-commit`` — let the crash-recovery matrix in ``tests/serve``
prove those claims rather than assert them.  See docs/robustness.md
("Simulation as a service") for the endpoint and journal reference.
"""

from repro.serve.app import ServeApp
from repro.serve.client import ServeClient, SubmitRetry, read_endpoint
from repro.serve.jobs import VERBS, JobOutcome, JobSpec, execute_job
from repro.serve.queues import TenantQueues
from repro.serve.store import JobPaths, ServeStore
from repro.serve.workers import JobHandle, JobWorkers

__all__ = [
    "ServeApp",
    "ServeClient",
    "SubmitRetry",
    "read_endpoint",
    "VERBS",
    "JobOutcome",
    "JobSpec",
    "execute_job",
    "TenantQueues",
    "JobPaths",
    "ServeStore",
    "JobHandle",
    "JobWorkers",
]

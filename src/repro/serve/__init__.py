"""repro.serve — the durable simulation job service (``repro serve``).

A long-lived, stdlib-only (asyncio) service that accepts kernel-profile and
fault-campaign jobs over schema-versioned JSON endpoints (``repro.serve/1``),
executes them on the hardened :mod:`repro.runner` stack, and holds three
promises the CLI alone cannot:

**Durability.**  Admissions and completions live in a CRC-checksummed,
fsync-per-record journal; campaign progress lives in per-job runner
journals.  ``kill -9`` the server at any instant — restarting it with the
same ``--journal-dir`` resumes every unfinished job and produces final
reports byte-identical to uninterrupted serial runs.

**Bounded state.**  Per-tenant bounded queues drained round-robin; a
submission beyond the bound gets HTTP 429 with a ``Retry-After`` hint
instead of unbounded memory growth.  The event ring, header sizes and body
sizes are bounded the same way.

**Graceful drain.**  SIGTERM (or ``POST /v1/drain``) stops admissions,
cancels the running campaign at a task boundary with its journal flushed,
exports open spans as aborted, and exits 3 — the same resumable contract as
an interrupted ``repro check``.

The chaos kill points (:mod:`repro.runner.chaos`) — ``journal-append``,
``pre-fsync``, ``mid-response``, ``mid-drain`` — let the crash-recovery
matrix in ``tests/serve`` prove those claims rather than assert them.
See docs/robustness.md ("Simulation as a service") for the endpoint and
journal reference.
"""

from repro.serve.app import ServeApp
from repro.serve.client import ServeClient, read_endpoint
from repro.serve.jobs import VERBS, JobOutcome, JobSpec, execute_job
from repro.serve.queues import TenantQueues
from repro.serve.store import ServeStore

__all__ = [
    "ServeApp",
    "ServeClient",
    "read_endpoint",
    "VERBS",
    "JobOutcome",
    "JobSpec",
    "execute_job",
    "TenantQueues",
    "ServeStore",
]

"""The ``repro serve`` application: asyncio front end, supervised workers.

Architecture, smallest thing that holds the durability story together:

- the **asyncio loop** owns all mutable service state (queues, counters,
  the serve journal).  HTTP handlers and the supervisor coroutine run on
  it, so no lock guards any of that state;
- **jobs run in supervised child processes**
  (:mod:`repro.serve.workers`): up to ``--workers M`` at once, each
  campaign on its own ``--jobs N`` runner pool.  The supervisor dispatches
  by weighted per-tenant round-robin (:mod:`repro.serve.queues`), watches
  heartbeats and per-job wall-clock budgets
  (:func:`repro.runner.policy.calibrated_timeout_s` when the submission
  carries an ``expected_s`` hint), SIGKILLs hung or crashed children and
  requeues the job under a bounded attempt budget — strikes are journalled,
  so they survive restarts too;
- **degradation is recorded, never silent**: a campaign whose worker pool
  breaks re-runs serially inside the job child (resume journal preserves
  completed injections); the outcome carries ``degraded`` + reason into the
  terminal journal record, the ``job_done``/``job_degraded`` events and the
  job's ``repro.runner/1`` report;
- **durability before acknowledgement**: a submission is journalled
  (fsync'd) before the 202 leaves the socket, so any job a client saw
  accepted survives SIGKILL.  Completion is journalled before the status
  endpoint reports it;
- **restart is recovery**: constructing the app folds the journal —
  admitted minus terminal, in admission order, re-enqueued.  A half-run
  check job resumes from its own runner journal and merges byte-identical
  to an uninterrupted run;
- **the journal stays bounded**: when idle (and on ``repro serve
  --compact``) the store folds its history into an equivalent snapshot
  (:meth:`repro.serve.store.ServeStore.compact`) — crash-safe
  write/fsync/rename with chaos kill points inside, announced on the
  ``serve_compact`` topic;
- **drain is cancellation**: SIGTERM/SIGINT (or ``POST /v1/drain``) stops
  admissions (429 ``draining``), sets every running job's cancel event,
  lets the runners journal, exports open spans as aborted and exits 3 —
  the same resumable contract as an interrupted ``repro check``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import asdict
from pathlib import Path

from repro.errors import ServeRejected
from repro.obs.events import (
    EventBus,
    JobDegradedEvent,
    JobDoneEvent,
    JobRejectedEvent,
    JobRequeuedEvent,
    JobStartedEvent,
    JobSubmittedEvent,
    ServeCompactEvent,
    ServeDrainEvent,
)
from repro.obs.export import SERVE_SCHEMA_VERSION, envelope
from repro.runner.policy import calibrated_timeout_s
from repro.serve.http import (
    BadRequest,
    Request,
    json_body,
    read_request,
    response_bytes,
    send_response,
)
from repro.serve.jobs import VERBS, JobSpec
from repro.serve.queues import TenantQueues
from repro.serve.store import ServeStore
from repro.serve.workers import JobWorkers

__all__ = ["ServeApp"]

#: Serve topics mirrored into the ``/v1/events`` ring buffer.
EVENT_TOPICS = ("job_submitted", "job_rejected", "job_started",
                "job_requeued", "job_degraded", "job_done", "serve_drain",
                "serve_compact")

#: Ring-buffer capacity for ``/v1/events`` (bounded state, like the queues).
EVENT_RING = 1000

#: Seconds of back-off suggested per queued job in a 429 ``Retry-After``.
RETRY_AFTER_PER_JOB_S = 2.0

#: Span-id sub-block per supervision attempt (inside the per-epoch stride):
#: a requeued attempt's tracer must not collide with its predecessor's ids.
ATTEMPT_SPAN_STRIDE = 100_000

#: Supervisor poll period (result-queue drain + health checks).
POLL_S = 0.05

#: A dead child gets this long for its final ``done`` message to surface
#: through the result queue before the supervisor declares a crash.
CRASH_GRACE_S = 0.3


class ServeApp:
    """One service instance bound to one journal directory."""

    def __init__(self, journal_dir: str | Path, host: str = "127.0.0.1",
                 port: int = 0, queue_depth: int = 8, max_tenants: int = 16,
                 bus: EventBus | None = None, workers: int = 1,
                 jobs: int = 1, weights: dict[str, int] | None = None,
                 max_inflight: int = 0, hang_timeout_s: float = 10.0,
                 max_job_attempts: int = 3, compact_every: int = 0) -> None:
        self.host = host
        self.port = port
        self.workers_n = max(1, workers)
        self.jobs_n = max(1, jobs)
        self.hang_timeout_s = max(0.5, hang_timeout_s)
        self.max_job_attempts = max(1, max_job_attempts)
        #: Idle compaction threshold in journal records (0 = never).
        self.compact_every = max(0, compact_every)
        self.store = ServeStore(journal_dir)
        self.queues = TenantQueues(queue_depth, max_tenants,
                                   weights=weights, max_inflight=max_inflight)
        self.bus = bus or EventBus()
        self.draining = False
        self.drain_reason = ""
        self.counters = {
            "submitted": 0,
            "rejected": 0,
            "done": 0,
            "failed": 0,
            "aborted": 0,
            "requeued": 0,
            "degraded": 0,
            "hung_kills": 0,
            "compactions": 0,
            "resumed_jobs": len(self.store.recovered),
            "corrupt_journal_records": self.store.corrupt_records,
        }
        self._events: list[dict] = []
        self._event_seq = 0
        self._events_dropped = 0
        for topic in EVENT_TOPICS:
            self.bus.subscribe(topic, self._make_recorder(topic))
        self._kick: asyncio.Event | None = None
        self._stopping: asyncio.Event | None = None
        self._workers = JobWorkers()
        self._last_compact_count = -1
        # Jobs lost by a previous epoch re-enter the queue unchecked: they
        # were admitted under the bound once already.
        for spec in self.store.recovered:
            self.queues.requeue(spec)

    # ---- event ring ----------------------------------------------------------

    def _make_recorder(self, topic: str):
        def record(event) -> None:
            self._event_seq += 1
            self._events.append(
                {"seq": self._event_seq, "topic": topic, **asdict(event)}
            )
            overflow = len(self._events) - EVENT_RING
            if overflow > 0:
                # The ring trims, but never silently: the drop count is on
                # /v1/status and every /v1/events response's headers.
                del self._events[:overflow]
                self._events_dropped += overflow
        return record

    # ---- lifecycle -----------------------------------------------------------

    async def run(self) -> int:
        """Serve until drained; returns the process exit code (3)."""
        loop = asyncio.get_running_loop()
        self._kick = asyncio.Event()
        self._stopping = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.drain, signal.Signals(signum).name.lower()
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / platform without loop signals

        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        endpoint = Path(self.store.root) / "endpoint.json"
        endpoint.write_text(json.dumps(
            {"host": self.host, "port": self.port, "epoch": self.store.epoch}
        ) + "\n")

        if self.queues.total():
            self._kick.set()
        supervisor = asyncio.create_task(self._supervisor())
        await self._stopping.wait()
        await supervisor
        server.close()
        await server.wait_closed()
        self._workers.shutdown()
        # Durability barrier last: every record of this epoch (including
        # terminal records of jobs that finished during the drain) is on
        # stable storage before the process exits.
        self.store.flush_for_drain()
        self.store.close()
        return 3

    def drain(self, reason: str = "sigterm") -> None:
        """Begin a graceful drain (idempotent; callable from the loop only)."""
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        pending = self.queues.total() + len(self._workers.running)
        self.bus.emit("serve_drain", ServeDrainEvent(
            pending=pending, reason=reason,
        ))
        self._workers.cancel_all()
        if self._kick is not None:
            self._kick.set()
        if self._stopping is not None:
            self._stopping.set()

    # ---- the supervisor ------------------------------------------------------

    async def _supervisor(self) -> None:
        """Dispatch, watch, reap — the service's one scheduling loop.

        Runs until a drain has been requested *and* every child has exited
        (each cancelled job journals its own aborted state first).
        """
        while True:
            for message in self._workers.poll():
                self._on_message(message)
            self._check_children(time.monotonic())
            if not self.draining:
                self._dispatch()
                self._maybe_compact()
            if self.draining and not self._workers.running:
                break
            try:
                await asyncio.wait_for(self._kick.wait(), POLL_S)
            except asyncio.TimeoutError:
                pass
            else:
                self._kick.clear()

    def _dispatch(self) -> None:
        while len(self._workers.running) < self.workers_n:
            spec = self.queues.next_job()
            if spec is None:
                return
            attempt = self.store.attempts.get(spec.job, 0) + 1
            if attempt > self.max_job_attempts:
                # Strikes journalled by earlier epochs count: a job that
                # kept killing its worker does not get a fresh budget just
                # because the service restarted.
                self.queues.release(spec.tenant)
                detail = (f"gave up after {attempt - 1} supervision "
                          "attempts")
                self.store.record_done(spec.job, "failed", detail)
                self.counters["failed"] += 1
                self.bus.emit("job_done", JobDoneEvent(
                    job=spec.job, tenant=spec.tenant, status="failed",
                    duration_s=0.0,
                ))
                continue
            self._launch(spec, attempt)

    def _launch(self, spec: JobSpec, attempt: int) -> None:
        resumed = spec.job in self.store.span_roots or (
            spec.verb == "check" and self.store.job_journal(spec.job).exists()
        )
        span_base = 0
        span_prev = None
        if spec.verb == "check":
            # Root span chain survives restarts *and* SIGKILLed attempts:
            # span ids are deterministic (sequential from id_base), so the
            # parent can journal the child's root ids before the fork — the
            # chain exists even if the child never writes a span.  Each
            # attempt gets its own id sub-block; epoch N+1 parents onto
            # whatever root was journalled last.
            span_prev = self.store.span_roots.get(spec.job)
            span_base = self.store.span_id_base() + (
                min(attempt - 1, 9) * ATTEMPT_SPAN_STRIDE
            )
            root_id = span_base + 1
            span_id = f"{root_id:016x}"
            trace_id = span_prev[0] if span_prev else f"{root_id:032x}"
            self.store.record_span_root(spec.job, trace_id, span_id)
        budget = None
        expected = spec.params.get("expected_s")
        if expected is not None:
            try:
                budget = calibrated_timeout_s(float(expected))
            except (TypeError, ValueError):
                budget = None
        self.bus.emit("job_started", JobStartedEvent(
            job=spec.job, tenant=spec.tenant, verb=spec.verb, resumed=resumed,
        ))
        try:
            self._workers.launch(
                spec, root=str(self.store.root), epoch=self.store.epoch,
                attempt=attempt, jobs=self.jobs_n, span_base=span_base,
                span_prev=span_prev, resumed=resumed, budget_s=budget,
                serve_counters=self.counters_snapshot(),
            )
        except Exception as exc:  # pragma: no cover - fork failure
            self.queues.release(spec.tenant)
            self._record_strike(spec, attempt, "crash",
                                f"launch failed: {exc}")
            self.queues.requeue(spec)

    # ---- supervision ---------------------------------------------------------

    def _check_children(self, now: float) -> None:
        for job, handle in list(self._workers.running.items()):
            reason = None
            if not handle.process.is_alive():
                # Grace first: the child's final message may still be in
                # flight through the result queue's feeder thread.
                if handle.dead_at is None:
                    handle.dead_at = now
                    continue
                if now - handle.dead_at < CRASH_GRACE_S:
                    continue
                reason = "crash"
            elif (handle.budget_s is not None
                    and now - handle.started_at > handle.budget_s):
                reason = "timeout"
            elif now - handle.last_beat > self.hang_timeout_s:
                reason = "hang"
            if reason is not None:
                self._supervise_kill(job, reason, now)

    def _supervise_kill(self, job: str, reason: str, now: float) -> None:
        handle = self._workers.kill(job)
        if handle is None:
            return
        spec = handle.spec
        self.queues.release(spec.tenant)
        if reason in ("hang", "timeout"):
            self.counters["hung_kills"] += 1
        if handle.attempt >= self.max_job_attempts and not self.draining:
            detail = (f"gave up after {handle.attempt} supervision attempts "
                      f"(last: {reason})")
            self.store.record_done(spec.job, "failed", detail)
            self.counters["failed"] += 1
            self.bus.emit("job_done", JobDoneEvent(
                job=spec.job, tenant=spec.tenant, status="failed",
                duration_s=now - handle.started_at,
            ))
            return
        self._record_strike(spec, handle.attempt, reason)
        if not self.draining:
            # Front of its tenant's queue: it is that tenant's oldest
            # admitted work, matching the order a restart would recover.
            self.queues.requeue_front(spec)
            self._kick.set()

    def _record_strike(self, spec: JobSpec, attempt: int, reason: str,
                       detail: str = "") -> None:
        self.store.record_attempt(spec.job, attempt, reason)
        self.counters["requeued"] += 1
        self.bus.emit("job_requeued", JobRequeuedEvent(
            job=spec.job, tenant=spec.tenant, reason=reason,
            attempt=attempt, max_attempts=self.max_job_attempts,
        ))

    # ---- child messages ------------------------------------------------------

    def _on_message(self, message: tuple) -> None:
        kind, job = message[0], message[1]
        handle = self._workers.running.get(job)
        if kind == "start" and len(message) >= 4:
            if handle is not None and handle.attempt == message[2]:
                handle.pid = message[3]
                handle.last_beat = time.monotonic()
        elif kind == "beat" and len(message) >= 3:
            if handle is not None and handle.attempt == message[2]:
                handle.last_beat = time.monotonic()
        elif kind == "done" and len(message) >= 8:
            (_, _, attempt, status, detail,
             duration_s, degraded, degrade_reason) = message[:8]
            if handle is None or handle.attempt != attempt:
                return  # stale message from a killed attempt
            self._workers.finish(job)
            self._on_done(handle.spec, status, detail, duration_s,
                          degraded, degrade_reason)

    def _on_done(self, spec: JobSpec, status: str, detail: str,
                 duration_s: float, degraded: bool,
                 degrade_reason: str) -> None:
        self.queues.release(spec.tenant)
        if status == "aborted":
            # Cancelled by drain: no terminal record — the job stays
            # pending in the journal and the next epoch resumes it.
            self.counters["aborted"] += 1
        else:
            self.store.record_done(spec.job, status, detail,
                                   degraded=degraded)
            self.counters[status] += 1
            if degraded:
                self.counters["degraded"] += 1
                self.bus.emit("job_degraded", JobDegradedEvent(
                    job=spec.job, tenant=spec.tenant,
                    reason=degrade_reason, detail=detail,
                ))
        self.bus.emit("job_done", JobDoneEvent(
            job=spec.job, tenant=spec.tenant, status=status,
            duration_s=duration_s, degraded=degraded,
        ))
        self._kick.set()

    # ---- compaction ----------------------------------------------------------

    def _maybe_compact(self) -> None:
        if (not self.compact_every
                or self._workers.running
                or self.queues.total()
                or self.store.record_count < self.compact_every
                or self.store.record_count == self._last_compact_count):
            return
        self.compact(reason="idle")

    def compact(self, reason: str = "idle") -> dict:
        """Compact the serve journal now (idle policy or explicit CLI).

        Caller contract: no running jobs (the supervisor only calls this
        when idle; the CLI path compacts before the server starts).
        """
        stats = self.store.compact(reason=reason)
        self._last_compact_count = self.store.record_count
        self.counters["compactions"] += 1
        self.bus.emit("serve_compact", ServeCompactEvent(
            records_before=stats["records_before"],
            records_after=stats["records_after"],
            archived_terminals=stats["archived_terminals"],
            reason=reason,
        ))
        return stats

    # ---- state snapshots -----------------------------------------------------

    def counters_snapshot(self) -> dict:
        return {
            **self.counters,
            "epoch": self.store.epoch,
            "queue_high_water": self.queues.high_water,
            "queued": self.queues.total(),
            "inflight": len(self._workers.running),
        }

    def job_state(self, job: str) -> str | None:
        if job in self.store.terminal:
            return self.store.terminal[job]
        if job in self._workers.running:
            return "running"
        if job in self.store.admitted:
            return "queued"
        if self.store.read_report(job) is not None:
            # Archived: compaction pruned the terminal record but the
            # report artifact is forever.
            return "done"
        return None

    def retry_after_s(self, tenant: str | None = None) -> float:
        """Load-proportional back-off: global pressure normalized by worker
        count, plus the rejected tenant's own queued + in-flight share."""
        total = self.queues.total() + len(self._workers.running)
        load = total / self.workers_n
        if tenant:
            load += self.queues.depth(tenant) + self.queues.inflight(tenant)
        return max(1.0, min(60.0, RETRY_AFTER_PER_JOB_S * (load + 1)))

    # ---- HTTP ----------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                raw = self._route(request)
            except BadRequest as exc:
                raw = self._error(400, str(exc))
            except ServeRejected as exc:
                raw = self._rejected(exc)
            except Exception as exc:  # noqa: BLE001 - a handler bug must not
                # take down jobs that are mid-campaign
                raw = self._error(500, f"{type(exc).__name__}: {exc}")
            await send_response(writer, raw)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _envelope_bytes(self, status: int, kind: str, data: dict,
                        extra_headers: dict[str, str] | None = None) -> bytes:
        body = json.dumps(
            envelope(kind, data, schema=SERVE_SCHEMA_VERSION),
            separators=(",", ":"), default=str,
        ).encode() + b"\n"
        return response_bytes(status, body, extra_headers=extra_headers)

    def _error(self, status: int, message: str) -> bytes:
        return self._envelope_bytes(status, "serve-error", {"error": message})

    def _rejected(self, exc: ServeRejected) -> bytes:
        self.counters["rejected"] += 1
        return self._envelope_bytes(
            429, "serve-rejected",
            {"reason": exc.reason, "retry_after_s": exc.retry_after_s},
            extra_headers={"Retry-After": str(int(exc.retry_after_s + 0.999))},
        )

    def _route(self, request: Request) -> bytes:
        path, method = request.path, request.method
        if path == "/v1/ping" and method == "GET":
            return self._envelope_bytes(200, "serve-ping", {
                "ok": True, "epoch": self.store.epoch,
                "draining": self.draining,
            })
        if path == "/v1/status" and method == "GET":
            return self._envelope_bytes(200, "serve-status", self._status())
        if path == "/v1/jobs" and method == "POST":
            return self._submit(request)
        if path == "/v1/events" and method == "GET":
            return self._events_body(request)
        if path == "/v1/drain" and method == "POST":
            pending = self.queues.total() + len(self._workers.running)
            self.drain(reason="request")
            return self._envelope_bytes(202, "serve-drain", {
                "draining": True, "pending": pending,
            })
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._job_get(path[len("/v1/jobs/"):])
        return self._error(
            404 if method in ("GET", "POST") else 405,
            f"no route for {method} {path}",
        )

    def _status(self) -> dict:
        running = [
            {
                "job": job,
                "tenant": handle.spec.tenant,
                "verb": handle.spec.verb,
                "attempt": handle.attempt,
                "pid": handle.pid,
            }
            for job, handle in sorted(self._workers.running.items())
        ]
        return {
            "epoch": self.store.epoch,
            "draining": self.draining,
            "workers": {
                "configured": self.workers_n,
                "busy": len(self._workers.running),
                "jobs_per_campaign": self.jobs_n,
                "max_inflight": self.queues.max_inflight,
            },
            "running": running,
            "queues": {
                tenant: {
                    "queued": self.queues.depth(tenant),
                    "inflight": self.queues.inflight(tenant),
                    "weight": self.queues.weight(tenant),
                }
                for tenant in self.queues.tenants()
            },
            "events": {
                "dropped": self._events_dropped,
                "oldest_seq": self._events[0]["seq"] if self._events else 0,
            },
            "journal": {
                "records": self.store.record_count,
                "archived_terminals": self.store.archived_terminals,
            },
            "counters": self.counters_snapshot(),
        }

    def _submit(self, request: Request) -> bytes:
        if self.draining:
            exc = ServeRejected("draining", self.retry_after_s())
            self.bus.emit("job_rejected", JobRejectedEvent(
                tenant="", verb="", reason=exc.reason,
                retry_after_s=exc.retry_after_s,
            ))
            raise exc
        payload = json_body(request)
        verb = payload.get("verb")
        if verb not in VERBS:
            raise BadRequest(f"verb must be one of {list(VERBS)}, got {verb!r}")
        tenant = str(payload.get("tenant") or "default")[:64]
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise BadRequest("params must be a JSON object")
        try:
            self.queues.check(tenant, self.retry_after_s(tenant))
        except ServeRejected as exc:
            self.bus.emit("job_rejected", JobRejectedEvent(
                tenant=tenant, verb=verb, reason=exc.reason,
                retry_after_s=exc.retry_after_s,
            ))
            raise
        seq = self.store.claim_seq()
        spec = JobSpec(
            job=f"job-{seq:06d}", tenant=tenant, verb=verb,
            params=params, seq=seq,
        )
        # Durable before acknowledged: journal first (fsync per record),
        # then enqueue, then 202.
        self.store.record_job(spec)
        depth = self.queues.requeue(spec)
        self.counters["submitted"] += 1
        self.bus.emit("job_submitted", JobSubmittedEvent(
            job=spec.job, tenant=tenant, verb=verb, depth=depth,
        ))
        self._kick.set()
        return self._envelope_bytes(202, "serve-job", {
            "job": spec.job, "tenant": tenant, "verb": verb, "depth": depth,
        })

    def _job_get(self, rest: str) -> bytes:
        job, _, artifact = rest.partition("/")
        state = self.job_state(job)
        if state is None:
            return self._error(404, f"unknown job {job!r}")
        if artifact == "":
            spec = self.store.admitted.get(job)
            return self._envelope_bytes(200, "serve-job-status", {
                "job": job,
                "state": state,
                "tenant": spec.tenant if spec else None,
                "verb": spec.verb if spec else None,
                "resumed": job in self.store.span_roots
                and self.store.epoch > 1,
            })
        if artifact == "report":
            raw = self.store.read_report(job)
            if raw is None:
                return self._error(404, f"job {job!r} has no report yet "
                                        f"(state: {state})")
            return response_bytes(200, raw)
        if artifact == "runner":
            raw = self.store.read_runner(job)
            if raw is None:
                return self._error(404, f"job {job!r} has no runner report "
                                        f"yet (state: {state})")
            return response_bytes(200, raw)
        return self._error(404, f"unknown job artifact {artifact!r}")

    def _events_body(self, request: Request) -> bytes:
        topic = request.query.get("topic")
        try:
            since = int(request.query.get("since", "0"))
        except ValueError as exc:
            raise BadRequest("since must be an integer") from exc
        lines = [
            json.dumps(record, separators=(",", ":"), default=str)
            for record in self._events
            if record["seq"] > since and (topic is None or record["topic"] == topic)
        ]
        body = ("\n".join(lines) + "\n").encode() if lines else b""
        return response_bytes(
            200, body, content_type="application/x-ndjson",
            extra_headers={
                # A trimmed ring is visible, not silent: consumers compare
                # their cursor against the oldest retained seq.
                "X-Repro-Events-Dropped": str(self._events_dropped),
                "X-Repro-Events-Oldest-Seq": str(
                    self._events[0]["seq"] if self._events else 0
                ),
            },
        )
